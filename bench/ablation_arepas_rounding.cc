// Ablation: AREPAS area-rounding modes. Algorithm 1's literal pseudocode
// floors the stretched section length (dropping up to a tick of area); the
// "right-nearest integer" text suggests ceiling; our default preserves the
// area exactly with a fractional final tick. This ablation quantifies the
// impact on simulated-run-time accuracy against flighted ground truth.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  FlightConfig config;
  config.seed = 555;
  FlightHarness harness(config);
  auto flighted =
      harness.FlightJobs(generator.Generate(5000, sizes.flight_jobs));

  PrintBanner(std::cout, "Ablation: AREPAS area-rounding modes vs flighted ground truth");
  TextTable table({"Rounding", "MedianAPE", "MeanAPE",
                   "mean |area drift| (%)"});
  struct Mode {
    const char* name;
    AreaRounding rounding;
  };
  for (const Mode& mode :
       {Mode{"exact (default)", AreaRounding::kExact},
        Mode{"floor (Algorithm 1 pseudocode)", AreaRounding::kFloor},
        Mode{"ceil (right-nearest integer)", AreaRounding::kCeil}}) {
    Arepas arepas{ArepasOptions{mode.rounding}};
    std::vector<double> predicted;
    std::vector<double> actual;
    std::vector<double> drift;
    for (const FlightedJob& job : flighted) {
      if (!job.NonAnomalous() || job.flights.size() < 2) continue;
      const FlightRecord& reference = job.flights.front();
      for (size_t f = 1; f < job.flights.size(); ++f) {
        auto simulated =
            arepas.SimulateSkyline(reference.skyline, job.flights[f].tokens);
        if (!simulated.ok()) continue;
        predicted.push_back(
            static_cast<double>(simulated.value().duration_seconds()));
        actual.push_back(job.flights[f].runtime_seconds);
        drift.push_back(std::fabs(simulated.value().Area() /
                                      reference.skyline.Area() -
                                  1.0) *
                        100.0);
      }
    }
    table.AddRow({mode.name,
                  Cell(MedianAbsolutePercentError(predicted, actual), 1) + "%",
                  Cell(MeanAbsolutePercentError(predicted, actual), 1) + "%",
                  Cell(Mean(drift), 3) + "%"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: all three modes agree to within a tick per "
               "section (run-time error nearly identical); only the exact "
               "mode keeps the area drift at zero, which is why it is the "
               "default for the simulator named after area preservation.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
