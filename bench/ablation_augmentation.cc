// Ablation: what AREPAS data augmentation buys the XGBoost point model.
// Trains one model on the full augmented point set (60/80/100% of observed
// tokens plus over-peak points) and one on the single observed point per
// job, then compares run-time error on flighted ground truth across token
// counts.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "gbdt/xgb_pcc.h"
#include "nn/nn_model.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);

  // Augmented dataset (the pipeline default).
  Dataset augmented = bench::Unwrap(DatasetBuilder().Build(train), "dataset");
  auto scalers = bench::Unwrap(FitScalers(augmented), "scalers");
  ApplyScalers(scalers, augmented);

  // Unaugmented: a single (observed tokens, observed runtime) per job.
  DatasetOptions single_options;
  single_options.point_fractions = {1.0};
  single_options.over_peak_fractions = {};
  Dataset single =
      bench::Unwrap(DatasetBuilder(single_options).Build(train), "dataset");
  ApplyScalers(scalers, single);

  XgbPccOptions xgb_options;
  xgb_options.gbdt.num_trees = 120;
  XgbRuntimeModel with_augmentation(xgb_options);
  XgbRuntimeModel without_augmentation(xgb_options);
  Status s1 = with_augmentation.Train(
      augmented.point_features, augmented.point_size(),
      augmented.job_feature_dim, augmented.point_tokens,
      augmented.point_runtimes);
  Status s2 = without_augmentation.Train(
      single.point_features, single.point_size(), single.job_feature_dim,
      single.point_tokens, single.point_runtimes);
  if (!s1.ok() || !s2.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  // Ground truth: flighted test jobs at several token counts.
  FlightConfig flight_config;
  flight_config.seed = 909;
  FlightHarness harness(flight_config);
  auto test_jobs = generator.Generate(sizes.train_jobs, sizes.flight_jobs);
  auto flighted = harness.FlightJobs(test_jobs);

  Featurizer featurizer;
  PrintBanner(std::cout, "Ablation: AREPAS training-data augmentation for XGBoost");
  TextTable table({"flight", "Median AE with augmentation",
                   "Median AE without augmentation"});
  for (size_t f = 0; f < flight_config.token_fractions.size(); ++f) {
    std::vector<double> pred_with;
    std::vector<double> pred_without;
    std::vector<double> actual;
    for (size_t j = 0; j < flighted.size(); ++j) {
      if (f >= flighted[j].flights.size()) continue;
      const FlightRecord& record = flighted[j].flights[f];
      auto features = bench::Unwrap(
          featurizer.JobLevel(test_jobs[j].graph), "featurize");
      scalers.job_scaler.Transform(features);
      auto with_pred = with_augmentation.PredictRuntime(features, record.tokens);
      auto without_pred =
          without_augmentation.PredictRuntime(features, record.tokens);
      if (!with_pred.ok() || !without_pred.ok()) continue;
      pred_with.push_back(with_pred.value());
      pred_without.push_back(without_pred.value());
      actual.push_back(record.runtime_seconds);
    }
    // token_fractions are sorted descending inside the harness.
    std::vector<double> fractions = flight_config.token_fractions;
    std::sort(fractions.rbegin(), fractions.rend());
    table.AddRow({Cell(100.0 * fractions[f], 0) + "% of request",
                  Cell(MedianAbsolutePercentError(pred_with, actual), 0) + "%",
                  Cell(MedianAbsolutePercentError(pred_without, actual), 0) +
                      "%"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: close near the observed allocation (the "
               "global model shares its token feature across jobs), with a "
               "gap opening at deep flights where only augmentation provides "
               "sub-allocation supervision.\n";

  // ---- NN trend targets: with AREPAS, the power-law exponent is fitted
  // from the synthesized curve; without it, a single observation per job
  // supports only a flat (a = 0) target — the data-sparsity problem the
  // simulator exists to solve.
  NnOptions nn_options;
  nn_options.epochs = 150;
  nn_options.learning_rate = 2e-3;
  nn_options.loss_form = LossForm::kLF2;
  PccSupervision with_trend;
  with_trend.targets = augmented.targets;
  with_trend.observed_tokens = augmented.observed_tokens;
  with_trend.observed_runtime = augmented.observed_runtime;
  // Flat targets: b absorbs the whole observed runtime, a stays 0.
  PccSupervision flat = with_trend;
  for (size_t i = 0; i < flat.targets.size(); ++i) {
    flat.targets[i] = PowerLawPcc{0.0, augmented.observed_runtime[i]};
  }
  NnPccModel nn_with(augmented.job_feature_dim, nn_options);
  NnPccModel nn_without(augmented.job_feature_dim, nn_options);
  bench::Unwrap(nn_with.Train(augmented.job_features, with_trend), "nn");
  bench::Unwrap(nn_without.Train(augmented.job_features, flat), "nn");

  TextTable nn_table({"flight", "NN Median AE, AREPAS targets",
                      "NN Median AE, single-point (flat) targets"});
  std::vector<double> fractions = flight_config.token_fractions;
  std::sort(fractions.rbegin(), fractions.rend());
  for (size_t f = 0; f < fractions.size(); ++f) {
    std::vector<double> pred_with;
    std::vector<double> pred_without;
    std::vector<double> actual;
    for (size_t j = 0; j < flighted.size(); ++j) {
      if (f >= flighted[j].flights.size()) continue;
      const FlightRecord& record = flighted[j].flights[f];
      auto features = bench::Unwrap(
          featurizer.JobLevel(test_jobs[j].graph), "featurize");
      scalers.job_scaler.Transform(features);
      auto pcc_with = bench::Unwrap(nn_with.Predict(features), "predict");
      auto pcc_without = bench::Unwrap(nn_without.Predict(features), "predict");
      pred_with.push_back(pcc_with.EvalRunTime(record.tokens));
      pred_without.push_back(pcc_without.EvalRunTime(record.tokens));
      actual.push_back(record.runtime_seconds);
    }
    nn_table.AddRow(
        {Cell(100.0 * fractions[f], 0) + "% of request",
         Cell(MedianAbsolutePercentError(pred_with, actual), 0) + "%",
         Cell(MedianAbsolutePercentError(pred_without, actual), 0) + "%"});
  }
  std::cout << "\n" << nn_table.ToString();
  std::cout << "\nExpected shape: with only one observation per job the "
               "trend target degenerates to a flat curve, so the model "
               "cannot anticipate any slowdown at lower allocations — the "
               "sparsity problem AREPAS solves (paper §3).\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
