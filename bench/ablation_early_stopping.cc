// Ablation: validation-based early stopping for the NN. Compares a fixed
// epoch budget against a large budget cut short by early stopping, on test
// accuracy and training time.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "tasq/evaluation.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);
  auto test = bench::ObserveJobs(generator, sizes.train_jobs, sizes.test_jobs,
                                 22);
  Dataset test_dataset =
      bench::Unwrap(DatasetBuilder().Build(test), "test dataset");

  struct Setup {
    const char* name;
    int epochs;
    double validation_fraction;
  };
  PrintBanner(std::cout, "Ablation: NN early stopping (validation hold-out)");
  TextTable table({"Training regime", "Median AE (Run Time)",
                   "MAE (Curve Params)", "train seconds"});
  for (const Setup& setup :
       {Setup{"fixed 40 epochs", 40, 0.0},
        Setup{"fixed 150 epochs (bench default)", 150, 0.0},
        Setup{"fixed 600 epochs", 600, 0.0},
        Setup{"600-epoch budget + early stopping", 600, 0.15}}) {
    TasqOptions options = bench::BenchTasqOptions(LossForm::kLF2);
    options.train_gnn = false;
    options.nn.epochs = setup.epochs;
    options.nn.validation_fraction = setup.validation_fraction;
    options.nn.early_stopping_patience = 60;
    Tasq pipeline(options);
    auto start = std::chrono::steady_clock::now();
    Status trained = pipeline.Train(train);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      return 1;
    }
    auto metrics = bench::Unwrap(
        EvaluateModel(pipeline, ModelKind::kNn, test_dataset), "evaluate");
    table.AddRow({setup.name,
                  Cell(metrics.median_ae_runtime_percent, 0) + "%",
                  Cell(metrics.mae_curve_params, 3), Cell(seconds, 1)});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: over-long fixed budgets degrade (late-"
               "epoch overfitting visible in the 600-epoch row); early "
               "stopping cuts the oversized budget back to a small fraction "
               "of its time while avoiding that degradation. At bench scale "
               "a well-chosen fixed budget remains competitive because the "
               "validation hold-out costs 15% of an already small training "
               "set — the knob matters more at production scale.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
