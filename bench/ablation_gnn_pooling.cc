// Ablation: SimGNN-style attention pooling vs plain mean pooling in the
// GNN (the paper motivates attention as "overweighing the most relevant
// part of the graph").

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "tasq/evaluation.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);
  auto test = bench::ObserveJobs(generator, sizes.train_jobs, sizes.test_jobs,
                                 22);
  Dataset test_dataset =
      bench::Unwrap(DatasetBuilder().Build(test), "test dataset");

  PrintBanner(std::cout, 
      "Ablation: GNN pooling (attention vs mean) and aggregator (GCN vs "
      "SAGE)");
  TextTable table({"Architecture", "MAE (Curve Params)",
                   "Median AE (Run Time)"});
  struct Variant {
    const char* name;
    bool attention;
    GnnAggregator aggregator;
  };
  for (const Variant& variant :
       {Variant{"GCN + attention (SimGNN-style, default)", true,
                GnnAggregator::kGcn},
        Variant{"GCN + mean pooling", false, GnnAggregator::kGcn},
        Variant{"SAGE + attention", true, GnnAggregator::kSage}}) {
    TasqOptions options = bench::BenchTasqOptions(LossForm::kLF2);
    options.train_nn = false;
    options.gnn.attention_pooling = variant.attention;
    options.gnn.aggregator = variant.aggregator;
    Tasq pipeline(options);
    Status trained = pipeline.Train(train);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      return 1;
    }
    auto metrics = bench::Unwrap(
        EvaluateModel(pipeline, ModelKind::kGnn, test_dataset), "evaluate");
    table.AddRow({variant.name, Cell(metrics.mae_curve_params, 3),
                  Cell(metrics.median_ae_runtime_percent, 0) + "%"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: the two poolings are close on this "
               "synthetic workload (job-level aggregates already carry most "
               "of the signal); attention's advantage depends on how "
               "concentrated job cost is in a few operators, which is the "
               "paper's motivation for it on production plans.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
