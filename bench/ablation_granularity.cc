// Ablation: global model vs fine-grained per-template models (paper §4.2).
// Fine-grained models specialize to a recurring template but cannot cover
// ad-hoc jobs at all; the global model covers everything.

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "nn/nn_model.h"
#include "tasq/evaluation.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);
  auto test = bench::ObserveJobs(generator, sizes.train_jobs, sizes.test_jobs,
                                 22);
  Dataset train_dataset =
      bench::Unwrap(DatasetBuilder().Build(train), "train dataset");
  Dataset test_dataset =
      bench::Unwrap(DatasetBuilder().Build(test), "test dataset");
  auto scalers = bench::Unwrap(FitScalers(train_dataset), "scalers");
  ApplyScalers(scalers, train_dataset);
  ApplyScalers(scalers, test_dataset);

  size_t dim = train_dataset.job_feature_dim;
  auto make_supervision = [&](const Dataset& d, const std::vector<size_t>& idx) {
    PccSupervision supervision;
    for (size_t i : idx) {
      supervision.targets.push_back(d.targets[i]);
      supervision.observed_tokens.push_back(d.observed_tokens[i]);
      supervision.observed_runtime.push_back(d.observed_runtime[i]);
    }
    return supervision;
  };
  auto gather_features = [&](const Dataset& d, const std::vector<size_t>& idx) {
    std::vector<double> features;
    for (size_t i : idx) {
      features.insert(features.end(),
                      d.job_features.begin() + static_cast<long>(i * dim),
                      d.job_features.begin() + static_cast<long>((i + 1) * dim));
    }
    return features;
  };

  // ---- Global model over everything. --------------------------------------
  NnOptions nn_options;
  nn_options.epochs = 150;
  nn_options.learning_rate = 2e-3;
  nn_options.loss_form = LossForm::kLF2;
  NnPccModel global_model(dim, nn_options);
  std::vector<size_t> all_train(train_dataset.size());
  for (size_t i = 0; i < all_train.size(); ++i) all_train[i] = i;
  bench::Unwrap(global_model.Train(train_dataset.job_features,
                                   make_supervision(train_dataset, all_train)),
                "global train");

  // ---- Fine-grained: one model per template with enough history. ---------
  std::map<int, std::vector<size_t>> train_by_template;
  for (size_t i = 0; i < train_dataset.size(); ++i) {
    int tmpl = train_dataset.template_ids[i];
    if (tmpl >= 0) train_by_template[tmpl].push_back(i);
  }
  constexpr size_t kMinHistory = 8;
  std::map<int, NnPccModel> fine_models;
  for (const auto& [tmpl, idx] : train_by_template) {
    if (idx.size() < kMinHistory) continue;
    NnOptions fine_options = nn_options;
    fine_options.epochs = 300;  // Tiny per-template sets train fast.
    auto [it, inserted] = fine_models.try_emplace(tmpl, dim, fine_options);
    bench::Unwrap(it->second.Train(gather_features(train_dataset, idx),
                                   make_supervision(train_dataset, idx)),
                  "fine train");
  }

  // ---- Evaluate on recurring-covered, recurring-uncovered, ad-hoc. -------
  std::vector<double> global_err_covered;
  std::vector<double> fine_err_covered;
  std::vector<double> global_err_uncovered;
  size_t covered = 0;
  size_t uncovered = 0;
  for (size_t i = 0; i < test_dataset.size(); ++i) {
    std::vector<double> row(
        test_dataset.job_features.begin() + static_cast<long>(i * dim),
        test_dataset.job_features.begin() + static_cast<long>((i + 1) * dim));
    double tokens = test_dataset.observed_tokens[i];
    double truth = test_dataset.observed_runtime[i];
    auto global_pcc = bench::Unwrap(global_model.Predict(row), "predict");
    double global_error =
        std::fabs(global_pcc.EvalRunTime(tokens) - truth) / truth * 100.0;
    int tmpl = test_dataset.template_ids[i];
    auto it = tmpl >= 0 ? fine_models.find(tmpl) : fine_models.end();
    if (it != fine_models.end()) {
      ++covered;
      auto fine_pcc = bench::Unwrap(it->second.Predict(row), "predict");
      fine_err_covered.push_back(
          std::fabs(fine_pcc.EvalRunTime(tokens) - truth) / truth * 100.0);
      global_err_covered.push_back(global_error);
    } else {
      ++uncovered;
      global_err_uncovered.push_back(global_error);
    }
  }

  PrintBanner(std::cout, "Ablation: global model vs fine-grained per-template models");
  std::printf("fine-grained models trained: %zu (templates with >= %zu "
              "historical runs)\n\n",
              fine_models.size(), kMinHistory);
  TextTable table({"Test jobs", "Count", "Global Median AE",
                   "Fine-grained Median AE"});
  table.AddRow({"Recurring, covered template",
                Cell(static_cast<int64_t>(covered)),
                Cell(Median(global_err_covered), 0) + "%",
                Cell(Median(fine_err_covered), 0) + "%"});
  table.AddRow({"Ad-hoc or uncovered template",
                Cell(static_cast<int64_t>(uncovered)),
                Cell(Median(global_err_uncovered), 0) + "%",
                "no prediction"});
  std::cout << table.ToString();
  std::cout << "\nExpected shape: the global model covers every job while "
               "fine-grained models leave ad-hoc and sparse templates "
               "unserved; at this history size, fragmenting the training "
               "data per template also hurts the fine-grained models' own "
               "accuracy — both effects argue for the paper's global-model "
               "choice (§4.2).\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
