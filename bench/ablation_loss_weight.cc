// Ablation: sweep of the LF2 runtime-penalty weight (paper §4.5 treats the
// component weights as tuned hyper-parameters). Shows the trade-off between
// curve-parameter accuracy and run-time accuracy as the weight grows.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "tasq/evaluation.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);
  auto test = bench::ObserveJobs(generator, sizes.train_jobs, sizes.test_jobs,
                                 22);
  Dataset test_dataset =
      bench::Unwrap(DatasetBuilder().Build(test), "test dataset");

  PrintBanner(std::cout, "Ablation: LF2 runtime-penalty weight sweep (NN model)");
  TextTable table({"runtime weight", "MAE (Curve Params)",
                   "Median AE (Run Time)"});
  for (double weight : {0.0, 0.25, 0.75, 1.5, 3.0, 6.0}) {
    TasqOptions options = bench::BenchTasqOptions(LossForm::kLF2);
    options.train_gnn = false;
    options.nn.override_weights = true;
    options.nn.weights = LossWeights{weight, 0.0};
    Tasq pipeline(options);
    Status trained = pipeline.Train(train);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      return 1;
    }
    auto metrics = bench::Unwrap(
        EvaluateModel(pipeline, ModelKind::kNn, test_dataset), "evaluate");
    table.AddRow({Cell(weight, 2), Cell(metrics.mae_curve_params, 3),
                  Cell(metrics.median_ae_runtime_percent, 0) + "%"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: weight 0 (= LF1) has the worst run-time "
               "error; moderate weights cut it sharply at little cost in "
               "parameter MAE (the paper tuned to this regime); very large "
               "weights start trading parameter accuracy away.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
