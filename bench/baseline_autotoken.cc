// Baseline comparison (paper §6.2): AutoToken's per-group peak prediction
// vs TASQ's PCC-based recommendations, on coverage, token savings, and
// realized slowdown over a test workload.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "baselines/autotoken.h"
#include "bench/bench_util.h"
#include "simcluster/cluster_simulator.h"
#include "tasq/tasq.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  std::printf("training on %lld observed jobs...\n",
              static_cast<long long>(sizes.train_jobs));
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);

  AutoToken autotoken;
  if (!autotoken.Train(train).ok()) return 1;
  TasqOptions options = bench::BenchTasqOptions(LossForm::kLF2);
  options.train_gnn = false;
  Tasq tasq(options);
  if (!tasq.Train(train).ok()) return 1;

  auto test_jobs = generator.Generate(sizes.train_jobs, sizes.test_jobs);
  ClusterSimulator simulator;
  NoiseModel noise;
  noise.enabled = true;

  struct PolicyStats {
    size_t covered = 0;
    double requested = 0.0;
    double allocated = 0.0;
    double baseline_runtime = 0.0;
    double runtime = 0.0;
  };
  PolicyStats autotoken_stats;
  PolicyStats tasq_stats;
  PolicyStats tasq_bounded_stats;

  auto run_at = [&](const Job& job, double tokens) {
    RunConfig run_config{std::max(1.0, tokens), noise,
                         static_cast<uint64_t>(job.id)};
    auto run = simulator.Run(job.plan, run_config);
    return run.ok() ? run.value().runtime_seconds : 0.0;
  };

  for (const Job& job : test_jobs) {
    double base_runtime = run_at(job, job.default_tokens);
    // AutoToken: allocate the predicted peak; uncovered jobs keep their
    // default request (no prediction available).
    Result<double> peak = autotoken.PredictPeakTokens(job);
    if (peak.ok()) {
      double tokens = std::round(peak.value());
      ++autotoken_stats.covered;
      autotoken_stats.requested += job.default_tokens;
      autotoken_stats.allocated += tokens;
      autotoken_stats.baseline_runtime += base_runtime;
      autotoken_stats.runtime += run_at(job, tokens);
    }
    // TASQ: covers every job, with and without a 10% slowdown SLO.
    auto aggressive = tasq.RecommendTokens(job.graph, ModelKind::kNn,
                                           job.default_tokens, 1.0);
    auto bounded = tasq.RecommendTokens(job.graph, ModelKind::kNn,
                                        job.default_tokens, 1.0, 0.10);
    if (aggressive.ok() && bounded.ok()) {
      ++tasq_stats.covered;
      tasq_stats.requested += job.default_tokens;
      tasq_stats.allocated += aggressive.value().tokens;
      tasq_stats.baseline_runtime += base_runtime;
      tasq_stats.runtime += run_at(job, aggressive.value().tokens);
      ++tasq_bounded_stats.covered;
      tasq_bounded_stats.requested += job.default_tokens;
      tasq_bounded_stats.allocated += bounded.value().tokens;
      tasq_bounded_stats.baseline_runtime += base_runtime;
      tasq_bounded_stats.runtime += run_at(job, bounded.value().tokens);
    }
  }

  PrintBanner(std::cout, 
      "Baseline (paper §6.2): AutoToken peak prediction vs TASQ "
      "recommendations");
  TextTable table({"Policy", "Coverage", "Token savings vs request",
                   "Realized slowdown"});
  auto add_row = [&](const char* name, const PolicyStats& stats) {
    table.AddRow(
        {name,
         Cell(100.0 * static_cast<double>(stats.covered) /
                  static_cast<double>(test_jobs.size()),
              0) +
             "%",
         Cell(100.0 * (1.0 - stats.allocated / stats.requested), 0) + "%",
         Cell(100.0 * (stats.runtime / stats.baseline_runtime - 1.0), 1) +
             "%"});
  };
  add_row("AutoToken (peak, recurring only)", autotoken_stats);
  add_row("TASQ NN (1%/token)", tasq_stats);
  add_row("TASQ NN (1%/token, <=10% SLO)", tasq_bounded_stats);
  std::cout << table.ToString();
  std::cout << "\nExpected shape: AutoToken is safe (peak allocation, ~no "
               "slowdown) but only covers recurring jobs and leaves the "
               "sub-peak savings of Figure 2 untouched; TASQ covers every "
               "job and reclaims more tokens at a policy-controlled "
               "slowdown.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
