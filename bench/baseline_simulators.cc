// Baseline comparison (paper §6.3): AREPAS vs the Jockey and Amdahl's-law
// stage-level simulators. Accuracy is measured against flighted ground
// truth; coverage shows the baselines' structural limitation (they need
// prior runs of the same job, while AREPAS needs only the one observed
// skyline — and the TASQ models need only compile-time features).

#include <cstdio>
#include <iostream>
#include <map>

#include "baselines/stage_simulators.h"
#include "bench/bench_util.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  WorkloadConfig config;
  config.seed = 7;
  config.recurring_fraction = 0.6;
  WorkloadGenerator generator(config);

  // History: observed past runs, recorded into the stage-history store the
  // baselines require.
  auto history_jobs = generator.Generate(0, sizes.train_jobs);
  StageHistory history;
  std::map<int, int> runs_per_template;
  for (const Job& job : history_jobs) {
    if (job.template_id >= 0 && history.Record(job).ok()) {
      ++runs_per_template[job.template_id];
    }
  }

  // Test jobs: flighted at several token counts for ground truth; each has
  // one observed skyline (for AREPAS).
  auto test_jobs = generator.Generate(sizes.train_jobs, sizes.flight_jobs);
  FlightConfig flight_config;
  flight_config.seed = 777;
  FlightHarness harness(flight_config);
  auto flighted = harness.FlightJobs(test_jobs);

  Arepas arepas;
  size_t total = test_jobs.size();
  size_t covered_by_history = 0;
  std::vector<double> arepas_pred;
  std::vector<double> jockey_pred;
  std::vector<double> amdahl_pred;
  std::vector<double> truth_all;     // Paired with arepas_pred.
  std::vector<double> truth_history;  // Paired with jockey/amdahl.
  for (size_t j = 0; j < flighted.size(); ++j) {
    const FlightedJob& fj = flighted[j];
    if (!fj.NonAnomalous() || fj.flights.size() < 2) continue;
    const Job& job = test_jobs[j];
    const FlightRecord& reference = fj.flights.front();
    Result<JobHistoryStats> stats = history.Lookup(job);
    bool has_history = stats.ok() && stats.value().runs_observed >= 2 &&
                       stats.value().stages.size() == job.plan.stages.size();
    if (has_history) ++covered_by_history;
    for (size_t f = 1; f < fj.flights.size(); ++f) {
      const FlightRecord& flight = fj.flights[f];
      Result<double> a =
          arepas.SimulateRunTimeSeconds(reference.skyline, flight.tokens);
      if (a.ok()) {
        arepas_pred.push_back(a.value());
        truth_all.push_back(flight.runtime_seconds);
      }
      if (has_history) {
        Result<double> jockey =
            JockeySimulateRunTime(stats.value(), flight.tokens);
        Result<double> amdahl =
            AmdahlSimulateRunTime(stats.value(), flight.tokens);
        if (jockey.ok() && amdahl.ok()) {
          jockey_pred.push_back(jockey.value());
          amdahl_pred.push_back(amdahl.value());
          truth_history.push_back(flight.runtime_seconds);
        }
      }
    }
  }

  PrintBanner(std::cout, "Baselines (paper §6.3): AREPAS vs Jockey vs Amdahl simulators");
  TextTable table({"Simulator", "Input needed", "Coverage of test jobs",
                   "MedianAPE", "MeanAPE"});
  table.AddRow({"AREPAS", "one observed skyline of this job",
                Cell(100.0 * total / total, 0) + "%",
                Cell(MedianAbsolutePercentError(arepas_pred, truth_all), 0) +
                    "%",
                Cell(MeanAbsolutePercentError(arepas_pred, truth_all), 0) +
                    "%"});
  std::string coverage =
      Cell(100.0 * static_cast<double>(covered_by_history) /
               static_cast<double>(total),
           0) +
      "%";
  table.AddRow(
      {"Jockey (stage stats)", ">= 2 prior runs of this job", coverage,
       Cell(MedianAbsolutePercentError(jockey_pred, truth_history), 0) + "%",
       Cell(MeanAbsolutePercentError(jockey_pred, truth_history), 0) + "%"});
  table.AddRow(
      {"Amdahl (stage S+P/N)", ">= 2 prior runs of this job", coverage,
       Cell(MedianAbsolutePercentError(amdahl_pred, truth_history), 0) + "%",
       Cell(MeanAbsolutePercentError(amdahl_pred, truth_history), 0) + "%"});
  std::cout << table.ToString();
  std::cout << "\nExpected shape: all three simulate well for jobs they can "
               "serve, but the stage-level baselines cannot cover ad-hoc "
               "jobs or first runs (the paper's critique: slow online "
               "run times and inability to extend to fresh jobs), while "
               "AREPAS serves every observed job from a single skyline.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
