#ifndef TASQ_BENCH_BENCH_JSON_MAIN_H_
#define TASQ_BENCH_BENCH_JSON_MAIN_H_

// Shared custom main for the google-benchmark microbench binaries
// (ROADMAP item 5): run the registered benchmarks exactly as
// BENCHMARK_MAIN() would — console output, --benchmark_* flags — while
// also capturing each benchmark's ns/op (and items/s where reported)
// and writing them as one flat BenchJson object, so microbench_core and
// microbench_fmath feed the BENCH_*.json perf trajectory like
// microbench_serving does, and scripts/bench_diff.py can diff runs
// mechanically.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace tasq {

/// JSON keys must stay flat and greppable: "BM_FitPowerLaw/256" becomes
/// "BM_FitPowerLaw_256_ns_per_op".
inline std::string BenchKeySanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9');
    out += word ? c : '_';
  }
  return out;
}

/// Console reporter that additionally records (name, ns/op, items/s) for
/// every iteration report it prints.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;  // 0 when the bench reports none.
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Captured captured;
      captured.name = run.benchmark_name();
      if (run.iterations > 0) {
        captured.ns_per_op = run.real_accumulated_time /
                             static_cast<double>(run.iterations) * 1e9;
      }
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        captured.items_per_second = items->second.value;
      }
      captured_.push_back(captured);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Captured>& captured() const { return captured_; }

 private:
  std::vector<Captured> captured_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: run everything, then
/// write the captured measurements to `json_path` (repo-root-relative
/// when invoked from the repo root, matching the other BENCH emitters).
inline int RunBenchmarksAndWriteJson(int argc, char** argv,
                                     const std::string& source,
                                     const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  bench::BenchJson json;
  json.SetString("bench", source);
  for (const JsonCaptureReporter::Captured& captured : reporter.captured()) {
    std::string key = BenchKeySanitize(captured.name);
    json.Set(key + "_ns_per_op", captured.ns_per_op);
    if (captured.items_per_second > 0.0) {
      json.Set(key + "_items_per_s", captured.items_per_second);
    }
  }
  if (!json.WriteFile(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace tasq

#endif  // TASQ_BENCH_BENCH_JSON_MAIN_H_
