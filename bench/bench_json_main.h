#ifndef TASQ_BENCH_BENCH_JSON_MAIN_H_
#define TASQ_BENCH_BENCH_JSON_MAIN_H_

// Shared custom main for the google-benchmark microbench binaries
// (ROADMAP item 5): run the registered benchmarks exactly as
// BENCHMARK_MAIN() would — console output, --benchmark_* flags — while
// also capturing each benchmark's ns/op (and items/s where reported)
// and writing them as one flat BenchJson object, so microbench_core and
// microbench_fmath feed the BENCH_*.json perf trajectory like
// microbench_serving does, and scripts/bench_diff.py can diff runs
// mechanically.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

namespace tasq {

/// JSON keys must stay flat and greppable: "BM_FitPowerLaw/256" becomes
/// "BM_FitPowerLaw_256_ns_per_op".
inline std::string BenchKeySanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9');
    out += word ? c : '_';
  }
  return out;
}

/// Console reporter that additionally records (name, ns/op, items/s) for
/// every iteration report it prints.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;  // 0 when the bench reports none.
    /// User counters other than items_per_second, in report order. A
    /// bench that sets a counter named like a flat trajectory key (e.g.
    /// "nn_batch_rows_per_s") gets it written to the JSON verbatim.
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Captured captured;
      captured.name = run.benchmark_name();
      if (run.iterations > 0) {
        captured.ns_per_op = run.real_accumulated_time /
                             static_cast<double>(run.iterations) * 1e9;
      }
      for (const auto& [name, counter] : run.counters) {
        if (name == "items_per_second") {
          captured.items_per_second = counter.value;
        } else {
          captured.counters.emplace_back(name, counter.value);
        }
      }
      captured_.push_back(captured);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Captured>& captured() const { return captured_; }

 private:
  std::vector<Captured> captured_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: run everything, then
/// write the captured measurements to `json_path` (repo-root-relative
/// when invoked from the repo root, matching the other BENCH emitters).
inline int RunBenchmarksAndWriteJson(int argc, char** argv,
                                     const std::string& source,
                                     const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  bench::BenchJson json;
  json.SetString("bench", source);
  for (const JsonCaptureReporter::Captured& captured : reporter.captured()) {
    std::string key = BenchKeySanitize(captured.name);
    json.Set(key + "_ns_per_op", captured.ns_per_op);
    if (captured.items_per_second > 0.0) {
      json.Set(key + "_items_per_s", captured.items_per_second);
    }
    // Named counters land under their own (already flat) key, so a bench
    // can pin a headline metric name the perf trajectory greps for —
    // e.g. "nn_batch_rows_per_s" — instead of the BM_-derived key. A
    // name reused across benchmarks/args keeps the last value.
    for (const auto& [counter_key, value] : captured.counters) {
      json.Set(BenchKeySanitize(counter_key), value);
    }
  }
  if (!json.WriteFile(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace tasq

#endif  // TASQ_BENCH_BENCH_JSON_MAIN_H_
