#ifndef TASQ_BENCH_BENCH_UTIL_H_
#define TASQ_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "arepas/arepas.h"
#include "common/stats.h"
#include "common/table.h"
#include "selection/flighting.h"
#include "tasq/dataset.h"
#include "tasq/tasq.h"
#include "workload/generator.h"

namespace tasq::bench {

/// Experiment sizes shared by the bench binaries. Every size scales with
/// the TASQ_SCALE environment variable (default 1.0), so
/// `TASQ_SCALE=10 ./table04_06_models` runs a 10x larger experiment.
struct BenchSizes {
  int64_t train_jobs;
  int64_t test_jobs;
  int64_t survey_jobs;   ///< For workload-level surveys (Fig 2, Fig 11).
  int64_t flight_jobs;   ///< Jobs flighted at multiple token counts.

  static BenchSizes FromEnv() {
    double scale = ScaleFromEnv();
    auto scaled = [scale](double base) {
      return static_cast<int64_t>(base * scale);
    };
    BenchSizes sizes;
    sizes.train_jobs = std::max<int64_t>(200, scaled(1200));
    sizes.test_jobs = std::max<int64_t>(60, scaled(300));
    sizes.survey_jobs = std::max<int64_t>(100, scaled(800));
    sizes.flight_jobs = std::max<int64_t>(30, scaled(120));
    return sizes;
  }
};

/// The canonical bench workload: fixed seed so every binary sees the same
/// jobs.
inline WorkloadGenerator MakeGenerator(uint64_t seed = 7) {
  WorkloadConfig config;
  config.seed = seed;
  return WorkloadGenerator(config);
}

/// Observes `count` jobs starting at `first_id` with production-like noise.
inline std::vector<ObservedJob> ObserveJobs(const WorkloadGenerator& generator,
                                            int64_t first_id, int64_t count,
                                            uint64_t seed, bool noisy = true) {
  NoiseModel noise;
  noise.enabled = noisy;
  auto observed =
      ObserveWorkload(generator.Generate(first_id, count), noise, seed);
  if (!observed.ok()) {
    std::fprintf(stderr, "observation failed: %s\n",
                 observed.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(observed.value());
}

/// Aborts the bench with a message when a Result is an error.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result.value());
}

/// AREPAS validation data shared by Figure 12/13 and Table 3: flight jobs
/// at several token counts, then compare AREPAS's prediction (simulated
/// from the largest-allocation flight's skyline) against each smaller
/// flight's measured run time.
struct ArepasValidation {
  std::vector<FlightedJob> flighted;
  std::vector<const FlightedJob*> non_anomalous;
  /// Jobs among non_anomalous whose executions all conserve area within
  /// 30% (zero outliers) — the paper's "fully-matched" subset.
  std::vector<const FlightedJob*> fully_matched;
  /// Per-execution percent errors, one entry per (job, lower flight).
  std::vector<double> errors_non_anomalous;
  std::vector<double> errors_fully_matched;
  /// Per-job median percent errors.
  std::vector<double> per_job_error_non_anomalous;
  std::vector<double> per_job_error_fully_matched;
};

inline ArepasValidation RunArepasValidation(int64_t first_id, int64_t count,
                                            uint64_t seed) {
  auto generator = MakeGenerator();
  FlightConfig config;
  config.seed = seed;
  FlightHarness harness(config);
  ArepasValidation validation;
  validation.flighted = harness.FlightJobs(generator.Generate(first_id, count));

  Arepas arepas;
  for (const FlightedJob& job : validation.flighted) {
    if (!job.NonAnomalous() || job.flights.size() < 2) continue;
    validation.non_anomalous.push_back(&job);
    std::vector<Skyline> skylines;
    for (const FlightRecord& record : job.flights) {
      skylines.push_back(record.skyline);
    }
    bool fully_matched = CountAreaOutliers(skylines, 30.0) == 0;
    if (fully_matched) validation.fully_matched.push_back(&job);

    const FlightRecord& reference = job.flights.front();
    std::vector<double> job_errors;
    for (size_t f = 1; f < job.flights.size(); ++f) {
      const FlightRecord& flight = job.flights[f];
      Result<double> predicted =
          arepas.SimulateRunTimeSeconds(reference.skyline, flight.tokens);
      if (!predicted.ok() || flight.runtime_seconds <= 0.0) continue;
      double error = std::fabs(predicted.value() - flight.runtime_seconds) /
                     flight.runtime_seconds * 100.0;
      job_errors.push_back(error);
      validation.errors_non_anomalous.push_back(error);
      if (fully_matched) validation.errors_fully_matched.push_back(error);
    }
    if (!job_errors.empty()) {
      double median = Median(job_errors);
      validation.per_job_error_non_anomalous.push_back(median);
      if (fully_matched) {
        validation.per_job_error_fully_matched.push_back(median);
      }
    }
  }
  return validation;
}

/// Minimal ordered JSON-object emitter for the BENCH_*.json perf
/// trajectory (ROADMAP item 5): each bench binary records its headline
/// numbers as one flat JSON object next to its human-readable stdout, so
/// successive runs (and CI artifacts) can be diffed mechanically.
/// Insertion order is preserved; keys are written exactly once (a repeated
/// Set overwrites). Values are numbers or strings — nesting is
/// deliberately unsupported, flat keys like "warm_req_per_s_t8" keep the
/// trajectory trivially greppable.
class BenchJson {
 public:
  void Set(const std::string& key, double value) {
    char buffer[64];
    // %.17g round-trips every double exactly.
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    Assign(key, buffer);
  }
  void Set(const std::string& key, uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
    Assign(key, buffer);
  }
  void Set(const std::string& key, int value) {
    Set(key, static_cast<uint64_t>(value < 0 ? 0 : value));
  }
  void SetString(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    Assign(key, quoted);
  }

  std::string ToString() const {
    std::string out = "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out += "  \"" + entries_[i].first + "\": " + entries_[i].second;
      if (i + 1 < entries_.size()) out += ",";
      out += "\n";
    }
    out += "}\n";
    return out;
  }

  /// Writes the object to `path`; returns false (with a stderr note) on
  /// I/O failure so benches can keep printing rather than die.
  bool WriteFile(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string text = ToString();
    size_t written = std::fwrite(text.data(), 1, text.size(), file);
    std::fclose(file);
    return written == text.size();
  }

 private:
  void Assign(const std::string& key, const std::string& rendered) {
    for (auto& entry : entries_) {
      if (entry.first == key) {
        entry.second = rendered;
        return;
      }
    }
    entries_.emplace_back(key, rendered);
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Default pipeline options tuned for bench-scale workloads.
inline TasqOptions BenchTasqOptions(LossForm loss_form = LossForm::kLF2) {
  TasqOptions options;
  options.nn.epochs = 150;
  options.nn.learning_rate = 2e-3;
  options.nn.loss_form = loss_form;
  options.gnn.epochs = 35;
  options.gnn.learning_rate = 2e-3;
  options.gnn.loss_form = loss_form;
  options.xgb.gbdt.num_trees = 120;
  return options;
}

}  // namespace tasq::bench

#endif  // TASQ_BENCH_BENCH_UTIL_H_
