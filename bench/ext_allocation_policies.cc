// Extension: Figure 1's over-allocation comparison lifted to the workload
// level — total wasted token-seconds across a whole workload under the
// Default / Peak / Adaptive-Peak policies (prior work's ladder), with the
// TASQ-recommended request shown alongside.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "skyline/skyline.h"
#include "tasq/tasq.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);
  TasqOptions options = bench::BenchTasqOptions(LossForm::kLF2);
  options.train_gnn = false;
  Tasq pipeline(options);
  if (!pipeline.Train(train).ok()) return 1;

  auto observed =
      bench::ObserveJobs(generator, sizes.train_jobs, sizes.survey_jobs, 44);
  double used = 0.0;
  double default_alloc = 0.0;
  double peak_alloc = 0.0;
  double adaptive_alloc = 0.0;
  double tasq_slo_alloc = 0.0;
  double tasq_aggressive_alloc = 0.0;
  ClusterSimulator simulator;
  NoiseModel noise;
  noise.enabled = true;
  double tasq_slo_runtime = 0.0;
  double tasq_aggressive_runtime = 0.0;
  double default_runtime = 0.0;
  for (const ObservedJob& entry : observed) {
    const Skyline& sky = entry.skyline;
    used += sky.Area();
    double duration = static_cast<double>(sky.duration_seconds());
    default_alloc += std::max(entry.observed_tokens, sky.Peak()) * duration;
    peak_alloc += sky.Peak() * duration;
    auto adaptive = AllocationSeries(sky, AllocationPolicy::kAdaptivePeak);
    for (double a : adaptive) adaptive_alloc += a;
    default_runtime += entry.runtime_seconds;
    // TASQ: re-run the job at the recommended (sub-peak) request; its
    // reservation is request x its own (possibly longer) duration.
    auto run_policy = [&](double slo, double& alloc_acc,
                          double& runtime_acc) -> Status {
      auto recommendation = pipeline.RecommendTokens(
          entry.job.graph, ModelKind::kNn, entry.observed_tokens, 1.0, slo);
      if (!recommendation.ok()) return recommendation.status();
      RunConfig config{recommendation.value().tokens, noise,
                       static_cast<uint64_t>(entry.job.id) ^ 0x5EEDULL};
      auto run = simulator.Run(entry.job.plan, config);
      if (!run.ok()) return run.status();
      alloc_acc += recommendation.value().tokens *
                   std::ceil(run.value().runtime_seconds);
      runtime_acc += run.value().runtime_seconds;
      return Status::Ok();
    };
    if (!run_policy(0.10, tasq_slo_alloc, tasq_slo_runtime).ok()) return 1;
    if (!run_policy(-1.0, tasq_aggressive_alloc, tasq_aggressive_runtime)
             .ok()) {
      return 1;
    }
  }

  PrintBanner(std::cout, 
      "Extension: workload-level over-allocation by policy (Figure 1 at "
      "scale)");
  TextTable table({"Policy", "Reserved tok-s", "Used tok-s", "Waste",
                   "Needs"});
  auto add = [&](const char* name, double reserved, double used_ts,
                 const char* needs) {
    table.AddRow({name, Cell(reserved, 0), Cell(used_ts, 0),
                  Cell(100.0 * (1.0 - used_ts / reserved), 0) + "%", needs});
  };
  add("Default Allocation", default_alloc, used, "nothing (status quo)");
  add("Peak Allocation (AutoToken-style)", peak_alloc, used,
      "peak prediction");
  add("Adaptive Peak (progressive release)", adaptive_alloc, used,
      "online scheduler integration");
  add("TASQ request (1%/token, <=10% SLO)", tasq_slo_alloc, used,
      "compile-time PCC only");
  add("TASQ request (1%/token, no SLO)", tasq_aggressive_alloc, used,
      "compile-time PCC only");
  std::cout << table.ToString();
  std::printf(
      "\nTASQ workload slowdown vs default: %.1f%% (SLO) / %.1f%% "
      "(aggressive)\n",
      100.0 * (tasq_slo_runtime / default_runtime - 1.0),
      100.0 * (tasq_aggressive_runtime / default_runtime - 1.0));
  std::cout << "Expected shape: Default > Peak > Adaptive waste — the prior-"
               "work ladder of §1, each rung needing deeper integration. "
               "TASQ attacks the *request* with compile-time information "
               "only: a tight SLO already beats the default, and the "
               "aggressive policy approaches or beats peak allocation at a "
               "user-chosen slowdown. (The approaches compose: a TASQ-sized "
               "request can still be peak-predicted or adaptively "
               "released.)\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
