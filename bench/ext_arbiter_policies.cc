// Extension experiment (ROADMAP item 2): multi-tenant arbitration of the
// shared token pool. Replays a bursty multi-tenant submission trace under
// the four arbiter policies (FIFO gang baseline, welfare-maximizing
// water-filling, max-min fair progressive filling, Karma credits) and
// reports utilization, Jain's fairness index across tenants, p95 wait,
// mean latency — and the liar's gain: how much a tenant that inflates its
// requests 3x improves its own mean latency under each policy. Karma
// should bound that gain; welfare-max is deliberately exploitable.

#include <cstdio>
#include <iostream>

#include "arbiter/allocation_arbiter.h"
#include "bench/bench_util.h"
#include "simcluster/cluster_scheduler.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  int64_t num_jobs = std::max<int64_t>(400, sizes.survey_jobs * 5 / 2);
  constexpr int kNumTenants = 8;
  constexpr double kClusterTokens = 600.0;
  constexpr int64_t kLiarTenant = 0;
  constexpr double kInflation = 3.0;

  // Bursty arrivals: tenants submit in bursts of 4-12 jobs landing within
  // a few seconds, separated by lognormal lulls — the regime where
  // arbitration matters (an idle pool needs no policy).
  auto incoming = generator.Generate(40000, num_jobs);
  Rng rng(515151);
  std::vector<Submission> honest;
  double burst_start = 0.0;
  size_t i = 0;
  while (i < incoming.size()) {
    burst_start += rng.LogNormal(std::log(220.0), 0.8);
    int64_t burst = rng.UniformInt(4, 12);
    for (int64_t k = 0; k < burst && i < incoming.size(); ++k, ++i) {
      Submission submission;
      submission.job_id = incoming[i].id;
      submission.tenant_id = static_cast<int64_t>(i % kNumTenants);
      submission.arrival_seconds = burst_start + rng.Uniform(0.0, 5.0);
      submission.requested_tokens = std::min(
          kClusterTokens, std::max(1.0, incoming[i].default_tokens));
      submission.plan = incoming[i].plan;
      honest.push_back(std::move(submission));
    }
  }
  std::vector<Submission> lying = WithInflatedRequests(
      honest, kLiarTenant, kInflation, kClusterTokens);
  PccBeliefs beliefs = BeliefsFromPlans(honest);

  NoiseModel noise;
  noise.enabled = true;
  ClusterScheduler scheduler(SchedulerConfig{kClusterTokens, false, noise, 99});

  PrintBanner(std::cout,
              "Extension: multi-tenant arbiter policies (shared pool)");
  std::printf(
      "pool %.0f tokens, %lld jobs, %d tenants, bursty arrivals;\n"
      "liar run: tenant %lld inflates requests %.0fx (capped at the pool)\n\n",
      kClusterTokens, static_cast<long long>(honest.size()), kNumTenants,
      static_cast<long long>(kLiarTenant), kInflation);

  TextTable table({"Policy", "utilization", "Jain index", "p95 wait (s)",
                   "mean latency (s)", "liar's gain"});
  bench::BenchJson json;
  json.Set("jobs", static_cast<uint64_t>(honest.size()));
  json.Set("tenants", kNumTenants);
  json.Set("pool_tokens", kClusterTokens);
  json.Set("liar_inflation", kInflation);
  for (int p = 0; p < kArbiterPolicyCount; ++p) {
    ArbiterOptions options;
    options.policy = static_cast<ArbiterPolicy>(p);
    // Credits are denominated in over-share token-seconds; size the
    // endowment to a few typical bursts (~60 tokens x ~300 s each) so
    // honest bursting is affordable while persistent inflation is not.
    options.karma_initial_credits = 40000.0;
    const char* slug = ArbiterPolicyName(options.policy);
    auto honest_arbiter = MakeArbiter(options, beliefs);
    auto honest_trace = scheduler.Run(honest, honest_arbiter.get());
    auto lying_arbiter = MakeArbiter(options, beliefs);
    auto lying_trace = scheduler.Run(lying, lying_arbiter.get());
    if (!honest_trace.ok() || !lying_trace.ok()) {
      std::fprintf(stderr, "%s trace failed\n", slug);
      return 1;
    }
    TenantMetrics metrics =
        ComputeTenantMetrics(honest_trace.value(), kClusterTokens);
    TenantMetrics lying_metrics =
        ComputeTenantMetrics(lying_trace.value(), kClusterTokens);
    double gain = LiarsGain(metrics, lying_metrics, kLiarTenant);
    table.AddRow({slug, Cell(metrics.utilization, 3),
                  Cell(metrics.jain_fairness, 3),
                  Cell(metrics.p95_wait_seconds, 0),
                  Cell(metrics.mean_latency_seconds, 0),
                  Cell(100.0 * gain, 1) + "%"});
    json.Set(std::string("util_") + slug, metrics.utilization);
    json.Set(std::string("jain_") + slug, metrics.jain_fairness);
    json.Set(std::string("p95_wait_s_") + slug, metrics.p95_wait_seconds);
    json.Set(std::string("mean_latency_s_") + slug,
             metrics.mean_latency_seconds);
    json.Set(std::string("liar_gain_") + slug, gain);
  }
  std::cout << table.ToString();
  std::cout
      << "\nExpected shape: welfare-max posts the lowest mean latency but "
         "rewards the liar (positive gain); max-min and Karma hold Jain "
         "near 1.0, and Karma prices the liar's burst in credits so its "
         "gain stays near zero — the strategy-proofness argument for "
         "credit-based arbitration.\n";
  json.WriteFile("BENCH_arbiter.json");
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
