// Extension: model freshness under workload drift. The paper (§1, §3.1)
// motivates compile-time models over historical skylines partly because
// workloads drift ("the skyline could change significantly over time due
// to changes in workloads, such as changes in the input sizes"). This
// experiment grows every job's input size day over day and compares a
// stale day-0 model against a model retrained each day.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "tasq/evaluation.h"

namespace tasq {
namespace {

std::vector<ObservedJob> DayWorkload(double input_scale, double level_scale,
                                     int64_t first_id, int64_t count,
                                     uint64_t seed) {
  WorkloadConfig config;
  config.seed = 7;  // Same template structure every day.
  config.global_input_scale = input_scale;
  // Calibration drift: tasks get slower per unit of estimated cost (a
  // cluster/hardware/runtime change the optimizer's estimates do not see)
  // — a *relationship* change between compile-time features and run time,
  // unlike pure input growth.
  config.seconds_per_cost_unit = level_scale;
  WorkloadGenerator generator(config);
  NoiseModel noise;
  noise.enabled = true;
  auto observed = ObserveWorkload(generator.Generate(first_id, count), noise,
                                  seed);
  if (!observed.ok()) {
    std::fprintf(stderr, "observation failed: %s\n",
                 observed.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(observed.value());
}

Tasq TrainOn(const std::vector<ObservedJob>& observed) {
  TasqOptions options = bench::BenchTasqOptions(LossForm::kLF2);
  options.train_gnn = false;
  Tasq pipeline(options);
  Status trained = pipeline.Train(observed);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.ToString().c_str());
    std::exit(1);
  }
  return pipeline;
}

}  // namespace

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  std::printf("training the day-0 model on %lld jobs...\n",
              static_cast<long long>(sizes.train_jobs));
  Tasq stale = TrainOn(DayWorkload(1.0, 1.0, 0, sizes.train_jobs, 21));

  PrintBanner(std::cout, 
      "Extension: stale vs retrained model under workload drift "
      "(input growth + cluster-level slowdown)");
  TextTable table({"day", "input scale", "level scale", "median runtime (s)",
                   "stale day-0 model Median AE", "retrained Median AE"});
  double input_scale = 1.0;
  double level_scale = 1.0;
  for (int day = 0; day <= 4; ++day) {
    auto test = DayWorkload(input_scale, level_scale, 100000 + day * 10000,
                            sizes.test_jobs, 30 + static_cast<uint64_t>(day));
    Dataset test_dataset =
        bench::Unwrap(DatasetBuilder().Build(test), "dataset");
    auto stale_metrics = bench::Unwrap(
        EvaluateModel(stale, ModelKind::kNn, test_dataset), "evaluate");
    // Retrained: same training budget, on that day's (separate) slice.
    Tasq fresh = TrainOn(DayWorkload(input_scale, level_scale,
                                     200000 + day * 10000, sizes.train_jobs,
                                     40 + static_cast<uint64_t>(day)));
    auto fresh_metrics = bench::Unwrap(
        EvaluateModel(fresh, ModelKind::kNn, test_dataset), "evaluate");
    std::vector<double> runtimes = test_dataset.observed_runtime;
    table.AddRow({Cell(static_cast<int64_t>(day)), Cell(input_scale, 2) + "x",
                  Cell(level_scale, 2) + "x", Cell(Median(runtimes), 0),
                  Cell(stale_metrics.median_ae_runtime_percent, 0) + "%",
                  Cell(fresh_metrics.median_ae_runtime_percent, 0) + "%"});
    input_scale *= 1.25;
    level_scale *= 1.30;
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: pure input growth alone is absorbed by "
               "the log-scaled compile-time features, but the cluster-level "
               "slowdown changes the feature-to-runtime *relationship*: the "
               "stale model's error climbs day over day while the retrained "
               "model stays flat — why the paper's pipeline retrains on "
               "rolling telemetry instead of reusing historical skylines "
               "(§1, §3.1).\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
