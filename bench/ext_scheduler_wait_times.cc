// Extension experiment (paper §1's motivation, quantified): replaying a
// congested submission trace on a shared token pool under three request
// policies — the users' defaults, TASQ's recommended allocations, and peak
// allocation — and measuring queueing delay, end-to-end latency, and pool
// pressure.

#include <cstdio>
#include <functional>
#include <iostream>

#include "bench/bench_util.h"
#include "simcluster/cluster_scheduler.h"
#include "tasq/tasq.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  std::printf("training pipeline on %lld jobs...\n",
              static_cast<long long>(sizes.train_jobs));
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);
  TasqOptions options = bench::BenchTasqOptions(LossForm::kLF2);
  options.train_gnn = false;
  Tasq pipeline(options);
  if (!pipeline.Train(train).ok()) return 1;

  // A congested arrival trace: mean inter-arrival tuned so default
  // requests keep the pool saturated.
  int64_t num_jobs = std::max<int64_t>(60, sizes.test_jobs);
  auto incoming = generator.Generate(30000, num_jobs);
  double cluster_tokens = 600.0;
  Rng rng(4242);
  std::vector<double> arrivals;
  double at = 0.0;
  for (int64_t i = 0; i < num_jobs; ++i) {
    at += rng.LogNormal(std::log(8.0), 0.8);
    arrivals.push_back(at);
  }

  auto build_trace = [&](auto request_of) {
    std::vector<Submission> submissions;
    for (size_t i = 0; i < incoming.size(); ++i) {
      Submission submission;
      submission.job_id = incoming[i].id;
      submission.arrival_seconds = arrivals[i];
      submission.requested_tokens =
          std::min(cluster_tokens, std::max(1.0, request_of(incoming[i])));
      submission.plan = incoming[i].plan;
      submissions.push_back(std::move(submission));
    }
    return submissions;
  };

  NoiseModel noise;
  noise.enabled = true;
  ClusterScheduler scheduler(SchedulerConfig{cluster_tokens, false, noise, 99});
  ClusterScheduler adaptive_scheduler(
      SchedulerConfig{cluster_tokens, true, noise, 99});

  PrintBanner(std::cout, 
      "Extension: cluster wait times under request policies (shared pool)");
  std::printf("pool %.0f tokens, %lld jobs, FIFO gang admission\n\n",
              cluster_tokens, static_cast<long long>(num_jobs));
  TextTable table({"Request policy", "mean wait (s)", "p95 wait (s)",
                   "mean runtime (s)", "mean latency (s)",
                   "pool reserved"});
  struct Policy {
    const char* name;
    std::function<double(const Job&)> request;
    bool adaptive = false;
  };
  std::vector<Policy> policies;
  policies.push_back({"User default (over-provisioned)",
                      [](const Job& job) { return job.default_tokens; }});
  policies.push_back({"User default + adaptive release ([9]-style)",
                      [](const Job& job) { return job.default_tokens; },
                      /*adaptive=*/true});
  policies.push_back(
      {"Peak allocation", [](const Job& job) {
         return static_cast<double>(job.plan.MaxStageTasks());
       }});
  policies.push_back(
      {"TASQ recommendation (1%/token)", [&](const Job& job) {
         auto rec = pipeline.RecommendTokens(job.graph, ModelKind::kNn,
                                             job.default_tokens, 1.0);
         return rec.ok() ? rec.value().tokens : job.default_tokens;
       }});
  policies.push_back(
      {"TASQ recommendation (3%/token)", [&](const Job& job) {
         auto rec = pipeline.RecommendTokens(job.graph, ModelKind::kNn,
                                             job.default_tokens, 3.0);
         return rec.ok() ? rec.value().tokens : job.default_tokens;
       }});
  for (const Policy& policy : policies) {
    auto trace = (policy.adaptive ? adaptive_scheduler : scheduler)
                     .Run(build_trace(policy.request));
    if (!trace.ok()) {
      std::fprintf(stderr, "trace failed: %s\n",
                   trace.status().ToString().c_str());
      return 1;
    }
    TraceSummary summary = SummarizeTrace(trace.value(), cluster_tokens);
    double mean_latency = 0.0;
    for (const ScheduledJob& job : trace.value()) {
      mean_latency += (job.finish_seconds - job.arrival_seconds) /
                      static_cast<double>(trace.value().size());
    }
    table.AddRow({policy.name, Cell(summary.mean_wait_seconds, 0),
                  Cell(summary.p95_wait_seconds, 0),
                  Cell(summary.mean_runtime_seconds, 0),
                  Cell(mean_latency, 0),
                  // Reservation accounting assumes full-request holding, so
                  // it is not meaningful for the adaptive-release policy.
                  policy.adaptive
                      ? std::string("n/a (varies)")
                      : Cell(100.0 * summary.mean_reserved_fraction, 0) +
                            "%"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: TASQ's sub-peak recommendations trade a "
               "modest runtime increase for sharply lower queueing delay "
               "and end-to-end latency than default or peak requests — the "
               "paper's motivation that \"utilizing fewer tokens reduces "
               "job wait time and improves overall resource "
               "availability\".\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
