// Extension: robustness of the headline Table-5 comparison across workload
// seeds. A reproduction's conclusions should not hinge on one random
// workload; this runs the LF2 model comparison on three independently
// seeded workloads and reports the spread.

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "tasq/evaluation.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  const uint64_t seeds[] = {7, 1001, 20260704};
  struct Row {
    std::vector<double> pattern;
    std::vector<double> mae;
    std::vector<double> runtime;
  };
  std::map<ModelKind, Row> rows;

  for (uint64_t seed : seeds) {
    std::printf("workload seed %llu: training on %lld jobs...\n",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(sizes.train_jobs));
    WorkloadConfig config;
    config.seed = seed;
    WorkloadGenerator generator(config);
    NoiseModel noise;
    noise.enabled = true;
    auto train = bench::Unwrap(
        ObserveWorkload(generator.Generate(0, sizes.train_jobs), noise, seed),
        "observe");
    auto test = bench::Unwrap(
        ObserveWorkload(
            generator.Generate(sizes.train_jobs, sizes.test_jobs), noise,
            seed ^ 1),
        "observe");
    Dataset test_dataset =
        bench::Unwrap(DatasetBuilder().Build(test), "dataset");
    Tasq pipeline(bench::BenchTasqOptions(LossForm::kLF2));
    Status trained = pipeline.Train(train);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      return 1;
    }
    for (ModelKind kind : {ModelKind::kXgboostSs, ModelKind::kXgboostPl,
                           ModelKind::kNn, ModelKind::kGnn}) {
      auto metrics = bench::Unwrap(EvaluateModel(pipeline, kind, test_dataset),
                                   "evaluate");
      rows[kind].pattern.push_back(metrics.pattern_nonincrease_percent);
      if (metrics.has_curve_params()) {
        rows[kind].mae.push_back(metrics.mae_curve_params);
      }
      rows[kind].runtime.push_back(metrics.median_ae_runtime_percent);
    }
  }

  PrintBanner(std::cout, 
      "Extension: Table-5 (LF2) metrics across three workload seeds "
      "(mean +/- std)");
  TextTable table({"Model", "Pattern", "MAE (Curve Params)",
                   "Median AE (Run Time)"});
  auto spread = [](const std::vector<double>& values, int decimals) {
    if (values.empty()) return std::string("NA");
    return Cell(Mean(values), decimals) + " +/- " +
           Cell(StdDev(values), decimals);
  };
  for (ModelKind kind : {ModelKind::kXgboostSs, ModelKind::kXgboostPl,
                         ModelKind::kNn, ModelKind::kGnn}) {
    const Row& row = rows[kind];
    table.AddRow({ModelKindName(kind), spread(row.pattern, 0) + "%",
                  spread(row.mae, 3), spread(row.runtime, 0) + "%"});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: the orderings reported in EXPERIMENTS.md "
               "(XGBoost best point error, NN/GNN 100% monotone with lower "
               "parameter MAE) hold across seeds, with spreads small "
               "relative to the gaps.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
