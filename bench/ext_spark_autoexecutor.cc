// Extension experiment (paper §2.3): the AutoExecutor adaptation for Spark
// SQL. Trains the TASQ recipe with executors as the resource unit and
// evaluates executor-PCC accuracy and executor savings against ground-truth
// executor sweeps.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "spark/autoexecutor.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  AutoExecutorOptions options;
  options.nn.epochs = 120;
  options.nn.learning_rate = 2e-3;
  std::printf("training AutoExecutor on %lld Spark-like queries "
              "(%d cores/executor)...\n",
              static_cast<long long>(sizes.train_jobs),
              options.platform.cores_per_executor);
  AutoExecutor auto_executor(options);
  Status trained = auto_executor.Train(
      generator.Generate(0, sizes.train_jobs));
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.ToString().c_str());
    return 1;
  }

  // Accuracy: predicted vs ground-truth runtime across an executor sweep.
  auto test_jobs = generator.Generate(sizes.train_jobs, sizes.test_jobs / 3);
  std::vector<double> fractions = {1.0, 0.6, 0.3};
  std::vector<std::vector<double>> predicted(fractions.size());
  std::vector<std::vector<double>> actual(fractions.size());
  double executors_requested = 0.0;
  double executors_recommended = 0.0;
  double runtime_default = 0.0;
  double runtime_recommended = 0.0;
  for (const Job& job : test_jobs) {
    Result<PowerLawPcc> pcc = auto_executor.PredictPcc(job.graph);
    if (!pcc.ok()) continue;
    int default_executors = std::max(
        1, static_cast<int>(std::ceil(
               job.default_tokens /
               static_cast<double>(options.platform.cores_per_executor))));
    for (size_t f = 0; f < fractions.size(); ++f) {
      int executors = std::max(
          1, static_cast<int>(std::round(default_executors * fractions[f])));
      auto truth = RunOnExecutors(job.plan, executors, options.platform);
      if (!truth.ok()) continue;
      predicted[f].push_back(pcc.value().EvalRunTime(executors));
      actual[f].push_back(truth.value().runtime_seconds);
    }
    // Savings at the 1%-per-executor bar, measured on the simulator.
    Result<int> recommended =
        auto_executor.RecommendExecutors(job.graph, default_executors, 1.0);
    if (!recommended.ok()) continue;
    auto at_default =
        RunOnExecutors(job.plan, default_executors, options.platform);
    auto at_recommended =
        RunOnExecutors(job.plan, recommended.value(), options.platform);
    if (!at_default.ok() || !at_recommended.ok()) continue;
    executors_requested += default_executors;
    executors_recommended += recommended.value();
    runtime_default += at_default.value().runtime_seconds;
    runtime_recommended += at_recommended.value().runtime_seconds;
  }

  PrintBanner(std::cout, "Extension: AutoExecutor for Spark SQL (paper §2.3)");
  TextTable accuracy({"executor sweep point", "Median AE (runtime)"});
  for (size_t f = 0; f < fractions.size(); ++f) {
    accuracy.AddRow({Cell(100.0 * fractions[f], 0) + "% of default executors",
                     Cell(MedianAbsolutePercentError(predicted[f], actual[f]),
                          0) +
                         "%"});
  }
  std::cout << accuracy.ToString();
  std::printf(
      "\nworkload executor savings at 1%%/executor bar: %.0f -> %.0f "
      "executors (%.0f%%), realized slowdown %.1f%%\n",
      executors_requested, executors_recommended,
      100.0 * (1.0 - executors_recommended / executors_requested),
      100.0 * (runtime_recommended / runtime_default - 1.0));
  std::cout << "Expected shape: the same recipe that predicts token PCCs "
               "predicts executor PCCs — bounded error across the sweep and "
               "meaningful executor savings at modest slowdown, as in the "
               "AutoExecutor companion work.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
