// Reproduces Figure 1: the skyline of one SCOPE-like job against the
// Default, Peak, and Adaptive-Peak allocation policies, quantifying the
// over-allocation (wasted token-seconds) under each.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "skyline/skyline.h"

namespace tasq {
namespace {

void PrintSkylineSparkline(const Skyline& skyline, double allocation) {
  // Render the skyline as rows of (second, used, allocated) at ~25 sample
  // points — the textual analogue of the figure.
  size_t n = skyline.duration_seconds();
  size_t step = std::max<size_t>(1, n / 25);
  TextTable table({"t (s)", "tokens used", "default alloc"});
  for (size_t t = 0; t < n; t += step) {
    table.AddRow({Cell(static_cast<int64_t>(t)), Cell(skyline.UsageAt(t), 1),
                  Cell(allocation, 0)});
  }
  std::cout << table.ToString();
}

}  // namespace

int Main() {
  auto generator = bench::MakeGenerator();
  // Find a job with a visibly peaky skyline and meaningful over-allocation,
  // like the paper's example (125 requested, < 80 used).
  ObservedJob example;
  for (const ObservedJob& candidate :
       bench::ObserveJobs(generator, 0, 60, 1)) {
    UtilizationSummary bands = ClassifyUtilization(candidate.skyline);
    bool peaky = bands.seconds_high < 0.5 * bands.total();
    if (peaky && candidate.peak_tokens >= 20.0 &&
        candidate.observed_tokens > candidate.peak_tokens * 1.3) {
      example = candidate;
      break;
    }
  }
  if (example.skyline.duration_seconds() == 0) {
    std::fprintf(stderr, "no suitable example job found\n");
    return 1;
  }

  PrintBanner(std::cout, "Figure 1: skyline and allocation policies");
  std::printf("job %lld: runtime %.0f s, peak usage %.0f tokens, "
              "default allocation %.0f tokens\n\n",
              static_cast<long long>(example.job.id), example.runtime_seconds,
              example.peak_tokens, example.observed_tokens);
  PrintSkylineSparkline(example.skyline, example.observed_tokens);

  const Skyline& sky = example.skyline;
  double used = sky.Area();
  TextTable table({"Policy", "Allocated tok-s", "Used tok-s", "Wasted tok-s",
                   "Waste %"});
  struct PolicyRow {
    const char* name;
    AllocationPolicy policy;
  };
  for (const PolicyRow& row :
       {PolicyRow{"Default Allocation", AllocationPolicy::kDefault},
        PolicyRow{"Peak Allocation", AllocationPolicy::kPeak},
        PolicyRow{"Adaptive Peak Allocation",
                  AllocationPolicy::kAdaptivePeak}}) {
    auto series = AllocationSeries(sky, row.policy, example.observed_tokens);
    double waste = bench::Unwrap(OverAllocation(sky, series), "overalloc");
    double allocated = used + waste;
    table.AddRow({row.name, Cell(allocated, 0), Cell(used, 0), Cell(waste, 0),
                  Cell(100.0 * waste / allocated, 1)});
  }
  std::cout << "\n" << table.ToString();
  std::cout << "\nExpected shape: Default >= Peak >= Adaptive Peak waste; "
               "all policies leave valleys unexploited.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
