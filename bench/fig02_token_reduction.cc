// Reproduces Figure 2: the percentage of jobs whose token request could be
// reduced by 0 / 0-25% / 25-50% / >50% while keeping 100%, 95%, and 90% of
// the default-allocation performance, estimated from AREPAS PCCs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "arepas/arepas.h"
#include "bench/bench_util.h"

namespace tasq {
namespace {

// Minimum token count (searched on a 1-token grid below the observed
// allocation) whose AREPAS-simulated run time stays within
// `max_slowdown_fraction` of the observed run time.
double MinimumTokens(const Skyline& skyline, double observed_tokens,
                     double baseline_runtime, double max_slowdown_fraction) {
  Arepas arepas;
  double allowed = baseline_runtime * (1.0 + max_slowdown_fraction);
  double best = observed_tokens;
  for (double tokens = observed_tokens - 1.0; tokens >= 1.0; tokens -= 1.0) {
    Result<double> runtime = arepas.SimulateRunTimeSeconds(skyline, tokens);
    if (!runtime.ok() || runtime.value() > allowed) break;
    best = tokens;
  }
  return best;
}

}  // namespace

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto observed = bench::ObserveJobs(generator, 0, sizes.survey_jobs, 2);

  PrintBanner(std::cout, "Figure 2: potential token request reduction in SCOPE-like jobs");
  struct Scenario {
    const char* name;
    double slowdown;
  };
  TextTable table({"Scenario", "0%", "0-25%", "25-50%", ">50%"});
  for (const Scenario& scenario :
       {Scenario{"Default Performance", 0.0},
        Scenario{"95% Default Performance", 0.05 / 0.95},
        Scenario{"90% Default Performance", 0.10 / 0.90}}) {
    int buckets[4] = {0, 0, 0, 0};
    for (const ObservedJob& job : observed) {
      double baseline = static_cast<double>(job.skyline.duration_seconds());
      double min_tokens = MinimumTokens(job.skyline, job.observed_tokens,
                                        baseline, scenario.slowdown);
      double reduction = 1.0 - min_tokens / job.observed_tokens;
      if (reduction <= 1e-9) {
        ++buckets[0];
      } else if (reduction <= 0.25) {
        ++buckets[1];
      } else if (reduction <= 0.50) {
        ++buckets[2];
      } else {
        ++buckets[3];
      }
    }
    double n = static_cast<double>(observed.size());
    table.AddRow({scenario.name, Cell(100.0 * buckets[0] / n, 0) + "%",
                  Cell(100.0 * buckets[1] / n, 0) + "%",
                  Cell(100.0 * buckets[2] / n, 0) + "%",
                  Cell(100.0 * buckets[3] / n, 0) + "%"});
  }
  std::cout << table.ToString();
  std::cout << "\nPaper (production SCOPE): at default performance 49% of "
               "jobs need every token, 51% can cut tokens, 20% can cut more "
               "than half; accepting 5-10% slowdown moves most jobs into the "
               "reducible buckets.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
