// Reproduces Figure 3: the run time vs token trade-off of one job measured
// on the cluster simulator (ground truth, not AREPAS), with the curve's
// elbow marked.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "pcc/pcc.h"
#include "simcluster/cluster_simulator.h"

namespace tasq {

int Main() {
  auto generator = bench::MakeGenerator();
  // A wide job shows the trade-off across a large token range.
  Job job;
  for (const Job& candidate : generator.Generate(0, 80)) {
    if (candidate.plan.MaxStageTasks() >= 150) {
      job = candidate;
      break;
    }
  }
  if (job.plan.stages.empty()) job = generator.GenerateJob(0);

  ClusterSimulator simulator;
  std::vector<PccSample> samples;
  double max_tokens = job.default_tokens;
  for (double tokens = std::max(2.0, max_tokens / 40.0); tokens <= max_tokens;
       tokens += std::max(1.0, max_tokens / 40.0)) {
    RunConfig config;
    config.tokens = tokens;
    auto run = bench::Unwrap(simulator.Run(job.plan, config), "run");
    samples.push_back({tokens, run.runtime_seconds});
  }

  PrintBanner(std::cout, "Figure 3: run time vs token allocation (ground truth)");
  std::printf("job %lld: widest stage %d tasks, default allocation %.0f\n\n",
              static_cast<long long>(job.id), job.plan.MaxStageTasks(),
              job.default_tokens);
  TextTable table({"tokens", "runtime (s)"});
  for (const PccSample& s : samples) {
    table.AddRow({Cell(s.tokens, 0), Cell(s.runtime_seconds, 0)});
  }
  std::cout << table.ToString();
  Result<double> elbow = FindElbowTokens(samples);
  if (elbow.ok()) {
    std::printf("\nelbow (red marker in the paper's figure): ~%.0f tokens\n",
                elbow.value());
  } else {
    std::printf("\nno elbow detected: %s\n",
                elbow.status().ToString().c_str());
  }
  std::cout << "Expected shape: steep improvement at low tokens flattening "
               "into diminishing returns (power-law-like decay).\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
