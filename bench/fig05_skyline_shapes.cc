// Reproduces Figure 5: contrasting a "peaky" and a "flatter" skyline by
// decomposing each into utilization bands (near-minimum / low /
// moderate-high) relative to the skyline peak.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "skyline/skyline.h"

namespace tasq {
namespace {

void Report(const char* label, const ObservedJob& job) {
  UtilizationSummary bands = ClassifyUtilization(job.skyline);
  std::printf("%s: job %lld, runtime %.0f s, peak %.0f tokens\n", label,
              static_cast<long long>(job.job.id), job.runtime_seconds,
              job.peak_tokens);
  TextTable table({"band", "seconds", "share"});
  table.AddRow({"near-minimum (<20% of peak)", Cell(bands.seconds_minimum, 0),
                Cell(100.0 * bands.seconds_minimum / bands.total(), 0) + "%"});
  table.AddRow({"low (20-50% of peak)", Cell(bands.seconds_low, 0),
                Cell(100.0 * bands.seconds_low / bands.total(), 0) + "%"});
  table.AddRow({"moderate-high (>=50% of peak)", Cell(bands.seconds_high, 0),
                Cell(100.0 * bands.seconds_high / bands.total(), 0) + "%"});
  std::cout << table.ToString() << "\n";
}

}  // namespace

int Main() {
  auto generator = bench::MakeGenerator();
  auto observed = bench::ObserveJobs(generator, 0, 150, 3);

  // Pick the peakiest and the flattest job by the share of time spent at
  // moderate-high utilization.
  const ObservedJob* peaky = nullptr;
  const ObservedJob* flat = nullptr;
  double min_high_share = 2.0;
  double max_high_share = -1.0;
  for (const ObservedJob& job : observed) {
    if (job.skyline.duration_seconds() < 30 || job.peak_tokens < 10) continue;
    UtilizationSummary bands = ClassifyUtilization(job.skyline);
    double share = bands.seconds_high / bands.total();
    if (share < min_high_share) {
      min_high_share = share;
      peaky = &job;
    }
    if (share > max_high_share) {
      max_high_share = share;
      flat = &job;
    }
  }
  if (peaky == nullptr || flat == nullptr) {
    std::fprintf(stderr, "no suitable jobs found\n");
    return 1;
  }
  PrintBanner(std::cout, "Figure 5: peaky vs flatter skylines by utilization band");
  Report("Peaky skyline", *peaky);
  Report("Flatter skyline", *flat);
  std::cout << "Expected shape: the peaky job spends most of its time in the "
               "red/pink (sub-50%) bands; the flatter job in the green "
               "band.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
