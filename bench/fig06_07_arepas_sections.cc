// Reproduces Figures 6 and 7: AREPAS's treatment of skyline sections.
// Figure 6 — sections under the new allocation are copied unchanged.
// Figure 7 — sections over it are flattened and stretched, preserving area.
// Uses the paper's 20-second toy skylines with max token = 3.

#include <cstdio>
#include <iostream>

#include "arepas/arepas.h"
#include "common/table.h"

namespace tasq {
namespace {

void PrintPair(const char* title, const Skyline& original,
               const Skyline& simulated) {
  std::printf("%s\n", title);
  TextTable table({"t (s)", "original", "simulated"});
  size_t n =
      std::max(original.duration_seconds(), simulated.duration_seconds());
  for (size_t t = 0; t < n; ++t) {
    table.AddRow({Cell(static_cast<int64_t>(t)), Cell(original.UsageAt(t), 1),
                  Cell(simulated.UsageAt(t), 1)});
  }
  std::cout << table.ToString();
  std::printf("area: original %.1f vs simulated %.1f token-seconds\n\n",
              original.Area(), simulated.Area());
}

Skyline UnwrapSkyline(Result<Skyline> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result.value());
}

}  // namespace

int Main() {
  PrintBanner(std::cout, "Figures 6/7: AREPAS section handling (toy skylines, Nt = 3)");
  Arepas arepas;

  // Figure 6: the whole skyline sits at or below the new allocation, so its
  // shape is unchanged and the area trivially preserved.
  Skyline under({2.0, 2.0, 1.0, 2.0, 3.0, 3.0, 2.0, 1.0, 2.0, 2.0,
                 2.0, 3.0, 2.0, 1.0, 2.0, 2.0, 3.0, 2.0, 1.0, 2.0});
  Skyline under_sim = UnwrapSkyline(arepas.SimulateSkyline(under, 3.0));
  PrintPair("Figure 6: unchanged section (usage <= new allocation)", under,
            under_sim);

  // Figure 7: a 6-token burst must be redistributed at 3 tokens — the burst
  // takes a little more than twice as long at a little less than half the
  // tokens, and the rest of the skyline shifts right.
  std::vector<double> burst(20, 2.0);
  for (size_t t = 6; t < 11; ++t) burst[t] = 6.0;
  Skyline over(burst);
  Skyline over_sim = UnwrapSkyline(arepas.SimulateSkyline(over, 3.0));
  PrintPair("Figure 7: redistributed section (usage > new allocation)", over,
            over_sim);
  std::printf("runtime: original %zu s -> simulated %zu s\n",
              over.duration_seconds(), over_sim.duration_seconds());
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
