// Reproduces Figure 8: AREPAS skyline simulations of a flatter and a peaky
// job at several token allocations. Flatter jobs lose performance as soon
// as the allocation drops; peaky jobs tolerate a significant reduction.

#include <cstdio>
#include <iostream>

#include "arepas/arepas.h"
#include "bench/bench_util.h"

namespace tasq {
namespace {

void Sweep(const char* label, const ObservedJob& job) {
  Arepas arepas;
  double peak = job.peak_tokens;
  std::printf("%s: job %lld, peak usage %.0f tokens, ground-truth runtime "
              "%.0f s\n",
              label, static_cast<long long>(job.job.id), peak,
              job.runtime_seconds);
  TextTable table({"allocation (tokens)", "alloc / peak", "simulated runtime (s)",
                   "slowdown vs peak"});
  double runtime_at_peak = bench::Unwrap(
      arepas.SimulateRunTimeSeconds(job.skyline, peak), "arepas");
  for (double fraction : {1.0, 0.75, 0.5, 0.35, 0.2, 0.1}) {
    double tokens = std::max(1.0, std::round(peak * fraction));
    double runtime = bench::Unwrap(
        arepas.SimulateRunTimeSeconds(job.skyline, tokens), "arepas");
    table.AddRow({Cell(tokens, 0), Cell(fraction, 2),
                  Cell(runtime, 0),
                  Cell(100.0 * (runtime / runtime_at_peak - 1.0), 0) + "%"});
  }
  std::cout << table.ToString() << "\n";
}

}  // namespace

int Main() {
  auto generator = bench::MakeGenerator();
  auto observed = bench::ObserveJobs(generator, 0, 150, 4);
  const ObservedJob* peaky = nullptr;
  const ObservedJob* flat = nullptr;
  double min_share = 2.0;
  double max_share = -1.0;
  for (const ObservedJob& job : observed) {
    if (job.skyline.duration_seconds() < 30 || job.peak_tokens < 10) continue;
    UtilizationSummary bands = ClassifyUtilization(job.skyline);
    double share = bands.seconds_high / bands.total();
    if (share < min_share) {
      min_share = share;
      peaky = &job;
    }
    if (share > max_share) {
      max_share = share;
      flat = &job;
    }
  }
  if (peaky == nullptr || flat == nullptr) {
    std::fprintf(stderr, "no suitable jobs found\n");
    return 1;
  }
  PrintBanner(std::cout, "Figure 8: AREPAS simulation sweep, flatter vs peaky job");
  Sweep("Flatter job", *flat);
  Sweep("Peaky job", *peaky);
  std::cout << "Expected shape: the flatter job slows down almost "
               "immediately below its peak; the peaky job absorbs large "
               "reductions before slowing.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
