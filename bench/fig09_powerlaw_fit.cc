// Reproduces Figure 9: one job's AREPAS-simulated performance
// characteristic curve against the fitted power law, in absolute and
// log-log space (where the power law is a straight line).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "arepas/arepas.h"
#include "bench/bench_util.h"
#include "pcc/pcc.h"

namespace tasq {

int Main() {
  auto generator = bench::MakeGenerator();
  auto observed = bench::ObserveJobs(generator, 0, 60, 5);
  const ObservedJob* example = nullptr;
  for (const ObservedJob& job : observed) {
    if (job.peak_tokens >= 40) {
      example = &job;
      break;
    }
  }
  if (example == nullptr) example = &observed.front();

  double peak = example->peak_tokens;
  std::vector<double> grid;
  for (double fraction = 0.1; fraction <= 1.001; fraction += 0.1) {
    double tokens = std::max(1.0, std::round(peak * fraction));
    if (grid.empty() || tokens > grid.back()) grid.push_back(tokens);
  }
  auto samples = bench::Unwrap(SamplePcc(example->skyline, grid), "pcc");
  auto fit = bench::Unwrap(FitPowerLaw(samples), "fit");

  PrintBanner(std::cout, "Figure 9: simulated PCC vs fitted power law");
  std::printf("job %lld: fitted runtime = %.1f * A^(%.3f), log-log R^2 = "
              "%.4f\n\n",
              static_cast<long long>(example->job.id), fit.pcc.b, fit.pcc.a,
              fit.log_log_r2);
  TextTable table({"tokens", "target runtime (s)", "fitted runtime (s)",
                   "log(tokens)", "log(target)", "log(fitted)"});
  for (const PccSample& s : samples) {
    double fitted = fit.pcc.EvalRunTime(s.tokens);
    table.AddRow({Cell(s.tokens, 0), Cell(s.runtime_seconds, 0),
                  Cell(fitted, 0), Cell(std::log(s.tokens), 2),
                  Cell(std::log(s.runtime_seconds), 2),
                  Cell(std::log(fitted), 2)});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: the log-log columns fall on a straight "
               "line (high R^2), matching the paper's bottom panel.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
