// Reproduces Figure 11: cluster-size proportions in the population, the
// biased pre-selection pool, and the post-selection subset, plus the KS
// quality statistic before and after selection.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "selection/job_selection.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto jobs = generator.Generate(0, sizes.survey_jobs);

  // Clustering space: log default tokens, log total work, stage count —
  // the kind of coarse job statistics used to group jobs.
  std::vector<double> features;
  std::vector<double> summary;
  std::vector<int> template_ids;
  for (const Job& job : jobs) {
    features.push_back(std::log1p(job.default_tokens));
    features.push_back(std::log1p(job.plan.TotalWorkTokenSeconds()));
    features.push_back(static_cast<double>(job.plan.stages.size()));
    summary.push_back(job.default_tokens);
    template_ids.push_back(job.template_id);
  }
  // Pre-selection pool with the paper's bias: jobs satisfying operational
  // constraints (here: a token-range constraint that over-represents large
  // jobs, like the paper's 79.9%-in-one-group pool).
  std::vector<size_t> pool;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].default_tokens >= 40.0 || (i % 7 == 0)) pool.push_back(i);
  }

  SelectionConfig config;
  config.num_clusters = 8;
  config.sample_size = 200;
  config.max_per_template = 3;
  auto outcome = bench::Unwrap(
      SelectRepresentativeJobs(features, jobs.size(), 3, summary, template_ids,
                               pool, config),
      "selection");

  PrintBanner(std::cout, "Figure 11: cluster proportions pre/post job selection");
  TextTable table({"cluster", "population", "pre-selection pool",
                   "post-selection subset"});
  for (size_t c = 0; c < outcome.population_proportions.size(); ++c) {
    table.AddRow({Cell(static_cast<int64_t>(c)),
                  Cell(100.0 * outcome.population_proportions[c], 1) + "%",
                  Cell(100.0 * outcome.pool_proportions[c], 1) + "%",
                  Cell(100.0 * outcome.selected_proportions[c], 1) + "%"});
  }
  std::cout << table.ToString();
  std::printf(
      "\nselected %zu of %zu pool jobs\n"
      "KS statistic vs population: pool %.3f -> subset %.3f (lower is "
      "better)\n",
      outcome.selected.size(), pool.size(), outcome.ks_before,
      outcome.ks_after);
  std::cout << "Expected shape: the subset's proportions track the "
               "population much more closely than the biased pool, and the "
               "KS statistic drops after selection.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
