// Reproduces Figure 12: validation of AREPAS's constant-area assumption.
// Top — CDF over tolerance ranges of the fraction of execution pairs whose
// skyline areas match. Bottom — number of outlier executions per job at
// several tolerance ranges.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  FlightConfig config;
  config.seed = 1212;
  FlightHarness harness(config);
  auto flighted =
      harness.FlightJobs(generator.Generate(2000, sizes.flight_jobs));

  // All pairwise area deviations across each job's flighted executions.
  std::vector<double> deviations;
  std::vector<std::vector<Skyline>> per_job_skylines;
  for (const FlightedJob& job : flighted) {
    std::vector<Skyline> skylines;
    for (const FlightRecord& record : job.flights) {
      skylines.push_back(record.skyline);
    }
    auto pair_devs = PairwiseAreaDeviations(skylines);
    deviations.insert(deviations.end(), pair_devs.begin(), pair_devs.end());
    per_job_skylines.push_back(std::move(skylines));
  }

  PrintBanner(std::cout, 
      "Figure 12 (top): execution pairs whose token-seconds match, by "
      "tolerance");
  TextTable cdf({"tolerance", "% matching pairs"});
  for (double tolerance : {5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 80.0,
                           100.0}) {
    cdf.AddRow({Cell(tolerance, 0) + "%",
                Cell(100.0 * EmpiricalCdf(deviations, tolerance), 0) + "%"});
  }
  std::cout << cdf.ToString();
  std::printf("(%zu pairs across %zu jobs)\n", deviations.size(),
              flighted.size());

  PrintBanner(std::cout, "Figure 12 (bottom): outlier executions per job, by tolerance");
  TextTable outliers({"tolerance", "0 outliers", "<=1 outlier", ">=2 outliers"});
  for (double tolerance : {30.0, 50.0, 80.0}) {
    int zero = 0;
    int at_most_one = 0;
    int more = 0;
    for (const auto& skylines : per_job_skylines) {
      int count = CountAreaOutliers(skylines, tolerance);
      if (count == 0) ++zero;
      if (count <= 1) ++at_most_one;
      if (count >= 2) ++more;
    }
    double n = static_cast<double>(per_job_skylines.size());
    outliers.AddRow({Cell(tolerance, 0) + "%",
                     Cell(100.0 * zero / n, 0) + "%",
                     Cell(100.0 * at_most_one / n, 0) + "%",
                     Cell(100.0 * more / n, 0) + "%"});
  }
  std::cout << outliers.ToString();
  std::cout << "\nPaper: ~50% of pairs within 10% tolerance, 65% within 30%, "
               "90% within 80%; 83% of jobs have <=1 outlier at 30% "
               "tolerance.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
