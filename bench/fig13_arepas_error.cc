// Reproduces Figure 13: the distribution (CDF and histogram) of AREPAS's
// per-job median percent run-time error against re-executed ground truth,
// for the non-anomalous subset and the fully-matched subset.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

namespace tasq {
namespace {

void PrintDistribution(const char* title, const std::vector<double>& errors) {
  std::printf("%s (%zu jobs)\n", title, errors.size());
  if (errors.empty()) {
    std::printf("  (empty)\n\n");
    return;
  }
  TextTable table({"error bucket", "% of jobs (hist)", "CDF"});
  double edges[] = {5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0, 100.0};
  double previous_cdf = 0.0;
  for (double edge : edges) {
    double cdf = 100.0 * EmpiricalCdf(errors, edge);
    table.AddRow({"<= " + Cell(edge, 0) + "%", Cell(cdf - previous_cdf, 0) + "%",
                  Cell(cdf, 0) + "%"});
    previous_cdf = cdf;
  }
  std::cout << table.ToString();
  std::printf("median per-job error: %.1f%%, max: %.1f%%\n\n",
              Median(errors), Quantile(errors, 1.0));
}

}  // namespace

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto validation = bench::RunArepasValidation(2000, sizes.flight_jobs, 1313);

  PrintBanner(std::cout, "Figure 13: AREPAS per-job median percent error vs ground truth");
  PrintDistribution("Non-anomalous subset",
                    validation.per_job_error_non_anomalous);
  PrintDistribution("Fully-matched subset (zero area outliers at 30%)",
                    validation.per_job_error_fully_matched);
  std::cout << "Paper: median error 9.2% for non-anomalous jobs; worst case "
               "under 50% (non-anomalous) and 30% (fully-matched).\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
