// google-benchmark microbenchmarks for the core kernels: AREPAS skyline
// simulation, cluster-simulator runs, power-law fitting, GBDT prediction,
// NN/GNN forward passes, and featurization.

#include <benchmark/benchmark.h>

#include "arepas/arepas.h"
#include "bench/bench_json_main.h"
#include "common/check.h"
#include "common/fmath.h"
#include "feat/featurizer.h"
#include "gbdt/gbdt.h"
#include "gnn/gnn_model.h"
#include "nn/nn_model.h"
#include "pcc/pcc.h"
#include "simcluster/cluster_simulator.h"
#include "tasq/dataset.h"
#include "workload/generator.h"

namespace tasq {
namespace {

const WorkloadGenerator& Generator() {
  static const auto& generator = *new WorkloadGenerator(WorkloadConfig{});
  return generator;
}

const ObservedJob& SampleObservation() {
  static const auto& observation = *new ObservedJob([] {
    auto observed =
        ObserveWorkload(Generator().Generate(0, 1), NoiseModel{}, 1);
    return observed.value()[0];
  }());
  return observation;
}

void BM_ArepasSimulate(benchmark::State& state) {
  const Skyline& skyline = SampleObservation().skyline;
  double tokens = std::max(1.0, SampleObservation().peak_tokens *
                                    static_cast<double>(state.range(0)) /
                                    100.0);
  Arepas arepas;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arepas.SimulateSkyline(skyline, tokens));
  }
}
BENCHMARK(BM_ArepasSimulate)->Arg(20)->Arg(50)->Arg(80);

void BM_ClusterRun(benchmark::State& state) {
  Job job = Generator().GenerateJob(4);
  ClusterSimulator simulator;
  RunConfig config;
  config.tokens = std::max(1.0, job.default_tokens *
                                    static_cast<double>(state.range(0)) /
                                    100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.Run(job.plan, config));
  }
}
BENCHMARK(BM_ClusterRun)->Arg(20)->Arg(100);

void BM_FitPowerLaw(benchmark::State& state) {
  const Skyline& skyline = SampleObservation().skyline;
  auto grid = LinearTokenGrid(2.0, SampleObservation().peak_tokens, 10);
  auto samples = SamplePcc(skyline, grid).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitPowerLaw(samples));
  }
}
BENCHMARK(BM_FitPowerLaw);

void BM_Featurize(benchmark::State& state) {
  Job job = Generator().GenerateJob(9);
  Featurizer featurizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.Featurize(job.graph));
  }
}
BENCHMARK(BM_Featurize);

const NnPccModel& TrainedNnModel() {
  static const auto& model = *new NnPccModel([] {
    auto observed = ObserveWorkload(Generator().Generate(0, 64), {}, 1);
    Dataset dataset = DatasetBuilder().Build(observed.value()).value();
    PccSupervision supervision;
    supervision.targets = dataset.targets;
    supervision.observed_tokens = dataset.observed_tokens;
    supervision.observed_runtime = dataset.observed_runtime;
    NnOptions options;
    options.epochs = 2;
    NnPccModel model(dataset.job_feature_dim, options);
    // A failed fit would silently benchmark an untrained model.
    TASQ_CHECK(model.Train(dataset.job_features, supervision).ok());
    return model;
  }());
  return model;
}

void BM_NnPredict(benchmark::State& state) {
  const NnPccModel& model = TrainedNnModel();
  std::vector<double> row(Featurizer::kJobFeatureDim, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(row));
  }
}
BENCHMARK(BM_NnPredict);

constexpr size_t kNnBatchRows = 256;

/// Fills a batch with deterministic, strictly nonzero values: a trained
/// net has no exactly-zero activations either, so the pre-change kernel's
/// zero-skip branch never fires and the two benches compare pure
/// throughput, not data-dependent shortcuts.
std::vector<double> NnBatchFeatures(size_t rows, size_t dim) {
  std::vector<double> features(rows * dim);
  for (size_t i = 0; i < features.size(); ++i) {
    features[i] = 0.013 * static_cast<double>(i % 97 + 1) - 0.41;
  }
  return features;
}

void BM_NnForwardBatch(benchmark::State& state) {
  const NnPccModel& model = TrainedNnModel();
  std::vector<double> features =
      NnBatchFeatures(kNnBatchRows, model.input_dim());
  std::vector<PowerLawPcc> out(kNnBatchRows);
  NnPccModel::InferenceScratch scratch;
  for (auto _ : state) {
    TASQ_CHECK(
        model.PredictBatchInto(features.data(), kNnBatchRows, scratch,
                               out.data())
            .ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["nn_batch_rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kNnBatchRows,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NnForwardBatch);

// --- Pre-change forward-pass replica -------------------------------------
// Verbatim transcription of the PredictBatchInto pipeline as it was
// before the ml/kernels.h restructure (see git history of nn_model.cc),
// preserved in this TU as the baseline `nn_batch_rows_per_s` is judged
// against (ISSUE 10: the batched forward must be >= 2x this): the batch
// staged into a scratch matrix by copy, each dense layer an i,k,j matmul
// with the float-eq zero-skip and no __restrict qualifiers, a SECOND full
// pass applying bias + activation through a function pointer, and a
// per-row decode through At() accessors.

/// Just enough of the old Matrix surface for the transcription.
struct RefMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> d;
  void Resize(size_t r, size_t c) {
    rows = r;
    cols = c;
    d.resize(r * c);
  }
  void SetZero() { std::fill(d.begin(), d.end(), 0.0); }
  double At(size_t i, size_t j) const { return d[i * cols + j]; }
};

using ScalarActivation = double (*)(double);
double ScalarRelu(double v) { return v > 0.0 ? v : 0.0; }
double ScalarIdentity(double v) { return v; }
double ScalarSoftplus(double v) { return StableSoftplus(v); }

void RefDenseLayerInto(const RefMatrix& x, const RefMatrix& w,
                       const RefMatrix& bias, ScalarActivation activation,
                       RefMatrix* out) {
  TASQ_CHECK_EQ(x.cols, w.rows);
  size_t rows = x.rows;
  size_t inner = x.cols;
  size_t cols = w.cols;
  out->Resize(rows, cols);
  out->SetZero();
  const double* xd = x.d.data();
  const double* wd = w.d.data();
  double* od = out->d.data();
  for (size_t i = 0; i < rows; ++i) {
    for (size_t k = 0; k < inner; ++k) {
      double a = xd[i * inner + k];
      if (a == 0.0) continue;  // num: pre-change zero-skip replica
      const double* brow = &wd[k * cols];
      double* orow = &od[i * cols];
      for (size_t j = 0; j < cols; ++j) orow[j] += a * brow[j];
    }
  }
  const double* bd = bias.d.data();
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      od[i * cols + j] = activation(od[i * cols + j] + bd[j]);
    }
  }
}

void BM_NnForwardBatchScalarRef(benchmark::State& state) {
  // Same shapes as NnOptions defaults (input -> 32 -> 16 -> two 1-wide
  // heads); synthetic nonzero weights so the zero-skip never triggers —
  // a trained net has no exactly-zero weights either.
  const size_t dim = Featurizer::kJobFeatureDim;
  const std::vector<size_t> widths = {dim, 32, 16};
  std::vector<RefMatrix> weights(widths.size() - 1);
  std::vector<RefMatrix> biases(widths.size() - 1);
  for (size_t l = 0; l + 1 < widths.size(); ++l) {
    weights[l].Resize(widths[l], widths[l + 1]);
    for (size_t i = 0; i < weights[l].d.size(); ++i) {
      weights[l].d[i] = 0.002 * static_cast<double>(i % 61 + 1) - 0.06;
    }
    biases[l].Resize(1, widths[l + 1]);
    std::fill(biases[l].d.begin(), biases[l].d.end(), 0.01);
  }
  RefMatrix head_w;
  head_w.Resize(widths.back(), 1);
  std::fill(head_w.d.begin(), head_w.d.end(), 0.05);
  RefMatrix head_b;
  head_b.Resize(1, 1);
  head_b.d[0] = 0.01;
  std::vector<double> features = NnBatchFeatures(kNnBatchRows, dim);
  // Scratch persists across calls exactly as the old InferenceScratch did.
  RefMatrix input;
  std::vector<RefMatrix> hidden(weights.size());
  RefMatrix head1;
  RefMatrix head2;
  std::vector<PowerLawPcc> decoded(kNnBatchRows);
  for (auto _ : state) {
    input.Resize(kNnBatchRows, dim);
    std::copy_n(features.data(), kNnBatchRows * dim, input.d.begin());
    const RefMatrix* h = &input;
    for (size_t l = 0; l < weights.size(); ++l) {
      RefDenseLayerInto(*h, weights[l], biases[l], ScalarRelu, &hidden[l]);
      h = &hidden[l];
    }
    RefDenseLayerInto(*h, head_w, head_b, ScalarSoftplus, &head1);
    RefDenseLayerInto(*h, head_w, head_b, ScalarIdentity, &head2);
    // Per-row FromScaled decode, as the pre-change PredictBatchInto did.
    for (size_t i = 0; i < kNnBatchRows; ++i) {
      decoded[i].a = -std::max(0.0, head1.At(i, 0)) * 1.7;
      decoded[i].b = ClampedExp(head2.At(i, 0) * 0.9);
    }
    benchmark::DoNotOptimize(decoded.data());
  }
  state.counters["nn_batch_ref_rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kNnBatchRows,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NnForwardBatchScalarRef);

void BM_GbdtHistogram(benchmark::State& state) {
  // One root-node histogram build at trainer-realistic sizes: pack the
  // node once, then one gather-free contiguous pass per feature — the
  // exact gbdt_internal kernels GbdtRegressor::Train drives.
  constexpr size_t kRows = 8192;
  constexpr size_t kFeatures = 8;
  constexpr size_t kBins = 32;
  std::vector<int32_t> bins(kFeatures * kRows);
  for (size_t i = 0; i < bins.size(); ++i) {
    bins[i] = static_cast<int32_t>((i * 2654435761u) % kBins);
  }
  std::vector<double> grad(kRows);
  std::vector<double> hess(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    grad[r] = 0.001 * static_cast<double>(r % 113) - 0.05;
    hess[r] = 1.0 + 0.0001 * static_cast<double>(r % 31);
  }
  std::vector<int> samples(kRows);
  for (size_t r = 0; r < kRows; ++r) samples[r] = static_cast<int>(r);
  gbdt_internal::HistScratch scratch;
  for (auto _ : state) {
    gbdt_internal::PackNode(samples, grad, hess, scratch);
    for (size_t f = 0; f < kFeatures; ++f) {
      gbdt_internal::BuildFeatureHistogram(&bins[f * kRows], samples, kBins,
                                           scratch);
    }
    benchmark::DoNotOptimize(scratch.grad_sum.data());
  }
  state.counters["gbdt_hist_rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kRows * kFeatures,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GbdtHistogram);

void BM_GnnPredict(benchmark::State& state) {
  static const auto& setup = *new std::pair<GnnPccModel, GraphExample>([] {
    auto observed = ObserveWorkload(Generator().Generate(0, 32), {}, 1);
    Dataset dataset = DatasetBuilder().Build(observed.value()).value();
    PccSupervision supervision;
    supervision.targets = dataset.targets;
    supervision.observed_tokens = dataset.observed_tokens;
    supervision.observed_runtime = dataset.observed_runtime;
    GnnOptions options;
    options.epochs = 1;
    GnnPccModel model(dataset.op_feature_dim, options);
    // A failed fit would silently benchmark an untrained model.
    TASQ_CHECK(model.Train(dataset.graphs, supervision).ok());
    return std::pair<GnnPccModel, GraphExample>(std::move(model),
                                                dataset.graphs[0]);
  }());
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.first.Predict(setup.second));
  }
}
BENCHMARK(BM_GnnPredict);

}  // namespace
}  // namespace tasq

// Custom main instead of BENCHMARK_MAIN(): identical run + console
// output, plus BENCH_core.json for the perf trajectory (ROADMAP item 5).
int main(int argc, char** argv) {
  return tasq::RunBenchmarksAndWriteJson(argc, argv, "microbench_core",
                                         "BENCH_core.json");
}
