// google-benchmark microbenchmarks for the core kernels: AREPAS skyline
// simulation, cluster-simulator runs, power-law fitting, GBDT prediction,
// NN/GNN forward passes, and featurization.

#include <benchmark/benchmark.h>

#include "arepas/arepas.h"
#include "bench/bench_json_main.h"
#include "common/check.h"
#include "feat/featurizer.h"
#include "gnn/gnn_model.h"
#include "nn/nn_model.h"
#include "pcc/pcc.h"
#include "simcluster/cluster_simulator.h"
#include "tasq/dataset.h"
#include "workload/generator.h"

namespace tasq {
namespace {

const WorkloadGenerator& Generator() {
  static const auto& generator = *new WorkloadGenerator(WorkloadConfig{});
  return generator;
}

const ObservedJob& SampleObservation() {
  static const auto& observation = *new ObservedJob([] {
    auto observed =
        ObserveWorkload(Generator().Generate(0, 1), NoiseModel{}, 1);
    return observed.value()[0];
  }());
  return observation;
}

void BM_ArepasSimulate(benchmark::State& state) {
  const Skyline& skyline = SampleObservation().skyline;
  double tokens = std::max(1.0, SampleObservation().peak_tokens *
                                    static_cast<double>(state.range(0)) /
                                    100.0);
  Arepas arepas;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arepas.SimulateSkyline(skyline, tokens));
  }
}
BENCHMARK(BM_ArepasSimulate)->Arg(20)->Arg(50)->Arg(80);

void BM_ClusterRun(benchmark::State& state) {
  Job job = Generator().GenerateJob(4);
  ClusterSimulator simulator;
  RunConfig config;
  config.tokens = std::max(1.0, job.default_tokens *
                                    static_cast<double>(state.range(0)) /
                                    100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.Run(job.plan, config));
  }
}
BENCHMARK(BM_ClusterRun)->Arg(20)->Arg(100);

void BM_FitPowerLaw(benchmark::State& state) {
  const Skyline& skyline = SampleObservation().skyline;
  auto grid = LinearTokenGrid(2.0, SampleObservation().peak_tokens, 10);
  auto samples = SamplePcc(skyline, grid).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitPowerLaw(samples));
  }
}
BENCHMARK(BM_FitPowerLaw);

void BM_Featurize(benchmark::State& state) {
  Job job = Generator().GenerateJob(9);
  Featurizer featurizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.Featurize(job.graph));
  }
}
BENCHMARK(BM_Featurize);

void BM_NnPredict(benchmark::State& state) {
  static const auto& model = *new NnPccModel([] {
    auto observed = ObserveWorkload(Generator().Generate(0, 64), {}, 1);
    Dataset dataset = DatasetBuilder().Build(observed.value()).value();
    PccSupervision supervision;
    supervision.targets = dataset.targets;
    supervision.observed_tokens = dataset.observed_tokens;
    supervision.observed_runtime = dataset.observed_runtime;
    NnOptions options;
    options.epochs = 2;
    NnPccModel model(dataset.job_feature_dim, options);
    // A failed fit would silently benchmark an untrained model.
    TASQ_CHECK(model.Train(dataset.job_features, supervision).ok());
    return model;
  }());
  std::vector<double> row(Featurizer::kJobFeatureDim, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(row));
  }
}
BENCHMARK(BM_NnPredict);

void BM_GnnPredict(benchmark::State& state) {
  static const auto& setup = *new std::pair<GnnPccModel, GraphExample>([] {
    auto observed = ObserveWorkload(Generator().Generate(0, 32), {}, 1);
    Dataset dataset = DatasetBuilder().Build(observed.value()).value();
    PccSupervision supervision;
    supervision.targets = dataset.targets;
    supervision.observed_tokens = dataset.observed_tokens;
    supervision.observed_runtime = dataset.observed_runtime;
    GnnOptions options;
    options.epochs = 1;
    GnnPccModel model(dataset.op_feature_dim, options);
    // A failed fit would silently benchmark an untrained model.
    TASQ_CHECK(model.Train(dataset.graphs, supervision).ok());
    return std::pair<GnnPccModel, GraphExample>(std::move(model),
                                                dataset.graphs[0]);
  }());
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.first.Predict(setup.second));
  }
}
BENCHMARK(BM_GnnPredict);

}  // namespace
}  // namespace tasq

// Custom main instead of BENCHMARK_MAIN(): identical run + console
// output, plus BENCH_core.json for the perf trajectory (ROADMAP item 5).
int main(int argc, char** argv) {
  return tasq::RunBenchmarksAndWriteJson(argc, argv, "microbench_core",
                                         "BENCH_core.json");
}
