// google-benchmark microbenchmarks for the checked-math layer: what do the
// fmath.h guards cost relative to the raw transcendentals they wrap, and
// what does that amount to on a real hot path (FitPowerLaw, the log-log
// regression every PCC estimate flows through)? Numbers recorded in
// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench/bench_json_main.h"
#include "common/fmath.h"
#include "common/rng.h"
#include "pcc/pcc.h"

namespace tasq {
namespace {

std::vector<double> PositiveInputs(size_t n) {
  Rng rng(42);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(rng.Uniform(1e-6, 1e6));
  return values;
}

void BM_RawLog(benchmark::State& state) {
  // num: checked inputs drawn from [1e-6, 1e6]; this is the baseline the
  // guarded variants are measured against.
  std::vector<double> inputs = PositiveInputs(1024);
  for (auto _ : state) {
    double sum = 0.0;
    for (double x : inputs) sum += std::log(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_RawLog);

void BM_CheckedLog(benchmark::State& state) {
  std::vector<double> inputs = PositiveInputs(1024);
  for (auto _ : state) {
    double sum = 0.0;
    for (double x : inputs) sum += CheckedLog(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_CheckedLog);

void BM_SafeLog(benchmark::State& state) {
  std::vector<double> inputs = PositiveInputs(1024);
  for (auto _ : state) {
    double sum = 0.0;
    for (double x : inputs) sum += SafeLog(x).value_or(0.0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_SafeLog);

void BM_RawPow(benchmark::State& state) {
  // num: checked bases in [1e-6, 1e6] with exponents in [-1, 1] cannot
  // overflow; raw baseline for the Checked/Safe comparisons below.
  std::vector<double> bases = PositiveInputs(1024);
  for (auto _ : state) {
    double sum = 0.0;
    for (double x : bases) sum += std::pow(x, -0.5);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_RawPow);

void BM_CheckedPow(benchmark::State& state) {
  std::vector<double> bases = PositiveInputs(1024);
  for (auto _ : state) {
    double sum = 0.0;
    for (double x : bases) sum += CheckedPow(x, -0.5);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_CheckedPow);

void BM_SafePow(benchmark::State& state) {
  std::vector<double> bases = PositiveInputs(1024);
  for (auto _ : state) {
    double sum = 0.0;
    for (double x : bases) sum += SafePow(x, -0.5).value_or(0.0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_SafePow);

// The real hot path: FitPowerLaw runs CheckedLog over every sample, plus
// the finite/positive filter added for robustness, on each PCC estimate.
void BM_FitPowerLaw(benchmark::State& state) {
  PowerLawPcc truth{-0.5, 1200.0};
  Rng rng(7);
  std::vector<PccSample> samples;
  for (int64_t i = 0; i < state.range(0); ++i) {
    double tokens = rng.Uniform(4.0, 400.0);
    samples.push_back(
        {tokens, truth.EvalRunTime(tokens) * rng.LogNormal(0.0, 0.05)});
  }
  for (auto _ : state) {
    auto fit = FitPowerLaw(samples);
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FitPowerLaw)->Arg(16)->Arg(256);

}  // namespace
}  // namespace tasq

// Custom main instead of BENCHMARK_MAIN(): identical run + console
// output, plus BENCH_fmath.json for the perf trajectory (ROADMAP item 5).
int main(int argc, char** argv) {
  return tasq::RunBenchmarksAndWriteJson(argc, argv, "microbench_fmath",
                                         "BENCH_fmath.json");
}
