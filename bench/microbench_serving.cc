// Serving-layer microbenchmark: throughput of PccServer at 1/2/8 worker
// threads on a cold cache (every request unique) and on a warm,
// 90%-recurring workload (the regime the paper targets — §2.2 scores
// recurring jobs at submission time), plus cache hit ratios, the
// TryScoreCached zero-allocation fast path, and the full ServerStats
// block for the largest run. Headline numbers also land in
// BENCH_serving.json (ROADMAP item 5: the machine-diffable perf
// trajectory) — req/s cold/warm per thread count, end-to-end p50/p99,
// and measured allocations/request (the binary links the counting
// operator new from tests/alloc_counter.h).
//
// Results are hardware-dependent: thread scaling tracks the number of
// physical cores ctest/bench can actually use.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "alloc_counter.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "serve/server.h"

namespace tasq {
namespace {

struct StreamRun {
  double seconds = 0.0;
  ServerStats stats;
};

StreamRun RunStream(const Tasq& pipeline,
                    const std::vector<ScoreRequest>& stream,
                    unsigned num_threads, size_t cache_capacity) {
  PccServerOptions options;
  options.num_threads = num_threads;
  options.queue_capacity = 64;
  options.max_batch = 16;
  options.cache_capacity = cache_capacity;
  PccServer server(pipeline, options);
  auto start = std::chrono::steady_clock::now();
  std::vector<Result<WhatIfReport>> results =
      server.ScoreBatch(stream);  // Submits everything, waits for all.
  StreamRun run;
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  server.Shutdown();
  run.stats = server.Stats();
  return run;
}

void PrintRow(unsigned threads, const StreamRun& run, double baseline_rps) {
  double rps = static_cast<double>(run.stats.completed) / run.seconds;
  uint64_t lookups = run.stats.cache_hits + run.stats.cache_misses;
  double hit_ratio = lookups > 0 ? static_cast<double>(run.stats.cache_hits) /
                                       static_cast<double>(lookups)
                                 : 0.0;
  std::printf("  %u thread%s: %8.0f req/s  (%.2fx)   cache hits %.0f%%\n",
              threads, threads == 1 ? " " : "s", rps, rps / baseline_rps,
              100.0 * hit_ratio);
}

}  // namespace
}  // namespace tasq

int main() {
  using namespace tasq;
  using namespace tasq::bench;

  auto generator = MakeGenerator(7);
  std::printf("training pipeline...\n");
  TasqOptions options;
  options.nn.epochs = 40;
  options.gnn.epochs = 2;
  options.gnn.gcn_hidden = {8};
  options.gnn.head_hidden = {8};
  options.xgb.gbdt.num_trees = 40;
  Tasq pipeline(options);
  auto observed = ObserveJobs(generator, 0, 300, 1);
  if (!pipeline.Train(observed).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  auto make_request = [&](int64_t job_id) {
    Job job = generator.GenerateJob(job_id);
    ScoreRequest request;
    request.graph = job.graph;
    request.model = ModelKind::kNn;
    request.reference_tokens = job.default_tokens;
    return request;
  };

  // Cold cache: every request is a distinct job, so every request pays one
  // model inference (batched across a worker's pull).
  const int64_t kColdRequests = 240;
  std::vector<ScoreRequest> cold;
  for (int64_t i = 0; i < kColdRequests; ++i) {
    cold.push_back(make_request(2000 + i));
  }
  BenchJson json;
  json.SetString("bench", "serving");
  json.Set("cold_requests", static_cast<uint64_t>(kColdRequests));

  std::printf("\ncold cache, %lld unique requests:\n",
              static_cast<long long>(kColdRequests));
  double cold_baseline = 0.0;
  for (unsigned threads : {1u, 2u, 8u}) {
    StreamRun run = RunStream(pipeline, cold, threads, /*cache_capacity=*/0);
    double rps = static_cast<double>(run.stats.completed) / run.seconds;
    if (threads == 1) cold_baseline = rps;
    PrintRow(threads, run, cold_baseline);
    char key[48];
    std::snprintf(key, sizeof(key), "cold_req_per_s_t%u", threads);
    json.Set(key, rps);
  }

  // Cold submit path allocations/request: one thread, cache off, the
  // request stream moved in so only serving-side work is measured —
  // promise/future machinery, queue entries, featurization, NN inference,
  // report assembly. The arena-backed BatchScratch plus scratch-reusing
  // featurize/inference path (PR 9) holds this to the single-digit
  // steady-state budget enforced by tests/hot_path_test.cc.
  {
    std::vector<ScoreRequest> stream = cold;  // Copy outside the meter.
    PccServerOptions cold_options;
    cold_options.num_threads = 1;
    cold_options.queue_capacity = 64;
    cold_options.max_batch = 16;
    cold_options.cache_capacity = 0;
    PccServer server(pipeline, cold_options);
    uint64_t allocations_before = tasq_test::AllocationCount();
    std::vector<Result<WhatIfReport>> results =
        server.ScoreBatch(std::move(stream));
    uint64_t allocations = tasq_test::AllocationCount() - allocations_before;
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "cold request failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    double per_request = static_cast<double>(allocations) /
                         static_cast<double>(results.size());
    std::printf("\ncold submit path: %.2f allocations/request "
                "(1 thread, cache off)\n",
                per_request);
    json.Set("cold_submit_allocations_per_request", per_request);
  }

  // Warm workload: 90% of requests recur from a 24-job working set (cache
  // hits after first touch), 10% are fresh jobs — the recurring-job regime
  // the fingerprint cache is built for.
  const int64_t kWarmRequests = 600;
  const int64_t kWorkingSet = 24;
  Rng rng(41);
  std::vector<ScoreRequest> warm;
  int64_t next_fresh = 5000;
  for (int64_t i = 0; i < kWarmRequests; ++i) {
    if (rng.Uniform(0.0, 1.0) < 0.9) {
      int64_t pick = static_cast<int64_t>(
          rng.Uniform(0.0, static_cast<double>(kWorkingSet) - 0.001));
      warm.push_back(make_request(4000 + pick));
    } else {
      warm.push_back(make_request(next_fresh++));
    }
  }
  std::printf("\nwarm workload, %lld requests (90%% from a %lld-job "
              "working set):\n",
              static_cast<long long>(kWarmRequests),
              static_cast<long long>(kWorkingSet));
  json.Set("warm_requests", static_cast<uint64_t>(kWarmRequests));
  json.Set("warm_working_set", static_cast<uint64_t>(kWorkingSet));
  StreamRun last;
  for (unsigned threads : {1u, 2u, 8u}) {
    uint64_t allocations_before = tasq_test::AllocationCount();
    last = RunStream(pipeline, warm, threads, /*cache_capacity=*/4096);
    uint64_t allocations =
        tasq_test::AllocationCount() - allocations_before;
    PrintRow(threads, last, cold_baseline);
    char key[48];
    std::snprintf(key, sizeof(key), "warm_req_per_s_t%u", threads);
    json.Set(key, static_cast<double>(last.stats.completed) / last.seconds);
    if (threads == 8) {
      // Submit-path cost of the mixed 90/10 workload: futures, queue
      // entries, inference scratch — everything, process-wide.
      json.Set("warm_submit_allocations_per_request",
               static_cast<double>(allocations) /
                   static_cast<double>(last.stats.completed));
    }
  }
  // End-to-end latency distribution of the largest warm run (ms -> ns).
  json.Set("warm_p50_ns", last.stats.end_to_end.p50_ms() * 1e6);
  json.Set("warm_p99_ns", last.stats.end_to_end.p99_ms() * 1e6);
  json.Set("warm_max_ns", last.stats.end_to_end.max_ms * 1e6);
  json.Set("warm_mean_ns", last.stats.end_to_end.mean_ms() * 1e6);

  // The TASQ_HOT fast path: synchronous TryScoreCached against a primed
  // cache with one reused report buffer — the zero-allocation serving
  // loop that scripts/tasq_hot.py and tests/hot_path_test.cc enforce.
  {
    PccServerOptions options;
    options.num_threads = 1;
    options.cache_capacity = 4096;
    PccServer server(pipeline, options);
    std::vector<ScoreRequest> working_set;
    for (int64_t i = 0; i < kWorkingSet; ++i) {
      working_set.push_back(make_request(4000 + i));
    }
    for (const ScoreRequest& request : working_set) {
      Result<WhatIfReport> primed = server.Score(request);
      if (!primed.ok()) {
        std::fprintf(stderr, "priming failed: %s\n",
                     primed.status().ToString().c_str());
        return 1;
      }
    }
    WhatIfReport buffer;
    (void)server.TryScoreCached(working_set[0], &buffer);  // Warm buffer.
    const int64_t kFastRequests = 200000;
    uint64_t allocations_before = tasq_test::AllocationCount();
    auto start = std::chrono::steady_clock::now();
    int64_t hits = 0;
    for (int64_t i = 0; i < kFastRequests; ++i) {
      hits += server.TryScoreCached(
          working_set[static_cast<size_t>(i % kWorkingSet)], &buffer);
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    uint64_t allocations =
        tasq_test::AllocationCount() - allocations_before;
    double fast_rps = static_cast<double>(hits) / seconds;
    double allocations_per_request =
        static_cast<double>(allocations) / static_cast<double>(kFastRequests);
    ServerStats stats = server.Stats();
    std::printf("\nfast path (TryScoreCached, warm cache, 1 thread):\n"
                "  %12.0f req/s   p50 %.0f ns   p99 %.0f ns   "
                "%.4f allocations/request\n",
                fast_rps, stats.end_to_end.p50_ms() * 1e6,
                stats.end_to_end.p99_ms() * 1e6, allocations_per_request);
    json.Set("fastpath_requests", static_cast<uint64_t>(kFastRequests));
    json.Set("fastpath_req_per_s", fast_rps);
    json.Set("fastpath_p50_ns", stats.end_to_end.p50_ms() * 1e6);
    json.Set("fastpath_p99_ns", stats.end_to_end.p99_ms() * 1e6);
    json.Set("fastpath_allocations_per_request", allocations_per_request);
  }

  std::printf("\nserver stats (warm, 8 threads):\n%s",
              last.stats.ToText().c_str());
  if (json.WriteFile("BENCH_serving.json")) {
    std::printf("\nwrote BENCH_serving.json\n");
  }
  return 0;
}
