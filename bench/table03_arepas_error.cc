// Reproduces Table 3: AREPAS run-time estimation error against flighted
// ground truth — MedianAPE and MeanAPE over the non-anomalous and
// fully-matched job subsets.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

namespace tasq {

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto validation = bench::RunArepasValidation(2000, sizes.flight_jobs, 1313);

  PrintBanner(std::cout, "Table 3: AREPAS error compared to ground truth");
  TextTable table({"Job Groups", "N Executions", "MedianAPE", "MeanAPE"});
  table.AddRow({"Non-anomalous subset",
                Cell(static_cast<int64_t>(
                    validation.errors_non_anomalous.size())),
                Cell(Median(validation.errors_non_anomalous), 0) + "%",
                Cell(Mean(validation.errors_non_anomalous), 0) + "%"});
  table.AddRow({"Fully-matched subset",
                Cell(static_cast<int64_t>(
                    validation.errors_fully_matched.size())),
                Cell(Median(validation.errors_fully_matched), 0) + "%",
                Cell(Mean(validation.errors_fully_matched), 0) + "%"});
  std::cout << table.ToString();
  std::printf(
      "\nflighted jobs: %zu total, %zu non-anomalous, %zu fully-matched\n",
      validation.flighted.size(), validation.non_anomalous.size(),
      validation.fully_matched.size());
  std::cout << "Paper: 296 executions MedianAPE 9% / MeanAPE 14% "
               "(non-anomalous); 97 executions 22% / 25% (fully-matched).\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
