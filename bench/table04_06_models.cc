// Reproduces Tables 4-6: model comparison on the historical dataset under
// the three loss functions. For each loss form the four models are scored
// on Pattern (% monotone non-increasing PCCs), MAE of the scaled curve
// parameters, and median absolute percent error of run-time prediction at
// the observed token count.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "tasq/evaluation.h"

namespace tasq {
namespace {

void PrintTable(const char* title, const Tasq& pipeline,
                const Dataset& test) {
  PrintBanner(std::cout, title);
  TextTable table({"Model", "Pattern (Non-Increase)", "MAE (Curve Params)",
                   "Median AE (Run Time)"});
  for (ModelKind kind : {ModelKind::kXgboostSs, ModelKind::kXgboostPl,
                         ModelKind::kNn, ModelKind::kGnn}) {
    auto metrics =
        bench::Unwrap(EvaluateModel(pipeline, kind, test), "evaluate");
    table.AddRow({ModelKindName(kind),
                  Cell(metrics.pattern_nonincrease_percent, 0) + "%",
                  metrics.has_curve_params()
                      ? Cell(metrics.mae_curve_params, 3)
                      : std::string("NA"),
                  Cell(metrics.median_ae_runtime_percent, 0) + "%"});
  }
  std::cout << table.ToString();
}

}  // namespace

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  std::printf("training on %lld jobs, testing on %lld jobs "
              "(historical dataset; targets are AREPAS proxies)\n",
              static_cast<long long>(sizes.train_jobs),
              static_cast<long long>(sizes.test_jobs));
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);
  auto test = bench::ObserveJobs(generator, sizes.train_jobs, sizes.test_jobs,
                                 22);
  Dataset test_dataset =
      bench::Unwrap(DatasetBuilder().Build(test), "test dataset");

  struct Form {
    LossForm form;
    const char* title;
    const char* paper;
  };
  const Form forms[] = {
      {LossForm::kLF1, "Table 4: results for loss function LF1",
       "Paper: SS 41%/NA/13%, PL 73%/0.232/13%, NN 100%/0.086/31%, GNN "
       "100%/0.071/31%"},
      {LossForm::kLF2, "Table 5: results for loss function LF2",
       "Paper: SS 41%/NA/13%, PL 73%/0.232/13%, NN 100%/0.090/22%, GNN "
       "100%/0.071/20%"},
      {LossForm::kLF3, "Table 6: results for loss function LF3",
       "Paper: SS 41%/NA/13%, PL 73%/0.232/13%, NN 100%/0.083/22%, GNN "
       "100%/0.077/21%"},
  };
  for (const Form& form : forms) {
    Tasq pipeline(bench::BenchTasqOptions(form.form));
    Status trained = pipeline.Train(train);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      return 1;
    }
    PrintTable(form.title, pipeline, test_dataset);
    std::printf("%s\n", form.paper);
  }
  std::cout << "\nExpected shape: XGBoost has the best run-time point error "
               "but cannot guarantee a non-increasing pattern; NN/GNN are "
               "100% monotone with lower curve-parameter MAE; LF2 improves "
               "their run-time error substantially over LF1; LF3 ~ LF2.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
