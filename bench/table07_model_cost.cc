// Reproduces Table 7: parameter counts, per-epoch training time, and
// inference time per 10,000 jobs for the NN and GNN models.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "gnn/gnn_model.h"
#include "nn/nn_model.h"
#include "tasq/evaluation.h"

namespace tasq {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  auto observed = bench::ObserveJobs(generator, 0, sizes.train_jobs, 31);
  Dataset dataset = bench::Unwrap(DatasetBuilder().Build(observed), "dataset");
  auto scalers = bench::Unwrap(FitScalers(dataset), "scalers");
  ApplyScalers(scalers, dataset);

  PccSupervision supervision;
  supervision.targets = dataset.targets;
  supervision.observed_tokens = dataset.observed_tokens;
  supervision.observed_runtime = dataset.observed_runtime;

  // ---- NN: time one epoch of training and batch inference. -------------
  NnOptions nn_options;
  nn_options.epochs = 1;
  NnPccModel nn(dataset.job_feature_dim, nn_options);
  auto start = std::chrono::steady_clock::now();
  bench::Unwrap(nn.Train(dataset.job_features, supervision), "nn train");
  double nn_epoch_seconds = SecondsSince(start);

  start = std::chrono::steady_clock::now();
  int nn_rounds = 0;
  while (SecondsSince(start) < 0.5) {
    bench::Unwrap(nn.PredictBatch(dataset.job_features, dataset.size()),
                  "nn predict");
    ++nn_rounds;
  }
  double nn_per_10k = SecondsSince(start) /
                      (static_cast<double>(nn_rounds) *
                       static_cast<double>(dataset.size())) *
                      10000.0;

  // ---- GNN: same protocol, one graph at a time. --------------------------
  GnnOptions gnn_options;
  gnn_options.epochs = 1;
  GnnPccModel gnn(dataset.op_feature_dim, gnn_options);
  start = std::chrono::steady_clock::now();
  bench::Unwrap(gnn.Train(dataset.graphs, supervision), "gnn train");
  double gnn_epoch_seconds = SecondsSince(start);

  start = std::chrono::steady_clock::now();
  size_t gnn_predictions = 0;
  while (SecondsSince(start) < 0.5) {
    for (const GraphExample& graph : dataset.graphs) {
      bench::Unwrap(gnn.Predict(graph), "gnn predict");
      ++gnn_predictions;
    }
  }
  double gnn_per_10k =
      SecondsSince(start) / static_cast<double>(gnn_predictions) * 10000.0;

  PrintBanner(std::cout, "Table 7: parameter counts, training and inference times");
  std::printf("(timed over %zu jobs; times scale with workload size)\n\n",
              dataset.size());
  TextTable table({"Model", "Number of Parameters", "Training (s/epoch)",
                   "Inference (s/10,000 jobs)"});
  table.AddRow({"NN", Cell(nn.NumParameters()), Cell(nn_epoch_seconds, 3),
                Cell(nn_per_10k, 3)});
  table.AddRow({"GNN", Cell(gnn.NumParameters()), Cell(gnn_epoch_seconds, 3),
                Cell(gnn_per_10k, 3)});
  std::cout << table.ToString();
  std::printf("\nGNN/NN ratios: %.0fx parameters, %.0fx training, %.0fx "
              "inference\n",
              static_cast<double>(gnn.NumParameters()) /
                  static_cast<double>(nn.NumParameters()),
              gnn_epoch_seconds / nn_epoch_seconds, gnn_per_10k / nn_per_10k);
  std::cout << "Paper: NN 2,216 params, 2 s/epoch, 0.09 s per 10k jobs; GNN "
               "19,210 params, 913 s/epoch, 78 s per 10k jobs. Expected "
               "shape: GNN is much larger and much slower in both phases.\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
