// Reproduces Table 8 and the §5.4 workload-level analysis: model accuracy
// against flighted ground truth (jobs re-executed at multiple token
// counts), plus the W1/W2 token-savings vs slowdown trade-off.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "pcc/pcc.h"
#include "tasq/evaluation.h"

namespace tasq {
namespace {

struct FlightEval {
  double pattern_percent = 0.0;
  double mae_params = -1.0;
  double median_ae_runtime = 0.0;
};

}  // namespace

int Main() {
  auto sizes = bench::BenchSizes::FromEnv();
  auto generator = bench::MakeGenerator();
  std::printf("training pipeline on %lld jobs...\n",
              static_cast<long long>(sizes.train_jobs));
  auto train = bench::ObserveJobs(generator, 0, sizes.train_jobs, 21);
  Tasq pipeline(bench::BenchTasqOptions(LossForm::kLF2));
  Status trained = pipeline.Train(train);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.ToString().c_str());
    return 1;
  }

  // Flight a representative test subset (as selected in §5.1) and keep the
  // non-anomalous jobs.
  auto test_jobs = generator.Generate(sizes.train_jobs, sizes.flight_jobs);
  FlightConfig flight_config;
  flight_config.seed = 808;
  FlightHarness harness(flight_config);
  std::vector<FlightedJob> flighted = harness.FlightJobs(test_jobs);
  std::vector<const Job*> job_by_index;
  for (const Job& job : test_jobs) job_by_index.push_back(&job);

  size_t total_runs = 0;
  size_t monotone_jobs = 0;
  for (const FlightedJob& job : flighted) {
    total_runs += job.flights.size();
    if (job.monotone) ++monotone_jobs;
  }
  std::printf("flighted dataset: %zu jobs, %zu runs, %zu monotone within "
              "%.0f%% tolerance\n",
              flighted.size(), total_runs, monotone_jobs,
              flight_config.monotone_tolerance_percent);

  // ---- Table 8: model accuracy on the flighted dataset -------------------
  const PccTargetScaling& scaling = *pipeline.target_scaling();
  PrintBanner(std::cout, "Table 8: results on the flighted dataset");
  TextTable table({"Model", "Pattern (Non-Increase)", "MAE (Curve Params)",
                   "Median AE (Run Time)", "per-flight AE (100/80/60/20%)"});
  for (ModelKind kind : {ModelKind::kXgboostSs, ModelKind::kXgboostPl,
                         ModelKind::kNn, ModelKind::kGnn}) {
    FlightEval eval;
    std::vector<double> predicted_runtimes;
    std::vector<double> actual_runtimes;
    std::vector<std::vector<double>> per_flight_pred(4);
    std::vector<std::vector<double>> per_flight_actual(4);
    std::vector<double> param_errors;
    size_t monotone = 0;
    size_t jobs_evaluated = 0;
    for (size_t j = 0; j < flighted.size(); ++j) {
      const FlightedJob& fj = flighted[j];
      const Job& job = *job_by_index[j];
      double reference = fj.reference_tokens;
      // Run-time predictions at every flighted token count.
      for (size_t f = 0; f < fj.flights.size(); ++f) {
        const FlightRecord& record = fj.flights[f];
        Result<double> prediction = pipeline.PredictRuntime(
            job.graph, kind, reference, record.tokens);
        if (!prediction.ok()) continue;
        predicted_runtimes.push_back(prediction.value());
        actual_runtimes.push_back(record.runtime_seconds);
        if (f < per_flight_pred.size()) {
          per_flight_pred[f].push_back(prediction.value());
          per_flight_actual[f].push_back(record.runtime_seconds);
        }
      }
      ++jobs_evaluated;
      // Pattern and curve parameters.
      if (kind == ModelKind::kXgboostSs) {
        std::vector<double> grid;
        for (const FlightRecord& record : fj.flights) {
          grid.push_back(record.tokens);
        }
        std::sort(grid.begin(), grid.end());
        Result<std::vector<PccSample>> curve =
            pipeline.PredictCurve(job.graph, kind, reference, grid);
        if (curve.ok() && IsCurveMonotoneNonIncreasing(curve.value())) {
          ++monotone;
        }
        continue;
      }
      Result<PowerLawPcc> predicted =
          pipeline.PredictPcc(job.graph, kind, reference);
      if (!predicted.ok()) continue;
      if (predicted.value().IsMonotoneNonIncreasing()) ++monotone;
      // Ground-truth curve parameters from the flighted runs.
      std::vector<PccSample> truth_samples;
      for (const FlightRecord& record : fj.flights) {
        truth_samples.push_back({record.tokens, record.runtime_seconds});
      }
      Result<PowerLawFit> truth = FitPowerLaw(truth_samples);
      if (!truth.ok()) continue;
      auto [p1, p2] = scaling.ToScaled(predicted.value());
      auto [t1, t2] = scaling.ToScaled(truth.value().pcc);
      double signed_p1 =
          predicted.value().IsMonotoneNonIncreasing() ? p1 : -p1;
      double signed_t1 =
          truth.value().pcc.IsMonotoneNonIncreasing() ? t1 : -t1;
      param_errors.push_back(
          0.5 * (std::fabs(signed_p1 - signed_t1) + std::fabs(p2 - t2)));
    }
    eval.pattern_percent = 100.0 * static_cast<double>(monotone) /
                           static_cast<double>(std::max<size_t>(1, jobs_evaluated));
    eval.median_ae_runtime =
        MedianAbsolutePercentError(predicted_runtimes, actual_runtimes);
    if (!param_errors.empty()) eval.mae_params = Mean(param_errors);
    std::string per_flight;
    for (size_t f = 0; f < per_flight_pred.size(); ++f) {
      if (per_flight_pred[f].empty()) continue;
      if (!per_flight.empty()) per_flight += " / ";
      per_flight += Cell(MedianAbsolutePercentError(per_flight_pred[f],
                                                    per_flight_actual[f]),
                         0) +
                    "%";
    }
    table.AddRow({ModelKindName(kind), Cell(eval.pattern_percent, 0) + "%",
                  eval.mae_params >= 0.0 ? Cell(eval.mae_params, 3)
                                         : std::string("NA"),
                  Cell(eval.median_ae_runtime, 0) + "%", per_flight});
  }
  std::cout << table.ToString();
  std::cout << "Paper: SS 32%/NA/53%, PL 93%/0.202/52%, NN 100%/0.163/39%, "
               "GNN 100%/0.168/33%. Expected shape: all errors grow vs the "
               "historical set; XGBoost degrades most; NN/GNN stay 100% "
               "monotone.\n";

  // ---- Workload-level token savings (W1/W2) ------------------------------
  PrintBanner(std::cout, "Workload-level token savings vs slowdown (paper §5.4)");
  double w1_tokens = 0.0;
  double b1_tokens = 0.0;
  double w1_runtime = 0.0;
  double b1_runtime = 0.0;
  double w1_pred_runtime = 0.0;
  double b1_pred_runtime = 0.0;
  double w2_tokens = 0.0;
  double b2_tokens = 0.0;
  double w2_runtime = 0.0;
  double b2_runtime = 0.0;
  double w2_pred_runtime = 0.0;
  double b2_pred_runtime = 0.0;
  for (size_t j = 0; j < flighted.size(); ++j) {
    const FlightedJob& fj = flighted[j];
    if (fj.flights.size() < 2) continue;
    const Job& job = *job_by_index[j];
    const FlightRecord& largest = fj.flights.front();
    auto predict = [&](double tokens) {
      return bench::Unwrap(
          pipeline.PredictRuntime(job.graph, ModelKind::kGnn,
                                  fj.reference_tokens, tokens),
          "predict");
    };
    double pred_at_largest = predict(largest.tokens);
    // W1: every run at its flighted token count; B1: every run at the
    // job's largest flighted count.
    for (const FlightRecord& record : fj.flights) {
      w1_tokens += record.tokens;
      b1_tokens += largest.tokens;
      w1_runtime += record.runtime_seconds;
      b1_runtime += largest.runtime_seconds;
      w1_pred_runtime += predict(record.tokens);
      b1_pred_runtime += pred_at_largest;
    }
    // W2: one run per job at the second-largest count; B2 at the largest.
    const FlightRecord& second = fj.flights[1];
    w2_tokens += second.tokens;
    b2_tokens += largest.tokens;
    w2_runtime += second.runtime_seconds;
    b2_runtime += largest.runtime_seconds;
    w2_pred_runtime += predict(second.tokens);
    b2_pred_runtime += pred_at_largest;
  }
  TextTable savings({"Workload", "Tokens", "Baseline tokens", "Token savings",
                     "Actual slowdown", "GNN predicted slowdown"});
  savings.AddRow(
      {"W1 (all flighted runs)", Cell(w1_tokens, 0), Cell(b1_tokens, 0),
       Cell(100.0 * (1.0 - w1_tokens / b1_tokens), 0) + "%",
       Cell(100.0 * (w1_runtime / b1_runtime - 1.0), 0) + "%",
       Cell(100.0 * (w1_pred_runtime / b1_pred_runtime - 1.0), 0) + "%"});
  savings.AddRow(
      {"W2 (second-largest per job)", Cell(w2_tokens, 0), Cell(b2_tokens, 0),
       Cell(100.0 * (1.0 - w2_tokens / b2_tokens), 0) + "%",
       Cell(100.0 * (w2_runtime / b2_runtime - 1.0), 0) + "%",
       Cell(100.0 * (w2_pred_runtime / b2_pred_runtime - 1.0), 0) + "%"});
  std::cout << savings.ToString();
  std::cout << "\nPaper: W1 saves 23% tokens at 18% slowdown (GNN predicted "
               "8%); W2 saves 20% at 8% slowdown (predicted 5%).\n";
  return 0;
}

}  // namespace tasq

int main() { return tasq::Main(); }
