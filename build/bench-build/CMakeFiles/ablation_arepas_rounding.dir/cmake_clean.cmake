file(REMOVE_RECURSE
  "../bench/ablation_arepas_rounding"
  "../bench/ablation_arepas_rounding.pdb"
  "CMakeFiles/ablation_arepas_rounding.dir/ablation_arepas_rounding.cc.o"
  "CMakeFiles/ablation_arepas_rounding.dir/ablation_arepas_rounding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arepas_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
