# Empty dependencies file for ablation_arepas_rounding.
# This may be replaced when dependencies are built.
