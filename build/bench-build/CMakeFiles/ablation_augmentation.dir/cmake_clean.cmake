file(REMOVE_RECURSE
  "../bench/ablation_augmentation"
  "../bench/ablation_augmentation.pdb"
  "CMakeFiles/ablation_augmentation.dir/ablation_augmentation.cc.o"
  "CMakeFiles/ablation_augmentation.dir/ablation_augmentation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
