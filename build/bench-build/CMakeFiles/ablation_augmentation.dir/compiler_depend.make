# Empty compiler generated dependencies file for ablation_augmentation.
# This may be replaced when dependencies are built.
