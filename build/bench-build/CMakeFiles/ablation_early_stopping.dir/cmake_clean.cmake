file(REMOVE_RECURSE
  "../bench/ablation_early_stopping"
  "../bench/ablation_early_stopping.pdb"
  "CMakeFiles/ablation_early_stopping.dir/ablation_early_stopping.cc.o"
  "CMakeFiles/ablation_early_stopping.dir/ablation_early_stopping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_early_stopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
