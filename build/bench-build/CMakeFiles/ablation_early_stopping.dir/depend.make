# Empty dependencies file for ablation_early_stopping.
# This may be replaced when dependencies are built.
