file(REMOVE_RECURSE
  "../bench/ablation_gnn_pooling"
  "../bench/ablation_gnn_pooling.pdb"
  "CMakeFiles/ablation_gnn_pooling.dir/ablation_gnn_pooling.cc.o"
  "CMakeFiles/ablation_gnn_pooling.dir/ablation_gnn_pooling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gnn_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
