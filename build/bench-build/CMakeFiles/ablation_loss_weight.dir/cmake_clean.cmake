file(REMOVE_RECURSE
  "../bench/ablation_loss_weight"
  "../bench/ablation_loss_weight.pdb"
  "CMakeFiles/ablation_loss_weight.dir/ablation_loss_weight.cc.o"
  "CMakeFiles/ablation_loss_weight.dir/ablation_loss_weight.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loss_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
