# Empty compiler generated dependencies file for ablation_loss_weight.
# This may be replaced when dependencies are built.
