file(REMOVE_RECURSE
  "../bench/baseline_autotoken"
  "../bench/baseline_autotoken.pdb"
  "CMakeFiles/baseline_autotoken.dir/baseline_autotoken.cc.o"
  "CMakeFiles/baseline_autotoken.dir/baseline_autotoken.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_autotoken.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
