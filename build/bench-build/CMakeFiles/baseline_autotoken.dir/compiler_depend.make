# Empty compiler generated dependencies file for baseline_autotoken.
# This may be replaced when dependencies are built.
