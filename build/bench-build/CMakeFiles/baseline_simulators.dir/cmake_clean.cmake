file(REMOVE_RECURSE
  "../bench/baseline_simulators"
  "../bench/baseline_simulators.pdb"
  "CMakeFiles/baseline_simulators.dir/baseline_simulators.cc.o"
  "CMakeFiles/baseline_simulators.dir/baseline_simulators.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
