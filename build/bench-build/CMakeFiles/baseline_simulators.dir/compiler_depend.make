# Empty compiler generated dependencies file for baseline_simulators.
# This may be replaced when dependencies are built.
