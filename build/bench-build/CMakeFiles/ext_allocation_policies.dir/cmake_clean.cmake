file(REMOVE_RECURSE
  "../bench/ext_allocation_policies"
  "../bench/ext_allocation_policies.pdb"
  "CMakeFiles/ext_allocation_policies.dir/ext_allocation_policies.cc.o"
  "CMakeFiles/ext_allocation_policies.dir/ext_allocation_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_allocation_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
