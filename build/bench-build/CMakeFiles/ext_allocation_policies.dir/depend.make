# Empty dependencies file for ext_allocation_policies.
# This may be replaced when dependencies are built.
