file(REMOVE_RECURSE
  "../bench/ext_model_drift"
  "../bench/ext_model_drift.pdb"
  "CMakeFiles/ext_model_drift.dir/ext_model_drift.cc.o"
  "CMakeFiles/ext_model_drift.dir/ext_model_drift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_model_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
