# Empty dependencies file for ext_model_drift.
# This may be replaced when dependencies are built.
