file(REMOVE_RECURSE
  "../bench/ext_scheduler_wait_times"
  "../bench/ext_scheduler_wait_times.pdb"
  "CMakeFiles/ext_scheduler_wait_times.dir/ext_scheduler_wait_times.cc.o"
  "CMakeFiles/ext_scheduler_wait_times.dir/ext_scheduler_wait_times.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scheduler_wait_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
