# Empty compiler generated dependencies file for ext_scheduler_wait_times.
# This may be replaced when dependencies are built.
