file(REMOVE_RECURSE
  "../bench/ext_seed_robustness"
  "../bench/ext_seed_robustness.pdb"
  "CMakeFiles/ext_seed_robustness.dir/ext_seed_robustness.cc.o"
  "CMakeFiles/ext_seed_robustness.dir/ext_seed_robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
