# Empty compiler generated dependencies file for ext_seed_robustness.
# This may be replaced when dependencies are built.
