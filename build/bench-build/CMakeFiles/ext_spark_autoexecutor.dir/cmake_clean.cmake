file(REMOVE_RECURSE
  "../bench/ext_spark_autoexecutor"
  "../bench/ext_spark_autoexecutor.pdb"
  "CMakeFiles/ext_spark_autoexecutor.dir/ext_spark_autoexecutor.cc.o"
  "CMakeFiles/ext_spark_autoexecutor.dir/ext_spark_autoexecutor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spark_autoexecutor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
