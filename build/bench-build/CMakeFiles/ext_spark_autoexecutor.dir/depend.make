# Empty dependencies file for ext_spark_autoexecutor.
# This may be replaced when dependencies are built.
