file(REMOVE_RECURSE
  "../bench/fig01_allocation_policies"
  "../bench/fig01_allocation_policies.pdb"
  "CMakeFiles/fig01_allocation_policies.dir/fig01_allocation_policies.cc.o"
  "CMakeFiles/fig01_allocation_policies.dir/fig01_allocation_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_allocation_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
