# Empty compiler generated dependencies file for fig01_allocation_policies.
# This may be replaced when dependencies are built.
