file(REMOVE_RECURSE
  "../bench/fig02_token_reduction"
  "../bench/fig02_token_reduction.pdb"
  "CMakeFiles/fig02_token_reduction.dir/fig02_token_reduction.cc.o"
  "CMakeFiles/fig02_token_reduction.dir/fig02_token_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_token_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
