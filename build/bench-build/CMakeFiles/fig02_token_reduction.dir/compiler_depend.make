# Empty compiler generated dependencies file for fig02_token_reduction.
# This may be replaced when dependencies are built.
