file(REMOVE_RECURSE
  "../bench/fig03_pcc_tradeoff"
  "../bench/fig03_pcc_tradeoff.pdb"
  "CMakeFiles/fig03_pcc_tradeoff.dir/fig03_pcc_tradeoff.cc.o"
  "CMakeFiles/fig03_pcc_tradeoff.dir/fig03_pcc_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pcc_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
