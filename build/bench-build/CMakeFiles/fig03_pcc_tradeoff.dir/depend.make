# Empty dependencies file for fig03_pcc_tradeoff.
# This may be replaced when dependencies are built.
