file(REMOVE_RECURSE
  "../bench/fig05_skyline_shapes"
  "../bench/fig05_skyline_shapes.pdb"
  "CMakeFiles/fig05_skyline_shapes.dir/fig05_skyline_shapes.cc.o"
  "CMakeFiles/fig05_skyline_shapes.dir/fig05_skyline_shapes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_skyline_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
