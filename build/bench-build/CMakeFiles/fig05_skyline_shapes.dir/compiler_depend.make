# Empty compiler generated dependencies file for fig05_skyline_shapes.
# This may be replaced when dependencies are built.
