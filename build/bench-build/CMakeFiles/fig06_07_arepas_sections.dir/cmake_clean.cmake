file(REMOVE_RECURSE
  "../bench/fig06_07_arepas_sections"
  "../bench/fig06_07_arepas_sections.pdb"
  "CMakeFiles/fig06_07_arepas_sections.dir/fig06_07_arepas_sections.cc.o"
  "CMakeFiles/fig06_07_arepas_sections.dir/fig06_07_arepas_sections.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_arepas_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
