# Empty compiler generated dependencies file for fig06_07_arepas_sections.
# This may be replaced when dependencies are built.
