file(REMOVE_RECURSE
  "../bench/fig09_powerlaw_fit"
  "../bench/fig09_powerlaw_fit.pdb"
  "CMakeFiles/fig09_powerlaw_fit.dir/fig09_powerlaw_fit.cc.o"
  "CMakeFiles/fig09_powerlaw_fit.dir/fig09_powerlaw_fit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_powerlaw_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
