# Empty dependencies file for fig09_powerlaw_fit.
# This may be replaced when dependencies are built.
