file(REMOVE_RECURSE
  "../bench/fig11_job_selection"
  "../bench/fig11_job_selection.pdb"
  "CMakeFiles/fig11_job_selection.dir/fig11_job_selection.cc.o"
  "CMakeFiles/fig11_job_selection.dir/fig11_job_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_job_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
