# Empty dependencies file for fig11_job_selection.
# This may be replaced when dependencies are built.
