file(REMOVE_RECURSE
  "../bench/fig12_area_conservation"
  "../bench/fig12_area_conservation.pdb"
  "CMakeFiles/fig12_area_conservation.dir/fig12_area_conservation.cc.o"
  "CMakeFiles/fig12_area_conservation.dir/fig12_area_conservation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_area_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
