# Empty dependencies file for fig12_area_conservation.
# This may be replaced when dependencies are built.
