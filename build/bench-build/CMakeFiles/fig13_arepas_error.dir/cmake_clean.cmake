file(REMOVE_RECURSE
  "../bench/fig13_arepas_error"
  "../bench/fig13_arepas_error.pdb"
  "CMakeFiles/fig13_arepas_error.dir/fig13_arepas_error.cc.o"
  "CMakeFiles/fig13_arepas_error.dir/fig13_arepas_error.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_arepas_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
