# Empty compiler generated dependencies file for fig13_arepas_error.
# This may be replaced when dependencies are built.
