file(REMOVE_RECURSE
  "../bench/table03_arepas_error"
  "../bench/table03_arepas_error.pdb"
  "CMakeFiles/table03_arepas_error.dir/table03_arepas_error.cc.o"
  "CMakeFiles/table03_arepas_error.dir/table03_arepas_error.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_arepas_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
