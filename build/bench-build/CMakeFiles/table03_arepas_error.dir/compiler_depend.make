# Empty compiler generated dependencies file for table03_arepas_error.
# This may be replaced when dependencies are built.
