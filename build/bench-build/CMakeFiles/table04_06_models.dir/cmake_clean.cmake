file(REMOVE_RECURSE
  "../bench/table04_06_models"
  "../bench/table04_06_models.pdb"
  "CMakeFiles/table04_06_models.dir/table04_06_models.cc.o"
  "CMakeFiles/table04_06_models.dir/table04_06_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_06_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
