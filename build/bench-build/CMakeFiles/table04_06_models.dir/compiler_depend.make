# Empty compiler generated dependencies file for table04_06_models.
# This may be replaced when dependencies are built.
