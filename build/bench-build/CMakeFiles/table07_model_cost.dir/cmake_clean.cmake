file(REMOVE_RECURSE
  "../bench/table07_model_cost"
  "../bench/table07_model_cost.pdb"
  "CMakeFiles/table07_model_cost.dir/table07_model_cost.cc.o"
  "CMakeFiles/table07_model_cost.dir/table07_model_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_model_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
