# Empty dependencies file for table07_model_cost.
# This may be replaced when dependencies are built.
