file(REMOVE_RECURSE
  "../bench/table08_flighted"
  "../bench/table08_flighted.pdb"
  "CMakeFiles/table08_flighted.dir/table08_flighted.cc.o"
  "CMakeFiles/table08_flighted.dir/table08_flighted.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_flighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
