# Empty dependencies file for table08_flighted.
# This may be replaced when dependencies are built.
