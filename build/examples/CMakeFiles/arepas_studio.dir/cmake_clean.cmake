file(REMOVE_RECURSE
  "CMakeFiles/arepas_studio.dir/arepas_studio.cpp.o"
  "CMakeFiles/arepas_studio.dir/arepas_studio.cpp.o.d"
  "arepas_studio"
  "arepas_studio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arepas_studio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
