# Empty dependencies file for arepas_studio.
# This may be replaced when dependencies are built.
