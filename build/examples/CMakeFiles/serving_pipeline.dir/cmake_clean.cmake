file(REMOVE_RECURSE
  "CMakeFiles/serving_pipeline.dir/serving_pipeline.cpp.o"
  "CMakeFiles/serving_pipeline.dir/serving_pipeline.cpp.o.d"
  "serving_pipeline"
  "serving_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
