# Empty compiler generated dependencies file for serving_pipeline.
# This may be replaced when dependencies are built.
