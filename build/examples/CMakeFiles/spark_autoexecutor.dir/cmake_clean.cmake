file(REMOVE_RECURSE
  "CMakeFiles/spark_autoexecutor.dir/spark_autoexecutor.cpp.o"
  "CMakeFiles/spark_autoexecutor.dir/spark_autoexecutor.cpp.o.d"
  "spark_autoexecutor"
  "spark_autoexecutor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_autoexecutor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
