# Empty compiler generated dependencies file for spark_autoexecutor.
# This may be replaced when dependencies are built.
