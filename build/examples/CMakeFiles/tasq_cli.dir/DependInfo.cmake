
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tasq_cli.cpp" "examples/CMakeFiles/tasq_cli.dir/tasq_cli.cpp.o" "gcc" "examples/CMakeFiles/tasq_cli.dir/tasq_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasq/CMakeFiles/tasq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/tasq_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/arepas/CMakeFiles/tasq_arepas.dir/DependInfo.cmake"
  "/root/repo/build/src/feat/CMakeFiles/tasq_feat.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/tasq_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/tasq_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/tasq_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tasq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tasq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/pcc/CMakeFiles/tasq_pcc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tasq_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/tasq_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/skyline/CMakeFiles/tasq_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tasq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
