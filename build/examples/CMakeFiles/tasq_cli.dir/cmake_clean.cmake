file(REMOVE_RECURSE
  "CMakeFiles/tasq_cli.dir/tasq_cli.cpp.o"
  "CMakeFiles/tasq_cli.dir/tasq_cli.cpp.o.d"
  "tasq_cli"
  "tasq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
