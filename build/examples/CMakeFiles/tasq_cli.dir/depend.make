# Empty dependencies file for tasq_cli.
# This may be replaced when dependencies are built.
