file(REMOVE_RECURSE
  "CMakeFiles/workload_optimizer.dir/workload_optimizer.cpp.o"
  "CMakeFiles/workload_optimizer.dir/workload_optimizer.cpp.o.d"
  "workload_optimizer"
  "workload_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
