# Empty compiler generated dependencies file for workload_optimizer.
# This may be replaced when dependencies are built.
