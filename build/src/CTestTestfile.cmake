# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("skyline")
subdirs("arepas")
subdirs("pcc")
subdirs("simcluster")
subdirs("workload")
subdirs("feat")
subdirs("ml")
subdirs("nn")
subdirs("gnn")
subdirs("gbdt")
subdirs("selection")
subdirs("tasq")
subdirs("spark")
subdirs("baselines")
