file(REMOVE_RECURSE
  "CMakeFiles/tasq_arepas.dir/arepas.cc.o"
  "CMakeFiles/tasq_arepas.dir/arepas.cc.o.d"
  "libtasq_arepas.a"
  "libtasq_arepas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_arepas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
