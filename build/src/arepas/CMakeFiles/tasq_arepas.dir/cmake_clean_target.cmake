file(REMOVE_RECURSE
  "libtasq_arepas.a"
)
