# Empty compiler generated dependencies file for tasq_arepas.
# This may be replaced when dependencies are built.
