# Empty dependencies file for tasq_arepas.
# This may be replaced when dependencies are built.
