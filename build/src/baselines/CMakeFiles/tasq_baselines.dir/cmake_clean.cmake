file(REMOVE_RECURSE
  "CMakeFiles/tasq_baselines.dir/autotoken.cc.o"
  "CMakeFiles/tasq_baselines.dir/autotoken.cc.o.d"
  "CMakeFiles/tasq_baselines.dir/stage_simulators.cc.o"
  "CMakeFiles/tasq_baselines.dir/stage_simulators.cc.o.d"
  "libtasq_baselines.a"
  "libtasq_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
