file(REMOVE_RECURSE
  "libtasq_baselines.a"
)
