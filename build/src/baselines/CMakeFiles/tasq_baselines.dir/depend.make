# Empty dependencies file for tasq_baselines.
# This may be replaced when dependencies are built.
