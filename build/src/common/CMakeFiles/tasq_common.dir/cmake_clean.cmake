file(REMOVE_RECURSE
  "CMakeFiles/tasq_common.dir/rng.cc.o"
  "CMakeFiles/tasq_common.dir/rng.cc.o.d"
  "CMakeFiles/tasq_common.dir/stats.cc.o"
  "CMakeFiles/tasq_common.dir/stats.cc.o.d"
  "CMakeFiles/tasq_common.dir/status.cc.o"
  "CMakeFiles/tasq_common.dir/status.cc.o.d"
  "CMakeFiles/tasq_common.dir/table.cc.o"
  "CMakeFiles/tasq_common.dir/table.cc.o.d"
  "CMakeFiles/tasq_common.dir/text_io.cc.o"
  "CMakeFiles/tasq_common.dir/text_io.cc.o.d"
  "libtasq_common.a"
  "libtasq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
