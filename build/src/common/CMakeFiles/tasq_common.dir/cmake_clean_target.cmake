file(REMOVE_RECURSE
  "libtasq_common.a"
)
