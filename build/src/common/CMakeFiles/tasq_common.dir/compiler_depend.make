# Empty compiler generated dependencies file for tasq_common.
# This may be replaced when dependencies are built.
