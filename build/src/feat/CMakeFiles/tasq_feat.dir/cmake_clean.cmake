file(REMOVE_RECURSE
  "CMakeFiles/tasq_feat.dir/featurizer.cc.o"
  "CMakeFiles/tasq_feat.dir/featurizer.cc.o.d"
  "libtasq_feat.a"
  "libtasq_feat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_feat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
