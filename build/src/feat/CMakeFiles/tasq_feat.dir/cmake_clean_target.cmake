file(REMOVE_RECURSE
  "libtasq_feat.a"
)
