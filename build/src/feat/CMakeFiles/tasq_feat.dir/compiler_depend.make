# Empty compiler generated dependencies file for tasq_feat.
# This may be replaced when dependencies are built.
