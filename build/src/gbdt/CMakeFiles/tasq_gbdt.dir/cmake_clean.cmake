file(REMOVE_RECURSE
  "CMakeFiles/tasq_gbdt.dir/gbdt.cc.o"
  "CMakeFiles/tasq_gbdt.dir/gbdt.cc.o.d"
  "CMakeFiles/tasq_gbdt.dir/xgb_pcc.cc.o"
  "CMakeFiles/tasq_gbdt.dir/xgb_pcc.cc.o.d"
  "libtasq_gbdt.a"
  "libtasq_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
