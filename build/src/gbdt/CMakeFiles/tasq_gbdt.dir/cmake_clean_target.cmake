file(REMOVE_RECURSE
  "libtasq_gbdt.a"
)
