# Empty compiler generated dependencies file for tasq_gbdt.
# This may be replaced when dependencies are built.
