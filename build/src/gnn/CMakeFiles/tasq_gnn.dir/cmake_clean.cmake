file(REMOVE_RECURSE
  "CMakeFiles/tasq_gnn.dir/gnn_model.cc.o"
  "CMakeFiles/tasq_gnn.dir/gnn_model.cc.o.d"
  "libtasq_gnn.a"
  "libtasq_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
