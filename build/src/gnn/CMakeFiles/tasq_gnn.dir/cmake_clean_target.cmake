file(REMOVE_RECURSE
  "libtasq_gnn.a"
)
