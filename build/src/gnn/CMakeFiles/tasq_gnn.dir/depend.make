# Empty dependencies file for tasq_gnn.
# This may be replaced when dependencies are built.
