
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/autograd.cc" "src/ml/CMakeFiles/tasq_ml.dir/autograd.cc.o" "gcc" "src/ml/CMakeFiles/tasq_ml.dir/autograd.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/tasq_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/tasq_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/matrix_io.cc" "src/ml/CMakeFiles/tasq_ml.dir/matrix_io.cc.o" "gcc" "src/ml/CMakeFiles/tasq_ml.dir/matrix_io.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/ml/CMakeFiles/tasq_ml.dir/optimizer.cc.o" "gcc" "src/ml/CMakeFiles/tasq_ml.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tasq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
