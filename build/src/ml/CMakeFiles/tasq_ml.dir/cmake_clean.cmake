file(REMOVE_RECURSE
  "CMakeFiles/tasq_ml.dir/autograd.cc.o"
  "CMakeFiles/tasq_ml.dir/autograd.cc.o.d"
  "CMakeFiles/tasq_ml.dir/matrix.cc.o"
  "CMakeFiles/tasq_ml.dir/matrix.cc.o.d"
  "CMakeFiles/tasq_ml.dir/matrix_io.cc.o"
  "CMakeFiles/tasq_ml.dir/matrix_io.cc.o.d"
  "CMakeFiles/tasq_ml.dir/optimizer.cc.o"
  "CMakeFiles/tasq_ml.dir/optimizer.cc.o.d"
  "libtasq_ml.a"
  "libtasq_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
