file(REMOVE_RECURSE
  "libtasq_ml.a"
)
