# Empty compiler generated dependencies file for tasq_ml.
# This may be replaced when dependencies are built.
