# Empty dependencies file for tasq_ml.
# This may be replaced when dependencies are built.
