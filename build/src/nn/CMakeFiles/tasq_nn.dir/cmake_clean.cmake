file(REMOVE_RECURSE
  "CMakeFiles/tasq_nn.dir/nn_model.cc.o"
  "CMakeFiles/tasq_nn.dir/nn_model.cc.o.d"
  "CMakeFiles/tasq_nn.dir/pcc_loss.cc.o"
  "CMakeFiles/tasq_nn.dir/pcc_loss.cc.o.d"
  "libtasq_nn.a"
  "libtasq_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
