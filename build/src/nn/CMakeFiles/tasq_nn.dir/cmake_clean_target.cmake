file(REMOVE_RECURSE
  "libtasq_nn.a"
)
