# Empty compiler generated dependencies file for tasq_nn.
# This may be replaced when dependencies are built.
