file(REMOVE_RECURSE
  "CMakeFiles/tasq_pcc.dir/pcc.cc.o"
  "CMakeFiles/tasq_pcc.dir/pcc.cc.o.d"
  "libtasq_pcc.a"
  "libtasq_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
