file(REMOVE_RECURSE
  "libtasq_pcc.a"
)
