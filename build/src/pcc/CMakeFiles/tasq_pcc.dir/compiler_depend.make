# Empty compiler generated dependencies file for tasq_pcc.
# This may be replaced when dependencies are built.
