
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selection/flighting.cc" "src/selection/CMakeFiles/tasq_selection.dir/flighting.cc.o" "gcc" "src/selection/CMakeFiles/tasq_selection.dir/flighting.cc.o.d"
  "/root/repo/src/selection/job_selection.cc" "src/selection/CMakeFiles/tasq_selection.dir/job_selection.cc.o" "gcc" "src/selection/CMakeFiles/tasq_selection.dir/job_selection.cc.o.d"
  "/root/repo/src/selection/kmeans.cc" "src/selection/CMakeFiles/tasq_selection.dir/kmeans.cc.o" "gcc" "src/selection/CMakeFiles/tasq_selection.dir/kmeans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcluster/CMakeFiles/tasq_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tasq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tasq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/skyline/CMakeFiles/tasq_skyline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
