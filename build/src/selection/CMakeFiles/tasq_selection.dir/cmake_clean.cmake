file(REMOVE_RECURSE
  "CMakeFiles/tasq_selection.dir/flighting.cc.o"
  "CMakeFiles/tasq_selection.dir/flighting.cc.o.d"
  "CMakeFiles/tasq_selection.dir/job_selection.cc.o"
  "CMakeFiles/tasq_selection.dir/job_selection.cc.o.d"
  "CMakeFiles/tasq_selection.dir/kmeans.cc.o"
  "CMakeFiles/tasq_selection.dir/kmeans.cc.o.d"
  "libtasq_selection.a"
  "libtasq_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
