file(REMOVE_RECURSE
  "libtasq_selection.a"
)
