# Empty compiler generated dependencies file for tasq_selection.
# This may be replaced when dependencies are built.
