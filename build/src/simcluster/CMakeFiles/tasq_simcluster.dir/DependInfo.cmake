
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcluster/cluster_scheduler.cc" "src/simcluster/CMakeFiles/tasq_simcluster.dir/cluster_scheduler.cc.o" "gcc" "src/simcluster/CMakeFiles/tasq_simcluster.dir/cluster_scheduler.cc.o.d"
  "/root/repo/src/simcluster/cluster_simulator.cc" "src/simcluster/CMakeFiles/tasq_simcluster.dir/cluster_simulator.cc.o" "gcc" "src/simcluster/CMakeFiles/tasq_simcluster.dir/cluster_simulator.cc.o.d"
  "/root/repo/src/simcluster/job_plan.cc" "src/simcluster/CMakeFiles/tasq_simcluster.dir/job_plan.cc.o" "gcc" "src/simcluster/CMakeFiles/tasq_simcluster.dir/job_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/skyline/CMakeFiles/tasq_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tasq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
