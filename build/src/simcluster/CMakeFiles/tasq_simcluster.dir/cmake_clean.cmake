file(REMOVE_RECURSE
  "CMakeFiles/tasq_simcluster.dir/cluster_scheduler.cc.o"
  "CMakeFiles/tasq_simcluster.dir/cluster_scheduler.cc.o.d"
  "CMakeFiles/tasq_simcluster.dir/cluster_simulator.cc.o"
  "CMakeFiles/tasq_simcluster.dir/cluster_simulator.cc.o.d"
  "CMakeFiles/tasq_simcluster.dir/job_plan.cc.o"
  "CMakeFiles/tasq_simcluster.dir/job_plan.cc.o.d"
  "libtasq_simcluster.a"
  "libtasq_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
