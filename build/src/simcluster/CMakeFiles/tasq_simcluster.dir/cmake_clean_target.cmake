file(REMOVE_RECURSE
  "libtasq_simcluster.a"
)
