# Empty dependencies file for tasq_simcluster.
# This may be replaced when dependencies are built.
