file(REMOVE_RECURSE
  "CMakeFiles/tasq_skyline.dir/skyline.cc.o"
  "CMakeFiles/tasq_skyline.dir/skyline.cc.o.d"
  "libtasq_skyline.a"
  "libtasq_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
