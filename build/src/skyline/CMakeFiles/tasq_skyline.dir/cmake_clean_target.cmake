file(REMOVE_RECURSE
  "libtasq_skyline.a"
)
