# Empty compiler generated dependencies file for tasq_skyline.
# This may be replaced when dependencies are built.
