file(REMOVE_RECURSE
  "CMakeFiles/tasq_spark.dir/autoexecutor.cc.o"
  "CMakeFiles/tasq_spark.dir/autoexecutor.cc.o.d"
  "libtasq_spark.a"
  "libtasq_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
