file(REMOVE_RECURSE
  "libtasq_spark.a"
)
