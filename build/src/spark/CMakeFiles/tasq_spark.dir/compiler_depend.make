# Empty compiler generated dependencies file for tasq_spark.
# This may be replaced when dependencies are built.
