# Empty dependencies file for tasq_spark.
# This may be replaced when dependencies are built.
