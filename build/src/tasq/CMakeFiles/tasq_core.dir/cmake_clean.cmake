file(REMOVE_RECURSE
  "CMakeFiles/tasq_core.dir/dataset.cc.o"
  "CMakeFiles/tasq_core.dir/dataset.cc.o.d"
  "CMakeFiles/tasq_core.dir/evaluation.cc.o"
  "CMakeFiles/tasq_core.dir/evaluation.cc.o.d"
  "CMakeFiles/tasq_core.dir/repository.cc.o"
  "CMakeFiles/tasq_core.dir/repository.cc.o.d"
  "CMakeFiles/tasq_core.dir/tasq.cc.o"
  "CMakeFiles/tasq_core.dir/tasq.cc.o.d"
  "CMakeFiles/tasq_core.dir/what_if.cc.o"
  "CMakeFiles/tasq_core.dir/what_if.cc.o.d"
  "libtasq_core.a"
  "libtasq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
