file(REMOVE_RECURSE
  "libtasq_core.a"
)
