# Empty compiler generated dependencies file for tasq_core.
# This may be replaced when dependencies are built.
