file(REMOVE_RECURSE
  "CMakeFiles/tasq_workload.dir/generator.cc.o"
  "CMakeFiles/tasq_workload.dir/generator.cc.o.d"
  "CMakeFiles/tasq_workload.dir/job_graph.cc.o"
  "CMakeFiles/tasq_workload.dir/job_graph.cc.o.d"
  "CMakeFiles/tasq_workload.dir/operators.cc.o"
  "CMakeFiles/tasq_workload.dir/operators.cc.o.d"
  "libtasq_workload.a"
  "libtasq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
