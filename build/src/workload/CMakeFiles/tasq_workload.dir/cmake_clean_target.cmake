file(REMOVE_RECURSE
  "libtasq_workload.a"
)
