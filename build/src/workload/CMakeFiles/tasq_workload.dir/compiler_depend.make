# Empty compiler generated dependencies file for tasq_workload.
# This may be replaced when dependencies are built.
