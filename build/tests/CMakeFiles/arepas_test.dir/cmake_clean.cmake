file(REMOVE_RECURSE
  "CMakeFiles/arepas_test.dir/arepas_test.cc.o"
  "CMakeFiles/arepas_test.dir/arepas_test.cc.o.d"
  "arepas_test"
  "arepas_test.pdb"
  "arepas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arepas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
