# Empty compiler generated dependencies file for arepas_test.
# This may be replaced when dependencies are built.
