file(REMOVE_RECURSE
  "CMakeFiles/feat_test.dir/feat_test.cc.o"
  "CMakeFiles/feat_test.dir/feat_test.cc.o.d"
  "feat_test"
  "feat_test.pdb"
  "feat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
