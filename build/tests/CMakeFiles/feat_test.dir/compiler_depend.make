# Empty compiler generated dependencies file for feat_test.
# This may be replaced when dependencies are built.
