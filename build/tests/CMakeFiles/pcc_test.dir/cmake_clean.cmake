file(REMOVE_RECURSE
  "CMakeFiles/pcc_test.dir/pcc_test.cc.o"
  "CMakeFiles/pcc_test.dir/pcc_test.cc.o.d"
  "pcc_test"
  "pcc_test.pdb"
  "pcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
