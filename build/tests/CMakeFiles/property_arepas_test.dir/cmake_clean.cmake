file(REMOVE_RECURSE
  "CMakeFiles/property_arepas_test.dir/property_arepas_test.cc.o"
  "CMakeFiles/property_arepas_test.dir/property_arepas_test.cc.o.d"
  "property_arepas_test"
  "property_arepas_test.pdb"
  "property_arepas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_arepas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
