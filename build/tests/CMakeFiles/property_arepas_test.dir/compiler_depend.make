# Empty compiler generated dependencies file for property_arepas_test.
# This may be replaced when dependencies are built.
