file(REMOVE_RECURSE
  "CMakeFiles/property_gbdt_test.dir/property_gbdt_test.cc.o"
  "CMakeFiles/property_gbdt_test.dir/property_gbdt_test.cc.o.d"
  "property_gbdt_test"
  "property_gbdt_test.pdb"
  "property_gbdt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_gbdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
