# Empty compiler generated dependencies file for property_gbdt_test.
# This may be replaced when dependencies are built.
