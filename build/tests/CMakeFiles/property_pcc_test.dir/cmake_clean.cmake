file(REMOVE_RECURSE
  "CMakeFiles/property_pcc_test.dir/property_pcc_test.cc.o"
  "CMakeFiles/property_pcc_test.dir/property_pcc_test.cc.o.d"
  "property_pcc_test"
  "property_pcc_test.pdb"
  "property_pcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_pcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
