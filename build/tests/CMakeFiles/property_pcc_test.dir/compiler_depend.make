# Empty compiler generated dependencies file for property_pcc_test.
# This may be replaced when dependencies are built.
