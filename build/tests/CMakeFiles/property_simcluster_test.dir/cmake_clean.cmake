file(REMOVE_RECURSE
  "CMakeFiles/property_simcluster_test.dir/property_simcluster_test.cc.o"
  "CMakeFiles/property_simcluster_test.dir/property_simcluster_test.cc.o.d"
  "property_simcluster_test"
  "property_simcluster_test.pdb"
  "property_simcluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_simcluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
