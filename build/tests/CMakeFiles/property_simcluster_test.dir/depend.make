# Empty dependencies file for property_simcluster_test.
# This may be replaced when dependencies are built.
