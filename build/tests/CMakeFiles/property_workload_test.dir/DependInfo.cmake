
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_workload_test.cc" "tests/CMakeFiles/property_workload_test.dir/property_workload_test.cc.o" "gcc" "tests/CMakeFiles/property_workload_test.dir/property_workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tasq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/tasq_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/feat/CMakeFiles/tasq_feat.dir/DependInfo.cmake"
  "/root/repo/build/src/skyline/CMakeFiles/tasq_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tasq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
