file(REMOVE_RECURSE
  "CMakeFiles/property_workload_test.dir/property_workload_test.cc.o"
  "CMakeFiles/property_workload_test.dir/property_workload_test.cc.o.d"
  "property_workload_test"
  "property_workload_test.pdb"
  "property_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
