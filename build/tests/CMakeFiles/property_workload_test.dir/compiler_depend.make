# Empty compiler generated dependencies file for property_workload_test.
# This may be replaced when dependencies are built.
