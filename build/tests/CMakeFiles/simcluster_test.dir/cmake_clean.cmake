file(REMOVE_RECURSE
  "CMakeFiles/simcluster_test.dir/simcluster_test.cc.o"
  "CMakeFiles/simcluster_test.dir/simcluster_test.cc.o.d"
  "simcluster_test"
  "simcluster_test.pdb"
  "simcluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
