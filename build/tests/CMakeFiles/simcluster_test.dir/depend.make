# Empty dependencies file for simcluster_test.
# This may be replaced when dependencies are built.
