file(REMOVE_RECURSE
  "CMakeFiles/tasq_test.dir/tasq_test.cc.o"
  "CMakeFiles/tasq_test.dir/tasq_test.cc.o.d"
  "tasq_test"
  "tasq_test.pdb"
  "tasq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
