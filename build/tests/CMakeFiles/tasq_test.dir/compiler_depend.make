# Empty compiler generated dependencies file for tasq_test.
# This may be replaced when dependencies are built.
