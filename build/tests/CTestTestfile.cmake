# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/skyline_test[1]_include.cmake")
include("/root/repo/build/tests/arepas_test[1]_include.cmake")
include("/root/repo/build/tests/pcc_test[1]_include.cmake")
include("/root/repo/build/tests/simcluster_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/feat_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/gnn_test[1]_include.cmake")
include("/root/repo/build/tests/gbdt_test[1]_include.cmake")
include("/root/repo/build/tests/selection_test[1]_include.cmake")
include("/root/repo/build/tests/tasq_test[1]_include.cmake")
include("/root/repo/build/tests/property_arepas_test[1]_include.cmake")
include("/root/repo/build/tests/property_simcluster_test[1]_include.cmake")
include("/root/repo/build/tests/property_pcc_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/spark_test[1]_include.cmake")
include("/root/repo/build/tests/repository_test[1]_include.cmake")
include("/root/repo/build/tests/property_workload_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/evaluation_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/property_gbdt_test[1]_include.cmake")
include("/root/repo/build/tests/what_if_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
