// AREPAS studio: inspect how the area-preserving simulator reshapes a
// job's skyline at lower allocations — useful for understanding why peaky
// jobs tolerate aggressive allocation while flat jobs do not.
//
// Usage: arepas_studio [job_id] [allocation ...]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "arepas/arepas.h"
#include "common/table.h"
#include "simcluster/cluster_simulator.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace tasq;
  int64_t job_id = argc > 1 ? std::atoll(argv[1]) : 77;

  WorkloadGenerator generator(WorkloadConfig{});
  Job job = generator.GenerateJob(job_id);
  ClusterSimulator simulator;
  RunConfig config;
  config.tokens = job.default_tokens;
  auto run = simulator.Run(job.plan, config);
  if (!run.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const Skyline& skyline = run.value().skyline;
  double peak = run.value().peak_tokens_used;
  std::printf("job %lld: %zu s at %.0f tokens allocated, peak usage %.0f, "
              "area %.0f token-seconds\n\n",
              static_cast<long long>(job_id), skyline.duration_seconds(),
              job.default_tokens, peak, skyline.Area());

  std::vector<double> allocations;
  for (int i = 2; i < argc; ++i) allocations.push_back(std::atof(argv[i]));
  if (allocations.empty()) {
    for (double fraction : {0.75, 0.5, 0.25, 0.1}) {
      allocations.push_back(std::max(1.0, std::round(peak * fraction)));
    }
  }

  Arepas arepas;
  TextTable table({"allocation", "simulated runtime (s)", "slowdown",
                   "area drift", "peak of simulated skyline"});
  for (double tokens : allocations) {
    auto simulated = arepas.SimulateSkyline(skyline, tokens);
    if (!simulated.ok()) {
      std::fprintf(stderr, "AREPAS failed at %.0f tokens: %s\n", tokens,
                   simulated.status().ToString().c_str());
      continue;
    }
    double runtime = static_cast<double>(simulated.value().duration_seconds());
    double base = static_cast<double>(skyline.duration_seconds());
    table.AddRow(
        {Cell(tokens, 0), Cell(runtime, 0),
         Cell(100.0 * (runtime / base - 1.0), 1) + "%",
         Cell(100.0 * (simulated.value().Area() / skyline.Area() - 1.0), 2) +
             "%",
         Cell(simulated.value().Peak(), 1)});
  }
  std::cout << table.ToString();
  std::cout << "\nArea drift stays ~0 by construction (the simulator's "
               "defining invariant); the slowdown column is the job's "
               "performance characteristic curve.\n";
  return 0;
}
