// Quickstart: train TASQ on a small historical workload and predict the
// performance characteristic curve (PCC) and optimal token count for an
// unseen job — the end-to-end flow of the paper's Figure 4.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "tasq/tasq.h"
#include "workload/generator.h"

int main() {
  using namespace tasq;

  // 1. A synthetic SCOPE-like workload stands in for the production job
  //    repository (see DESIGN.md for the substitution rationale).
  WorkloadConfig workload_config;
  workload_config.seed = 7;
  WorkloadGenerator generator(workload_config);

  // 2. "Historical" telemetry: each job ran once, at its requested tokens,
  //    on the (noisy) simulated cluster.
  NoiseModel noise;
  noise.enabled = true;
  Result<std::vector<ObservedJob>> observed =
      ObserveWorkload(generator.Generate(0, 400), noise, /*seed=*/1);
  if (!observed.ok()) {
    std::fprintf(stderr, "observation failed: %s\n",
                 observed.status().ToString().c_str());
    return 1;
  }

  // 3. Train the pipeline: AREPAS augmentation, power-law targets, and the
  //    XGBoost / NN / GNN models.
  TasqOptions options;
  options.nn.epochs = 60;
  options.gnn.epochs = 10;
  Tasq tasq(options);
  Status trained = tasq.Train(observed.value());
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu jobs\n", observed.value().size());

  // 4. Score an unseen job at compile time: predict its PCC and recommend
  //    the minimum allocation whose marginal benefit stays above 1% per
  //    token.
  Job incoming = generator.GenerateJob(10001);
  Result<PowerLawPcc> pcc =
      tasq.PredictPcc(incoming.graph, ModelKind::kNn, incoming.default_tokens);
  if (!pcc.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n",
                 pcc.status().ToString().c_str());
    return 1;
  }
  std::printf("incoming job requests %.0f tokens\n", incoming.default_tokens);
  std::printf("predicted PCC: runtime = %.1f * tokens^(%.3f)\n",
              pcc.value().b, pcc.value().a);
  for (double tokens : {10.0, 25.0, 50.0, incoming.default_tokens}) {
    std::printf("  runtime at %3.0f tokens: %.0f s\n", tokens,
                pcc.value().EvalRunTime(tokens));
  }

  Result<TokenRecommendation> recommendation = tasq.RecommendTokens(
      incoming.graph, ModelKind::kNn, incoming.default_tokens,
      /*min_improvement_percent=*/1.0);
  if (recommendation.ok()) {
    std::printf(
        "recommended allocation: %.0f tokens (predicted slowdown %.1f%% vs "
        "the %.0f requested)\n",
        recommendation.value().tokens,
        100.0 * recommendation.value().predicted_slowdown,
        incoming.default_tokens);
  }
  return 0;
}
