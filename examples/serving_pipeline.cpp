// Serving pipeline: the paper's Figure-4 deployment split. A training job
// ingests the workload repository, trains TASQ, and registers the model
// artifact; a separate scoring service loads the artifact and serves
// predictions for incoming jobs without access to any telemetry.
//
// Usage: serving_pipeline [model_path]

#include <cstdio>
#include <string>

#include "tasq/repository.h"
#include "tasq/tasq.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace tasq;
  std::string model_path =
      argc > 1 ? argv[1] : std::string("/tmp/tasq_model.txt");
  std::string repo_path = "/tmp/tasq_workload_repo.txt";

  // ---- Ingestion: observed telemetry lands in the job repository. -------
  WorkloadGenerator generator(WorkloadConfig{});
  NoiseModel noise;
  noise.enabled = true;
  auto observed = ObserveWorkload(generator.Generate(0, 300), noise, 1);
  if (!observed.ok()) return 1;
  if (!SaveWorkloadToFile(repo_path, observed.value()).ok()) return 1;
  std::printf("[ingest]  %zu observed jobs written to %s\n",
              observed.value().size(), repo_path.c_str());

  // ---- Training job: replay the repository, train, register the model. --
  {
    auto workload = LoadWorkloadFromFile(repo_path);
    if (!workload.ok()) return 1;
    TasqOptions options;
    options.nn.epochs = 80;
    options.nn.learning_rate = 2e-3;
    options.gnn.epochs = 8;
    Tasq trainer(options);
    if (!trainer.Train(workload.value()).ok()) return 1;
    if (!trainer.SaveToFile(model_path).ok()) return 1;
    std::printf("[train]   model registered at %s\n", model_path.c_str());
  }

  // ---- Scoring service: load the artifact, serve compile-time requests. -
  Result<Tasq> service = Tasq::LoadFromFile(model_path);
  if (!service.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf("[serve]   model loaded; scoring incoming jobs\n\n");
  for (int64_t id = 40000; id < 40005; ++id) {
    Job incoming = generator.GenerateJob(id);
    // SLO: at most 25% predicted slowdown, plus the 1%-per-token
    // diminishing-returns bar.
    auto recommendation = service.value().RecommendTokens(
        incoming.graph, ModelKind::kNn, incoming.default_tokens, 1.0,
        /*max_slowdown_fraction=*/0.25);
    if (!recommendation.ok()) return 1;
    std::printf(
        "job %lld: requested %4.0f tokens -> recommend %4.0f "
        "(predicted slowdown %+.1f%%)\n",
        static_cast<long long>(id), incoming.default_tokens,
        recommendation.value().tokens,
        100.0 * recommendation.value().predicted_slowdown);
  }
  return 0;
}
