// AutoExecutor: the paper's §2.3 platform adaptation — the same TASQ
// recipe (PCC, AREPAS augmentation, sign-constrained NN) re-instantiated
// for Spark SQL, where the resource unit is the number of executors.
//
// Usage: spark_autoexecutor [cores_per_executor]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "spark/autoexecutor.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace tasq;
  int cores = argc > 1 ? std::atoi(argv[1]) : 4;
  if (cores < 1) cores = 4;

  WorkloadGenerator generator(WorkloadConfig{});
  AutoExecutorOptions options;
  options.platform.cores_per_executor = cores;
  options.nn.epochs = 80;
  options.nn.learning_rate = 2e-3;
  AutoExecutor auto_executor(options);
  Status trained = auto_executor.Train(generator.Generate(0, 300));
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.ToString().c_str());
    return 1;
  }
  std::printf("AutoExecutor trained (executors of %d cores each)\n\n", cores);

  // Score a few unseen Spark-like queries and compare the recommendation
  // against the executor-sweep ground truth.
  TextTable table({"query", "default executors", "recommended",
                   "predicted runtime (s)", "actual runtime (s)",
                   "actual at default (s)"});
  for (int64_t id = 9000; id < 9006; ++id) {
    Job job = generator.GenerateJob(id);
    int default_executors = static_cast<int>(
        std::ceil(job.default_tokens / static_cast<double>(cores)));
    Result<int> recommended =
        auto_executor.RecommendExecutors(job.graph, default_executors, 1.0);
    Result<PowerLawPcc> pcc = auto_executor.PredictPcc(job.graph);
    if (!recommended.ok() || !pcc.ok()) return 1;
    auto at_recommended = RunOnExecutors(job.plan, recommended.value(),
                                         options.platform);
    auto at_default =
        RunOnExecutors(job.plan, default_executors, options.platform);
    if (!at_recommended.ok() || !at_default.ok()) return 1;
    // Built with += rather than "q" + std::to_string(id): the operator+
    // overload trips GCC 12's -Wrestrict false positive (GCC PR105651).
    std::string label = "q";
    label += std::to_string(id);
    table.AddRow({label,
                  Cell(static_cast<int64_t>(default_executors)),
                  Cell(static_cast<int64_t>(recommended.value())),
                  Cell(pcc.value().EvalRunTime(recommended.value()), 0),
                  Cell(at_recommended.value().runtime_seconds, 0),
                  Cell(at_default.value().runtime_seconds, 0)});
  }
  std::cout << table.ToString();
  std::cout << "\nThe recommendation trims executors where the PCC is flat "
               "and keeps them where it is steep — the AutoExecutor use "
               "case of paper §2.3.\n";
  return 0;
}
