// tasq_cli: a small command-line driver over the library, useful for
// poking at workloads and models without writing code.
//
//   tasq_cli generate <n> <workload_file>     synthesize + observe n jobs
//   tasq_cli train <workload_file> <model>    train the pipeline, save it
//   tasq_cli score <model> <job_id> [tokens]  predict PCC + recommendation
//   tasq_cli inspect <workload_file>          summarize a stored workload
//
// Job ids are deterministic: `score` regenerates the job from the default
// workload seed, so any id can be scored against any model.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.h"
#include "feat/featurizer.h"
#include "tasq/repository.h"
#include "tasq/tasq.h"
#include "tasq/what_if.h"
#include "workload/generator.h"

namespace {

using namespace tasq;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tasq_cli generate <n> <workload_file>\n"
               "  tasq_cli train <workload_file> <model_file>\n"
               "  tasq_cli score <model_file> <job_id> [tokens]\n"
               "  tasq_cli whatif <model_file> <job_id>\n"
               "  tasq_cli importance <model_file>\n"
               "  tasq_cli inspect <workload_file>\n");
  return 2;
}

int Generate(int64_t n, const std::string& path) {
  WorkloadGenerator generator(WorkloadConfig{});
  NoiseModel noise;
  noise.enabled = true;
  auto observed = ObserveWorkload(generator.Generate(0, n), noise, 1);
  if (!observed.ok()) {
    std::fprintf(stderr, "observe failed: %s\n",
                 observed.status().ToString().c_str());
    return 1;
  }
  Status saved = SaveWorkloadToFile(path, observed.value());
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld observed jobs to %s\n", static_cast<long long>(n),
              path.c_str());
  return 0;
}

int Train(const std::string& workload_path, const std::string& model_path) {
  auto workload = LoadWorkloadFromFile(workload_path);
  if (!workload.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  TasqOptions options;
  options.nn.epochs = 100;
  options.nn.learning_rate = 2e-3;
  options.gnn.epochs = 12;
  Tasq tasq(options);
  Status trained = tasq.Train(workload.value());
  if (!trained.ok()) {
    std::fprintf(stderr, "train failed: %s\n", trained.ToString().c_str());
    return 1;
  }
  Status saved = tasq.SaveToFile(model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu jobs; model registered at %s\n",
              workload.value().size(), model_path.c_str());
  return 0;
}

int Score(const std::string& model_path, int64_t job_id, double tokens) {
  auto tasq = Tasq::LoadFromFile(model_path);
  if (!tasq.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 tasq.status().ToString().c_str());
    return 1;
  }
  WorkloadGenerator generator(WorkloadConfig{});
  Job job = generator.GenerateJob(job_id);
  double reference = tokens > 0.0 ? tokens : job.default_tokens;
  auto pcc = tasq.value().PredictPcc(job.graph, ModelKind::kNn, reference);
  if (!pcc.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n",
                 pcc.status().ToString().c_str());
    return 1;
  }
  std::printf("job %lld (requested %.0f tokens)\n",
              static_cast<long long>(job_id), reference);
  std::printf("PCC: runtime = %.1f * tokens^(%.3f)\n", pcc.value().b,
              pcc.value().a);
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    double at = std::max(1.0, std::round(reference * fraction));
    std::printf("  %4.0f tokens -> %7.0f s\n", at,
                pcc.value().EvalRunTime(at));
  }
  auto rec = tasq.value().RecommendTokens(job.graph, ModelKind::kNn,
                                          reference, 1.0, 0.25);
  if (rec.ok()) {
    std::printf(
        "recommendation (1%%/token, <=25%% SLO): %.0f tokens, predicted "
        "slowdown %.1f%%\n",
        rec.value().tokens, 100.0 * rec.value().predicted_slowdown);
  }
  return 0;
}

int WhatIf(const std::string& model_path, int64_t job_id) {
  auto tasq = Tasq::LoadFromFile(model_path);
  if (!tasq.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 tasq.status().ToString().c_str());
    return 1;
  }
  WorkloadGenerator generator(WorkloadConfig{});
  Job job = generator.GenerateJob(job_id);
  auto report = BuildWhatIfReport(tasq.value(), job.graph, ModelKind::kNn,
                                  job.default_tokens);
  if (!report.ok()) {
    std::fprintf(stderr, "what-if failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report.value().ToText().c_str(), stdout);
  return 0;
}

int Importance(const std::string& model_path) {
  auto tasq = Tasq::LoadFromFile(model_path);
  if (!tasq.ok() || tasq.value().xgb() == nullptr) {
    std::fprintf(stderr, "model load failed or no XGBoost model present\n");
    return 1;
  }
  std::vector<double> importance =
      tasq.value().xgb()->gbdt().FeatureImportance();
  std::vector<size_t> order(importance.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return importance[a] > importance[b];
  });
  std::printf("top runtime-model features by split count:\n");
  for (size_t rank = 0; rank < order.size() && rank < 12; ++rank) {
    size_t f = order[rank];
    if (importance[f] <= 0.0) break;
    std::printf("  %5.1f%%  %s\n", 100.0 * importance[f],
                Featurizer::JobFeatureName(f).c_str());
  }
  return 0;
}

int Inspect(const std::string& path) {
  auto workload = LoadWorkloadFromFile(path);
  if (!workload.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::vector<double> runtimes;
  std::vector<double> peaks;
  std::vector<double> requests;
  int recurring = 0;
  for (const ObservedJob& entry : workload.value()) {
    runtimes.push_back(entry.runtime_seconds);
    peaks.push_back(entry.peak_tokens);
    requests.push_back(entry.observed_tokens);
    if (entry.job.recurring) ++recurring;
  }
  std::printf("%zu jobs (%d recurring, %zu ad-hoc)\n", workload.value().size(),
              recurring, workload.value().size() - recurring);
  std::printf("runtime s:   median %.0f  mean %.0f  max %.0f\n",
              Median(runtimes), Mean(runtimes), Quantile(runtimes, 1.0));
  std::printf("peak tokens: median %.0f  mean %.0f  max %.0f\n", Median(peaks),
              Mean(peaks), Quantile(peaks, 1.0));
  std::printf("requested:   median %.0f  mean %.0f  max %.0f\n",
              Median(requests), Mean(requests), Quantile(requests, 1.0));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "generate" && argc == 4) {
    return Generate(std::atoll(argv[2]), argv[3]);
  }
  if (command == "train" && argc == 4) {
    return Train(argv[2], argv[3]);
  }
  if (command == "score" && (argc == 4 || argc == 5)) {
    return Score(argv[2], std::atoll(argv[3]),
                 argc == 5 ? std::atof(argv[4]) : 0.0);
  }
  if (command == "whatif" && argc == 4) {
    return WhatIf(argv[2], std::atoll(argv[3]));
  }
  if (command == "importance" && argc == 3) {
    return Importance(argv[2]);
  }
  if (command == "inspect" && argc == 3) {
    return Inspect(argv[2]);
  }
  return Usage();
}
