// What-if explorer: the user-facing mode of TASQ where, instead of
// auto-applying an allocation, the system displays the predicted PCC so a
// user can weigh run time against token cost (paper §2.2). Compares the
// model's predicted curve against the simulated ground truth for one job
// and marks the elbow and the recommended allocation.
//
// Usage: whatif_explorer [job_id]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "pcc/pcc.h"
#include "simcluster/cluster_simulator.h"
#include "tasq/tasq.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace tasq;
  int64_t job_id = argc > 1 ? std::atoll(argv[1]) : 10042;

  WorkloadGenerator generator(WorkloadConfig{});
  NoiseModel noise;
  noise.enabled = true;
  auto observed = ObserveWorkload(generator.Generate(0, 400), noise, 1);
  if (!observed.ok()) return 1;

  TasqOptions options;
  options.train_gnn = false;  // The NN is the paper's recommended trade-off.
  options.nn.epochs = 60;
  Tasq tasq(options);
  if (!tasq.Train(observed.value()).ok()) return 1;

  Job job = generator.GenerateJob(job_id);
  double reference = job.default_tokens;
  std::printf("what-if analysis for job %lld (requested %.0f tokens)\n\n",
              static_cast<long long>(job_id), reference);

  // Ground truth curve from the cluster simulator (what flighting would
  // measure), next to the model's prediction.
  ClusterSimulator simulator;
  std::vector<PccSample> truth;
  TextTable table({"tokens", "predicted runtime (s)", "actual runtime (s)",
                   "prediction error"});
  Result<PowerLawPcc> pcc =
      tasq.PredictPcc(job.graph, ModelKind::kNn, reference);
  if (!pcc.ok()) return 1;
  for (double fraction : {0.2, 0.35, 0.5, 0.65, 0.8, 1.0}) {
    double tokens = std::max(1.0, std::round(reference * fraction));
    RunConfig run_config;
    run_config.tokens = tokens;
    auto run = simulator.Run(job.plan, run_config);
    if (!run.ok()) return 1;
    double predicted = pcc.value().EvalRunTime(tokens);
    double actual = run.value().runtime_seconds;
    truth.push_back({tokens, actual});
    table.AddRow({Cell(tokens, 0), Cell(predicted, 0), Cell(actual, 0),
                  Cell(100.0 * std::fabs(predicted - actual) / actual, 0) +
                      "%"});
  }
  std::cout << table.ToString();

  Result<double> elbow = FindElbowTokens(truth);
  if (elbow.ok()) {
    std::printf("\nelbow of the measured curve: ~%.0f tokens\n",
                elbow.value());
  }
  Result<TokenRecommendation> recommendation =
      tasq.RecommendTokens(job.graph, ModelKind::kNn, reference, 1.0);
  if (recommendation.ok()) {
    std::printf(
        "TASQ recommendation: %.0f tokens (predicted %.0f s, %.1f%% slower "
        "than the full request)\n",
        recommendation.value().tokens,
        recommendation.value().predicted_runtime_seconds,
        100.0 * recommendation.value().predicted_slowdown);
  }
  return 0;
}
