// Workload optimizer: the cluster-operator scenario. TASQ recommends a
// token allocation for every incoming job; the simulated cluster then runs
// each job at both the requested and the recommended allocation, and the
// example reports the realized token savings and slowdown at several
// diminishing-returns thresholds.
//
// Usage: workload_optimizer [num_jobs]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "simcluster/cluster_simulator.h"
#include "tasq/tasq.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace tasq;
  int64_t num_jobs = argc > 1 ? std::atoll(argv[1]) : 120;

  WorkloadGenerator generator(WorkloadConfig{});
  NoiseModel noise;
  noise.enabled = true;
  auto observed = ObserveWorkload(generator.Generate(0, 500), noise, 1);
  if (!observed.ok()) return 1;

  TasqOptions options;
  options.train_gnn = false;
  options.nn.epochs = 60;
  Tasq tasq(options);
  if (!tasq.Train(observed.value()).ok()) return 1;
  std::printf("pipeline trained on %zu historical jobs\n",
              observed.value().size());

  auto incoming = generator.Generate(20000, num_jobs);
  ClusterSimulator simulator;
  std::printf("optimizing %zu incoming jobs...\n\n", incoming.size());

  TextTable table({"min improvement / token", "tokens (requested)",
                   "tokens (recommended)", "savings", "runtime slowdown",
                   "jobs reduced"});
  for (double threshold : {0.5, 1.0, 2.0, 5.0}) {
    double requested_tokens = 0.0;
    double recommended_tokens = 0.0;
    double baseline_runtime = 0.0;
    double optimized_runtime = 0.0;
    int reduced = 0;
    for (const Job& job : incoming) {
      Result<TokenRecommendation> recommendation = tasq.RecommendTokens(
          job.graph, ModelKind::kNn, job.default_tokens, threshold);
      if (!recommendation.ok()) return 1;
      double tokens = recommendation.value().tokens;
      if (tokens < job.default_tokens) ++reduced;
      requested_tokens += job.default_tokens;
      recommended_tokens += tokens;
      // Realized performance on the cluster, not the model's own estimate.
      RunConfig base_config{job.default_tokens, noise,
                            static_cast<uint64_t>(job.id)};
      RunConfig opt_config{tokens, noise, static_cast<uint64_t>(job.id)};
      auto base_run = simulator.Run(job.plan, base_config);
      auto opt_run = simulator.Run(job.plan, opt_config);
      if (!base_run.ok() || !opt_run.ok()) return 1;
      baseline_runtime += base_run.value().runtime_seconds;
      optimized_runtime += opt_run.value().runtime_seconds;
    }
    table.AddRow(
        {Cell(threshold, 1) + "%", Cell(requested_tokens, 0),
         Cell(recommended_tokens, 0),
         Cell(100.0 * (1.0 - recommended_tokens / requested_tokens), 0) + "%",
         Cell(100.0 * (optimized_runtime / baseline_runtime - 1.0), 1) + "%",
         Cell(static_cast<int64_t>(reduced)) + "/" +
             Cell(static_cast<int64_t>(incoming.size()))});
  }
  std::cout << table.ToString();
  std::cout << "\nHigher thresholds reclaim more tokens at a larger (but "
               "bounded) performance cost — the trade-off of paper "
               "Figure 2.\n";
  return 0;
}
