#!/usr/bin/env python3
"""Diff freshly-emitted BENCH_*.json files against the committed copies.

The bench binaries (microbench_serving, microbench_core, microbench_fmath,
ext_arbiter_policies) each write one flat JSON object of headline metrics;
copies from a known-good run are committed at the repo root as the perf
trajectory (ROADMAP item 5). This tool prints per-metric deltas between a
fresh run and the committed copy so a perf regression is visible in every
CI log — it is informational, not a gate: shared CI runners are too noisy
for absolute thresholds, so the release job runs it with
continue-on-error and humans read the deltas.

By default the fresh files are looked up in the current directory and the
committed copies via `git show HEAD:<name>`; pass two directories to diff
any pair of runs. Missing files and metrics are reported, not fatal
(exit is nonzero only on operational errors such as unparseable JSON).

Metric direction matters for the verdict column: keys matching
*_per_s / *_per_second / *_req_per_s count as higher-is-better; keys
matching *_ns* / *_ms* / *_allocations* count as lower-is-better;
anything else is shown without a verdict.

Usage:
  python3 scripts/bench_diff.py                     fresh cwd vs HEAD copies
  python3 scripts/bench_diff.py --fresh DIR         fresh DIR vs HEAD copies
  python3 scripts/bench_diff.py --fresh DIR --base DIR2
  python3 scripts/bench_diff.py --names BENCH_core.json,BENCH_fmath.json
"""

import argparse
import glob
import json
import os
import subprocess
import sys

DEFAULT_NAMES = (
    "BENCH_serving.json",
    "BENCH_arbiter.json",
    "BENCH_core.json",
    "BENCH_fmath.json",
)

HIGHER_IS_BETTER = ("_per_s", "_per_second", "_req_per_s", "_items_per_s",
                    "_samples_per_s")
LOWER_IS_BETTER = ("_ns", "_ms", "_allocations", "_ns_per_op", "_bytes")


def load_json_file(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def load_committed(repo_root, name):
    """The committed copy via git; None when it is not tracked at HEAD."""
    try:
        blob = subprocess.run(
            ["git", "-C", repo_root, "show", f"HEAD:{name}"],
            capture_output=True, text=True, check=False)
    except OSError:
        return None
    if blob.returncode != 0:
        return None
    return json.loads(blob.stdout)


def direction(key):
    for suffix in HIGHER_IS_BETTER:
        if suffix in key:
            return +1
    for suffix in LOWER_IS_BETTER:
        if suffix in key:
            return -1
    return 0


def verdict(key, base, fresh):
    """A coarse better/worse/~ tag; '~' inside ±2% (runner noise floor)."""
    if not isinstance(base, (int, float)) or not isinstance(
            fresh, (int, float)) or base == 0:
        return ""
    ratio = (fresh - base) / abs(base)
    if abs(ratio) < 0.02:
        return "~"
    sign = direction(key)
    if sign == 0:
        return ""
    return "better" if ratio * sign > 0 else "WORSE"


def fmt(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def diff_one(name, base, fresh):
    """One file's diff. A file present on only one side (a bench added or
    retired, or a binary that was not run) is a normal state, not an error:
    every metric prints a `missing` row for the absent side and the step
    stays non-blocking."""
    print(f"== {name}")
    if base is None and fresh is None:
        print("   (neither a committed copy nor a fresh run exists)")
        return
    if base is None:
        print("   no committed copy at HEAD (new bench?):")
        width = max((len(k) for k in fresh), default=0)
        for key, value in fresh.items():
            print(f"   {key:{width}s} {'missing':>14s} -> "
                  f"{fmt(value):>14s}")
        return
    if fresh is None:
        print("   no fresh run found (bench binary not executed?):")
        width = max((len(k) for k in base), default=0)
        for key, value in base.items():
            print(f"   {key:{width}s} {fmt(value):>14s} -> "
                  f"{'missing':>14s}")
        return
    keys = list(base.keys()) + [k for k in fresh if k not in base]
    width = max((len(k) for k in keys), default=0)
    for key in keys:
        in_base, in_fresh = key in base, key in fresh
        if in_base and not in_fresh:
            print(f"   {key:{width}s} {fmt(base[key]):>14s} -> "
                  f"{'missing':>14s}")
            continue
        if in_fresh and not in_base:
            print(f"   {key:{width}s} {'missing':>14s} -> "
                  f"{fmt(fresh[key]):>14s}")
            continue
        b, f = base[key], fresh[key]
        if b == f:
            continue  # Identical (typically strings / config echoes).
        tag = verdict(key, b, f)
        delta = ""
        if isinstance(b, (int, float)) and isinstance(f, (int, float)) \
                and b != 0:
            delta = f"  {100.0 * (f - b) / abs(b):+.1f}%"
        print(f"   {key:{width}s} {fmt(b):>14s} -> {fmt(f):>14s}"
              f"{delta}  {tag}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--fresh", default=".",
                        help="directory holding freshly-emitted "
                        "BENCH_*.json (default: current directory)")
    parser.add_argument("--base", default=None,
                        help="directory holding baseline copies (default: "
                        "the committed copies at git HEAD)")
    parser.add_argument("--names", default=None,
                        help="comma-separated file names to diff (default: "
                        "the known BENCH_*.json set plus any BENCH_*.json "
                        "present in --fresh)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.names:
        names = [n.strip() for n in args.names.split(",") if n.strip()]
    else:
        names = list(DEFAULT_NAMES)
        for path in sorted(glob.glob(os.path.join(args.fresh,
                                                  "BENCH_*.json"))):
            base = os.path.basename(path)
            if base not in names:
                names.append(base)

    for name in names:
        fresh_path = os.path.join(args.fresh, name)
        try:
            fresh = load_json_file(fresh_path) if os.path.exists(
                fresh_path) else None
            if args.base is None:
                base = load_committed(repo_root, name)
            else:
                base_path = os.path.join(args.base, name)
                base = load_json_file(base_path) if os.path.exists(
                    base_path) else None
        except (json.JSONDecodeError, OSError) as error:
            print(f"bench_diff: cannot read {name}: {error}",
                  file=sys.stderr)
            return 1
        diff_one(name, base, fresh)
    print("(informational: shared-runner noise makes absolute thresholds "
          "flaky; read WORSE rows against the ±2% noise floor)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
