#!/usr/bin/env bash
# Runs the full correctness matrix locally:
#
#   1. analyzers          every conformance analyzer (tasq_lint, tasq_arch,
#                         tasq_num, tasq_hot, tasq_sync, tasq_own,
#                         tasq_vec): repo run, self-test, and an
#                         empty-baseline gate each. tasq_vec first builds
#                         the compiler's vectorization report (see below).
#                         CI's static-analysis job invokes this leg
#                         verbatim, so the local and CI analyzer matrices
#                         cannot drift. (`lint` is a deprecated alias.)
#   2. Release            build + full ctest
#   3. ASan + UBSan       build + full ctest
#   4. TSan               build + the concurrency-sensitive tests
#   5. FPE traps          Release + TASQ_FPE=ON build + full ctest, so any
#                         unguarded log(0), 0/0, exp overflow, or ordered
#                         NaN comparison crashes the test that reached it
#
# Build-tree naming convention: every leg that needs a configured tree
# owns exactly one `build-check-<leg>` directory (build-check-release,
# build-check-asan, build-check-tsan, build-check-fpe), and special-
# purpose builds follow the same scheme — the fpe leg's Release+traps
# tree is build-check-fpe, and the analyzers leg's vectorization-report
# build is build-check-vec. An existing `build/` stays untouched, and
# `rm -rf build-check-*` resets every leg at once. Set TASQ_CHECK_JOBS
# to bound parallelism.
#
# Usage: scripts/check.sh [analyzers|release|asan|tsan|fpe]... (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${TASQ_CHECK_JOBS:-$(nproc)}"
REPO_ROOT="$(pwd)"

# Known-benign sanitizer findings are suppressed centrally so one noisy
# third-party frame never trains people to ignore red output.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:${ASAN_OPTIONS:-}"
export LSAN_OPTIONS="suppressions=${REPO_ROOT}/scripts/sanitizers/lsan.supp:${LSAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:suppressions=${REPO_ROOT}/scripts/sanitizers/ubsan.supp:${UBSAN_OPTIONS:-}"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=${REPO_ROOT}/scripts/sanitizers/tsan.supp:${TSAN_OPTIONS:-}"

run_leg() {
  local name="$1" dir="$2" sanitize="$3" test_regex="$4"
  shift 4
  echo "== ${name}: configure + build (${dir}) =="
  cmake -B "${dir}" -S . -DTASQ_SANITIZE="${sanitize}" "$@" >/dev/null
  # Progress spam goes to /dev/null; warnings and errors arrive on stderr.
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "== ${name}: ctest =="
  if [[ -n "${test_regex}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R "${test_regex}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

# A baseline that regrows silently converts "enforced" into "suggested":
# every analyzer baseline must contain nothing but comments and blanks.
require_empty_baseline() {
  local path="$1"
  if grep -vE '^\s*(#|$)' "${path}" >/dev/null 2>&1; then
    echo "ERROR: ${path} must stay empty (found accepted findings):" >&2
    grep -vE '^\s*(#|$)' "${path}" >&2
    exit 1
  fi
  echo "   ${path}: empty (gate holds)"
}

# One analyzer: repo run + self-test + (when baselined) empty-baseline
# gate. This is THE analyzer matrix — CI's static-analysis job calls
# `scripts/check.sh analyzers` verbatim rather than restating it.
run_analyzer() {
  local script="$1" what="$2" baseline="${3:-}"
  echo "== analyzers: ${script} (${what}) =="
  python3 "scripts/${script}"
  echo "== analyzers: ${script} self-test =="
  python3 "scripts/${script}" --self-test
  if [[ -n "${baseline}" ]]; then
    require_empty_baseline "scripts/${baseline}"
  fi
}

analyzers_leg() {
  run_analyzer tasq_lint.py "style & API conformance" lint_baseline.txt
  run_analyzer tasq_arch.py "layering, include hygiene, nodiscard" \
               arch_baseline.txt
  run_analyzer tasq_num.py "numerics & determinism conformance" \
               num_baseline.txt
  run_analyzer tasq_hot.py "hot-path performance conformance" \
               hot_baseline.txt
  run_analyzer tasq_sync.py "atomics & lock-free conformance" \
               sync_baseline.txt
  run_analyzer tasq_own.py "ownership & allocation discipline" \
               own_baseline.txt
  vec_analyzer
}

# tasq_vec.py is the one analyzer that audits compiler output rather
# than source text, so it first builds src/ with -DTASQ_VEC_REPORT=ON
# (Release flags — the vectorizer must see what the shipped code sees).
# GCC *appends* to vec_report.txt: only TUs actually compiled contribute
# lines, so the report is deleted up front AND the build runs
# --clean-first — an incremental rebuild would produce a report missing
# every up-to-date TU (their loops would all read as vec-unresolved),
# while keeping the old report would let stale lines vouch for loops
# that no longer vectorize.
vec_analyzer() {
  echo "== analyzers: tasq_vec.py report build (build-check-vec) =="
  cmake -B build-check-vec -S . -DCMAKE_BUILD_TYPE=Release \
        -DTASQ_VEC_REPORT=ON >/dev/null
  rm -f build-check-vec/vec_report.txt
  cmake --build build-check-vec --target tasq_vec_report -j "${JOBS}" \
        --clean-first >/dev/null
  echo "== analyzers: tasq_vec.py (vectorization conformance) =="
  python3 scripts/tasq_vec.py --report build-check-vec/vec_report.txt
  echo "== analyzers: tasq_vec.py self-test =="
  python3 scripts/tasq_vec.py --self-test
  require_empty_baseline scripts/vec_baseline.txt
}

LEGS=("$@")
if [[ ${#LEGS[@]} -eq 0 ]]; then LEGS=(analyzers release asan tsan fpe); fi

for leg in "${LEGS[@]}"; do
  case "${leg}" in
    analyzers|lint) analyzers_leg ;;
    release) run_leg "release" build-check-release "" "" ;;
    asan) run_leg "asan+ubsan" build-check-asan "address;undefined" "" ;;
    # TSan's scheduler interleaving makes the full suite slow; the
    # concurrency-sensitive suites (ParallelFor*, ParallelStress*, the
    # cluster simulator/scheduler + arbiter property tests, the serving
    # layer, the annotated mutex wrappers, and the lock-free sync
    # primitives) are the ones a race can hide in. Keep this regex in
    # lockstep with the tsan job in .github/workflows/ci.yml.
    tsan) run_leg "tsan" build-check-tsan "thread" \
                  "Parallel|Cluster|Serve|Mutex|CondVar|Determinism|Arbiter|Sync" ;;
    # Full suite with FE_DIVBYZERO/FE_INVALID/FE_OVERFLOW delivering
    # SIGFPE: a green run proves the fmath.h guards are exhaustive.
    fpe) run_leg "fpe-traps" build-check-fpe "" "" \
                 -DCMAKE_BUILD_TYPE=Release -DTASQ_FPE=ON ;;
    *) echo "unknown leg '${leg}' (want analyzers|release|asan|tsan|fpe)" >&2
       exit 2 ;;
  esac
done

echo "== all requested legs passed =="
