#!/usr/bin/env bash
# Reproduces every paper table/figure, ablation, extension, and baseline
# comparison. Outputs land in test_output.txt and bench_output.txt at the
# repository root. Scale experiment sizes with TASQ_SCALE (default 1).
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
