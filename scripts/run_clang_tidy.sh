#!/usr/bin/env bash
# Runs clang-tidy over every translation unit in src/ against a CMake
# compilation database, exactly as the CI job `static-analysis` does, so a
# local run and a CI run see the same findings.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
#   build-dir   directory containing compile_commands.json (default:
#               build-tidy; configured automatically when missing —
#               CMAKE_EXPORT_COMPILE_COMMANDS is always ON in this repo).
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: first of clang-tidy,
#               clang-tidy-19 ... clang-tidy-14 on PATH).
#   JOBS        parallel tidy processes (default: nproc).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"
JOBS="${JOBS:-$(nproc)}"

find_clang_tidy() {
  local candidate
  for candidate in "${CLANG_TIDY:-}" clang-tidy clang-tidy-19 clang-tidy-18 \
      clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if [[ -n "${candidate}" ]] && command -v "${candidate}" >/dev/null 2>&1
    then
      echo "${candidate}"
      return 0
    fi
  done
  return 1
}

if ! TIDY="$(find_clang_tidy)"; then
  echo "error: no clang-tidy on PATH (set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 2
fi
echo "== using $("${TIDY}" --version | head -n 1)"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "== configuring ${BUILD_DIR} for a compilation database"
  cmake -B "${BUILD_DIR}" -S . >/dev/null
fi

# Every translation unit in src/: headers are covered through the
# HeaderFilterRegex in .clang-tidy (all of src/).
mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "== clang-tidy over ${#SOURCES[@]} files (${JOBS} jobs)"

# xargs fans the files out; clang-tidy exits nonzero on any finding that
# WarningsAsErrors covers (bugprone-*, performance-*, naming — see
# .clang-tidy), so one bad file fails the run.
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "${JOBS}" -n 4 "${TIDY}" -p "${BUILD_DIR}" --quiet

echo "== clang-tidy: zero findings"
