#!/usr/bin/env python3
"""TASQ architecture-conformance analyzer.

Checks the physical architecture of src/ against the layer DAG declared
in scripts/arch_layers.toml (stdlib only, no clang dependency):

  module-unlisted        every directory under src/ must be declared in
                         arch_layers.toml — an undeclared module would be
                         silently exempt from every layering rule.
  module-stale           arch_layers.toml must not declare modules (or
                         deps, or internal headers) that no longer exist;
                         stale entries hide typos that disable checking.
  layering               a file in module A may #include module B only
                         when the DAG declares A -> B (deps are direct,
                         not transitive: if A needs B, A declares B).
  private-header         headers listed as `internal` in arch_layers.toml
                         are implementation details: only their own module
                         (and tests/bench/examples) may include them.
  include-cycle          the #include graph of src/ headers must be
                         acyclic; a header cycle is a build-order landmine
                         that include guards merely paper over.
  unused-include         IWYU-lite: a quoted project #include none of
                         whose declared symbols appear in the including
                         file is dead weight (or hides a missing direct
                         include elsewhere). `// arch: keep` on the
                         include line documents a deliberate exception
                         (e.g. includes that exist to re-export).
  nodiscard-missing      every function returning Status / Result<T> by
                         value must be marked TASQ_NODISCARD (macro in
                         common/status.h) so dropping an error is a
                         compiler warning, -Werror in CI.
  discarded-status       a statement that calls a Status/Result-returning
                         function and ignores the result loses the only
                         error signal the callee emits. Use the value or
                         discard explicitly: `(void)Call();  // why`.
  discard-needs-reason   `(void)Call()` on a Status/Result-returning
                         function is an explicit waiver and must carry a
                         same-line (or preceding-line) comment saying why
                         ignoring the error is safe.

Known, accepted findings live in scripts/arch_baseline.txt; the analyzer
exits nonzero only on findings not in the baseline. The baseline is empty
as of PR 4 and CI fails if it regrows (job static-analysis).

Usage:
  python3 scripts/tasq_arch.py                    analyze the repo
  python3 scripts/tasq_arch.py --update-baseline  accept current findings
  python3 scripts/tasq_arch.py --self-test        per-rule fixture check
  python3 scripts/tasq_arch.py --dot out.dot      emit the module DAG
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join("scripts", "arch_baseline.txt")
LAYERS_PATH = os.path.join("scripts", "arch_layers.toml")
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")
SKIP_DIR_PREFIXES = ("build",)
# Roots whose call sites are scanned for discarded Status/Result returns.
# Layering / include hygiene apply to src/ only; error discipline applies
# everywhere code calls into the library.
DISCARD_SCAN_ROOTS = ("src", "tests", "bench", "examples")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # Repo-relative, forward slashes.
        self.line = line  # 1-based, or 0 for whole-file findings.
        self.message = message

    def key(self):
        # Line numbers shift too easily to key the baseline on them.
        return f"{self.rule}\t{self.path}"

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Good enough for token scans: an identifier in a comment or a log
    string must not count as a use."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Layer declaration (scripts/arch_layers.toml)
# ---------------------------------------------------------------------------

class LayersError(Exception):
    pass


def parse_layers(text):
    """Parses the restricted TOML subset arch_layers.toml uses.

    Hand-rolled so the analyzer runs on any Python 3 (tomllib is 3.11+).
    Supported: `[modules.<name>]` tables with `key = ["a", "b"]` string
    arrays and full-line / trailing comments. Anything else is an error —
    a silently misparsed layer file would disable the architecture check.
    """
    modules = {}
    current = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        table = re.fullmatch(r"\[modules\.([A-Za-z0-9_]+)\]", line)
        if table:
            name = table.group(1)
            if name in modules:
                raise LayersError(f"line {lineno}: duplicate [modules.{name}]")
            current = {"deps": [], "internal": []}
            modules[name] = current
            continue
        assign = re.fullmatch(
            r"(deps|internal)\s*=\s*\[([^\]]*)\]\s*(?:#.*)?", line)
        if assign:
            if current is None:
                raise LayersError(
                    f"line {lineno}: assignment outside a [modules.*] table")
            key, body = assign.group(1), assign.group(2).strip()
            values = []
            if body:
                for item in body.split(","):
                    item = item.strip()
                    if not item:
                        continue
                    quoted = re.fullmatch(r'"([^"]*)"', item)
                    if not quoted:
                        raise LayersError(
                            f"line {lineno}: expected quoted string, "
                            f"got {item!r}")
                    values.append(quoted.group(1))
            current[key] = values
            continue
        raise LayersError(f"line {lineno}: cannot parse {raw!r}")
    return modules


def load_layers(root, layers_path):
    path = os.path.join(root, layers_path)
    if not os.path.exists(path):
        raise LayersError(f"{layers_path} not found under {root}")
    with open(path, encoding="utf-8") as f:
        return parse_layers(f.read())


# ---------------------------------------------------------------------------
# Repository model: files, modules, includes
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"([^"]+)"',
                        re.MULTILINE)


class Repo:
    """Scanned view of the tree: files, module map, and include edges."""

    def __init__(self, root):
        self.root = root
        self.src_files = []        # All .h/.cc under src/.
        self.other_files = []      # tests/ bench/ examples/ sources.
        self.modules = set()       # Directory names under src/.
        self._text_cache = {}
        self._stripped_cache = {}
        self._scan()

    def _scan(self):
        src = os.path.join(self.root, "src")
        if os.path.isdir(src):
            for name in sorted(os.listdir(src)):
                if os.path.isdir(os.path.join(src, name)):
                    self.modules.add(name)
        for subdir in DISCARD_SCAN_ROOTS:
            base = os.path.join(self.root, subdir)
            if not os.path.isdir(base):
                continue
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(SKIP_DIR_PREFIXES) and d != ".git")
                for name in sorted(filenames):
                    if not name.endswith(SOURCE_SUFFIXES):
                        continue
                    rel = os.path.relpath(
                        os.path.join(dirpath, name),
                        self.root).replace(os.sep, "/")
                    if subdir == "src":
                        self.src_files.append(rel)
                    else:
                        self.other_files.append(rel)

    def text(self, rel):
        if rel not in self._text_cache:
            with open(os.path.join(self.root, rel), encoding="utf-8",
                      errors="replace") as f:
                self._text_cache[rel] = f.read()
        return self._text_cache[rel]

    def stripped(self, rel):
        if rel not in self._stripped_cache:
            self._stripped_cache[rel] = strip_comments_and_strings(
                self.text(rel))
        return self._stripped_cache[rel]

    def module_of(self, rel):
        """src/pcc/pcc.h -> pcc; None for files outside src/."""
        parts = rel.split("/")
        if len(parts) >= 3 and parts[0] == "src":
            return parts[1]
        return None

    def includes(self, rel):
        """Project includes of `rel` resolved to existing src/ paths.

        Returns (line, src_rel_path, include_spelling) tuples; system and
        unresolvable includes are skipped."""
        out = []
        src_set = set(self.src_files)
        for match in INCLUDE_RE.finditer(self.text(rel)):
            spelling = match.group(1)
            candidate = "src/" + spelling
            if candidate in src_set:
                line = self.text(rel)[:match.start()].count("\n") + 1
                out.append((line, candidate, spelling))
        return out


# ---------------------------------------------------------------------------
# Layer DAG checks
# ---------------------------------------------------------------------------

def check_layers_coverage(repo, layers):
    """Both directions: every src/ module declared, no stale declarations."""
    findings = []
    for module in sorted(repo.modules - set(layers)):
        findings.append(Finding(
            "module-unlisted", f"src/{module}", 0,
            f"module '{module}' is missing from {LAYERS_PATH}; an "
            "undeclared module is exempt from every layering rule"))
    headers = {rel for rel in repo.src_files if rel.endswith(".h")}
    for module in sorted(layers):
        decl = layers[module]
        if module not in repo.modules:
            findings.append(Finding(
                "module-stale", LAYERS_PATH, 0,
                f"declared module '{module}' does not exist under src/"))
            continue
        for dep in decl["deps"]:
            if dep not in repo.modules:
                findings.append(Finding(
                    "module-stale", LAYERS_PATH, 0,
                    f"module '{module}' declares dep on nonexistent "
                    f"module '{dep}'"))
        for header in decl["internal"]:
            if f"src/{module}/{header}" not in headers:
                findings.append(Finding(
                    "module-stale", LAYERS_PATH, 0,
                    f"module '{module}' declares nonexistent internal "
                    f"header '{header}'"))
    return findings


def check_layering(repo, layers):
    """A file in module A may include module B only if the DAG says A -> B."""
    findings = []
    for rel in repo.src_files:
        module = repo.module_of(rel)
        if module is None or module not in layers:
            continue  # module-unlisted reports the missing declaration.
        allowed = set(layers[module]["deps"]) | {module}
        for line, target, spelling in repo.includes(rel):
            target_module = repo.module_of(target)
            if target_module in allowed or target_module not in layers:
                continue
            findings.append(Finding(
                "layering", rel, line,
                f"module '{module}' may not depend on '{target_module}' "
                f"(#include \"{spelling}\"); allowed deps: "
                f"{sorted(layers[module]['deps'])}"))
    return findings


def check_private_headers(repo, layers):
    """Internal headers are reachable only from their own module (src/)."""
    internal = {}
    for module, decl in layers.items():
        for header in decl["internal"]:
            internal[f"src/{module}/{header}"] = module
    if not internal:
        return []
    findings = []
    for rel in repo.src_files:
        module = repo.module_of(rel)
        for line, target, spelling in repo.includes(rel):
            owner = internal.get(target)
            if owner is not None and owner != module:
                findings.append(Finding(
                    "private-header", rel, line,
                    f"\"{spelling}\" is internal to module '{owner}'; "
                    "include the module's public header instead"))
    return findings


def check_include_cycles(repo):
    """src/ headers must form a DAG. Tarjan SCC over the header graph."""
    headers = [rel for rel in repo.src_files if rel.endswith(".h")]
    header_set = set(headers)
    graph = {h: [t for _, t, _ in repo.includes(h) if t in header_set]
             for h in headers}

    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(v):
        # Iterative Tarjan: recursion depth equals include-chain depth,
        # which a pathological tree could overflow.
        work = [(v, 0)]
        while work:
            node, edge_idx = work[-1]
            if edge_idx == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            neighbors = graph[node]
            while edge_idx < len(neighbors):
                succ = neighbors[edge_idx]
                edge_idx += 1
                if succ not in index:
                    work[-1] = (node, edge_idx)
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if recurse:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for header in headers:
        if header not in index:
            strongconnect(header)

    findings = []
    for scc in sccs:
        cyclic = len(scc) > 1 or scc[0] in graph[scc[0]]
        if cyclic:
            members = sorted(scc)
            findings.append(Finding(
                "include-cycle", members[0], 0,
                "header include cycle: " + " -> ".join(
                    members + [members[0]])))
    return findings


# ---------------------------------------------------------------------------
# Include hygiene: unused includes (IWYU-lite)
# ---------------------------------------------------------------------------

# Identifiers that look like calls but are language constructs.
CALL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "catch", "defined", "assert", "co_return",
    "co_await", "co_yield", "new", "delete", "throw", "noexcept",
    "alignas", "typeid", "requires", "operator",
))

TYPE_DECL_RE = re.compile(
    r"\b(?:class|struct|union|enum(?:\s+(?:class|struct))?)\s+"
    r"(?:TASQ_\w+\s+)*([A-Za-z_]\w*)")
USING_ALIAS_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=")
TYPEDEF_RE = re.compile(r"\btypedef\b[^;]*?\b([A-Za-z_]\w*)\s*;")
DEFINE_RE = re.compile(r"^[ \t]*#[ \t]*define[ \t]+([A-Za-z_]\w*)",
                       re.MULTILINE)
CALLABLE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
# Google-style constants (kCamelCase): enumerator and constexpr names.
CONSTANT_RE = re.compile(r"\b(k[A-Z]\w*)\b")
IDENT_RE = re.compile(r"\b([A-Za-z_]\w*)\b")
KEEP_RE = re.compile(r"//.*\b(?:arch:\s*keep|IWYU pragma:\s*keep)")


def declared_symbols(repo, header):
    """Heuristic set of names `header` provides to its includers.

    Over-approximation is safe (an include looks used and we stay quiet);
    under-approximation produces a false unused-include finding, so the
    net is cast wide: types, aliases, macros, kConstants, and every
    identifier that syntactically could be a function (callable position).
    """
    stripped = repo.stripped(header)
    symbols = set()
    for regex in (TYPE_DECL_RE, USING_ALIAS_RE, TYPEDEF_RE, DEFINE_RE,
                  CONSTANT_RE):
        symbols.update(regex.findall(stripped))
    for name in CALLABLE_RE.findall(stripped):
        if name not in CALL_KEYWORDS:
            symbols.add(name)
    return symbols


def file_tokens(repo, rel):
    """All identifiers used in `rel`, excluding its #include lines."""
    stripped = repo.stripped(rel)
    without_includes = re.sub(r"^[ \t]*#[ \t]*include[^\n]*", "",
                              stripped, flags=re.MULTILINE)
    return set(IDENT_RE.findall(without_includes))


def include_closure(repo, start, include_map):
    """Transitive project-include closure of `start` (excluding start)."""
    seen = set()
    frontier = [t for _, t, _ in include_map[start]] \
        if start in include_map else []
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        for _, target, _ in include_map.get(current, ()):
            if target not in seen:
                frontier.append(target)
    seen.discard(start)
    return seen


def check_unused_includes(repo):
    """Flags quoted src/ includes that contribute no used symbol.

    An include is kept silently when it is the companion header
    (src/x/y.cc -> x/y.h), is marked `// arch: keep`, directly provides a
    used symbol, or is the only path to transitively-used symbols. It is
    flagged only when dropping it provably leaves every used symbol
    reachable through the file's other includes."""
    include_map = {rel: repo.includes(rel) for rel in repo.src_files}
    symbol_cache = {}

    def symbols_of(header):
        if header not in symbol_cache:
            symbol_cache[header] = declared_symbols(repo, header)
        return symbol_cache[header]

    findings = []
    for rel in repo.src_files:
        entries = include_map[rel]
        if not entries:
            continue
        tokens = file_tokens(repo, rel)
        raw_lines = repo.text(rel).split("\n")
        companion = None
        if rel.endswith((".cc", ".cpp")):
            companion = re.sub(r"\.(cc|cpp)$", ".h", rel)
        for line, target, spelling in entries:
            if target == companion:
                continue
            if line - 1 < len(raw_lines) and KEEP_RE.search(
                    raw_lines[line - 1]):
                continue
            if symbols_of(target) & tokens:
                continue
            # Nothing declared directly in the header is used. The include
            # may still be load-bearing as the sole provider of transitive
            # symbols; only flag when the other includes cover them.
            closure_syms = set()
            for dep in include_closure(repo, target, include_map):
                closure_syms |= symbols_of(dep)
            needed = closure_syms & tokens
            covered = set()
            for other_line, other_target, _ in entries:
                if other_target == target and other_line == line:
                    continue
                covered |= symbols_of(other_target)
                for dep in include_closure(repo, other_target, include_map):
                    covered |= symbols_of(dep)
            if needed - covered:
                continue
            findings.append(Finding(
                "unused-include", rel, line,
                f"#include \"{spelling}\" provides no symbol used here; "
                "remove it (or mark `// arch: keep` with a reason)"))
    return findings


# ---------------------------------------------------------------------------
# Error discipline: TASQ_NODISCARD and discarded returns
# ---------------------------------------------------------------------------

# A declaration line: optional specifiers, a by-value Status / Result<...>
# return type, then the function name and parameter list. `Result<...>`
# never contains parens in this codebase, which keeps the regex honest.
FUNC_DECL_RE = re.compile(
    r"^[ \t]*(?P<prefix>(?:(?:TASQ_NODISCARD|static|inline|constexpr|"
    r"virtual|explicit|friend)\s+)*)"
    r"(?:tasq::)?(?P<ret>Status|Result<[^;{}()=]*>)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(",
    re.MULTILINE)


def scan_status_functions(repo, files):
    """Yields (rel, line, name, annotated) for by-value Status/Result
    returning function declarations/definitions in `files`."""
    for rel in files:
        stripped = repo.stripped(rel)
        for match in FUNC_DECL_RE.finditer(stripped):
            line = stripped[:match.start()].count("\n") + 1
            annotated = "TASQ_NODISCARD" in match.group("prefix")
            yield rel, line, match.group("name"), annotated


def check_nodiscard(repo):
    """Every Status/Result-returning function is TASQ_NODISCARD.

    Headers carry the contract; an out-of-line .cc definition of a
    header-declared (and annotated) function needs no repeat. File-local
    .cc helpers have their only declaration in the .cc, so they are
    checked there."""
    headers = [rel for rel in repo.src_files if rel.endswith(".h")]
    impls = [rel for rel in repo.src_files if not rel.endswith(".h")]
    findings = []
    header_names = set()
    for rel, line, name, annotated in scan_status_functions(repo, headers):
        header_names.add(name)
        if not annotated:
            findings.append(Finding(
                "nodiscard-missing", rel, line,
                f"'{name}' returns Status/Result but is not "
                "TASQ_NODISCARD; a dropped error would be silent"))
    for rel, line, name, annotated in scan_status_functions(repo, impls):
        if annotated or name in header_names:
            continue
        findings.append(Finding(
            "nodiscard-missing", rel, line,
            f"file-local '{name}' returns Status/Result but is not "
            "TASQ_NODISCARD; a dropped error would be silent"))
    return findings


# Any function-declaration-shaped line; used to find names that ALSO have
# a non-Status return type somewhere, which makes them ambiguous for the
# name-based discard scan (the compiler's [[nodiscard]] still covers them).
ANY_DECL_RE = re.compile(
    r"^[ \t]*(?:(?:TASQ_NODISCARD|static|inline|constexpr|virtual|"
    r"explicit|friend)\s+)*"
    r"(?P<ret>[A-Za-z_][\w:]*(?:\s*<[^;{}()=]*>)?)\s*[&*]?\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(",
    re.MULTILINE)
DECL_RET_KEYWORDS = frozenset((
    "return", "else", "case", "goto", "new", "delete", "throw", "do",
    "while", "if", "for", "switch", "using", "namespace", "public",
    "private", "protected", "template", "typedef", "typename", "class",
    "struct", "enum", "union", "operator", "co_return", "co_await",
    "co_yield",
))


def non_status_decl_names(repo, files):
    """Names declared in `files` with a non-Status/Result return type."""
    names = set()
    for rel in files:
        stripped = repo.stripped(rel)
        for match in ANY_DECL_RE.finditer(stripped):
            ret = match.group("ret")
            base = ret.split("<", 1)[0].removeprefix("tasq::")
            if base in ("Status", "Result") or ret in DECL_RET_KEYWORDS:
                continue
            names.add(match.group("name"))
    return names


def must_use_functions(repo):
    """Names of Status/Result-by-value returning functions in src/ that are
    unambiguous: a name that elsewhere returns void (an overload or an
    unrelated helper) cannot be judged by a token scan and is left to the
    compiler's [[nodiscard]] enforcement."""
    names = set()
    for _, _, name, _ in scan_status_functions(repo, repo.src_files):
        names.add(name)
    return names - non_status_decl_names(repo, repo.src_files)


# A call in statement position: anchored at the start of the text or right
# after `;`, `{`, `}` or `)` (the latter catches `if (...) Call();`),
# optionally reached through a `a.b->c::` chain. `return Call()`,
# `x = Call()` and argument positions never match the anchor.
STMT_CALL_RE = re.compile(
    r"(?:(?<=;)|(?<=\{)|(?<=\})|(?<=\))|\A)"
    r"[ \t\n]*(?P<chain>(?:[A-Za-z_]\w*(?:::|\.|->))*)"
    r"(?P<name>[A-Za-z_]\w*)[ \t\n]*\(")

VOID_CAST_RE = re.compile(
    r"\(\s*void\s*\)\s*"
    r"(?P<chain>(?:[A-Za-z_]\w*(?:::|\.|->))*)"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")

# The `)` anchor of STMT_CALL_RE also matches the closing paren of a
# `(void)` cast; such calls are explicit discards handled by the
# discard-needs-reason rule instead.
VOID_CAST_TAIL_RE = re.compile(r"\(\s*void\s*\)\s*$")


def _matching_paren_end(text, open_idx):
    """Index just past the `)` matching text[open_idx] == `(`, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def check_discards(repo):
    """Statement-position calls to must-use functions need their result.

    The compiler enforces the same through [[nodiscard]] (-Werror in CI);
    this check works without a toolchain and additionally requires the
    `(void)` waiver to carry a reason."""
    must_use = must_use_functions(repo)
    if not must_use:
        return []
    findings = []
    for rel in repo.src_files + repo.other_files:
        stripped = repo.stripped(rel)
        raw_lines = repo.text(rel).split("\n")
        # A local helper sharing a must-use name (common in tests) shadows
        # it for this file; the compiler still checks the real overload.
        local_must_use = must_use - non_status_decl_names(repo, [rel])
        for match in STMT_CALL_RE.finditer(stripped):
            name = match.group("name")
            if name not in local_must_use:
                continue
            if VOID_CAST_TAIL_RE.search(stripped, 0, match.start("chain")):
                continue  # Explicit (void) discard; see discard-needs-reason.
            open_idx = stripped.index("(", match.end("name"))
            end = _matching_paren_end(stripped, open_idx)
            if end < 0:
                continue
            tail = stripped[end:end + 2].lstrip()
            if not tail.startswith(";"):
                continue  # Result is consumed (member access, chained...).
            line = stripped[:match.start("name")].count("\n") + 1
            findings.append(Finding(
                "discarded-status", rel, line,
                f"result of '{name}' is discarded; handle the error or "
                f"write `(void){name}(...);  // reason`"))
        for match in VOID_CAST_RE.finditer(stripped):
            name = match.group("name")
            if name not in must_use:
                continue
            line = stripped[:match.start("name")].count("\n") + 1
            here = raw_lines[line - 1] if line - 1 < len(raw_lines) else ""
            above = raw_lines[line - 2] if line - 2 >= 0 else ""
            if "//" in here or above.lstrip().startswith("//"):
                continue
            findings.append(Finding(
                "discard-needs-reason", rel, line,
                f"(void)-discard of '{name}' must say why the error is "
                "safe to ignore: `(void)Call();  // reason`"))
    return findings


# ---------------------------------------------------------------------------
# DAG export
# ---------------------------------------------------------------------------

def module_dag_dot(repo, layers):
    """Graphviz source for the declared module DAG, annotated with which
    declared edges the include graph actually exercises."""
    used = set()
    for rel in repo.src_files:
        module = repo.module_of(rel)
        for _, target, _ in repo.includes(rel):
            target_module = repo.module_of(target)
            if target_module and target_module != module:
                used.add((module, target_module))
    lines = [
        "// Generated by scripts/tasq_arch.py --dot; do not edit.",
        "digraph tasq_modules {",
        "  rankdir=BT;",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    for module in sorted(layers):
        lines.append(f"  \"{module}\";")
    for module in sorted(layers):
        for dep in sorted(layers[module]["deps"]):
            style = "" if (module, dep) in used \
                else " [style=dashed, color=gray, label=\"declared only\"]"
            lines.append(f"  \"{module}\" -> \"{dep}\"{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

RULE_IDS = (
    "module-unlisted", "module-stale", "layering", "private-header",
    "include-cycle", "unused-include", "nodiscard-missing",
    "discarded-status", "discard-needs-reason",
)


def run_checks(root, layers_path=LAYERS_PATH):
    layers = load_layers(root, layers_path)
    repo = Repo(root)
    findings = []
    findings.extend(check_layers_coverage(repo, layers))
    findings.extend(check_layering(repo, layers))
    findings.extend(check_private_headers(repo, layers))
    findings.extend(check_include_cycles(repo))
    findings.extend(check_unused_includes(repo))
    findings.extend(check_nodiscard(repo))
    findings.extend(check_discards(repo))
    findings.sort(key=lambda f: (f.path, f.rule, f.line))
    return findings


def load_baseline(root):
    path = os.path.join(root, BASELINE_PATH)
    entries = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.rstrip("\n")
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def write_baseline(root, findings):
    path = os.path.join(root, BASELINE_PATH)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Accepted tasq_arch.py findings (rule<TAB>path).\n")
        f.write("# Regenerate with: python3 scripts/tasq_arch.py "
                "--update-baseline\n")
        for key in sorted({finding.key() for finding in findings}):
            f.write(key + "\n")


# ---------------------------------------------------------------------------
# Self-test: one positive and one negative fixture tree per rule
# ---------------------------------------------------------------------------

# Base tree shared by the fixtures: two modules, clean layering, annotated
# Status APIs, every include used. Individual cases override files.
GOOD_LAYERS = """\
[modules.common]
deps = []

[modules.app]
deps = ["common"]
internal = ["secret.h"]
"""

GOOD_TREE = {
    "src/common/status.h": (
        "#ifndef TASQ_COMMON_STATUS_H_\n"
        "#define TASQ_COMMON_STATUS_H_\n"
        "#define TASQ_NODISCARD [[nodiscard]]\n"
        "class Status { public: bool ok() const; };\n"
        "TASQ_NODISCARD Status DoWork();\n"
        "#endif\n"),
    "src/app/secret.h": (
        "#ifndef TASQ_APP_SECRET_H_\n"
        "#define TASQ_APP_SECRET_H_\n"
        "inline int SecretImpl() { return 42; }\n"
        "#endif\n"),
    "src/app/app.h": (
        "#ifndef TASQ_APP_APP_H_\n"
        "#define TASQ_APP_APP_H_\n"
        "#include \"common/status.h\"\n"
        "TASQ_NODISCARD Status RunApp();\n"
        "#endif\n"),
    "src/app/app.cc": (
        "#include \"app/app.h\"\n"
        "#include \"app/secret.h\"\n"
        "Status RunApp() {\n"
        "  Status s = DoWork();\n"
        "  if (!s.ok()) return s;\n"
        "  (void)DoWork();  // best-effort warmup; failure is benign\n"
        "  return s.ok() && SecretImpl() > 0 ? s : s;\n"
        "}\n"),
}


def _with(base, **overrides):
    tree = dict(base)
    for path, content in overrides.items():
        if content is None:
            tree.pop(path, None)
        else:
            tree[path] = content
    return tree


# rule -> (positive tree, positive layers, negative tree, negative layers).
# The positive fixture must make exactly that rule fire; the negative must
# be completely quiet (proving the rule has no false positive on the
# nearest conforming tree).
def self_test_cases():
    cases = {}
    cases["module-unlisted"] = (
        _with(GOOD_TREE, **{
            "src/rogue/rogue.h": "#ifndef R_H_\n#define R_H_\n#endif\n"}),
        GOOD_LAYERS, GOOD_TREE, GOOD_LAYERS)
    cases["module-stale"] = (
        GOOD_TREE,
        GOOD_LAYERS + "\n[modules.ghost]\ndeps = []\n",
        GOOD_TREE, GOOD_LAYERS)
    cases["layering"] = (
        _with(GOOD_TREE, **{
            # common reaching up into app inverts the declared DAG.
            "src/app/plain.h": ("#ifndef P_H_\n#define P_H_\n"
                                "inline int AppPlain() { return 1; }\n"
                                "#endif\n"),
            "src/common/status.h": GOOD_TREE["src/common/status.h"].replace(
                "#define TASQ_NODISCARD [[nodiscard]]\n",
                "#define TASQ_NODISCARD [[nodiscard]]\n"
                "#include \"app/plain.h\"  // arch: keep\n")}),
        GOOD_LAYERS, GOOD_TREE, GOOD_LAYERS)
    cases["private-header"] = (
        _with(GOOD_TREE, **{
            "src/common/status.h": GOOD_TREE["src/common/status.h"].replace(
                "class Status",
                "#include \"app/secret.h\"  // arch: keep\nclass Status"),
        }),
        # Let common depend on app so only private-header fires.
        GOOD_LAYERS.replace('[modules.common]\ndeps = []',
                            '[modules.common]\ndeps = ["app"]'),
        GOOD_TREE, GOOD_LAYERS)
    cases["include-cycle"] = (
        _with(GOOD_TREE, **{
            "src/app/a.h": ("#ifndef A_H_\n#define A_H_\n"
                            "#include \"app/b.h\"\n"
                            "inline int UseB() { return FromB(); }\n"
                            "#endif\n"),
            "src/app/b.h": ("#ifndef B_H_\n#define B_H_\n"
                            "#include \"app/a.h\"\n"
                            "inline int FromB() { return 1; }\n"
                            "inline int UseA() { return UseB(); }\n"
                            "#endif\n"),
            "src/app/app.cc": GOOD_TREE["src/app/app.cc"].replace(
                "#include \"app/secret.h\"\n",
                "#include \"app/secret.h\"\n#include \"app/a.h\"\n").replace(
                "SecretImpl() > 0", "SecretImpl() + UseB() > 0")}),
        GOOD_LAYERS, GOOD_TREE, GOOD_LAYERS)
    cases["unused-include"] = (
        _with(GOOD_TREE, **{
            "src/app/dead.h": ("#ifndef D_H_\n#define D_H_\n"
                               "inline int DeadSymbol() { return 0; }\n"
                               "#endif\n"),
            "src/app/app.cc": GOOD_TREE["src/app/app.cc"].replace(
                "#include \"app/secret.h\"\n",
                "#include \"app/secret.h\"\n#include \"app/dead.h\"\n")}),
        GOOD_LAYERS,
        # Negative: same dead header but the include carries `arch: keep`.
        _with(GOOD_TREE, **{
            "src/app/dead.h": ("#ifndef D_H_\n#define D_H_\n"
                               "inline int DeadSymbol() { return 0; }\n"
                               "#endif\n"),
            "src/app/app.cc": GOOD_TREE["src/app/app.cc"].replace(
                "#include \"app/secret.h\"\n",
                "#include \"app/secret.h\"\n"
                "#include \"app/dead.h\"  // arch: keep — re-exported\n")}),
        GOOD_LAYERS)
    cases["nodiscard-missing"] = (
        _with(GOOD_TREE, **{
            "src/app/app.h": GOOD_TREE["src/app/app.h"].replace(
                "TASQ_NODISCARD Status RunApp();",
                "Status RunApp();")}),
        GOOD_LAYERS, GOOD_TREE, GOOD_LAYERS)
    cases["discarded-status"] = (
        _with(GOOD_TREE, **{
            "src/app/app.cc": GOOD_TREE["src/app/app.cc"].replace(
                "  Status s = DoWork();\n",
                "  DoWork();\n  Status s = DoWork();\n")}),
        GOOD_LAYERS, GOOD_TREE, GOOD_LAYERS)
    cases["discard-needs-reason"] = (
        _with(GOOD_TREE, **{
            "src/app/app.cc": GOOD_TREE["src/app/app.cc"].replace(
                "  (void)DoWork();  // best-effort warmup; failure is "
                "benign\n",
                "  (void)DoWork();\n")}),
        GOOD_LAYERS, GOOD_TREE, GOOD_LAYERS)
    return cases


def _materialize(tmp, tree, layers_text):
    for rel, content in tree.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
    layers_file = os.path.join(tmp, LAYERS_PATH)
    os.makedirs(os.path.dirname(layers_file), exist_ok=True)
    with open(layers_file, "w", encoding="utf-8") as f:
        f.write(layers_text)


def self_test():
    """Every rule id has a positive fixture (rule fires, and only on the
    seeded defect) and a negative fixture (conforming tree is quiet)."""
    cases = self_test_cases()
    uncovered = set(RULE_IDS) - set(cases)
    if uncovered:
        print(f"self-test FAILED: rules without fixtures: "
              f"{sorted(uncovered)}")
        return 1
    failures = 0
    for rule, (pos_tree, pos_layers, neg_tree, neg_layers) in \
            sorted(cases.items()):
        with tempfile.TemporaryDirectory(
                prefix="tasq_arch_selftest_") as tmp:
            _materialize(tmp, pos_tree, pos_layers)
            findings = run_checks(tmp)
            fired = {f.rule for f in findings}
            if rule not in fired:
                print(f"self-test FAILED: [{rule}] positive fixture did "
                      f"not fire (saw {sorted(fired)})")
                for f in findings:
                    print(f"  saw: {f}")
                failures += 1
            elif fired != {rule}:
                print(f"self-test FAILED: [{rule}] positive fixture also "
                      f"fired {sorted(fired - {rule})}")
                for f in findings:
                    print(f"  saw: {f}")
                failures += 1
        with tempfile.TemporaryDirectory(
                prefix="tasq_arch_selftest_") as tmp:
            _materialize(tmp, neg_tree, neg_layers)
            leftover = run_checks(tmp)
            if leftover:
                print(f"self-test FAILED: [{rule}] negative fixture is "
                      "not quiet:")
                for f in leftover:
                    print(f"  {f}")
                failures += 1
    if failures:
        return 1
    print(f"self-test passed: {len(cases)} rules, each with a firing "
          "positive and a quiet negative fixture")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to analyze")
    parser.add_argument("--layers", default=LAYERS_PATH,
                        help="layer declaration file, relative to --root")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run per-rule positive/negative fixtures")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the module DAG as Graphviz to PATH "
                        "('-' for stdout)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    try:
        layers = load_layers(args.root, args.layers)
    except LayersError as err:
        print(f"error: {args.layers}: {err}")
        return 2

    if args.dot:
        repo = Repo(args.root)
        dot = module_dag_dot(repo, layers)
        if args.dot == "-":
            sys.stdout.write(dot)
        else:
            with open(args.dot, "w", encoding="utf-8") as f:
                f.write(dot)
            print(f"module DAG written to {args.dot}")
        return 0

    try:
        findings = run_checks(args.root, args.layers)
    except LayersError as err:
        print(f"error: {args.layers}: {err}")
        return 2

    if args.update_baseline:
        write_baseline(args.root, findings)
        print(f"baseline updated with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(args.root)
    new = [f for f in findings if f.key() not in baseline]
    found_keys = {f.key() for f in findings}
    stale = sorted(baseline - found_keys)

    for finding in new:
        print(finding)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — "
              "run --update-baseline to prune):")
        for key in stale:
            print(f"  {key}")
    if new:
        print(f"\n{len(new)} new architecture finding(s). Fix them or, if "
              "accepted, run: python3 scripts/tasq_arch.py "
              "--update-baseline")
        return 1
    print(f"arch ok ({len(findings)} baselined finding(s), "
          f"{len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
