#!/usr/bin/env python3
"""TASQ hot-path performance-conformance analyzer.

Serving-time reallocation loops (Enel-style elastic scaling, drift-driven
refits) only work if the request path has predictable, allocation-free
latency — and nothing but a linter stops a future PR from reintroducing a
lock, a std::string format, or a blocking call into it. This analyzer
(stdlib only, same mold as tasq_arch.py) parses every function definition
under src/, builds a lightweight name-based call graph, and transitively
enforces a real-time-safety contract on every function reachable from a
`TASQ_HOT` annotation (macro in src/common/hot.h):

  hot-alloc              no heap allocation: new / new[], malloc / calloc /
                         realloc / strdup, make_unique / make_shared. The
                         hot path works out of preallocated, caller-owned
                         buffers.
  hot-container-growth   no push_back / emplace_back / emplace / insert /
                         resize / reserve / append / clear-then-grow on
                         containers: growth reallocates. Preallocated
                         (bounded) growth is waivable.
  hot-string             no std::string construction, std::to_string, or
                         ToString/ToText-style formatting: every one heap
                         allocates. Hot code reports through counters and
                         fixed structs.
  hot-std-function       no std::function: capturing callables type-erase
                         through a heap allocation.
  hot-mutex              no mutex acquisition (MutexLock, lock_guard,
                         unique_lock, scoped_lock, .Lock()/.lock()) except
                         inside functions on the shard-local allowlist
                         (scripts/hot_locks.txt): an O(1) critical section
                         local to one cache shard is the only sanctioned
                         lock shape on the serving fast path.
  hot-blocking           no blocking calls: sleeps, condition-variable
                         waits, file/stream I/O, printf-family, system().
  hot-abort              the hot path neither throws nor aborts: no throw,
                         abort, exit, and no TASQ_CHECK* (its failure path
                         aborts) — use TASQ_DCHECK*, which compiles out of
                         Release serving builds.

Waivers: a deliberate exception carries `// hot: <reason>` on the
offending line or the line directly above it; the reason is mandatory
(anonymous suppressions rot). The mutex allowlist is declarative instead
of per-line: scripts/hot_locks.txt lists `Class::Function` names whose
single shard-local lock acquisition is part of the reviewed design.

Known, accepted findings live in scripts/hot_baseline.txt; the analyzer
exits nonzero only on findings not in the baseline. The baseline is empty
as of PR 6 and CI fails if it regrows (job static-analysis, via
scripts/check.sh analyzers).

Usage:
  python3 scripts/tasq_hot.py                    analyze the repo
  python3 scripts/tasq_hot.py --update-baseline  accept current findings
  python3 scripts/tasq_hot.py --self-test        per-rule fixture check
  python3 scripts/tasq_hot.py --dot out.dot      emit the hot call graph
  python3 scripts/tasq_hot.py --list-hot         list the enforced set
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join("scripts", "hot_baseline.txt")
LOCKS_PATH = os.path.join("scripts", "hot_locks.txt")
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")
SKIP_DIR_PREFIXES = ("build",)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # Repo-relative, forward slashes.
        self.line = line  # 1-based.
        self.message = message

    def key(self):
        # Line numbers shift too easily to key the baseline on them.
        return f"{self.rule}\t{self.path}"

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Identical policy to tasq_arch.py: a banned token inside a comment or a
    log string must not count as a violation."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Function extraction: definitions, bodies, annotations
# ---------------------------------------------------------------------------

# A function-definition head: `Qualified::Name (args…)` followed (after
# optional const/noexcept/ref-qualifier/attributes/initializer list) by
# `{`. Control-flow keywords are filtered out afterwards.
FUNC_HEAD_RE = re.compile(
    r"(?P<name>[A-Za-z_]\w*(?:::[A-Za-z_]\w*|::operator\s*\(\s*\))*)"
    r"\s*\(")

HEAD_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "defined", "assert", "co_return",
    "co_await", "co_yield", "new", "delete", "throw", "noexcept",
    "alignas", "typeid", "requires",
))

# What may legally sit between the closing `)` of the parameter list and
# the opening `{` of the body: cv/ref qualifiers, noexcept, attributes,
# override/final, thread-safety annotations, trailing return types, and
# constructor initializer lists.
TAIL_OK_RE = re.compile(
    r"\A(?:\s|const|noexcept|override|final|&&?|->\s*[\w:<>,\s*&]+|"
    r"\[\[[^\]]*\]\]|TASQ_\w+(?:\s*\([^)]*\))?|:\s*[^{};]*)*\Z")

# A TASQ_HOT annotation followed by the annotated declaration. The name is
# the last identifier before the parameter list.
HOT_ANNOT_RE = re.compile(
    r"\bTASQ_HOT\b(?P<sig>[^;{}()]*?)(?P<name>[A-Za-z_]\w*)\s*\(")

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CALL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "catch", "defined", "assert", "co_return",
    "co_await", "co_yield", "new", "delete", "throw", "noexcept",
    "alignas", "typeid", "requires", "operator",
))

WAIVER_RE = re.compile(r"//\s*hot:\s*\S")


def _matching_brace_end(text, open_idx):
    """Index just past the `}` matching text[open_idx] == `{`, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _matching_paren_end(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


class Function:
    """One function definition: its location, body span, and call set."""

    def __init__(self, rel, qual_name, line, body_start, body_end):
        self.rel = rel
        self.qual_name = qual_name          # e.g. ReportCache::GetInto
        self.name = qual_name.split("::")[-1]
        self.line = line                    # 1-based line of the head.
        self.body_start = body_start        # Offsets into the stripped text.
        self.body_end = body_end


def extract_functions(stripped, rel):
    """Finds function definitions (heuristically) in one stripped file.

    The regex net is cast to catch ordinary definitions and out-of-line
    members; lambdas and tricky macro-generated functions fall through the
    net, which is acceptable for a conformance lint (the rules then apply
    to their *enclosing* function, whose body textually contains them)."""
    functions = []
    pos = 0
    n = len(stripped)
    while pos < n:
        match = FUNC_HEAD_RE.search(stripped, pos)
        if not match:
            break
        name = match.group("name")
        last = name.split("::")[-1]
        if last in HEAD_KEYWORDS:
            pos = match.end()
            continue
        paren_end = _matching_paren_end(stripped, match.end() - 1)
        if paren_end < 0:
            pos = match.end()
            continue
        brace = stripped.find("{", paren_end)
        semi = stripped.find(";", paren_end)
        if brace < 0 or (0 <= semi < brace):
            pos = paren_end  # Declaration only; no body here.
            continue
        tail = stripped[paren_end:brace]
        if not TAIL_OK_RE.match(tail):
            pos = paren_end
            continue
        body_end = _matching_brace_end(stripped, brace)
        if body_end < 0:
            pos = paren_end
            continue
        line = stripped[:match.start()].count("\n") + 1
        functions.append(Function(rel, name, line, brace, body_end))
        # Nested definitions (local structs, lambdas) stay part of this
        # body; resume the scan inside so member definitions in headers
        # (class bodies brace-nest too) are still found.
        pos = brace + 1
    return functions


class Repo:
    """Scanned view of src/: files, functions, annotations, call graph."""

    def __init__(self, root):
        self.root = root
        self.files = []
        self._text = {}
        self._stripped = {}
        self.functions = []          # Every definition found.
        self.by_name = {}            # last-name -> [Function, ...]
        self.hot_names = set()       # Names annotated TASQ_HOT anywhere.
        self.hot_sites = {}          # name -> (rel, line) of the annotation.
        self._scan()

    def _scan(self):
        base = os.path.join(self.root, "src")
        if os.path.isdir(base):
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(SKIP_DIR_PREFIXES) and d != ".git")
                for fname in sorted(filenames):
                    if fname.endswith(SOURCE_SUFFIXES):
                        rel = os.path.relpath(
                            os.path.join(dirpath, fname),
                            self.root).replace(os.sep, "/")
                        self.files.append(rel)
        for rel in self.files:
            stripped = self.stripped(rel)
            for func in extract_functions(stripped, rel):
                self.functions.append(func)
                self.by_name.setdefault(func.name, []).append(func)
            for match in HOT_ANNOT_RE.finditer(stripped):
                # Ignore the macro's own #define.
                if rel.endswith("common/hot.h"):
                    continue
                name = match.group("name")
                line = stripped[:match.start()].count("\n") + 1
                self.hot_names.add(name)
                self.hot_sites.setdefault(name, (rel, line))

    def text(self, rel):
        if rel not in self._text:
            with open(os.path.join(self.root, rel), encoding="utf-8",
                      errors="replace") as f:
                self._text[rel] = f.read()
        return self._text[rel]

    def stripped(self, rel):
        if rel not in self._stripped:
            self._stripped[rel] = strip_comments_and_strings(self.text(rel))
        return self._stripped[rel]

    def body(self, func):
        return self.stripped(func.rel)[func.body_start:func.body_end]

    def calls(self, func):
        """Names called from `func`'s body (src-resolvable or not)."""
        out = set()
        for match in CALL_RE.finditer(self.body(func)):
            name = match.group(1)
            if name not in CALL_KEYWORDS:
                out.add(name)
        return out


def load_lock_allowlist(root):
    """Qualified function names whose shard-local lock is sanctioned."""
    path = os.path.join(root, LOCKS_PATH)
    entries = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.split("#", 1)[0].strip()
                if line:
                    entries.add(line)
    return entries


# ---------------------------------------------------------------------------
# Transitive hot set
# ---------------------------------------------------------------------------

def hot_closure(repo):
    """Functions transitively reachable from a TASQ_HOT annotation.

    The call graph is name-based (no type resolution), so a call edge
    fans out to every src/ definition sharing the callee's last name —
    a deliberate over-approximation: a colliding cold function being
    swept into the hot set is a naming smell worth renaming, whereas an
    under-approximation would let allocation creep in through a helper.
    Returns (hot_functions, edges) where edges maps a function to the
    hot callee names it reaches (for --dot)."""
    hot_funcs = []
    seen = set()
    edges = {}
    frontier = [name for name in sorted(repo.hot_names)]
    visited_names = set()
    while frontier:
        name = frontier.pop()
        if name in visited_names:
            continue
        visited_names.add(name)
        for func in repo.by_name.get(name, ()):
            key = (func.rel, func.line, func.qual_name)
            if key in seen:
                continue
            seen.add(key)
            hot_funcs.append(func)
            callees = sorted(
                c for c in repo.calls(func) if c in repo.by_name)
            edges[func] = callees
            for callee in callees:
                if callee not in visited_names:
                    frontier.append(callee)
    return hot_funcs, edges


# ---------------------------------------------------------------------------
# Per-rule scans over hot bodies
# ---------------------------------------------------------------------------

# rule id -> (pattern over stripped body text, message).
RULE_PATTERNS = (
    ("hot-alloc",
     re.compile(r"\bnew\b(?!\s*\()"
                r"|\bnew\s*\("            # placement/new(nothrow) too
                r"|\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\("
                r"|\bmake_unique\s*<"
                r"|\bmake_shared\s*<"),
     "heap allocation on the hot path"),
    ("hot-container-growth",
     re.compile(r"\.(?:push_back|emplace_back|emplace|emplace_front|"
                r"push_front|insert|resize|reserve|append|assign)\s*\("),
     "container growth reallocates on the hot path"),
    ("hot-string",
     re.compile(r"\bstd\s*::\s*string\b"
                r"|\bto_string\s*\("
                r"|\bToString\s*\("
                r"|\bToText\s*\("
                r"|\bsnprintf\s*\("
                r"|\bostringstream\b|\bstringstream\b"),
     "string construction/formatting allocates on the hot path"),
    ("hot-std-function",
     re.compile(r"\bstd\s*::\s*function\b"),
     "std::function type-erases through a heap allocation"),
    ("hot-mutex",
     re.compile(r"\bMutexLock\b|\block_guard\b|\bunique_lock\b|"
                r"\bscoped_lock\b|\.\s*(?:Lock|lock)\s*\(\s*\)"),
     "mutex acquisition outside the shard-local allowlist "
     f"({LOCKS_PATH})"),
    ("hot-blocking",
     re.compile(r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|"
                r"\b(?:std\s*::\s*)?this_thread\b|"
                r"\.\s*[Ww]ait(?:For)?\s*\(|"
                r"\bfopen\s*\(|\bfread\s*\(|\bfwrite\s*\(|\bfputs\s*\(|"
                r"\bf?printf\s*\(|\bfflush\s*\(|\bgetline\s*\(|"
                r"\bsystem\s*\(|\bifstream\b|\bofstream\b|\bfstream\b|"
                r"\bstd\s*::\s*(?:cout|cerr|cin)\b"),
     "blocking call / IO on the hot path"),
    ("hot-abort",
     re.compile(r"\bthrow\b|\babort\s*\(|\bexit\s*\(|"
                r"\bTASQ_CHECK(?:_[A-Z]+)?\s*\("),
     "hot path must not throw or abort (TASQ_CHECK aborts on failure; "
     "use TASQ_DCHECK, which compiles out of Release)"),
)

RULE_IDS = tuple(rule for rule, _, _ in RULE_PATTERNS)


def _waived(raw_lines, line):
    """True when `line` (1-based) carries or follows a `// hot:` waiver."""
    here = raw_lines[line - 1] if line - 1 < len(raw_lines) else ""
    above = raw_lines[line - 2] if line - 2 >= 0 else ""
    return bool(WAIVER_RE.search(here)) or bool(WAIVER_RE.search(above))


def check_hot_functions(repo, lock_allowlist):
    findings = []
    hot_funcs, _ = hot_closure(repo)
    for func in hot_funcs:
        body = repo.body(func)
        base_line = repo.stripped(func.rel)[:func.body_start].count("\n") + 1
        raw_lines = repo.text(func.rel).split("\n")
        for rule, pattern, message in RULE_PATTERNS:
            if rule == "hot-mutex" and func.qual_name in lock_allowlist:
                continue
            for match in pattern.finditer(body):
                line = base_line + body[:match.start()].count("\n")
                if _waived(raw_lines, line):
                    continue
                token = match.group(0).strip()
                findings.append(Finding(
                    rule, func.rel, line,
                    f"'{token}' in hot function '{func.qual_name}': "
                    f"{message}. Fix it, or waive with "
                    "`// hot: <reason>` on this line"))
    return findings


def check_annotations_resolve(repo):
    """Every TASQ_HOT annotation must name a function defined in src/ —
    a stale annotation would silently enforce nothing."""
    findings = []
    for name in sorted(repo.hot_names):
        if name not in repo.by_name:
            rel, line = repo.hot_sites[name]
            findings.append(Finding(
                "hot-unresolved", rel, line,
                f"TASQ_HOT annotates '{name}' but no definition of it "
                "exists under src/; the contract is enforced on nothing"))
    return findings


def check_lock_allowlist(repo, lock_allowlist):
    """Allowlist entries must name functions that exist and are hot —
    stale entries would grandfather future locks in silently."""
    findings = []
    hot_funcs, _ = hot_closure(repo)
    hot_quals = {f.qual_name for f in hot_funcs}
    for entry in sorted(lock_allowlist):
        if entry not in hot_quals:
            findings.append(Finding(
                "hot-stale-allowlist", LOCKS_PATH, 0,
                f"allowlist entry '{entry}' matches no function in the "
                "hot closure; remove it (stale entries grandfather "
                "future locks in silently)"))
    return findings


RULE_IDS_ALL = RULE_IDS + ("hot-unresolved", "hot-stale-allowlist")


def run_checks(root):
    repo = Repo(root)
    lock_allowlist = load_lock_allowlist(root)
    findings = []
    findings.extend(check_annotations_resolve(repo))
    findings.extend(check_lock_allowlist(repo, lock_allowlist))
    findings.extend(check_hot_functions(repo, lock_allowlist))
    findings.sort(key=lambda f: (f.path, f.rule, f.line))
    return findings


# ---------------------------------------------------------------------------
# DOT export
# ---------------------------------------------------------------------------

def hot_dag_dot(repo):
    """Graphviz source for the enforced hot call graph: annotation roots
    in bold, transitive members plain, edges by textual call."""
    hot_funcs, edges = hot_closure(repo)
    lines = [
        "// Generated by scripts/tasq_hot.py --dot; do not edit.",
        "digraph tasq_hot_paths {",
        "  rankdir=LR;",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    hot_names_by_last = {}
    for func in hot_funcs:
        hot_names_by_last.setdefault(func.name, set()).add(func.qual_name)
    emitted_nodes = set()
    for func in sorted(hot_funcs, key=lambda f: (f.rel, f.line)):
        if func.qual_name in emitted_nodes:
            continue  # Same-named defs share one node (name-based graph).
        emitted_nodes.add(func.qual_name)
        style = ", style=bold" if func.name in repo.hot_names else ""
        lines.append(
            f"  \"{func.qual_name}\" [label=\"{func.qual_name}\\n"
            f"{func.rel}:{func.line}\"{style}];")
    emitted = set()
    for func in sorted(hot_funcs, key=lambda f: (f.rel, f.line)):
        for callee in edges.get(func, ()):
            for target in sorted(hot_names_by_last.get(callee, ())):
                if target == func.qual_name:
                    continue
                edge = (func.qual_name, target)
                if edge in emitted:
                    continue
                emitted.add(edge)
                lines.append(f"  \"{edge[0]}\" -> \"{edge[1]}\";")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(root):
    path = os.path.join(root, BASELINE_PATH)
    entries = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.rstrip("\n")
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def write_baseline(root, findings):
    path = os.path.join(root, BASELINE_PATH)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Accepted tasq_hot.py findings (rule<TAB>path).\n")
        f.write("# Regenerate with: python3 scripts/tasq_hot.py "
                "--update-baseline\n")
        for key in sorted({finding.key() for finding in findings}):
            f.write(key + "\n")


# ---------------------------------------------------------------------------
# Self-test: per-rule positive + quiet-negative fixtures + coverage gate
# ---------------------------------------------------------------------------

HOT_H = (
    "#ifndef TASQ_COMMON_HOT_H_\n"
    "#define TASQ_COMMON_HOT_H_\n"
    "#define TASQ_HOT\n"
    "#endif\n")

# Conforming base tree: one annotated hot function calling one clean
# helper two hops deep — the negative fixture for every rule, and the
# base the positive fixtures perturb. The cold function allocates freely
# and must never be flagged (it is not in the closure).
GOOD_TREE = {
    "src/common/hot.h": HOT_H,
    "src/app/fast.h": (
        "#ifndef TASQ_APP_FAST_H_\n"
        "#define TASQ_APP_FAST_H_\n"
        "#include \"common/hot.h\"\n"
        "TASQ_HOT int FastLookup(int key);\n"
        "void ColdRefill(int* out, int n);\n"
        "#endif\n"),
    "src/app/fast.cc": (
        "#include \"app/fast.h\"\n"
        "#include <vector>\n"
        "namespace {\n"
        "int MixKey(int key) { return key * 2654435761; }\n"
        "int ProbeSlot(int key) { return MixKey(key) & 1023; }\n"
        "}  // namespace\n"
        "int FastLookup(int key) { return ProbeSlot(key); }\n"
        "void ColdRefill(int* out, int n) {\n"
        "  std::vector<int> scratch;\n"
        "  for (int i = 0; i < n; ++i) scratch.push_back(i);\n"
        "  for (int i = 0; i < n; ++i) out[i] = scratch[i];\n"
        "}\n"),
}

GOOD_LOCKS = ""


def _with(base, **overrides):
    tree = dict(base)
    for path, content in overrides.items():
        if content is None:
            tree.pop(path, None)
        else:
            tree[path] = content
    return tree


def _inject(statement):
    """Positive fixture: `statement` lands in the transitive helper
    ProbeSlot — two hops below the TASQ_HOT root — proving enforcement is
    transitive, not just on the annotated function."""
    return _with(GOOD_TREE, **{
        "src/app/fast.cc": GOOD_TREE["src/app/fast.cc"].replace(
            "int ProbeSlot(int key) { return MixKey(key) & 1023; }",
            "int ProbeSlot(int key) {\n"
            f"  {statement}\n"
            "  return MixKey(key) & 1023;\n"
            "}")})


def _inject_waived(statement, reason="bounded by ctor-time reserve"):
    """Negative fixture: the same defect carrying a `// hot:` waiver."""
    return _inject(f"{statement}  // hot: {reason}")


# rule -> (positive tree, positive locks, negative tree, negative locks).
def self_test_cases():
    cases = {}
    cases["hot-alloc"] = (
        _inject("int* p = new int(key); delete p;"), GOOD_LOCKS,
        _inject_waived("int* p = new int(key); delete p;",
                       "freelist-backed; measured zero on warm path"),
        GOOD_LOCKS)
    cases["hot-container-growth"] = (
        _inject("static std::vector<int> v; v.push_back(key);"), GOOD_LOCKS,
        _inject_waived("static std::vector<int> v; v.push_back(key);"),
        GOOD_LOCKS)
    cases["hot-string"] = (
        _inject("std::string s; (void)s;"), GOOD_LOCKS,
        _inject_waived("std::string s; (void)s;",
                       "SSO-only name, never exceeds 15 bytes"),
        GOOD_LOCKS)
    cases["hot-std-function"] = (
        _inject("std::function<int()> f; (void)f;"), GOOD_LOCKS,
        _inject_waived("std::function<int()> f; (void)f;",
                       "empty target, never rebound"),
        GOOD_LOCKS)
    cases["hot-mutex"] = (
        _inject("MutexLock lock(shard_mutex);"), GOOD_LOCKS,
        # Negative: same lock, but the function is on the declared
        # shard-local allowlist.
        _inject("MutexLock lock(shard_mutex);"),
        "ProbeSlot  # shard-local probe lock, O(1) critical section\n")
    cases["hot-blocking"] = (
        _inject("queue_cv.Wait(shard_mutex);  // hot: not the wait rule"
                .replace("  // hot: not the wait rule", "")), GOOD_LOCKS,
        _inject_waived("queue_cv.Wait(shard_mutex);",
                       "bounded 1us adaptive backoff, measured"),
        GOOD_LOCKS)
    cases["hot-abort"] = (
        _inject("TASQ_CHECK(key >= 0);"), GOOD_LOCKS,
        _inject_waived("TASQ_CHECK(key >= 0);",
                       "startup-only branch, unreachable after warmup"),
        GOOD_LOCKS)
    cases["hot-unresolved"] = (
        _with(GOOD_TREE, **{
            "src/app/fast.h": GOOD_TREE["src/app/fast.h"].replace(
                "TASQ_HOT int FastLookup(int key);",
                "TASQ_HOT int FastLookup(int key);\n"
                "TASQ_HOT int GhostLookup(int key);")}),
        GOOD_LOCKS, GOOD_TREE, GOOD_LOCKS)
    cases["hot-stale-allowlist"] = (
        GOOD_TREE, "Ghost::Function  # no such function\n",
        GOOD_TREE, GOOD_LOCKS)
    return cases


def _materialize(tmp, tree, locks_text):
    for rel, content in tree.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
    locks_file = os.path.join(tmp, LOCKS_PATH)
    os.makedirs(os.path.dirname(locks_file), exist_ok=True)
    with open(locks_file, "w", encoding="utf-8") as f:
        f.write(locks_text)


def self_test():
    """Coverage-gated: every rule id must have a positive fixture that
    fires exactly that rule (through a transitive callee, proving closure)
    and a negative fixture that is completely quiet."""
    cases = self_test_cases()
    uncovered = set(RULE_IDS_ALL) - set(cases)
    if uncovered:
        print(f"self-test FAILED: rules without fixtures: "
              f"{sorted(uncovered)}")
        return 1
    failures = 0
    for rule, (pos_tree, pos_locks, neg_tree, neg_locks) in \
            sorted(cases.items()):
        with tempfile.TemporaryDirectory(
                prefix="tasq_hot_selftest_") as tmp:
            _materialize(tmp, pos_tree, pos_locks)
            findings = run_checks(tmp)
            fired = {f.rule for f in findings}
            if rule not in fired:
                print(f"self-test FAILED: [{rule}] positive fixture did "
                      f"not fire (saw {sorted(fired) or 'nothing'})")
                failures += 1
            elif fired != {rule}:
                print(f"self-test FAILED: [{rule}] positive fixture also "
                      f"fired {sorted(fired - {rule})}")
                for f in findings:
                    print(f"  saw: {f}")
                failures += 1
        with tempfile.TemporaryDirectory(
                prefix="tasq_hot_selftest_") as tmp:
            _materialize(tmp, neg_tree, neg_locks)
            leftover = run_checks(tmp)
            if leftover:
                print(f"self-test FAILED: [{rule}] negative fixture is "
                      "not quiet:")
                for f in leftover:
                    print(f"  {f}")
                failures += 1
    # The cold function must stay invisible to the closure: its
    # allocations never fire even in the conforming tree (checked above by
    # the negative fixtures being quiet while ColdRefill push_backs).
    if failures:
        return 1
    print(f"self-test passed: {len(cases)} rules, each firing through a "
          "transitive callee and quiet when waived/allowlisted")
    return 0


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to analyze")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run per-rule positive/negative fixtures")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the hot call graph as Graphviz to PATH "
                        "('-' for stdout)")
    parser.add_argument("--list-hot", action="store_true",
                        help="list every function in the enforced hot set")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    repo = Repo(args.root)

    if args.dot:
        dot = hot_dag_dot(repo)
        if args.dot == "-":
            sys.stdout.write(dot)
        else:
            with open(args.dot, "w", encoding="utf-8") as f:
                f.write(dot)
            print(f"hot call graph written to {args.dot}")
        return 0

    if args.list_hot:
        hot_funcs, _ = hot_closure(repo)
        for func in sorted(hot_funcs, key=lambda f: (f.rel, f.line)):
            root = " [root]" if func.name in repo.hot_names else ""
            print(f"{func.rel}:{func.line}: {func.qual_name}{root}")
        print(f"{len(hot_funcs)} function(s) in the hot closure, "
              f"{len(repo.hot_names)} annotated root name(s)")
        return 0

    findings = run_checks(args.root)

    if args.update_baseline:
        write_baseline(args.root, findings)
        print(f"baseline updated with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(args.root)
    new = [f for f in findings if f.key() not in baseline]
    found_keys = {f.key() for f in findings}
    stale = sorted(baseline - found_keys)

    for finding in new:
        print(finding)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — "
              "run --update-baseline to prune):")
        for key in stale:
            print(f"  {key}")
    if new:
        print(f"\n{len(new)} new hot-path finding(s). Fix them or, if "
              "accepted, run: python3 scripts/tasq_hot.py "
              "--update-baseline")
        return 1
    hot_funcs, _ = hot_closure(repo)
    print(f"hot ok ({len(hot_funcs)} function(s) enforced, "
          f"{len(findings)} baselined finding(s), {len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
