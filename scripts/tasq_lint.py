#!/usr/bin/env python3
"""TASQ repository linter: enforces the repo's own conventions.

Rules (stdlib only, no clang dependency):

  include-guard          src/ headers guard with TASQ_<DIR>_<FILE>_H_
                         derived from the path (e.g. src/pcc/pcc.h ->
                         TASQ_PCC_PCC_H_).
  using-namespace-header no `using namespace` at header scope anywhere;
                         headers leak it into every includer.
  throw-in-src           no `throw` in src/: fallible operations return
                         Status/Result<T> (the contract documented in
                         common/status.h). Tests/benches may throw.
  cout-in-src            no `std::cout` in src/: library code reports
                         through return values; printing belongs to the
                         bench/example binaries (see common/text_io and
                         common/table for the sanctioned paths).
  header-unreachable     every header under src/ must be reachable from
                         some test via transitive #include — an untested
                         header is dead or untrusted code.
  serve-header-untested  headers under src/serve/ must be #included
                         directly by a file in tests/: the serving layer
                         is the repo's concurrency surface, and transitive
                         reachability is not direct coverage.
  mutex-unannotated      src/ synchronizes through the annotated wrappers
                         in common/mutex.h: raw std::mutex /
                         std::condition_variable are forbidden outside the
                         wrapper, and every tasq::Mutex must have a stated
                         contract — a TASQ_GUARDED_BY(mu) field (or a
                         "Guarded by mu" comment for function-local
                         mutexes, where the attribute cannot attach).
  raw-lock-in-src        no bare lock()/unlock() calls and no
                         std::lock_guard/unique_lock/scoped_lock in src/
                         outside common/mutex.h: locking goes through
                         MutexLock/CondVar so Clang's -Wthread-safety
                         analysis sees every acquisition.
  nolint-needs-reason    every NOLINT in src/ must name the silenced check
                         and give a reason: NOLINT(check-name): why.
                         Anonymous suppressions rot.

Known, accepted findings live in scripts/lint_baseline.txt; the linter
exits nonzero only on findings not in the baseline, so it can land green
and still fail on regressions. The baseline is empty as of PR 3 and CI
fails if it regrows (see .github/workflows/ci.yml, job static-analysis).

Usage:
  python3 scripts/tasq_lint.py                  lint the repo
  python3 scripts/tasq_lint.py --update-baseline  accept current findings
  python3 scripts/tasq_lint.py --self-test      verify the rules fire on
                                                a synthetic bad tree
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join("scripts", "lint_baseline.txt")
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")
SKIP_DIR_PREFIXES = ("build",)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # Repo-relative, forward slashes.
        self.line = line  # 1-based, or 0 for whole-file findings.
        self.message = message

    def key(self):
        # Line numbers shift too easily to key the baseline on them.
        return f"{self.rule}\t{self.path}"

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Good enough for keyword scans: a `throw` in a comment or a log string
    must not count. Raw strings are treated as plain strings (fine for the
    patterns we search)."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_source_files(root, subdirs):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(SKIP_DIR_PREFIXES) and d != ".git")
            for name in sorted(filenames):
                if name.endswith(SOURCE_SUFFIXES):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def read(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
        return f.read()


def expected_guard(rel_path):
    # src/pcc/pcc.h -> TASQ_PCC_PCC_H_
    assert rel_path.startswith("src/") and rel_path.endswith(".h")
    stem = rel_path[len("src/"):-len(".h")]
    return "TASQ_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_include_guards(root):
    findings = []
    for rel in iter_source_files(root, ["src"]):
        if not rel.endswith(".h"):
            continue
        want = expected_guard(rel)
        text = read(root, rel)
        ifndef = re.search(r"^#ifndef\s+(\S+)", text, re.MULTILINE)
        define = re.search(r"^#define\s+(\S+)", text, re.MULTILINE)
        if not ifndef or not define:
            findings.append(Finding(
                "include-guard", rel, 1,
                f"missing include guard (expected {want})"))
            continue
        if ifndef.group(1) != want or define.group(1) != want:
            line = text[:ifndef.start()].count("\n") + 1
            findings.append(Finding(
                "include-guard", rel, line,
                f"guard is {ifndef.group(1)}, expected {want}"))
    return findings


def check_using_namespace_in_headers(root):
    findings = []
    for rel in iter_source_files(root, ["src", "tests", "bench", "examples"]):
        if not rel.endswith(".h"):
            continue
        stripped = strip_comments_and_strings(read(root, rel))
        for match in re.finditer(r"\busing\s+namespace\b", stripped):
            line = stripped[:match.start()].count("\n") + 1
            findings.append(Finding(
                "using-namespace-header", rel, line,
                "`using namespace` in a header leaks into every includer"))
    return findings


def check_throw_in_src(root):
    findings = []
    for rel in iter_source_files(root, ["src"]):
        stripped = strip_comments_and_strings(read(root, rel))
        for match in re.finditer(r"\bthrow\b", stripped):
            line = stripped[:match.start()].count("\n") + 1
            findings.append(Finding(
                "throw-in-src", rel, line,
                "src/ code returns Status/Result instead of throwing "
                "(see common/status.h)"))
    return findings


def check_cout_in_src(root):
    findings = []
    for rel in iter_source_files(root, ["src"]):
        stripped = strip_comments_and_strings(read(root, rel))
        for match in re.finditer(r"\bstd::cout\b", stripped):
            line = stripped[:match.start()].count("\n") + 1
            findings.append(Finding(
                "cout-in-src", rel, line,
                "library code must not print to stdout; return values or "
                "take an std::ostream&"))
    return findings


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


def check_header_reachability(root):
    """Every src/ header must be in the transitive include closure of the
    tests. Project includes are rooted at src/ (`#include "pcc/pcc.h"`)."""
    headers = {rel for rel in iter_source_files(root, ["src"])
               if rel.endswith(".h")}
    if not headers:
        return []

    def includes_of(rel):
        out = []
        for inc in INCLUDE_RE.findall(read(root, rel)):
            candidate = "src/" + inc
            if candidate in headers:
                out.append(candidate)
        return out

    reached = set()
    frontier = []
    tests_dir = os.path.join(root, "tests")
    if os.path.isdir(tests_dir):
        for rel in iter_source_files(root, ["tests"]):
            for inc in includes_of(rel):
                if inc not in reached:
                    reached.add(inc)
                    frontier.append(inc)
    while frontier:
        current = frontier.pop()
        for inc in includes_of(current):
            if inc not in reached:
                reached.add(inc)
                frontier.append(inc)

    findings = []
    for rel in sorted(headers - reached):
        findings.append(Finding(
            "header-unreachable", rel, 0,
            "not reachable from any test via #include; add coverage or "
            "delete the header"))
    return findings


def check_serve_headers_tested(root):
    """Every header under src/serve/ must be directly #included by at
    least one tests/ file. Concurrency code regresses silently when only
    exercised transitively, so the serving layer gets a stricter bar than
    check_header_reachability."""
    serve_headers = {rel for rel in iter_source_files(root, ["src"])
                     if rel.startswith("src/serve/") and rel.endswith(".h")}
    if not serve_headers:
        return []
    directly_included = set()
    if os.path.isdir(os.path.join(root, "tests")):
        for rel in iter_source_files(root, ["tests"]):
            for inc in INCLUDE_RE.findall(read(root, rel)):
                candidate = "src/" + inc
                if candidate in serve_headers:
                    directly_included.add(candidate)
    findings = []
    for rel in sorted(serve_headers - directly_included):
        findings.append(Finding(
            "serve-header-untested", rel, 0,
            "serving-layer headers must be #included directly by a test "
            "under tests/"))
    return findings


# The annotated wrapper layer is the one place raw std synchronization
# primitives (and their lock()/unlock() calls) are allowed to appear.
MUTEX_WRAPPER_PATH = "src/common/mutex.h"

RAW_SYNC_RE = re.compile(r"\bstd::(mutex|condition_variable(_any)?|"
                         r"recursive_mutex|shared_mutex|timed_mutex)\b")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:tasq::)?Mutex\s+(\w+)\s*;", re.MULTILINE)


def check_mutex_annotated(root):
    """src/ locks through tasq::Mutex, and every Mutex states its contract:
    some TASQ_GUARDED_BY(mu) (or, for function-local mutexes where an
    attribute cannot attach, a `Guarded by mu` comment) must name it."""
    findings = []
    for rel in iter_source_files(root, ["src"]):
        if rel == MUTEX_WRAPPER_PATH:
            continue
        raw = read(root, rel)
        stripped = strip_comments_and_strings(raw)
        for match in RAW_SYNC_RE.finditer(stripped):
            line = stripped[:match.start()].count("\n") + 1
            findings.append(Finding(
                "mutex-unannotated", rel, line,
                f"raw std::{match.group(1)}: use tasq::Mutex/CondVar from "
                "common/mutex.h so -Wthread-safety sees the contract"))
        for match in MUTEX_MEMBER_RE.finditer(stripped):
            name = match.group(1)
            has_attr = re.search(
                r"TASQ_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)",
                stripped)
            # Function-local mutexes document the contract in a comment
            # (searched in the raw text, since comments are stripped above).
            has_comment = re.search(
                r"[Gg]uarded by\s+" + re.escape(name), raw)
            if not has_attr and not has_comment:
                line = stripped[:match.start()].count("\n") + 1
                findings.append(Finding(
                    "mutex-unannotated", rel, line,
                    f"Mutex {name} has no stated contract: annotate the "
                    f"fields it protects with TASQ_GUARDED_BY({name})"))
    return findings


RAW_LOCK_RE = re.compile(
    r"std::(lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|[.>]\s*(?:try_)?(?:un)?lock\s*\(")


def check_raw_lock_in_src(root):
    """Locking in src/ goes through MutexLock/CondVar (common/mutex.h):
    a bare lock()/unlock() or a std::lock_guard on a raw mutex is invisible
    to the thread-safety analysis."""
    findings = []
    for rel in iter_source_files(root, ["src"]):
        if rel == MUTEX_WRAPPER_PATH:
            continue
        stripped = strip_comments_and_strings(read(root, rel))
        for match in RAW_LOCK_RE.finditer(stripped):
            line = stripped[:match.start()].count("\n") + 1
            findings.append(Finding(
                "raw-lock-in-src", rel, line,
                "bare lock/unlock call; acquire through MutexLock (or "
                "CondVar::Wait) so the acquisition is annotated"))
    return findings


# NOLINT, NOLINTNEXTLINE, NOLINTBEGIN require "(check-name): reason";
# NOLINTEND only needs to repeat the check name it closes.
NOLINT_TOKEN_RE = re.compile(r"NOLINT(NEXTLINE|BEGIN|END)?")
NOLINT_OK_RE = re.compile(
    r"NOLINT(?:NEXTLINE|BEGIN)?\([\w\-.,* ]+\)\s*:\s*\S.*")
NOLINT_END_OK_RE = re.compile(r"NOLINTEND\([\w\-.,* ]+\)")


def check_nolint_reason(root):
    """Every clang-tidy suppression must say which check it silences and
    why, e.g. // NOLINT(bugprone-foo): reason. Bare NOLINTs rot."""
    findings = []
    for rel in iter_source_files(root, ["src"]):
        text = read(root, rel)
        for match in NOLINT_TOKEN_RE.finditer(text):
            rest = text[match.start():].split("\n", 1)[0]
            ok = (NOLINT_END_OK_RE.match(rest) if match.group(1) == "END"
                  else NOLINT_OK_RE.match(rest))
            if not ok:
                line = text[:match.start()].count("\n") + 1
                findings.append(Finding(
                    "nolint-needs-reason", rel, line,
                    "NOLINT must name the check and give a reason: "
                    "`NOLINT(check-name): why`"))
    return findings


# Rule ids emitted by each check. self_test() enforces that every id listed
# here has a dedicated positive (rule fires) and negative (rule stays quiet)
# fixture, so a new check cannot land without self-test coverage: adding it
# to this table without a fixture fails the coverage gate, and adding a
# check function without a table entry never runs at all.
CHECK_RULES = {
    check_include_guards: ["include-guard"],
    check_using_namespace_in_headers: ["using-namespace-header"],
    check_throw_in_src: ["throw-in-src"],
    check_cout_in_src: ["cout-in-src"],
    check_header_reachability: ["header-unreachable"],
    check_serve_headers_tested: ["serve-header-untested"],
    check_mutex_annotated: ["mutex-unannotated"],
    check_raw_lock_in_src: ["raw-lock-in-src"],
    check_nolint_reason: ["nolint-needs-reason"],
}

ALL_CHECKS = list(CHECK_RULES)


def run_checks(root):
    findings = []
    for check in ALL_CHECKS:
        findings.extend(check(root))
    findings.sort(key=lambda f: (f.path, f.rule, f.line))
    return findings


def load_baseline(root):
    path = os.path.join(root, BASELINE_PATH)
    entries = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.rstrip("\n")
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def write_baseline(root, findings):
    path = os.path.join(root, BASELINE_PATH)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Accepted tasq_lint.py findings (rule<TAB>path).\n")
        f.write("# Regenerate with: python3 scripts/tasq_lint.py "
                "--update-baseline\n")
        for key in sorted({finding.key() for finding in findings}):
            f.write(key + "\n")


# A minimal tree with zero findings; per-rule fixtures are derived from it
# via _with() so each positive seeds exactly one class of violation.
GOOD_TREE = {
    "src/mod/good.h": (
        "#ifndef TASQ_MOD_GOOD_H_\n"
        "#define TASQ_MOD_GOOD_H_\n"
        "inline int Fine() { return 1; }\n"
        "#endif\n"),
    "src/serve/orphan.h": (
        "#ifndef TASQ_SERVE_ORPHAN_H_\n"
        "#define TASQ_SERVE_ORPHAN_H_\n"
        "inline int Serve() { return 1; }\n"
        "#endif\n"),
    "tests/mod_test.cc": (
        '#include "mod/good.h"\n'
        '#include "serve/orphan.h"\n'
        "int main() { return Fine() + Serve(); }\n"),
}

SYNC_TEST_CC = (
    '#include "mod/good.h"\n'
    '#include "mod/sync.h"\n'
    '#include "serve/orphan.h"\n'
    "int main() { return Fine() + Serve(); }\n")


def _with(overrides):
    tree = dict(GOOD_TREE)
    tree.update(overrides)
    return tree


def _write_tree(root, files):
    for rel, content in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def self_test_cases():
    """rule id -> (positive tree, negative tree). The positive must draw the
    rule; the negative is a near-miss that must stay completely quiet."""
    return {
        "include-guard": (
            _with({"src/mod/good.h":
                   "#ifndef WRONG_GUARD_H\n"
                   "#define WRONG_GUARD_H\n"
                   "inline int Fine() { return 1; }\n"
                   "#endif\n"}),
            GOOD_TREE),
        "using-namespace-header": (
            _with({"src/mod/good.h":
                   "#ifndef TASQ_MOD_GOOD_H_\n"
                   "#define TASQ_MOD_GOOD_H_\n"
                   "using namespace std;\n"
                   "inline int Fine() { return 1; }\n"
                   "#endif\n"}),
            # Single-name using declarations and commented-out directives
            # are fine; only the directive form leaks.
            _with({"src/mod/good.h":
                   "#ifndef TASQ_MOD_GOOD_H_\n"
                   "#define TASQ_MOD_GOOD_H_\n"
                   "// using namespace std; would leak, so we name names:\n"
                   "using std::size_t;\n"
                   "inline int Fine() { return 1; }\n"
                   "#endif\n"}),
        ),
        "throw-in-src": (
            _with({"src/mod/impl.cc":
                   "int Use(int v) { if (v < 0) throw 1; return v; }\n"}),
            _with({"src/mod/impl.cc":
                   "// a throw in a comment must NOT fire\n"
                   'const char* kS = "throw inside a string";\n'
                   "int Use() { return kS != nullptr; }\n"}),
        ),
        "cout-in-src": (
            _with({"src/mod/impl.cc":
                   "#include <iostream>\n"
                   'void Print() { std::cout << "hi"; }\n'}),
            _with({"src/mod/impl.cc":
                   "#include <ostream>\n"
                   'void Print(std::ostream& out) { out << "hi"; }\n'}),
        ),
        "header-unreachable": (
            _with({"src/mod/orphan2.h":
                   "#ifndef TASQ_MOD_ORPHAN2_H_\n"
                   "#define TASQ_MOD_ORPHAN2_H_\n"
                   "inline int Lost() { return 1; }\n"
                   "#endif\n"}),
            # The same header reached transitively: good.h pulls it in.
            _with({"src/mod/orphan2.h":
                   "#ifndef TASQ_MOD_ORPHAN2_H_\n"
                   "#define TASQ_MOD_ORPHAN2_H_\n"
                   "inline int Found() { return 1; }\n"
                   "#endif\n",
                   "src/mod/good.h":
                   "#ifndef TASQ_MOD_GOOD_H_\n"
                   "#define TASQ_MOD_GOOD_H_\n"
                   '#include "mod/orphan2.h"\n'
                   "inline int Fine() { return Found(); }\n"
                   "#endif\n"}),
        ),
        "serve-header-untested": (
            # Reachable only transitively through good.h: passes the general
            # reachability rule but fails the stricter serve bar.
            _with({"src/mod/good.h":
                   "#ifndef TASQ_MOD_GOOD_H_\n"
                   "#define TASQ_MOD_GOOD_H_\n"
                   '#include "serve/orphan.h"\n'
                   "inline int Fine() { return Serve(); }\n"
                   "#endif\n",
                   "tests/mod_test.cc":
                   '#include "mod/good.h"\n'
                   "int main() { return Fine(); }\n"}),
            GOOD_TREE),
        "mutex-unannotated": (
            _with({"src/mod/sync.h":
                   "#ifndef TASQ_MOD_SYNC_H_\n"
                   "#define TASQ_MOD_SYNC_H_\n"
                   "#include <mutex>\n"
                   "struct Racy {\n"
                   "  std::mutex raw_mu_;\n"
                   "  Mutex contractless_;\n"
                   "  int x_ = 0;\n"
                   "};\n"
                   "#endif\n",
                   "tests/mod_test.cc": SYNC_TEST_CC}),
            _with({"src/mod/sync.h":
                   "#ifndef TASQ_MOD_SYNC_H_\n"
                   "#define TASQ_MOD_SYNC_H_\n"
                   "struct Tidy {\n"
                   "  Mutex mu_;\n"
                   "  int x_ TASQ_GUARDED_BY(mu_) = 0;\n"
                   "};\n"
                   "inline void Local() {\n"
                   "  Mutex local_mu;\n"
                   "  // Guarded by local_mu: scratch state only.\n"
                   "}\n"
                   "#endif\n",
                   "tests/mod_test.cc": SYNC_TEST_CC}),
        ),
        "raw-lock-in-src": (
            _with({"src/mod/lock.cc":
                   "struct Lockable { void Go(); };\n"
                   "void Use(Lockable& l, Lockable& m) {\n"
                   "  l.lock();\n"
                   "  m.unlock();\n"
                   "}\n"}),
            _with({"src/mod/lock.cc":
                   "void Use(Mutex& mu) {\n"
                   "  MutexLock lock(mu);\n"
                   "}\n"}),
        ),
        "nolint-needs-reason": (
            _with({"src/mod/impl.cc":
                   "int x = 0;  // NOLINT\n"}),
            _with({"src/mod/impl.cc":
                   "// NOLINTNEXTLINE(bugprone-example): overflow intended\n"
                   "int x = 1 << 30;\n"
                   "int y = 0;  // NOLINT(bugprone-example): documented\n"
                   "// NOLINTBEGIN(bugprone-example): span justified\n"
                   "int z = 0;\n"
                   "// NOLINTEND(bugprone-example)\n"}),
        ),
    }


def self_test():
    """Per-rule fixtures: every rule id in CHECK_RULES must have a positive
    tree where it fires and a near-miss negative tree that is completely
    quiet (not merely quiet for that rule)."""
    rule_ids = {r for rules in CHECK_RULES.values() for r in rules}
    cases = self_test_cases()
    uncovered = rule_ids - set(cases)
    unknown = set(cases) - rule_ids
    if uncovered or unknown:
        print("self-test FAILED: fixture coverage out of sync with "
              f"CHECK_RULES (uncovered: {sorted(uncovered)}, "
              f"unknown: {sorted(unknown)})")
        return 1

    failures = []
    for rule in sorted(cases):
        pos, neg = cases[rule]
        with tempfile.TemporaryDirectory(prefix="tasq_lint_pos_") as tmp:
            _write_tree(tmp, pos)
            pos_findings = run_checks(tmp)
            if not any(f.rule == rule for f in pos_findings):
                failures.append(
                    f"[{rule}] positive fixture did not fire; saw: "
                    f"{sorted({f.rule for f in pos_findings}) or 'nothing'}")
            if rule == "mutex-unannotated":
                msgs = [f.message for f in pos_findings if f.rule == rule]
                if (not any("raw std::mutex" in m for m in msgs) or
                        not any("contractless_" in m for m in msgs)):
                    failures.append(
                        "[mutex-unannotated] must fire on both a raw "
                        "std::mutex and a contract-less tasq::Mutex; saw: "
                        f"{msgs}")
        with tempfile.TemporaryDirectory(prefix="tasq_lint_neg_") as tmp:
            _write_tree(tmp, neg)
            neg_findings = run_checks(tmp)
            if neg_findings:
                failures.append(
                    f"[{rule}] negative fixture is not quiet: " +
                    "; ".join(str(f) for f in neg_findings))
    if failures:
        print("self-test FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"self-test passed: {len(cases)} rules, each with a firing "
          "positive and a quiet negative fixture")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against a synthetic bad tree")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = run_checks(args.root)
    if args.update_baseline:
        write_baseline(args.root, findings)
        print(f"baseline updated with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(args.root)
    new = [f for f in findings if f.key() not in baseline]
    found_keys = {f.key() for f in findings}
    stale = sorted(baseline - found_keys)

    for finding in new:
        print(finding)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — "
              "run --update-baseline to prune):")
        for key in stale:
            print(f"  {key}")
    if new:
        print(f"\n{len(new)} new lint finding(s). Fix them or, if accepted, "
              "run: python3 scripts/tasq_lint.py --update-baseline")
        return 1
    print(f"lint ok ({len(findings)} baselined finding(s), "
          f"{len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
