#!/usr/bin/env python3
"""TASQ numerics & determinism analyzer: enforces the checked-math layer.

The repo's predictions flow through log-log regressions, exp-link GBDT
objectives, and softplus heads, so one silent NaN or unordered-map
iteration order change corrupts results without failing a test. These
rules (stdlib only, no clang dependency) make the fmath.h discipline and
the determinism contract mechanical:

  raw-transcendental     no raw log/exp/pow/sqrt/... calls in src/ outside
                         src/common/fmath.h: numeric kernels go through
                         SafeLog/CheckedLog/ClampedExp and friends so every
                         domain edge is either rejected, contract-checked,
                         or saturated (see common/fmath.h). A call whose
                         argument is proven in-domain can be waived with
                         `// num: checked <reason>`.
  float-equality         no `==`/`!=` with a floating-point literal
                         operand in src/: exact comparison is almost always
                         a rounding bug. The legitimate uses (exact-zero
                         skips, -0.0 canonicalization, sentinel encodings)
                         carry `// num: float-eq <reason>`.
  unseeded-rng           no rand()/srand() anywhere in src/, and no
                         std::random_device outside common/rng.h: all
                         randomness flows from tasq::Rng(seed) so every
                         run is reproducible from its recorded seed. Waive
                         with `// num: rng <reason>`.
  float-keyed-container  no float/double keys in map/set (ordered or
                         unordered): float keys make membership depend on
                         rounding and make iteration order a function of
                         noise. Quantize to an integer key or waive with
                         `// num: float-key <reason>`.
  unordered-iteration    no range-for over a container declared as
                         std::unordered_* in the same file unless the loop
                         carries `// det: order-independent <why>`: hash
                         iteration order is unspecified, so any
                         order-sensitive fold (float accumulation, first
                         match wins, output emission) breaks bit
                         reproducibility across standard libraries.

Waivers go on the offending line or the line directly above it, and the
reason text is mandatory — anonymous suppressions rot.

Known, accepted findings live in scripts/num_baseline.txt; the analyzer
exits nonzero only on findings not in the baseline. The baseline is empty
as of PR 5 and CI fails if it regrows (see .github/workflows/ci.yml, job
static-analysis).

Usage:
  python3 scripts/tasq_num.py                   analyze the repo
  python3 scripts/tasq_num.py --update-baseline accept current findings
  python3 scripts/tasq_num.py --self-test       verify each rule fires on
                                                a synthetic bad tree
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join("scripts", "num_baseline.txt")
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")
SKIP_DIR_PREFIXES = ("build",)

# The one place raw transcendentals are the implementation, not a hazard.
FMATH_PATH = "src/common/fmath.h"
# The one place entropy may be gathered (the seeded Rng wrapper).
RNG_PATH = "src/common/rng.h"


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # Repo-relative, forward slashes.
        self.line = line  # 1-based.
        self.message = message

    def key(self):
        # Line numbers shift too easily to key the baseline on them.
        return f"{self.rule}\t{self.path}"

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Good enough for token scans: a `pow` in a comment or a log string must
    not count. Raw strings are treated as plain strings (fine for the
    patterns we search)."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_source_files(root, subdirs):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(SKIP_DIR_PREFIXES) and d != ".git")
            for name in sorted(filenames):
                if name.endswith(SOURCE_SUFFIXES):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def read(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
        return f.read()


def line_of(stripped, pos):
    return stripped[:pos].count("\n") + 1


def has_waiver(raw_lines, line, pattern):
    """True when `pattern` appears as a comment on the finding's line or
    the line directly above it (raw text, since comments are stripped from
    the scanned copy)."""
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(raw_lines):
            if re.search(pattern, raw_lines[candidate - 1]):
                return True
    return False


def num_waiver(tag):
    # `// num: <tag> <reason>` — the reason is mandatory.
    return r"//\s*num:\s*" + re.escape(tag) + r"\s+\S"


# Transcendentals with domain edges or overflow ranges that fmath.h guards.
# Qualified (std::log) and C-style (log) forms both count; the lookbehind
# rejects member calls (x.log(), p->exp()) and identifiers merely ending in
# a function name (Dialog( does not contain a call to log).
TRANSCENDENTAL_RE = re.compile(
    r"(?<![\w.>])(?:std::)?"
    r"(log1p|log10|log2|log|expm1|exp2|exp|pow|sqrt|cbrt|atan2)\s*\(")


def check_raw_transcendental(root):
    findings = []
    for rel in iter_source_files(root, ["src"]):
        if rel == FMATH_PATH:
            continue
        raw_lines = read(root, rel).split("\n")
        stripped = strip_comments_and_strings(read(root, rel))
        for match in TRANSCENDENTAL_RE.finditer(stripped):
            line = line_of(stripped, match.start())
            if has_waiver(raw_lines, line, num_waiver("checked")):
                continue
            findings.append(Finding(
                "raw-transcendental", rel, line,
                f"raw {match.group(1)}() call; use the Safe*/Checked*/"
                "Clamped* helpers from common/fmath.h, or waive a proven "
                "in-domain call with `// num: checked <reason>`"))
    return findings


# A floating literal: 1.0, .5, 2., 1e-9, 3.5e+10, with optional f/F/l/L.
FLOAT_LITERAL = (r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fFlL]?"
                 r"|\d+[eE][+-]?\d+[fFlL]?")
FLOAT_EQ_RE = re.compile(
    rf"[=!]=\s*[-+]?(?:{FLOAT_LITERAL})(?![\w.])"
    rf"|(?:(?<![\w.])(?:{FLOAT_LITERAL}))\s*[=!]=")


def check_float_equality(root):
    """Exact `==`/`!=` against a floating literal. A heuristic by design:
    it cannot see declared types, but a literal operand is unambiguous and
    covers the overwhelmingly common form of the bug."""
    findings = []
    for rel in iter_source_files(root, ["src"]):
        raw_lines = read(root, rel).split("\n")
        stripped = strip_comments_and_strings(read(root, rel))
        for match in FLOAT_EQ_RE.finditer(stripped):
            line = line_of(stripped, match.start())
            if has_waiver(raw_lines, line, num_waiver("float-eq")):
                continue
            findings.append(Finding(
                "float-equality", rel, line,
                "exact comparison with a float literal; compare against a "
                "tolerance, or waive an intentional exact check with "
                "`// num: float-eq <reason>`"))
    return findings


RAND_RE = re.compile(r"(?<![\w.>])(?:std::)?(s?rand)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\bstd::random_device\b")


def check_unseeded_rng(root):
    findings = []
    for rel in iter_source_files(root, ["src"]):
        raw_lines = read(root, rel).split("\n")
        stripped = strip_comments_and_strings(read(root, rel))
        for match in RAND_RE.finditer(stripped):
            line = line_of(stripped, match.start())
            if has_waiver(raw_lines, line, num_waiver("rng")):
                continue
            findings.append(Finding(
                "unseeded-rng", rel, line,
                f"{match.group(1)}() draws from hidden global state; use "
                "tasq::Rng with an explicit seed (common/rng.h)"))
        if rel == RNG_PATH:
            continue
        for match in RANDOM_DEVICE_RE.finditer(stripped):
            line = line_of(stripped, match.start())
            if has_waiver(raw_lines, line, num_waiver("rng")):
                continue
            findings.append(Finding(
                "unseeded-rng", rel, line,
                "std::random_device outside common/rng.h makes the run "
                "unreproducible; thread a seed through tasq::Rng instead"))
    return findings


FLOAT_KEY_RE = re.compile(
    r"\b(?:std::)?(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*"
    r"(float|double|long\s+double)\b")


def check_float_keyed_container(root):
    findings = []
    for rel in iter_source_files(root, ["src"]):
        raw_lines = read(root, rel).split("\n")
        stripped = strip_comments_and_strings(read(root, rel))
        for match in FLOAT_KEY_RE.finditer(stripped):
            line = line_of(stripped, match.start())
            if has_waiver(raw_lines, line, num_waiver("float-key")):
                continue
            findings.append(Finding(
                "float-keyed-container", rel, line,
                f"associative container keyed on {match.group(1)}: "
                "membership then depends on rounding; quantize to an "
                "integer key, or waive with `// num: float-key <reason>`"))
    return findings


# A declaration introducing a named unordered container in this file. The
# template argument list is matched without nesting awareness, which is
# fine: we only need the identifier that follows the closing `>`.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s+"
    r"(\w+)\s*(?:;|=|\{|\()")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?auto\s*&{0,2}\s*"
    r"(?:\[[^\]]*\]|\w+)\s*:\s*([^)]+)\)")


def check_unordered_iteration(root):
    """Range-for over a name declared as std::unordered_* in the same
    file. Hash iteration order is unspecified and differs across standard
    libraries, so every such loop must assert order independence."""
    findings = []
    for rel in iter_source_files(root, ["src"]):
        raw_lines = read(root, rel).split("\n")
        stripped = strip_comments_and_strings(read(root, rel))
        unordered_names = set(UNORDERED_DECL_RE.findall(stripped))
        if not unordered_names:
            continue
        for match in RANGE_FOR_RE.finditer(stripped):
            range_expr_names = set(re.findall(r"\w+", match.group(1)))
            hit = range_expr_names & unordered_names
            if not hit:
                continue
            line = line_of(stripped, match.start())
            if has_waiver(raw_lines, line,
                          r"//\s*det:\s*order-independent\s+\S"):
                continue
            findings.append(Finding(
                "unordered-iteration", rel, line,
                f"iterating unordered container `{sorted(hit)[0]}`: hash "
                "order is unspecified; sort the keys first, or mark an "
                "order-insensitive fold with "
                "`// det: order-independent <why>`"))
    return findings


# Rule ids emitted by each check. self_test() enforces that every id listed
# here has a dedicated positive (rule fires) and negative (rule stays
# quiet) fixture, so a new check cannot land without self-test coverage.
CHECK_RULES = {
    check_raw_transcendental: ["raw-transcendental"],
    check_float_equality: ["float-equality"],
    check_unseeded_rng: ["unseeded-rng"],
    check_float_keyed_container: ["float-keyed-container"],
    check_unordered_iteration: ["unordered-iteration"],
}

ALL_CHECKS = list(CHECK_RULES)


def run_checks(root):
    findings = []
    for check in ALL_CHECKS:
        findings.extend(check(root))
    findings.sort(key=lambda f: (f.path, f.rule, f.line))
    return findings


def load_baseline(root):
    path = os.path.join(root, BASELINE_PATH)
    entries = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.rstrip("\n")
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def write_baseline(root, findings):
    path = os.path.join(root, BASELINE_PATH)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Accepted tasq_num.py findings (rule<TAB>path).\n")
        f.write("# Regenerate with: python3 scripts/tasq_num.py "
                "--update-baseline\n")
        for key in sorted({finding.key() for finding in findings}):
            f.write(key + "\n")


# A minimal tree with zero findings; per-rule fixtures are derived from it
# via _with() so each positive seeds exactly one class of violation.
GOOD_TREE = {
    "src/mod/calc.cc": (
        '#include "common/fmath.h"\n'
        "double Half(double x) { return x * 0.5; }\n"),
}


def _with(overrides):
    tree = dict(GOOD_TREE)
    tree.update(overrides)
    return tree


def _write_tree(root, files):
    for rel, content in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def self_test_cases():
    """rule id -> (positive tree, negative tree). The positive must draw
    the rule; the negative is a near-miss that must stay completely
    quiet."""
    return {
        "raw-transcendental": (
            _with({"src/mod/calc.cc":
                   "#include <cmath>\n"
                   "double L(double x) { return std::log(x); }\n"
                   "double P(double x) { return pow(x, 2.0); }\n"}),
            # fmath.h itself, a waived proven-domain call, a member .log(),
            # an identifier ending in a function name, and a Safe* helper.
            _with({"src/common/fmath.h":
                   "#include <cmath>\n"
                   "inline double Impl(double x) { return std::exp(x); }\n",
                   "src/mod/calc.cc":
                   "#include <cmath>\n"
                   "double A(Dialog& d) { return d.log() + p->exp(); }\n"
                   "double Backlog(double x);\n"
                   "double C(double x) { return Backlog(x); }\n"
                   "// num: checked norm is >= 1 by construction above\n"
                   "double B(double norm) { return std::sqrt(norm); }\n"}),
        ),
        "float-equality": (
            _with({"src/mod/calc.cc":
                   "bool Z(double x) { return x == 0.0; }\n"
                   "bool O(double x) { return 1.0 != x; }\n"}),
            # Integer-literal comparison, ordered comparison against a
            # float literal, and a waived exact-zero skip.
            _with({"src/mod/calc.cc":
                   "bool Zi(int x) { return x == 0; }\n"
                   "bool Lt(double x) { return x <= 0.5; }\n"
                   "bool Zw(double x) {\n"
                   "  return x == 0.0;  // num: float-eq exact-zero skip\n"
                   "}\n"}),
        ),
        "unseeded-rng": (
            _with({"src/mod/calc.cc":
                   "#include <cstdlib>\n"
                   "#include <random>\n"
                   "int R() { return rand(); }\n"
                   "unsigned D() { std::random_device rd; return rd(); }\n"}),
            # random_device inside the sanctioned wrapper, a member
            # .rand(), and seeded tasq-style use.
            _with({"src/common/rng.h":
                   "#include <random>\n"
                   "struct Rng { std::random_device entropy_; };\n",
                   "src/mod/calc.cc":
                   "int Use(Sampler& s) { return s.rand(); }\n"}),
        ),
        "float-keyed-container": (
            _with({"src/mod/calc.cc":
                   "#include <map>\n"
                   "std::map<double, int> by_score;\n"}),
            # Float as mapped value (not key), and a waived float key.
            _with({"src/mod/calc.cc":
                   "#include <map>\n"
                   "#include <cstdint>\n"
                   "std::map<int64_t, double> by_id;\n"
                   "// num: float-key keys are exact powers of two\n"
                   "std::map<double, int> by_scale;\n"}),
        ),
        "unordered-iteration": (
            _with({"src/mod/calc.cc":
                   "#include <string>\n"
                   "#include <unordered_map>\n"
                   "double Sum(int) {\n"
                   "  std::unordered_map<std::string, double> totals;\n"
                   "  double sum = 0.0;\n"
                   "  for (const auto& [key, value] : totals) sum += value;\n"
                   "  return sum;\n"
                   "}\n"}),
            # Ordered map iteration, vector iteration, and a waived
            # commutative fold over an unordered map.
            _with({"src/mod/calc.cc":
                   "#include <map>\n"
                   "#include <string>\n"
                   "#include <unordered_map>\n"
                   "#include <vector>\n"
                   "double Sum(const std::vector<double>& items) {\n"
                   "  std::map<std::string, double> ordered;\n"
                   "  std::unordered_map<std::string, double> totals;\n"
                   "  double sum = 0.0;\n"
                   "  for (const auto& [key, value] : ordered) sum += value;\n"
                   "  for (double item : items) sum += item;\n"
                   "  // det: order-independent commutative sum only\n"
                   "  for (const auto& [key, value] : totals) sum += value;\n"
                   "  return sum;\n"
                   "}\n"}),
        ),
    }


def self_test():
    """Per-rule fixtures: every rule id in CHECK_RULES must have a positive
    tree where it fires and a near-miss negative tree that is completely
    quiet (not merely quiet for that rule)."""
    rule_ids = {r for rules in CHECK_RULES.values() for r in rules}
    cases = self_test_cases()
    uncovered = rule_ids - set(cases)
    unknown = set(cases) - rule_ids
    if uncovered or unknown:
        print("self-test FAILED: fixture coverage out of sync with "
              f"CHECK_RULES (uncovered: {sorted(uncovered)}, "
              f"unknown: {sorted(unknown)})")
        return 1

    failures = []
    for rule in sorted(cases):
        pos, neg = cases[rule]
        with tempfile.TemporaryDirectory(prefix="tasq_num_pos_") as tmp:
            _write_tree(tmp, pos)
            pos_findings = run_checks(tmp)
            if not any(f.rule == rule for f in pos_findings):
                failures.append(
                    f"[{rule}] positive fixture did not fire; saw: "
                    f"{sorted({f.rule for f in pos_findings}) or 'nothing'}")
        with tempfile.TemporaryDirectory(prefix="tasq_num_neg_") as tmp:
            _write_tree(tmp, neg)
            neg_findings = run_checks(tmp)
            if neg_findings:
                failures.append(
                    f"[{rule}] negative fixture is not quiet: " +
                    "; ".join(str(f) for f in neg_findings))
    if failures:
        print("self-test FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"self-test passed: {len(cases)} rules, each with a firing "
          "positive and a quiet negative fixture")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to analyze")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer against a synthetic bad tree")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = run_checks(args.root)
    if args.update_baseline:
        write_baseline(args.root, findings)
        print(f"baseline updated with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(args.root)
    new = [f for f in findings if f.key() not in baseline]
    found_keys = {f.key() for f in findings}
    stale = sorted(baseline - found_keys)

    for finding in new:
        print(finding)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — "
              "run --update-baseline to prune):")
        for key in stale:
            print(f"  {key}")
    if new:
        print(f"\n{len(new)} new numerics finding(s). Fix them or, if "
              "accepted, run: python3 scripts/tasq_num.py --update-baseline")
        return 1
    print(f"numerics ok ({len(findings)} baselined finding(s), "
          f"{len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
