#!/usr/bin/env python3
"""TASQ ownership & allocation-discipline conformance analyzer.

The serving layer now runs a zero-allocation warm fast path (tasq_hot.py)
and an arena-backed cold submit path (src/common/arena.h): per-request
memory comes from a bump-pointer ScratchArena that resets between
requests instead of from the global heap. That discipline only survives
if ownership stays legible — a raw `new` without an owner, an
unannotated raw-pointer member, or an arena pointer stored past its
Reset() is exactly the kind of defect that compiles clean, passes tests,
and corrupts memory under production load. This analyzer (stdlib only,
same mold and CLI contract as tasq_lint / tasq_arch / tasq_num /
tasq_hot / tasq_sync) scans every source file under src/ and enforces a
written-down ownership policy (DESIGN.md, "Memory & ownership policy"):

  owning-raw-new          no raw `new` / `delete` / malloc-family call
                          outside the allowlisted allocator files
                          (src/common/arena.h, where placement-new IS the
                          implementation). Ownership lives in unique_ptr,
                          containers, or an Arena; a raw allocation has
                          no spelled owner and leaks on every early
                          return.
  owning-raw-member       a raw-pointer data member must say what it is:
                          `// own: borrowed <why>` (non-owning, outlived
                          by the pointee) or `// own: arena <why>`
                          (arena-allocated, freed by Reset). An owning
                          raw-pointer member is the bug; it must become
                          unique_ptr or arena-backed.
  unique-ptr-by-value-sink ownership transfer is spelled by-value: a
                          `unique_ptr<T>&` parameter hides whether the
                          callee takes the object, and a
                          `const unique_ptr<T>&` parameter should be
                          `T*` / `T&` (the caller's smart pointer is an
                          implementation detail, not an interface).
  shared-ptr-copy-in-loop copying a shared_ptr in a loop body bumps an
                          atomic refcount per iteration — contended-cache
                          line churn on exactly the paths that batch.
                          Take a reference outside the loop, move, or
                          waive with the measured reason.
  arena-escape            a pointer obtained from an Arena (New / Alloc)
                          is scoped to that arena's Reset(): storing it
                          into a member (`foo_ = ...`, `foo_.push_back`)
                          or returning it hands out memory that a later
                          Reset recycles under the caller.
  arena-nontrivial-dtor   Arena::New<T> never runs destructors (that is
                          the point: Reset() is O(1)); a T with a
                          user-declared destructor or obviously owning
                          members (string/vector/unique_ptr/...) must go
                          through NewObject<T>, which registers the
                          destructor to run at Reset, or stay off the
                          arena.

Waivers: a deliberate exception carries `// own: <reason>` on the
offending line or the line directly above it; the reason is mandatory
(anonymous suppressions rot). For owning-raw-member the annotation IS
the waiver grammar: `// own: borrowed <why>` or `// own: arena <why>`.

Known, accepted findings live in scripts/own_baseline.txt; the analyzer
exits nonzero only on findings not in the baseline. The baseline is
empty as of PR 9 and CI fails if it regrows (job static-analysis, via
scripts/check.sh analyzers).

Usage:
  python3 scripts/tasq_own.py                    analyze the repo
  python3 scripts/tasq_own.py --update-baseline  accept current findings
  python3 scripts/tasq_own.py --self-test        per-rule fixture check
  python3 scripts/tasq_own.py --list-members     list raw-pointer members
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join("scripts", "own_baseline.txt")
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")

# Files whose business IS raw memory: the arena implements placement-new
# and block allocation, so the owning-raw-new rule does not apply inside.
ALLOCATOR_FILES = frozenset((
    "src/common/arena.h",
))


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # Repo-relative, forward slashes.
        self.line = line  # 1-based.
        self.message = message

    def key(self):
        # Line numbers shift too easily to key the baseline on them.
        return f"{self.rule}\t{self.path}"

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Identical policy to the other analyzers: a token inside a comment or
    a log string must not count as a violation."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _matching_brace_end(text, open_idx):
    """Index just past the `}` matching text[open_idx] == `{`, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _matching_paren_end(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _line_of(text, idx):
    return text[:idx].count("\n") + 1


WAIVER_RE = re.compile(r"//\s*own:\s*\S")
MEMBER_ANNOT_RE = re.compile(r"//\s*own:\s*(borrowed|arena)\s+\S")


def _waived(raw_lines, line, annot_re=WAIVER_RE):
    """True when `line` (1-based) carries or follows an `// own:` waiver."""
    here = raw_lines[line - 1] if line - 1 < len(raw_lines) else ""
    above = raw_lines[line - 2] if line - 2 >= 0 else ""
    return bool(annot_re.search(here)) or bool(annot_re.search(above))


class Repo:
    """Scanned view of src/: file list plus cached raw/stripped text."""

    def __init__(self, root):
        self.root = root
        self.files = []
        self._text = {}
        self._stripped = {}
        base = os.path.join(root, "src")
        if os.path.isdir(base):
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = sorted(d for d in dirnames if d != ".git")
                for fname in sorted(filenames):
                    if fname.endswith(SOURCE_SUFFIXES):
                        rel = os.path.relpath(
                            os.path.join(dirpath, fname),
                            root).replace(os.sep, "/")
                        self.files.append(rel)

    def text(self, rel):
        if rel not in self._text:
            with open(os.path.join(self.root, rel), encoding="utf-8",
                      errors="replace") as f:
                self._text[rel] = f.read()
        return self._text[rel]

    def stripped(self, rel):
        if rel not in self._stripped:
            self._stripped[rel] = strip_comments_and_strings(self.text(rel))
        return self._stripped[rel]

    def raw_lines(self, rel):
        return self.text(rel).split("\n")


# ---------------------------------------------------------------------------
# Rule: owning-raw-new
# ---------------------------------------------------------------------------

# A new-expression (`new T`, `new (ptr) T`, `new[]`) or a malloc-family
# call. `= delete` (deleted functions) and `operator new/delete`
# *declarations* are not allocations and are filtered below.
RAW_NEW_RE = re.compile(
    r"\bnew\b"
    r"|\bdelete\b"
    r"|\b(?:malloc|calloc|realloc|free|strdup|aligned_alloc|posix_memalign)"
    r"\s*\(")


def check_raw_new(repo):
    findings = []
    for rel in repo.files:
        if rel in ALLOCATOR_FILES:
            continue
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        for match in RAW_NEW_RE.finditer(stripped):
            token = match.group(0).strip().split("(")[0].strip()
            if token == "delete":
                # `= delete;` / `= delete(...)` declares a deleted member,
                # and `operator delete` names the function, not a call.
                back = match.start() - 1
                while back >= 0 and stripped[back] in " \t\n":
                    back -= 1
                if back >= 0 and stripped[back] == "=":
                    continue
                if stripped[max(0, back - 7):back + 1].endswith("operator"):
                    continue
            if token == "new":
                back = match.start() - 1
                while back >= 0 and stripped[back] in " \t\n":
                    back -= 1
                if stripped[max(0, back - 7):back + 1].endswith("operator"):
                    continue
            line = _line_of(stripped, match.start())
            if _waived(raw_lines, line):
                continue
            findings.append(Finding(
                "owning-raw-new", rel, line,
                f"raw '{token}' outside the allocator allowlist: ownership "
                "must be spelled — use std::unique_ptr, a container, or an "
                "Arena (src/common/arena.h). Waive a deliberate exception "
                "with `// own: <reason>`"))
    return findings


# ---------------------------------------------------------------------------
# Rule: owning-raw-member
# ---------------------------------------------------------------------------

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:TASQ_\w+\s+)?([A-Za-z_]\w*)"
    r"(?:\s*final)?(?:\s*:\s*[^;{]*)?\s*\{")

# A raw-pointer member declaration: `Type* name;` or `Type* name = ...;`.
# Function declarations carry a `(` and are skipped; references, smart
# pointers, and function-pointer typedefs never match the `*` before the
# terminal identifier.
MEMBER_PTR_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?"
    r"[A-Za-z_][\w:]*(?:\s*<[^<>;]*(?:<[^<>]*>)?[^<>;]*>)?"
    r"(?:\s+const)?\s*\*+\s*(?:const\s+)?"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*)?;\s*$")


def class_bodies(stripped):
    """Yields (class_name, body_start, body_end) for every class/struct
    definition, including nested ones (each gets its own region)."""
    for match in CLASS_HEAD_RE.finditer(stripped):
        open_idx = match.end() - 1
        end = _matching_brace_end(stripped, open_idx)
        if end > 0:
            yield match.group(1), open_idx + 1, end - 1


def member_statements(stripped, body_start, body_end):
    """Statements at depth 0 of one class body (member scope): nested
    braces (method bodies, nested classes, initializers) are skipped, so
    locals inside methods never register as members."""
    depth = 0
    stmt_start = body_start
    i = body_start
    while i < body_end:
        c = stripped[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                stmt_start = i + 1  # End of a method body / nested type.
        elif c == ";" and depth == 0:
            yield stmt_start, i + 1
            stmt_start = i + 1
        i += 1


def check_raw_members(repo, collect=None):
    findings = []
    for rel in repo.files:
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        for class_name, body_start, body_end in class_bodies(stripped):
            for start, end in member_statements(stripped, body_start,
                                                body_end):
                stmt = stripped[start:end]
                if "(" in stmt or ")" in stmt:
                    continue  # Function declaration or initializer call.
                flat = " ".join(stmt.split())
                if any(kw in flat for kw in
                       ("using ", "typedef ", "constexpr ", "friend ",
                        "static ")):
                    continue
                match = MEMBER_PTR_RE.match(flat)
                if not match:
                    continue
                # Offset of the declaration inside the statement (skip
                # leading newlines so the line number lands on the decl).
                decl_off = start + len(stmt) - len(stmt.lstrip())
                line = _line_of(stripped, decl_off)
                if collect is not None:
                    collect.append((rel, line, class_name, match.group(1)))
                if _waived(raw_lines, line, MEMBER_ANNOT_RE):
                    continue
                findings.append(Finding(
                    "owning-raw-member", rel, line,
                    f"raw-pointer member '{match.group(1)}' of "
                    f"'{class_name}' has no ownership annotation: mark it "
                    "`// own: borrowed <why>` or `// own: arena <why>`, "
                    "or make it a unique_ptr if it owns"))
    return findings


# ---------------------------------------------------------------------------
# Rule: unique-ptr-by-value-sink
# ---------------------------------------------------------------------------

# A unique_ptr taken by reference in a parameter list (the trailing `,`
# or `)` keeps local reference bindings out). Mutable refs hide the
# transfer; const refs leak the caller's storage choice into the API.
UNIQUE_REF_PARAM_RE = re.compile(
    r"(?P<const>\bconst\s+)?(?:std\s*::\s*)?unique_ptr\s*"
    r"<[^<>;(){}]*(?:<[^<>]*>)?[^<>;(){}]*>\s*&\s*[A-Za-z_]\w*\s*[,)]")


def check_unique_ptr_sinks(repo):
    findings = []
    for rel in repo.files:
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        for match in UNIQUE_REF_PARAM_RE.finditer(stripped):
            line = _line_of(stripped, match.start())
            if _waived(raw_lines, line):
                continue
            if match.group("const"):
                advice = ("a `const unique_ptr<T>&` parameter exposes the "
                          "caller's storage; take `T*` or `T&` instead")
            else:
                advice = ("a `unique_ptr<T>&` parameter hides whether the "
                          "callee takes ownership; sink by value "
                          "(`unique_ptr<T>`) and std::move at the caller")
            findings.append(Finding(
                "unique-ptr-by-value-sink", rel, line,
                advice + ". Waive with `// own: <reason>`"))
    return findings


# ---------------------------------------------------------------------------
# Rule: shared-ptr-copy-in-loop
# ---------------------------------------------------------------------------

class LoopRegion:
    def __init__(self, start, end, body_span):
        self.start = start
        self.end = end
        self.body_span = body_span


def loop_regions(stripped):
    regions = []
    for match in re.finditer(r"\b(while|for)\s*\(", stripped):
        open_idx = match.end() - 1
        close = _matching_paren_end(stripped, open_idx)
        if close < 0:
            continue
        j = close
        while j < len(stripped) and stripped[j] in " \t\n":
            j += 1
        if j < len(stripped) and stripped[j] == "{":
            body_end = _matching_brace_end(stripped, j)
            if body_end < 0:
                body_end = j + 1
            body_span = (j, body_end)
        else:
            semi = stripped.find(";", j)
            body_span = (j, semi + 1 if semi >= 0 else j)
        regions.append(LoopRegion(match.start(), body_span[1], body_span))
    for match in re.finditer(r"\bdo\b(?!\w)", stripped):
        j = match.end()
        while j < len(stripped) and stripped[j] in " \t\n":
            j += 1
        if j < len(stripped) and stripped[j] == "{":
            body_end = _matching_brace_end(stripped, j)
            if body_end > 0:
                regions.append(LoopRegion(match.start(), body_end,
                                          (j, body_end)))
    return regions


# An explicit shared_ptr declaration copy-initialized inside a loop body.
# Moves, fresh make_shared results, and empty/null initializations do not
# bump a refcount and are excluded.
SHARED_DECL_RE = re.compile(
    r"(?:std\s*::\s*)?shared_ptr\s*<[^<>;(){}]*(?:<[^<>]*>)?[^<>;(){}]*>\s*"
    r"(?:const\s*&?\s*)?[A-Za-z_]\w*\s*(?:=\s*(?P<init>[^;]+)"
    r"|\(\s*(?P<ctor>[^;)]+)\))\s*;")

NON_COPY_INIT_RE = re.compile(
    r"std\s*::\s*move\b|make_shared\b|\bnullptr\b|^\s*$")


def check_shared_copies(repo):
    findings = []
    for rel in repo.files:
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        regions = loop_regions(stripped)
        if not regions:
            continue
        for match in SHARED_DECL_RE.finditer(stripped):
            body_start, body_end = 0, 0
            in_body = any(r.body_span[0] <= match.start() < r.body_span[1]
                          for r in regions)
            if not in_body:
                continue
            init = match.group("init") or match.group("ctor") or ""
            if NON_COPY_INIT_RE.search(init):
                continue
            # Reference bindings alias without copying.
            head = stripped[match.start():match.start("init")
                            if match.group("init") else match.end()]
            if "&" in head.split("<", 1)[-1].rsplit(">", 1)[-1]:
                continue
            line = _line_of(stripped, match.start())
            if _waived(raw_lines, line):
                continue
            findings.append(Finding(
                "shared-ptr-copy-in-loop", rel, line,
                "shared_ptr copied every loop iteration: each copy is an "
                "atomic refcount RMW (contended cache line under "
                "concurrency). Bind a reference outside the loop, move, "
                "or waive with `// own: <measured reason>`"))
    return findings


# ---------------------------------------------------------------------------
# Arena rules: declarations, allocation sites
# ---------------------------------------------------------------------------

# `Arena name` / `ScratchArena name` / `Arena& name` / `Arena* name` —
# local, parameter, or member. The declared identifier anchors the
# allocation-site scan.
ARENA_DECL_RE = re.compile(
    r"\b(?:Arena|ScratchArena)\s*[&*]?\s+([A-Za-z_]\w*)\b")

ARENA_ALLOC_METHODS = ("New", "NewObject", "NewArray", "Alloc")


ARENA_SITE_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*("
    + "|".join(ARENA_ALLOC_METHODS) + r")\b"
    r"\s*(?:<\s*([A-Za-z_][\w:]*)\s*[>,])?")


def arena_alloc_sites(stripped):
    """Yields (offset, arena_ident, method, type_arg|None) for every
    allocation call on an arena handle. A handle is an identifier
    declared as Arena/ScratchArena in this file, or any identifier
    containing "arena" — member arenas are declared in the header, so
    the .cc where the allocation happens only ever sees the name."""
    names = set(ARENA_DECL_RE.findall(stripped))
    for match in ARENA_SITE_RE.finditer(stripped):
        ident = match.group(1)
        if ident in names or "arena" in ident.lower():
            yield match.start(), ident, match.group(2), match.group(3)


def _enclosing_statement(stripped, pos):
    """(start, end, text) of the statement containing `pos`: from the
    previous ; { or } to the next ; at the same paren depth."""
    start = max(stripped.rfind(";", 0, pos), stripped.rfind("{", 0, pos),
                stripped.rfind("}", 0, pos)) + 1
    depth = 0
    i = pos
    while i < len(stripped):
        c = stripped[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == ";" and depth <= 0:
            return start, i + 1, stripped[start:i + 1]
        i += 1
    return start, len(stripped), stripped[start:]


# A member store: assignment / growth call on a trailing-underscore
# identifier (the repo's member naming convention), directly or through
# `this->`.
MEMBER_STORE_RE = re.compile(
    r"(?:\bthis\s*->\s*)?[A-Za-z_]\w*_\s*(?:\[[^\]]*\]\s*)?"
    r"(?:=[^=]|\.\s*(?:push_back|emplace_back|emplace|insert|assign)\s*\()")


def check_arena_escape(repo):
    findings = []
    for rel in repo.files:
        if rel in ALLOCATOR_FILES:
            continue
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        for pos, ident, method, _ in arena_alloc_sites(stripped):
            _, _, stmt = _enclosing_statement(stripped, pos)
            escapes = bool(re.match(r"\s*return\b", stmt)) or \
                bool(MEMBER_STORE_RE.search(stmt))
            if not escapes:
                continue
            line = _line_of(stripped, pos)
            if _waived(raw_lines, line):
                continue
            findings.append(Finding(
                "arena-escape", rel, line,
                f"'{ident}.{method}' result stored into a member or "
                "returned: arena memory dies at the owning arena's "
                "Reset(); longer-lived storage must copy out or own "
                "the arena itself. Waive with `// own: <reason>` if the "
                "target provably outlives no Reset"))
    return findings


# A type with a user-declared destructor or members that own heap memory
# must not go through the dtor-skipping New<T>.
OWNING_MEMBER_TYPES_RE = re.compile(
    r"\bstd\s*::\s*(?:string|vector|deque|map|unordered_map|set|"
    r"unordered_set|list|function|unique_ptr|shared_ptr|optional|any)\b")


def _type_definitions(repo):
    """name -> (rel, body text) for every class/struct defined in src/."""
    defs = {}
    for rel in repo.files:
        stripped = repo.stripped(rel)
        for name, body_start, body_end in class_bodies(stripped):
            defs.setdefault(name, (rel, stripped[body_start:body_end]))
    return defs


def check_arena_nontrivial_dtor(repo):
    findings = []
    defs = _type_definitions(repo)
    for rel in repo.files:
        if rel in ALLOCATOR_FILES:
            continue
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        for pos, ident, method, type_arg in arena_alloc_sites(stripped):
            if method != "New" or not type_arg:
                continue  # NewObject registers the dtor; Alloc is bytes.
            short = type_arg.split("::")[-1]
            if short not in defs:
                continue  # Can't see the definition; the static_assert
                # in Arena::New still backstops at compile time.
            _, body = defs[short]
            nontrivial = (f"~{short}" in body or
                          OWNING_MEMBER_TYPES_RE.search(body))
            if not nontrivial:
                continue
            line = _line_of(stripped, pos)
            if _waived(raw_lines, line):
                continue
            findings.append(Finding(
                "arena-nontrivial-dtor", rel, line,
                f"'{ident}.New<{short}>' places a type with a "
                "user-declared destructor or owning members on the "
                "arena: New skips destructors by design. Use "
                f"NewObject<{short}> (registers the destructor to run "
                "at Reset) or keep the type off the arena"))
    return findings


RULE_IDS_ALL = (
    "owning-raw-new",
    "owning-raw-member",
    "unique-ptr-by-value-sink",
    "shared-ptr-copy-in-loop",
    "arena-escape",
    "arena-nontrivial-dtor",
)


def run_checks(root):
    repo = Repo(root)
    findings = []
    findings.extend(check_raw_new(repo))
    findings.extend(check_raw_members(repo))
    findings.extend(check_unique_ptr_sinks(repo))
    findings.extend(check_shared_copies(repo))
    findings.extend(check_arena_escape(repo))
    findings.extend(check_arena_nontrivial_dtor(repo))
    findings.sort(key=lambda f: (f.path, f.rule, f.line))
    return findings


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(root):
    path = os.path.join(root, BASELINE_PATH)
    entries = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.rstrip("\n")
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def write_baseline(root, findings):
    path = os.path.join(root, BASELINE_PATH)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Accepted tasq_own.py findings (rule<TAB>path).\n")
        f.write("# Regenerate with: python3 scripts/tasq_own.py "
                "--update-baseline\n")
        for key in sorted({finding.key() for finding in findings}):
            f.write(key + "\n")


# ---------------------------------------------------------------------------
# Self-test: per-rule positive + quiet-negative fixtures + coverage gate
# ---------------------------------------------------------------------------

# Minimal arena surface for fixtures: enough shape for the rules to
# anchor on (decl pattern + method names), not a working allocator.
ARENA_H = (
    "#ifndef TASQ_COMMON_ARENA_H_\n"
    "#define TASQ_COMMON_ARENA_H_\n"
    "namespace tasq {\n"
    "class Arena {\n"
    " public:\n"
    "  void* Alloc(unsigned long n);\n"
    "  template <typename T> T* New();\n"
    "  template <typename T> T* NewObject();\n"
    "};\n"
    "using ScratchArena = Arena;\n"
    "}  // namespace tasq\n"
    "#endif\n")

# Conforming base tree: a pool that owns through unique_ptr, borrows with
# an annotation, and uses its arena without escapes. Every rule's
# negative starts here.
GOOD_TREE = {
    "src/common/arena.h": ARENA_H,
    "src/app/pool.h": (
        "#ifndef TASQ_APP_POOL_H_\n"
        "#define TASQ_APP_POOL_H_\n"
        "#include <memory>\n"
        "#include \"common/arena.h\"\n"
        "namespace tasq {\n"
        "struct Slab { double values[8]; };\n"
        "class Pool {\n"
        " public:\n"
        "  void Fill(int n);\n"
        "  void Adopt(std::unique_ptr<Slab> slab);\n"
        " private:\n"
        "  std::unique_ptr<Slab> owned_;\n"
        "  const Slab* view_ = nullptr;  // own: borrowed outlived by "
        "owned_\n"
        "  Arena arena_;\n"
        "};\n"
        "}  // namespace tasq\n"
        "#endif\n"),
    "src/app/pool.cc": (
        "#include \"app/pool.h\"\n"
        "#include <memory>\n"
        "#include <utility>\n"
        "namespace tasq {\n"
        "void Pool::Fill(int n) {\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    Slab* scratch = arena_.New<Slab>();\n"
        "    scratch->values[0] = i;\n"
        "  }\n"
        "}\n"
        "void Pool::Adopt(std::unique_ptr<Slab> slab) {\n"
        "  owned_ = std::move(slab);\n"
        "  view_ = owned_.get();\n"
        "}\n"
        "}  // namespace tasq\n"),
}


def _with(base, **overrides):
    tree = dict(base)
    for path, content in overrides.items():
        if content is None:
            tree.pop(path, None)
        else:
            tree[path] = content
    return tree


def _in_fill(statement):
    """Positive fixture: `statement` lands inside Pool::Fill's loop body."""
    return _with(GOOD_TREE, **{
        "src/app/pool.cc": GOOD_TREE["src/app/pool.cc"].replace(
            "    scratch->values[0] = i;",
            "    scratch->values[0] = i;\n"
            f"    {statement}")})


def self_test_cases():
    """rule -> (positive tree, negative tree). The positive must fire
    exactly that rule; the negative must be completely quiet."""
    cases = {}
    cases["owning-raw-new"] = (
        _in_fill("double* p = new double[8]; delete[] p;"),
        _in_fill("double* p = new double[8]; delete[] p;"
                 "  // own: bootstrap buffer, freed on the next line"))
    cases["owning-raw-member"] = (
        _with(GOOD_TREE, **{
            "src/app/pool.h": GOOD_TREE["src/app/pool.h"].replace(
                "  const Slab* view_ = nullptr;  // own: borrowed "
                "outlived by owned_\n",
                "  const Slab* view_ = nullptr;\n")}),
        GOOD_TREE)
    cases["unique-ptr-by-value-sink"] = (
        _with(GOOD_TREE, **{
            "src/app/pool.h": GOOD_TREE["src/app/pool.h"].replace(
                "  void Adopt(std::unique_ptr<Slab> slab);",
                "  void Adopt(std::unique_ptr<Slab> slab);\n"
                "  void Peek(const std::unique_ptr<Slab>& slab);")}),
        _with(GOOD_TREE, **{
            "src/app/pool.h": GOOD_TREE["src/app/pool.h"].replace(
                "  void Adopt(std::unique_ptr<Slab> slab);",
                "  void Adopt(std::unique_ptr<Slab> slab);\n"
                "  // own: deserializer swaps the pointee in place\n"
                "  void Swap(std::unique_ptr<Slab>& slab);")}))
    cases["shared-ptr-copy-in-loop"] = (
        _in_fill("std::shared_ptr<Slab> held = shared_slab_;"),
        _in_fill("std::shared_ptr<Slab> held = shared_slab_;"
                 "  // own: pin per batch, 1 RMW per 16 requests, "
                 "measured"))
    cases["arena-escape"] = (
        _in_fill("view_ = arena_.New<Slab>();"),
        _in_fill("view_ = arena_.New<Slab>();"
                 "  // own: member arena, Reset only in ~Pool"))
    cases["arena-nontrivial-dtor"] = (
        _with(_in_fill("Report* r = arena_.New<Report>(); (void)r;"), **{
            "src/app/report.h": (
                "#ifndef TASQ_APP_REPORT_H_\n"
                "#define TASQ_APP_REPORT_H_\n"
                "#include <vector>\n"
                "namespace tasq {\n"
                "struct Report { std::vector<double> curve; };\n"
                "}  // namespace tasq\n"
                "#endif\n")}),
        _with(_in_fill("Report* r = arena_.NewObject<Report>(); (void)r;"),
              **{
            "src/app/report.h": (
                "#ifndef TASQ_APP_REPORT_H_\n"
                "#define TASQ_APP_REPORT_H_\n"
                "#include <vector>\n"
                "namespace tasq {\n"
                "struct Report { std::vector<double> curve; };\n"
                "}  // namespace tasq\n"
                "#endif\n")}))
    return cases


def _materialize(tmp, tree):
    for rel, content in tree.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def self_test():
    """Coverage-gated: every rule id must have a positive fixture firing
    exactly that rule and a negative fixture that is completely quiet."""
    cases = self_test_cases()
    uncovered = set(RULE_IDS_ALL) - set(cases)
    if uncovered:
        print(f"self-test FAILED: rules without fixtures: "
              f"{sorted(uncovered)}")
        return 1
    failures = 0
    for rule, (pos_tree, neg_tree) in sorted(cases.items()):
        with tempfile.TemporaryDirectory(
                prefix="tasq_own_selftest_") as tmp:
            _materialize(tmp, pos_tree)
            findings = run_checks(tmp)
            fired = {f.rule for f in findings}
            if rule not in fired:
                print(f"self-test FAILED: [{rule}] positive fixture did "
                      f"not fire (saw {sorted(fired) or 'nothing'})")
                failures += 1
            elif fired != {rule}:
                print(f"self-test FAILED: [{rule}] positive fixture also "
                      f"fired {sorted(fired - {rule})}")
                for f in findings:
                    print(f"  saw: {f}")
                failures += 1
        with tempfile.TemporaryDirectory(
                prefix="tasq_own_selftest_") as tmp:
            _materialize(tmp, neg_tree)
            leftover = run_checks(tmp)
            if leftover:
                print(f"self-test FAILED: [{rule}] negative fixture is "
                      "not quiet:")
                for f in leftover:
                    print(f"  {f}")
                failures += 1
    if failures:
        return 1
    print(f"self-test passed: {len(cases)} rules, each with a firing "
          "positive fixture and a quiet annotated/waived negative")
    return 0


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to analyze")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run per-rule positive/negative fixtures")
    parser.add_argument("--list-members", action="store_true",
                        help="list every raw-pointer data member found")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if args.list_members:
        repo = Repo(args.root)
        members = []
        check_raw_members(repo, collect=members)
        for rel, line, class_name, name in sorted(members):
            print(f"{rel}:{line}: {class_name}::{name}")
        print(f"{len(members)} raw-pointer member(s)")
        return 0

    findings = run_checks(args.root)

    if args.update_baseline:
        write_baseline(args.root, findings)
        print(f"baseline updated with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(args.root)
    new = [f for f in findings if f.key() not in baseline]
    found_keys = {f.key() for f in findings}
    stale = sorted(baseline - found_keys)

    for finding in new:
        print(finding)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — "
              "run --update-baseline to prune):")
        for key in stale:
            print(f"  {key}")
    if new:
        print(f"\n{len(new)} new ownership finding(s). Fix them or, if "
              "accepted, run: python3 scripts/tasq_own.py "
              "--update-baseline")
        return 1
    print(f"own ok ({len(findings)} baselined finding(s), "
          f"{len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
