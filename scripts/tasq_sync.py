#!/usr/bin/env python3
"""TASQ atomics & lock-free conformance analyzer.

The shard-per-core serving arc (ROADMAP item 1) moves the request path
off mutexes and onto hand-written atomics — exactly the code TSan is
weakest on: a wrong memory order is invisible on x86 test hardware and
only misbehaves under contention or on weaker architectures, undermining
the tail-latency predictability the paper's PCC-optimal allocation
depends on. This analyzer (stdlib only, same mold and CLI contract as
tasq_lint / tasq_arch / tasq_num / tasq_hot) scans every source file
under src/ and enforces a written-down discipline on raw atomics:

  atomic-implicit-order      every load / store / exchange /
                             compare_exchange_* / fetch_* must spell an
                             explicit std::memory_order (both success and
                             failure orders for compare_exchange): the
                             C++ default is seq_cst, and an implicit
                             order is indistinguishable from an
                             unconsidered one.
  atomic-seqcst-needs-reason seq_cst is the strongest and most expensive
                             order and is almost always cargo cult; a
                             deliberate use (e.g. a store-buffering
                             litmus between flag pairs) must say why via
                             `// sync: seqcst <why>`.
  atomic-outside-sync        raw std::atomic in src/ lives only inside
                             src/common/sync/ (the vetted primitives:
                             Snapshot<T>, MpscQueue<T>, CpuRelax) or in
                             files allowlisted with a per-file rationale
                             in scripts/sync_files.txt. Everything else
                             composes the vetted primitives instead of
                             inventing protocols.
  cas-weak-loop              compare_exchange_strong inside a retry loop:
                             the loop already tolerates spurious failure,
                             so use the cheaper _weak.
  cas-strong-single          compare_exchange_weak outside any loop: a
                             single-shot weak CAS can fail spuriously and
                             silently drop the update; use _strong.
  spin-without-pause         a busy-wait loop (atomic read in the
                             condition, empty body) must execute a CPU
                             relax hint — CpuRelax() from
                             src/common/sync/pause.h — or yield in its
                             body.
  volatile-as-sync           `volatile` is not a synchronization
                             primitive in C++ (no atomicity, no ordering);
                             inter-thread signaling must use std::atomic.
                             (`asm volatile` is exempt: that volatile
                             qualifies the asm statement, not data.)
  sync-stale-allowlist       scripts/sync_files.txt entries must name
                             existing files that still contain
                             std::atomic and carry a rationale — stale
                             entries would silently grandfather future
                             atomics in.

Waivers: a deliberate exception carries `// sync: <tag> <reason>` on the
offending line or the line directly above it; the reason is mandatory
(anonymous suppressions rot). Tags: `order` (atomic-implicit-order),
`seqcst` (atomic-seqcst-needs-reason — this is the required
justification, not an escape hatch), `cas` (both CAS-strength rules),
`spin` (spin-without-pause), `volatile` (volatile-as-sync).
atomic-outside-sync has no per-line waiver: the allowlist file is the
reviewed escape hatch.

Known, accepted findings live in scripts/sync_baseline.txt; the analyzer
exits nonzero only on findings not in the baseline. The baseline is empty
as of PR 8 and CI fails if it regrows (job static-analysis, via
scripts/check.sh analyzers).

Usage:
  python3 scripts/tasq_sync.py                    analyze the repo
  python3 scripts/tasq_sync.py --update-baseline  accept current findings
  python3 scripts/tasq_sync.py --self-test        per-rule fixture check
  python3 scripts/tasq_sync.py --list-sites       list every atomic op site
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join("scripts", "sync_baseline.txt")
ALLOWLIST_PATH = os.path.join("scripts", "sync_files.txt")
SYNC_DIR_PREFIX = "src/common/sync/"
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # Repo-relative, forward slashes.
        self.line = line  # 1-based.
        self.message = message

    def key(self):
        # Line numbers shift too easily to key the baseline on them.
        return f"{self.rule}\t{self.path}"

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Identical policy to the other analyzers: a token inside a comment or
    a log string must not count as a violation."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _matching_paren_end(text, open_idx):
    """Index just past the `)` matching text[open_idx] == `(`, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _matching_brace_end(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _line_of(text, idx):
    return text[:idx].count("\n") + 1


def _waived(raw_lines, line, tag):
    """True when `line` (1-based) carries or directly follows a
    `// sync: <tag> <reason>` waiver (reason mandatory)."""
    pattern = re.compile(r"//\s*sync:\s*" + re.escape(tag) + r"\b\s*\S")
    here = raw_lines[line - 1] if line - 1 < len(raw_lines) else ""
    above = raw_lines[line - 2] if line - 2 >= 0 else ""
    return bool(pattern.search(here)) or bool(pattern.search(above))


# ---------------------------------------------------------------------------
# Repo scan
# ---------------------------------------------------------------------------

class Repo:
    """Scanned view of src/: file list plus cached raw/stripped text."""

    def __init__(self, root):
        self.root = root
        self.files = []
        self._text = {}
        self._stripped = {}
        base = os.path.join(root, "src")
        if os.path.isdir(base):
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith("build") and d != ".git")
                for fname in sorted(filenames):
                    if fname.endswith(SOURCE_SUFFIXES):
                        rel = os.path.relpath(
                            os.path.join(dirpath, fname),
                            root).replace(os.sep, "/")
                        self.files.append(rel)

    def text(self, rel):
        if rel not in self._text:
            with open(os.path.join(self.root, rel), encoding="utf-8",
                      errors="replace") as f:
                self._text[rel] = f.read()
        return self._text[rel]

    def stripped(self, rel):
        if rel not in self._stripped:
            self._stripped[rel] = strip_comments_and_strings(self.text(rel))
        return self._stripped[rel]

    def raw_lines(self, rel):
        return self.text(rel).split("\n")


# ---------------------------------------------------------------------------
# Atomic operation sites
# ---------------------------------------------------------------------------

# Member-call spelling of the std::atomic API. Operator forms (++, +=,
# implicit conversion) exist but do not occur in this codebase; the
# atomic-outside-sync rule keeps raw atomics confined to reviewed files
# where the member-call discipline is upheld.
ATOMIC_OP_RE = re.compile(
    r"\.\s*(load|store|exchange|compare_exchange_weak|"
    r"compare_exchange_strong|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor)\s*\(")

ATOMIC_TYPE_RE = re.compile(r"\bstd\s*::\s*atomic\b")

MEMORY_ORDER_RE = re.compile(r"\bmemory_order\b|\bmemory_order_\w+")

SEQCST_RE = re.compile(r"\bmemory_order(?:_seq_cst\b|\s*::\s*seq_cst\b)")

# Atomic reads that make a loop condition a busy-wait candidate.
ATOMIC_READ_RE = re.compile(
    r"\.\s*(?:load|compare_exchange_weak|compare_exchange_strong)\s*\(")

PAUSE_RE = re.compile(
    r"\bCpuRelax\s*\(|\byield\s*\(|\b_mm_pause\s*\(|\bpause\s*\(|"
    r"\bsleep_for\b|\bWait\s*\(")


class OpSite:
    def __init__(self, rel, line, method, args):
        self.rel = rel
        self.line = line
        self.method = method
        self.args = args  # Stripped text of the balanced argument list.

    @property
    def is_cas(self):
        return self.method.startswith("compare_exchange")

    @property
    def order_count(self):
        return len(MEMORY_ORDER_RE.findall(self.args))


def op_sites(repo, rel):
    stripped = repo.stripped(rel)
    sites = []
    for match in ATOMIC_OP_RE.finditer(stripped):
        open_idx = match.end() - 1
        close = _matching_paren_end(stripped, open_idx)
        if close < 0:
            continue
        sites.append(OpSite(rel, _line_of(stripped, match.start()),
                            match.group(1),
                            stripped[open_idx + 1:close - 1]))
    return sites


# ---------------------------------------------------------------------------
# Loop regions (for the CAS-strength and spin rules)
# ---------------------------------------------------------------------------

class LoopRegion:
    def __init__(self, start, end, kind, cond_span, body_span):
        self.start = start          # Offset of the loop keyword.
        self.end = end              # Offset past the body.
        self.kind = kind            # "while" | "for" | "do" | "do-tail"
        self.cond_span = cond_span  # (start, end) inside the parens.
        self.body_span = body_span  # (start, end) of the body statement.


def loop_regions(stripped):
    regions = []
    for match in re.finditer(r"\b(while|for)\s*\(", stripped):
        open_idx = match.end() - 1
        close = _matching_paren_end(stripped, open_idx)
        if close < 0:
            continue
        kind = match.group(1)
        # `} while (...)` is the tail of a do-while: its body is the
        # preceding block, which the `do` region below covers.
        back = match.start() - 1
        while back >= 0 and stripped[back] in " \t\n":
            back -= 1
        if kind == "while" and back >= 0 and stripped[back] == "}":
            kind = "do-tail"
        j = close
        while j < len(stripped) and stripped[j] in " \t\n":
            j += 1
        if j < len(stripped) and stripped[j] == "{":
            body_end = _matching_brace_end(stripped, j)
            if body_end < 0:
                body_end = j + 1
            body_span = (j, body_end)
        elif j < len(stripped) and stripped[j] == ";":
            body_span = (j, j + 1)  # Null statement body.
        else:
            semi = stripped.find(";", j)
            body_span = (j, semi + 1 if semi >= 0 else j)
        regions.append(LoopRegion(match.start(), body_span[1], kind,
                                  (open_idx + 1, close - 1), body_span))
    for match in re.finditer(r"\bdo\b", stripped):
        j = match.end()
        while j < len(stripped) and stripped[j] in " \t\n":
            j += 1
        if j < len(stripped) and stripped[j] == "{":
            body_end = _matching_brace_end(stripped, j)
            if body_end > 0:
                regions.append(LoopRegion(match.start(), body_end, "do",
                                          None, (j, body_end)))
    return regions


def in_loop(regions, pos):
    return any(r.start <= pos < r.end for r in regions)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def check_implicit_order(repo):
    findings = []
    for rel in repo.files:
        raw_lines = repo.raw_lines(rel)
        for site in op_sites(repo, rel):
            required = 2 if site.is_cas else 1
            if site.order_count >= required:
                continue
            if _waived(raw_lines, site.line, "order"):
                continue
            need = ("both success and failure std::memory_order arguments"
                    if site.is_cas else "an explicit std::memory_order")
            findings.append(Finding(
                "atomic-implicit-order", rel, site.line,
                f"atomic '{site.method}' without {need}: the implicit "
                "seq_cst default is indistinguishable from an "
                "unconsidered order. Spell the order, or waive with "
                "`// sync: order <reason>`"))
    return findings


def check_seqcst_reason(repo):
    findings = []
    for rel in repo.files:
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        for match in SEQCST_RE.finditer(stripped):
            line = _line_of(stripped, match.start())
            if _waived(raw_lines, line, "seqcst"):
                continue
            findings.append(Finding(
                "atomic-seqcst-needs-reason", rel, line,
                "memory_order_seq_cst without a justification: seq_cst "
                "is the most expensive order and is almost always cargo "
                "cult. Downgrade it, or justify with "
                "`// sync: seqcst <why>` (e.g. naming the "
                "store-buffering pair that needs the total order)"))
    return findings


def check_outside_sync(repo, allowlist):
    findings = []
    for rel in repo.files:
        if rel.startswith(SYNC_DIR_PREFIX) or rel in allowlist:
            continue
        stripped = repo.stripped(rel)
        match = ATOMIC_TYPE_RE.search(stripped)
        if not match:
            continue
        line = _line_of(stripped, match.start())
        findings.append(Finding(
            "atomic-outside-sync", rel, line,
            "raw std::atomic outside src/common/sync/: compose the "
            "vetted primitives (Snapshot<T>, MpscQueue<T>) instead, or "
            f"allowlist this file in {ALLOWLIST_PATH} with a rationale"))
    return findings


def check_cas_strength(repo):
    findings = []
    for rel in repo.files:
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        regions = loop_regions(stripped)
        for match in re.finditer(r"\bcompare_exchange_(weak|strong)\b",
                                 stripped):
            line = _line_of(stripped, match.start())
            if _waived(raw_lines, line, "cas"):
                continue
            looped = in_loop(regions, match.start())
            if match.group(1) == "strong" and looped:
                findings.append(Finding(
                    "cas-weak-loop", rel, line,
                    "compare_exchange_strong inside a retry loop: the "
                    "loop already tolerates spurious failure, so use "
                    "the cheaper compare_exchange_weak (or waive with "
                    "`// sync: cas <reason>`)"))
            elif match.group(1) == "weak" and not looped:
                findings.append(Finding(
                    "cas-strong-single", rel, line,
                    "single-shot compare_exchange_weak: weak CAS may "
                    "fail spuriously and silently drop the update; use "
                    "compare_exchange_strong (or waive with "
                    "`// sync: cas <reason>`)"))
    return findings


def check_spin_without_pause(repo):
    findings = []
    for rel in repo.files:
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        for region in loop_regions(stripped):
            if region.kind in ("do", "do-tail") or region.cond_span is None:
                continue
            cond = stripped[region.cond_span[0]:region.cond_span[1]]
            if not ATOMIC_READ_RE.search(cond):
                continue
            body = stripped[region.body_span[0]:region.body_span[1]]
            effective = body.strip(" \t\n{};")
            if effective and not PAUSE_RE.search(body):
                # Non-trivial body without a pause: a progress loop (the
                # body advances the condition), not a spin — quiet.
                continue
            if effective:
                continue  # Pause-bearing body: conforming busy-wait.
            line = _line_of(stripped, region.start)
            if _waived(raw_lines, line, "spin"):
                continue
            findings.append(Finding(
                "spin-without-pause", rel, line,
                "busy-wait on an atomic with an empty loop body: add "
                "CpuRelax() (src/common/sync/pause.h) or a yield to the "
                "body — a pauseless spin starves the sibling hyperthread "
                "and pays the memory-order machine-clear penalty (or "
                "waive with `// sync: spin <reason>`)"))
    return findings


def check_volatile(repo):
    findings = []
    for rel in repo.files:
        stripped = repo.stripped(rel)
        raw_lines = repo.raw_lines(rel)
        for match in re.finditer(r"\bvolatile\b", stripped):
            # `asm volatile` qualifies the asm statement, not data.
            prefix = stripped[max(0, match.start() - 24):match.start()]
            if re.search(r"\basm\s*$|__asm__\s*$", prefix):
                continue
            line = _line_of(stripped, match.start())
            if _waived(raw_lines, line, "volatile"):
                continue
            findings.append(Finding(
                "volatile-as-sync", rel, line,
                "volatile is not a synchronization primitive in C++ (no "
                "atomicity, no ordering, races are still UB): use "
                "std::atomic with an explicit memory order, or waive a "
                "genuine MMIO/signal-handler use with "
                "`// sync: volatile <reason>`"))
    return findings


# ---------------------------------------------------------------------------
# Allowlist (scripts/sync_files.txt)
# ---------------------------------------------------------------------------

def load_allowlist(root):
    """Returns {repo-relative path: (rationale, lineno)}."""
    path = os.path.join(root, ALLOWLIST_PATH)
    entries = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                entry, _, rationale = line.partition("#")
                entries[entry.strip()] = (rationale.strip(), lineno)
    return entries


def check_allowlist(repo, allowlist):
    """Stale or rationale-less entries fail: the allowlist must track
    reality, or it silently grandfathers future atomics in."""
    findings = []
    for entry, (rationale, lineno) in sorted(allowlist.items()):
        if entry not in repo.files:
            findings.append(Finding(
                "sync-stale-allowlist", ALLOWLIST_PATH, lineno,
                f"allowlist entry '{entry}' names no file under src/; "
                "remove it"))
        elif not ATOMIC_TYPE_RE.search(repo.stripped(entry)):
            findings.append(Finding(
                "sync-stale-allowlist", ALLOWLIST_PATH, lineno,
                f"allowlist entry '{entry}' no longer contains "
                "std::atomic; remove it so the file goes back under the "
                "atomic-outside-sync rule"))
        elif not rationale:
            findings.append(Finding(
                "sync-stale-allowlist", ALLOWLIST_PATH, lineno,
                f"allowlist entry '{entry}' has no rationale; append "
                "`# <why this file owns raw atomics>`"))
    return findings


RULE_IDS_ALL = (
    "atomic-implicit-order",
    "atomic-seqcst-needs-reason",
    "atomic-outside-sync",
    "cas-weak-loop",
    "cas-strong-single",
    "spin-without-pause",
    "volatile-as-sync",
    "sync-stale-allowlist",
)


def run_checks(root):
    repo = Repo(root)
    allowlist = load_allowlist(root)
    findings = []
    findings.extend(check_allowlist(repo, allowlist))
    findings.extend(check_implicit_order(repo))
    findings.extend(check_seqcst_reason(repo))
    findings.extend(check_outside_sync(repo, allowlist))
    findings.extend(check_cas_strength(repo))
    findings.extend(check_spin_without_pause(repo))
    findings.extend(check_volatile(repo))
    findings.sort(key=lambda f: (f.path, f.rule, f.line))
    return findings


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(root):
    path = os.path.join(root, BASELINE_PATH)
    entries = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.rstrip("\n")
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def write_baseline(root, findings):
    path = os.path.join(root, BASELINE_PATH)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Accepted tasq_sync.py findings (rule<TAB>path).\n")
        f.write("# Regenerate with: python3 scripts/tasq_sync.py "
                "--update-baseline\n")
        for key in sorted({finding.key() for finding in findings}):
            f.write(key + "\n")


# ---------------------------------------------------------------------------
# Self-test: per-rule positive + quiet-negative fixtures + coverage gate
# ---------------------------------------------------------------------------

# Conforming base tree: one vetted-primitive file inside src/common/sync/
# exercising every near-miss shape (explicit orders, weak CAS in a retry
# loop, progress-loop bodies), plus an atomic-free cold file. This is the
# negative fixture for most rules and the base the positives perturb.
COUNTER_H = (
    "#ifndef TASQ_COMMON_SYNC_COUNTER_H_\n"
    "#define TASQ_COMMON_SYNC_COUNTER_H_\n"
    "#include <atomic>\n"
    "namespace tasq {\n"
    "class Counter {\n"
    " public:\n"
    "  void Add(unsigned v) { c_.fetch_add(v, std::memory_order_relaxed); }\n"
    "  unsigned Get() const { return c_.load(std::memory_order_acquire); }\n"
    "  bool RaiseTo(unsigned want) {\n"
    "    unsigned seen = c_.load(std::memory_order_relaxed);\n"
    "    while (!c_.compare_exchange_weak(seen, want,\n"
    "                                     std::memory_order_acq_rel,\n"
    "                                     std::memory_order_relaxed)) {\n"
    "      if (seen >= want) return false;\n"
    "    }\n"
    "    return true;\n"
    "  }\n"
    " private:\n"
    "  std::atomic<unsigned> c_{0};\n"
    "};\n"
    "}  // namespace tasq\n"
    "#endif\n")

GOOD_TREE = {
    "src/common/sync/counter.h": COUNTER_H,
    "src/app/cold.cc": "int Plain(int x) { return x + 1; }\n",
}

GOOD_ALLOW = ""


def _with(base, **overrides):
    tree = dict(base)
    for path, content in overrides.items():
        if content is None:
            tree.pop(path, None)
        else:
            tree[path] = content
    return tree


def _inject(member):
    """Positive fixture: `member` lands inside the Counter class (in the
    sync dir, so atomic-outside-sync stays quiet unless that is the rule
    under test)."""
    return _with(GOOD_TREE, **{
        "src/common/sync/counter.h": COUNTER_H.replace(
            " private:",
            f"  {member}\n private:")})


# rule -> (positive tree, positive allowlist, negative tree, negative
#          allowlist). Positive must fire exactly its rule; negative must
#          be completely quiet.
def self_test_cases():
    cases = {}
    cases["atomic-implicit-order"] = (
        _inject("void Bump() { c_.fetch_add(1); }"), GOOD_ALLOW,
        _inject("void Bump() { c_.fetch_add(1); }"
                "  // sync: order wraps a legacy counter ABI"),
        GOOD_ALLOW)
    cases["atomic-seqcst-needs-reason"] = (
        _inject("void Seal() { c_.store(0, std::memory_order_seq_cst); }"),
        GOOD_ALLOW,
        _inject("// sync: seqcst SB litmus against the drain flag\n"
                "  void Seal() { c_.store(0, std::memory_order_seq_cst); }"),
        GOOD_ALLOW)
    cases["atomic-outside-sync"] = (
        _with(GOOD_TREE, **{
            "src/app/stats.h": "#include <atomic>\n"
                               "inline std::atomic<int> g_requests{0};\n"}),
        GOOD_ALLOW,
        _with(GOOD_TREE, **{
            "src/app/stats.h": "#include <atomic>\n"
                               "inline std::atomic<int> g_requests{0};\n"}),
        "src/app/stats.h  # relaxed request counters, stats only\n")
    cases["cas-weak-loop"] = (
        _inject("void ForceTo(unsigned want) {\n"
                "    unsigned seen = c_.load(std::memory_order_relaxed);\n"
                "    while (!c_.compare_exchange_strong(seen, want,\n"
                "               std::memory_order_acq_rel,\n"
                "               std::memory_order_relaxed)) {\n"
                "      seen = c_.load(std::memory_order_relaxed);\n"
                "    }\n"
                "  }"), GOOD_ALLOW,
        _inject("void ForceTo(unsigned want) {\n"
                "    unsigned seen = c_.load(std::memory_order_relaxed);\n"
                "    // sync: cas strong keeps the ABA analysis one-shot\n"
                "    while (!c_.compare_exchange_strong(seen, want,\n"
                "               std::memory_order_acq_rel,\n"
                "               std::memory_order_relaxed)) {\n"
                "      seen = c_.load(std::memory_order_relaxed);\n"
                "    }\n"
                "  }"), GOOD_ALLOW)
    cases["cas-strong-single"] = (
        _inject("bool TryOnce(unsigned want) {\n"
                "    unsigned seen = 0;\n"
                "    return c_.compare_exchange_weak(seen, want,\n"
                "               std::memory_order_acq_rel,\n"
                "               std::memory_order_relaxed);\n"
                "  }"), GOOD_ALLOW,
        _inject("bool TryOnce(unsigned want) {\n"
                "    unsigned seen = 0;\n"
                "    return c_.compare_exchange_strong(seen, want,\n"
                "               std::memory_order_acq_rel,\n"
                "               std::memory_order_relaxed);\n"
                "  }"), GOOD_ALLOW)
    cases["spin-without-pause"] = (
        _inject("void WaitZero() const {\n"
                "    while (c_.load(std::memory_order_acquire) != 0) {}\n"
                "  }"), GOOD_ALLOW,
        _inject("void WaitZero() const {\n"
                "    while (c_.load(std::memory_order_acquire) != 0) {\n"
                "      CpuRelax();\n"
                "    }\n"
                "  }"), GOOD_ALLOW)
    cases["volatile-as-sync"] = (
        _inject("volatile bool ready_ = false;"), GOOD_ALLOW,
        _inject("void Fence() { asm volatile(\"\" ::: \"memory\"); }"),
        GOOD_ALLOW)
    cases["sync-stale-allowlist"] = (
        GOOD_TREE, "src/app/ghost.h  # file was deleted last PR\n",
        GOOD_TREE, GOOD_ALLOW)
    return cases


def _materialize(tmp, tree, allow_text):
    for rel, content in tree.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
    allow_file = os.path.join(tmp, ALLOWLIST_PATH)
    os.makedirs(os.path.dirname(allow_file), exist_ok=True)
    with open(allow_file, "w", encoding="utf-8") as f:
        f.write(allow_text)


def self_test():
    """Coverage-gated: every rule id must have a positive fixture that
    fires exactly that rule and a negative fixture that is completely
    quiet (a near-miss or a waived/allowlisted variant)."""
    cases = self_test_cases()
    uncovered = set(RULE_IDS_ALL) - set(cases)
    if uncovered:
        print(f"self-test FAILED: rules without fixtures: "
              f"{sorted(uncovered)}")
        return 1
    failures = 0
    for rule, (pos_tree, pos_allow, neg_tree, neg_allow) in \
            sorted(cases.items()):
        with tempfile.TemporaryDirectory(
                prefix="tasq_sync_selftest_") as tmp:
            _materialize(tmp, pos_tree, pos_allow)
            findings = run_checks(tmp)
            fired = {f.rule for f in findings}
            if rule not in fired:
                print(f"self-test FAILED: [{rule}] positive fixture did "
                      f"not fire (saw {sorted(fired) or 'nothing'})")
                failures += 1
            elif fired != {rule}:
                print(f"self-test FAILED: [{rule}] positive fixture also "
                      f"fired {sorted(fired - {rule})}")
                for f in findings:
                    print(f"  saw: {f}")
                failures += 1
        with tempfile.TemporaryDirectory(
                prefix="tasq_sync_selftest_") as tmp:
            _materialize(tmp, neg_tree, neg_allow)
            leftover = run_checks(tmp)
            if leftover:
                print(f"self-test FAILED: [{rule}] negative fixture is "
                      "not quiet:")
                for f in leftover:
                    print(f"  {f}")
                failures += 1
    if failures:
        return 1
    print(f"self-test passed: {len(cases)} rules, each with a firing "
          "positive and a quiet near-miss/waived negative")
    return 0


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def list_sites(root):
    repo = Repo(root)
    total = 0
    for rel in repo.files:
        for site in op_sites(repo, rel):
            orders = MEMORY_ORDER_RE.findall(site.args)
            shown = ", ".join(o.replace("memory_order_", "")
                              for o in orders) or "IMPLICIT seq_cst"
            print(f"{site.rel}:{site.line}: {site.method}({shown})")
            total += 1
    print(f"{total} atomic operation site(s) under src/")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to analyze")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run per-rule positive/negative fixtures")
    parser.add_argument("--list-sites", action="store_true",
                        help="list every atomic operation site and its "
                        "memory orders")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if args.list_sites:
        return list_sites(args.root)

    findings = run_checks(args.root)

    if args.update_baseline:
        write_baseline(args.root, findings)
        print(f"baseline updated with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(args.root)
    new = [f for f in findings if f.key() not in baseline]
    found_keys = {f.key() for f in findings}
    stale = sorted(baseline - found_keys)

    for finding in new:
        print(finding)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — "
              "run --update-baseline to prune):")
        for key in stale:
            print(f"  {key}")
    if new:
        print(f"\n{len(new)} new sync finding(s). Fix them or, if "
              "accepted, run: python3 scripts/tasq_sync.py "
              "--update-baseline")
        return 1
    repo = Repo(args.root)
    sites = sum(len(op_sites(repo, rel)) for rel in repo.files)
    print(f"sync ok ({sites} atomic site(s) checked, "
          f"{len(findings)} baselined finding(s), {len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
