#!/usr/bin/env python3
"""TASQ vectorization-conformance analyzer.

The batch-major kernels under src/ (ml/kernels.cc, the gbdt histogram
packs, the nn dense-layer epilogues) are written so the compiler's
auto-vectorizer provably turns them into SIMD under strict IEEE flags —
and nothing but this analyzer stops a future PR from quietly breaking
that: one innocent-looking aliasing tweak or reduction rewrite and the
loop silently drops back to scalar with zero test failures. Unlike its
siblings (tasq_arch.py, tasq_hot.py, ...) this analyzer does not judge
source text; it cross-checks source *annotations* against what the
compiler actually did, as recorded in its vectorization report.

Contract: every performance-critical loop carries `TASQ_VEC` (macro in
src/common/hot.h) on its own line or the same line directly before the
`for`/`while`. A dedicated build emits the vectorizer's per-loop
decisions:

  cmake -B build-check-vec -DCMAKE_BUILD_TYPE=Release -DTASQ_VEC_REPORT=ON
  rm -f build-check-vec/vec_report.txt   # GCC appends; stale lines lie
  cmake --build build-check-vec --target tasq_vec_report --clean-first
  # (--clean-first matters: only recompiled TUs contribute lines, so an
  # incremental build would leave every up-to-date loop "unresolved")

and the analyzer maps each report line back to its annotated loop:

  vec-not-vectorized   the compiler reported `missed: not vectorized`
                       (and never `optimized`) for an annotated loop;
                       the finding carries the compiler's own reason.
  vec-unresolved       an annotated loop produced no vectorizer verdict
                       at all. Usual causes: GCC rewrote the loop into
                       memset/memcpy (annotate real arithmetic loops,
                       not zero/copy loops), the annotation drifted off
                       the loop, or the TU wasn't rebuilt into the
                       report. Also fired when TASQ_VEC precedes no
                       for/while at all.
  vec-stale-waiver     a waived loop that the compiler now vectorizes;
                       the waiver documents a limitation that no longer
                       exists and must be removed (stale waivers
                       grandfather future regressions in silently).

Waivers: a loop that is deliberately annotated but known-scalar carries
`// vec: <reason>` on the annotation line, the loop line, or the line
directly above the annotation; the reason is mandatory.

Report formats: GCC `-fopt-info-vec-all=<file>` text (one aggregate
file, what check.sh builds) and, best-effort, Clang
`-fsave-optimization-record` YAML (globbed as *.opt.yaml under --build).

Known, accepted findings live in scripts/vec_baseline.txt; the analyzer
exits nonzero only on findings not in the baseline. The baseline is
empty as of PR 10 and CI fails if it regrows (job static-analysis, via
scripts/check.sh analyzers).

Usage:
  python3 scripts/tasq_vec.py --report build-check-vec/vec_report.txt
  python3 scripts/tasq_vec.py --build build-check-vec
  python3 scripts/tasq_vec.py --update-baseline --report <file>
  python3 scripts/tasq_vec.py --self-test        per-rule fixture check
  python3 scripts/tasq_vec.py --list-vec         list annotated loops
"""

import argparse
import glob
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join("scripts", "vec_baseline.txt")
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")
SKIP_DIR_PREFIXES = ("build",)

RULE_IDS_ALL = ("vec-not-vectorized", "vec-unresolved", "vec-stale-waiver")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # Repo-relative, forward slashes.
        self.line = line  # 1-based.
        self.message = message

    def key(self):
        # Line numbers shift too easily to key the baseline on them.
        return f"{self.rule}\t{self.path}"

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Identical policy to tasq_arch.py: a TASQ_VEC inside a comment or a
    log string must not count as an annotation."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Annotation scan: TASQ_VEC sites and the loops they govern
# ---------------------------------------------------------------------------

VEC_ANNOT_RE = re.compile(r"\bTASQ_VEC\b")
LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
WAIVER_RE = re.compile(r"//\s*vec:\s*\S")


class VecSite:
    """One TASQ_VEC annotation and the loop line it governs."""

    def __init__(self, rel, annot_line, loop_line, waived):
        self.rel = rel
        self.annot_line = annot_line  # 1-based line of TASQ_VEC.
        self.loop_line = loop_line    # 1-based line of for/while, or None.
        self.waived = waived


def scan_sites(root):
    """Finds every TASQ_VEC site under src/ (excluding the macro's own
    definition in common/hot.h)."""
    sites = []
    base = os.path.join(root, "src")
    files = []
    if os.path.isdir(base):
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(SKIP_DIR_PREFIXES) and d != ".git")
            for fname in sorted(filenames):
                if fname.endswith(SOURCE_SUFFIXES):
                    rel = os.path.relpath(
                        os.path.join(dirpath, fname),
                        root).replace(os.sep, "/")
                    files.append(rel)
    for rel in files:
        if rel.endswith("common/hot.h"):
            continue
        with open(os.path.join(root, rel), encoding="utf-8",
                  errors="replace") as f:
            raw = f.read()
        stripped = strip_comments_and_strings(raw)
        raw_lines = raw.split("\n")
        for match in VEC_ANNOT_RE.finditer(stripped):
            annot_line = stripped[:match.start()].count("\n") + 1
            loop = LOOP_RE.search(stripped, match.end())
            loop_line = None
            if loop:
                candidate = stripped[:loop.start()].count("\n") + 1
                # The macro binds to the loop on its own line or the next
                # one; anything farther is an orphaned annotation.
                if candidate in (annot_line, annot_line + 1):
                    loop_line = candidate
            waiver_lines = [annot_line - 1, annot_line]
            if loop_line is not None:
                waiver_lines.append(loop_line)
            waived = any(
                0 <= ln - 1 < len(raw_lines)
                and WAIVER_RE.search(raw_lines[ln - 1])
                for ln in waiver_lines)
            sites.append(VecSite(rel, annot_line, loop_line, waived))
    return sites


# ---------------------------------------------------------------------------
# Compiler-report parsing (GCC text, Clang YAML best-effort)
# ---------------------------------------------------------------------------

# GCC -fopt-info-vec-all line:
#   /abs/path/src/ml/kernels.cc:23:25: optimized: loop vectorized using ...
#   /abs/path/src/gbdt/gbdt.cc:61:3: missed: not vectorized: <reason>
GCC_LINE_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):\d+:\s*"
    r"(?P<kind>optimized|missed):\s*(?P<msg>.*)$")

VECTORIZED_RE = re.compile(r"\bloop vectorized\b")
NOT_VECTORIZED_RE = re.compile(r"\bnot vectorized\b|\bcouldn't vectorize\b")


def _path_keys(path):
    """Lookup keys for one report path: the src/-relative suffix (the
    stable spelling, immune to build-dir layout) plus the basename as a
    fallback for compilers that print bare filenames."""
    path = path.replace("\\", "/")
    keys = []
    if "src/" in path:
        keys.append("src/" + path.rsplit("src/", 1)[1])
    keys.append(path.rsplit("/", 1)[-1])
    return keys


class VecReport:
    """Per-(file, line) vectorizer verdicts aggregated across TUs.

    GCC appends one report section per TU (and re-reports inlined copies
    at their original source location), so one loop can carry several
    lines; `optimized: loop vectorized` anywhere wins — epilogue/versioned
    `missed` lines for a loop that did vectorize are normal."""

    def __init__(self):
        self.optimized = {}  # key -> {line, ...}
        self.missed = {}     # (key, line) -> first reason string
        self.lines_seen = 0

    def add(self, path, line, kind, msg):
        self.lines_seen += 1
        for key in _path_keys(path):
            if kind == "optimized" and VECTORIZED_RE.search(msg):
                self.optimized.setdefault(key, set()).add(line)
            elif kind == "missed" and NOT_VECTORIZED_RE.search(msg):
                self.missed.setdefault((key, line), msg)

    def status(self, rel, line):
        """('vectorized', msg) | ('missed', reason) | ('absent', None)."""
        for key in _path_keys(rel):
            if line in self.optimized.get(key, ()):
                return ("vectorized", None)
        for key in _path_keys(rel):
            reason = self.missed.get((key, line))
            if reason is not None:
                return ("missed", reason)
        return ("absent", None)


def parse_gcc_report(text, report):
    for raw in text.splitlines():
        match = GCC_LINE_RE.match(raw)
        if match:
            report.add(match.group("path"), int(match.group("line")),
                       match.group("kind"), match.group("msg"))


CLANG_LOC_RE = re.compile(
    r"File:\s*'?(?P<file>[^',\s]+)'?,\s*Line:\s*(?P<line>\d+)")


def parse_clang_yaml(text, report):
    """Best-effort reader for -fsave-optimization-record YAML: only
    loop-vectorize remarks, no full YAML parser (stdlib-only)."""
    for block in re.split(r"^--- !", text, flags=re.M)[1:]:
        kind = block.split("\n", 1)[0].strip()
        pass_match = re.search(r"^Pass:\s*'?([\w-]+)'?", block, re.M)
        loc_match = CLANG_LOC_RE.search(block)
        if not pass_match or not loc_match:
            continue
        if pass_match.group(1) != "loop-vectorize":
            continue
        path = loc_match.group("file")
        line = int(loc_match.group("line"))
        if kind == "Passed":
            report.add(path, line, "optimized", "loop vectorized")
        elif kind in ("Missed", "Analysis"):
            strings = re.findall(r"String:\s*'((?:[^']|'')*)'", block)
            reason = "not vectorized: " + (
                "".join(strings).strip() or "clang missed remark")
            report.add(path, line, "missed", reason)


def load_report(report_path, build_dir):
    """Resolves the vectorization report from --report/--build."""
    report = VecReport()
    if report_path:
        with open(report_path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        if text.lstrip().startswith("--- !"):
            parse_clang_yaml(text, report)
        else:
            parse_gcc_report(text, report)
        return report
    if build_dir:
        gcc_file = os.path.join(build_dir, "vec_report.txt")
        if os.path.exists(gcc_file):
            with open(gcc_file, encoding="utf-8", errors="replace") as f:
                parse_gcc_report(f.read(), report)
            return report
        yamls = sorted(glob.glob(
            os.path.join(build_dir, "**", "*.opt.yaml"), recursive=True))
        for path in yamls:
            with open(path, encoding="utf-8", errors="replace") as f:
                parse_clang_yaml(f.read(), report)
        if yamls:
            return report
        raise FileNotFoundError(
            f"no vec_report.txt or *.opt.yaml under {build_dir}; build "
            "with -DTASQ_VEC_REPORT=ON first (see CMakeLists.txt)")
    for candidate in ("build-check-vec", "build"):
        gcc_file = os.path.join(REPO_ROOT, candidate, "vec_report.txt")
        if os.path.exists(gcc_file):
            with open(gcc_file, encoding="utf-8", errors="replace") as f:
                parse_gcc_report(f.read(), report)
            return report
    raise FileNotFoundError(
        "no vectorization report found; pass --report <file> or --build "
        "<dir> (build with -DTASQ_VEC_REPORT=ON, see scripts/check.sh)")


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def run_checks(root, report):
    findings = []
    for site in scan_sites(root):
        if site.loop_line is None:
            if not site.waived:
                findings.append(Finding(
                    "vec-unresolved", site.rel, site.annot_line,
                    "TASQ_VEC does not precede a for/while loop on this "
                    "or the next line; the annotation enforces nothing"))
            continue
        status, detail = report.status(site.rel, site.loop_line)
        if status == "vectorized":
            if site.waived:
                findings.append(Finding(
                    "vec-stale-waiver", site.rel, site.annot_line,
                    "loop carries a `// vec:` waiver but the compiler "
                    "vectorized it; remove the waiver (stale waivers "
                    "grandfather future regressions in silently)"))
        elif site.waived:
            continue
        elif status == "missed":
            findings.append(Finding(
                "vec-not-vectorized", site.rel, site.loop_line,
                f"TASQ_VEC loop was not vectorized — compiler: "
                f"\"{detail}\". Restructure the loop (see DESIGN.md "
                "\"Vectorization policy\"), or waive with "
                "`// vec: <reason>`"))
        else:
            findings.append(Finding(
                "vec-unresolved", site.rel, site.loop_line,
                "TASQ_VEC loop has no verdict in the vectorization "
                "report: the loop may have been rewritten into "
                "memset/memcpy (annotate arithmetic loops, not zero/copy "
                "loops), the annotation may have drifted, or the TU was "
                "not rebuilt into the report"))
    findings.sort(key=lambda f: (f.path, f.rule, f.line))
    return findings


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(root):
    path = os.path.join(root, BASELINE_PATH)
    entries = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.rstrip("\n")
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def write_baseline(root, findings):
    path = os.path.join(root, BASELINE_PATH)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Accepted tasq_vec.py findings (rule<TAB>path).\n")
        f.write("# Regenerate with: python3 scripts/tasq_vec.py "
                "--update-baseline --report <file>\n")
        for key in sorted({finding.key() for finding in findings}):
            f.write(key + "\n")


# ---------------------------------------------------------------------------
# Self-test: per-rule positive + quiet-negative fixtures + coverage gate
# ---------------------------------------------------------------------------

HOT_H = (
    "#ifndef TASQ_COMMON_HOT_H_\n"
    "#define TASQ_COMMON_HOT_H_\n"
    "#define TASQ_VEC\n"
    "#endif\n")

# Conforming base: one annotated elementwise loop (line 4 of kern.cc is
# the `for`), which the synthetic reports below rule on.
GOOD_TREE = {
    "src/common/hot.h": HOT_H,
    "src/app/kern.cc": (
        "#include \"common/hot.h\"\n"
        "void Scale(double* __restrict o, double s, unsigned long n) {\n"
        "  TASQ_VEC\n"
        "  for (unsigned long i = 0; i < n; ++i) {\n"
        "    o[i] = o[i] * s;\n"
        "  }\n"
        "}\n"),
}

WAIVED_TREE = {
    "src/common/hot.h": HOT_H,
    "src/app/kern.cc": GOOD_TREE["src/app/kern.cc"].replace(
        "  TASQ_VEC\n",
        "  TASQ_VEC  // vec: scatter lanes collide on shared bins\n"),
}

# Synthetic GCC-format reports aimed at kern.cc's loop line (4).
REPORT_OPTIMIZED = (
    "/tmp/x/src/app/kern.cc:4:25: optimized: loop vectorized using "
    "16 byte vectors\n")
REPORT_MISSED = (
    "/tmp/x/src/app/kern.cc:4:25: missed: not vectorized: "
    "complicated access pattern.\n")
# A verdict for some other loop only: the annotated one stays absent.
REPORT_ELSEWHERE = (
    "/tmp/x/src/app/other.cc:9:3: optimized: loop vectorized using "
    "16 byte vectors\n")

ORPHAN_TREE = {
    "src/common/hot.h": HOT_H,
    "src/app/kern.cc": (
        "#include \"common/hot.h\"\n"
        "void Scale(double* o, unsigned long n) {\n"
        "  TASQ_VEC\n"
        "  o[0] = 1.0;\n"
        "  for (unsigned long i = 0; i < n; ++i) o[i] = 0.0;\n"
        "}\n"),
}

CLANG_YAML = (
    "--- !Passed\n"
    "Pass:            loop-vectorize\n"
    "Name:            Vectorized\n"
    "DebugLoc:        { File: 'src/app/kern.cc', Line: 4, Column: 3 }\n"
    "Function:        Scale\n"
    "...\n"
    "--- !Missed\n"
    "Pass:            loop-vectorize\n"
    "Name:            MissedDetails\n"
    "DebugLoc:        { File: 'src/app/cold.cc', Line: 11, Column: 3 }\n"
    "Function:        Cold\n"
    "Args:\n"
    "  - String:          'loop not vectorized'\n"
    "...\n")


# rule -> (positive tree, positive report, negative tree, negative report)
def self_test_cases():
    cases = {}
    cases["vec-not-vectorized"] = (
        GOOD_TREE, REPORT_MISSED,
        WAIVED_TREE, REPORT_MISSED)
    cases["vec-unresolved"] = (
        GOOD_TREE, REPORT_ELSEWHERE,
        WAIVED_TREE, REPORT_ELSEWHERE)
    cases["vec-stale-waiver"] = (
        WAIVED_TREE, REPORT_OPTIMIZED,
        GOOD_TREE, REPORT_OPTIMIZED)
    return cases


def _materialize(tmp, tree):
    for rel, content in tree.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def _run_on(tree, report_text):
    with tempfile.TemporaryDirectory(prefix="tasq_vec_selftest_") as tmp:
        _materialize(tmp, tree)
        report = VecReport()
        parse_gcc_report(report_text, report)
        return run_checks(tmp, report)


def self_test():
    """Coverage-gated: every rule id must have a positive fixture firing
    exactly that rule and a negative fixture that is completely quiet."""
    cases = self_test_cases()
    uncovered = set(RULE_IDS_ALL) - set(cases)
    if uncovered:
        print(f"self-test FAILED: rules without fixtures: "
              f"{sorted(uncovered)}")
        return 1
    failures = 0
    for rule, (pos_tree, pos_report, neg_tree, neg_report) in \
            sorted(cases.items()):
        findings = _run_on(pos_tree, pos_report)
        fired = {f.rule for f in findings}
        if rule not in fired:
            print(f"self-test FAILED: [{rule}] positive fixture did not "
                  f"fire (saw {sorted(fired) or 'nothing'})")
            failures += 1
        elif fired != {rule}:
            print(f"self-test FAILED: [{rule}] positive fixture also "
                  f"fired {sorted(fired - {rule})}")
            for f in findings:
                print(f"  saw: {f}")
            failures += 1
        leftover = _run_on(neg_tree, neg_report)
        if leftover:
            print(f"self-test FAILED: [{rule}] negative fixture is not "
                  "quiet:")
            for f in leftover:
                print(f"  {f}")
            failures += 1
    # An annotation with no loop behind it must fire vec-unresolved even
    # when the report is empty (the usual shape of this mistake).
    orphan = _run_on(ORPHAN_TREE, "")
    if {f.rule for f in orphan} != {"vec-unresolved"}:
        print("self-test FAILED: orphan annotation did not fire "
              f"vec-unresolved (saw {sorted(f.rule for f in orphan)})")
        failures += 1
    # Clang YAML best-effort parse: the Passed remark must mark line 4 of
    # kern.cc vectorized, so the conforming tree is quiet.
    clang_report = VecReport()
    parse_clang_yaml(CLANG_YAML, clang_report)
    if clang_report.status("src/app/kern.cc", 4)[0] != "vectorized":
        print("self-test FAILED: clang YAML Passed remark not parsed")
        failures += 1
    if clang_report.status("src/app/cold.cc", 11)[0] != "missed":
        print("self-test FAILED: clang YAML Missed remark not parsed")
        failures += 1
    if failures:
        return 1
    print(f"self-test passed: {len(cases)} rules with positive/negative "
          "fixtures, orphan-annotation check, clang-YAML parse check")
    return 0


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to analyze")
    parser.add_argument("--report", metavar="PATH",
                        help="vectorization report file (GCC "
                        "-fopt-info-vec-all output, or Clang .opt.yaml)")
    parser.add_argument("--build", metavar="DIR",
                        help="build dir to locate vec_report.txt / "
                        "*.opt.yaml in")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run per-rule positive/negative fixtures")
    parser.add_argument("--list-vec", action="store_true",
                        help="list every TASQ_VEC annotated loop")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if args.list_vec:
        sites = scan_sites(args.root)
        for site in sites:
            loop = (f"loop at line {site.loop_line}"
                    if site.loop_line else "NO LOOP (orphaned)")
            waived = " [waived]" if site.waived else ""
            print(f"{site.rel}:{site.annot_line}: {loop}{waived}")
        print(f"{len(sites)} TASQ_VEC annotation(s)")
        return 0

    try:
        report = load_report(args.report, args.build)
    except (FileNotFoundError, OSError) as err:
        print(f"tasq_vec: {err}")
        return 2
    if report.lines_seen == 0 and args.report:
        print(f"tasq_vec: warning: no vectorizer lines parsed from "
              f"{args.report}; every annotated loop will read as "
              "unresolved")

    findings = run_checks(args.root, report)

    if args.update_baseline:
        write_baseline(args.root, findings)
        print(f"baseline updated with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(args.root)
    new = [f for f in findings if f.key() not in baseline]
    found_keys = {f.key() for f in findings}
    stale = sorted(baseline - found_keys)

    for finding in new:
        print(finding)
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — "
              "run --update-baseline to prune):")
        for key in stale:
            print(f"  {key}")
    if new:
        print(f"\n{len(new)} new vectorization finding(s). Fix them or, "
              "if accepted, run: python3 scripts/tasq_vec.py "
              "--update-baseline --report <file>")
        return 1
    sites = scan_sites(args.root)
    confirmed = sum(
        1 for s in sites
        if s.loop_line is not None and not s.waived
        and report.status(s.rel, s.loop_line)[0] == "vectorized")
    print(f"vec ok ({confirmed}/{len(sites)} annotated loop(s) confirmed "
          f"vectorized, {len(findings)} baselined finding(s), "
          f"{len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
