#include "arbiter/allocation_arbiter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/stats.h"

namespace tasq {

namespace {

constexpr double kEps = 1e-9;

/// Analytic runtime bound of a plan at an allocation: perfect scaling of
/// the total work, floored at the critical path (the simulator can only
/// be slower than this, never faster).
double AnalyticRuntime(const JobPlan& plan, double tokens) {
  double work = plan.TotalWorkTokenSeconds();
  double denom = std::max(1.0, tokens);
  return std::max(plan.CriticalPathSeconds(), work / denom);
}

}  // namespace

const char* ArbiterPolicyName(ArbiterPolicy policy) {
  switch (policy) {
    case ArbiterPolicy::kFifoGang: return "fifo";
    case ArbiterPolicy::kWelfareMax: return "welfare";
    case ArbiterPolicy::kMaxMinFair: return "maxmin";
    case ArbiterPolicy::kKarma: return "karma";
  }
  return "unknown";
}

PolicyArbiter::PolicyArbiter(ArbiterOptions options, PccBeliefs beliefs)
    : options_(options), beliefs_(std::move(beliefs)) {}

double PolicyArbiter::PredictRuntime(const Submission& submission,
                                     double tokens) const {
  double clamped = std::max(1.0, tokens);
  auto it = beliefs_.find(submission.job_id);
  if (it != beliefs_.end() && it->second.b > 0.0 &&
      it->second.IsMonotoneNonIncreasing()) {
    double predicted = it->second.EvalRunTime(clamped);
    if (std::isfinite(predicted) && predicted > 0.0) return predicted;
  }
  return AnalyticRuntime(submission.plan, clamped);
}

namespace {

/// Floor below which a partial grant is not worth starting.
double MinGrant(const ArbiterOptions& options, double requested) {
  return std::max(1.0, std::min(requested,
                                options.min_grant_fraction * requested));
}

// ---------------------------------------------------------------------------
// kFifoGang — the scheduler's historical strict-FIFO gang admission,
// reproduced through the arbiter interface so the baseline and the new
// policies run on exactly the same machinery.
class FifoGangArbiter final : public PolicyArbiter {
 public:
  FifoGangArbiter(ArbiterOptions options, PccBeliefs beliefs)
      : PolicyArbiter(std::move(options), std::move(beliefs)) {}

  void Reset(const SchedulerConfig&, const std::vector<Submission>&) override {
  }

  std::vector<TokenGrant> Arbitrate(const ArbitrationContext& ctx) override {
    std::vector<TokenGrant> grants;
    double remaining = ctx.free_tokens;
    for (const PendingJob& pending : ctx.pending) {
      double request = pending.submission->requested_tokens;
      // Head-of-line blocking: the first job that does not fit stops
      // admission entirely (no backfilling).
      if (request > remaining + kEps) break;
      grants.push_back(TokenGrant{pending.index, request});
      remaining -= request;
    }
    return grants;
  }
};

// ---------------------------------------------------------------------------
// kWelfareMax — greedy water-filling on PCC marginal gains.
class WelfareMaxArbiter final : public PolicyArbiter {
 public:
  WelfareMaxArbiter(ArbiterOptions options, PccBeliefs beliefs)
      : PolicyArbiter(std::move(options), std::move(beliefs)) {}

  void Reset(const SchedulerConfig&, const std::vector<Submission>&) override {
  }

  std::vector<TokenGrant> Arbitrate(const ArbitrationContext& ctx) override {
    size_t n = ctx.pending.size();
    if (n == 0) return {};
    std::vector<double> cap(n);
    std::vector<double> seed(n);
    std::vector<double> grant(n, 0.0);
    // Seed order: highest predicted throughput at entry grant first. A
    // whole job is the unit of admission, so seeding ranks jobs by the
    // welfare they contribute the moment they start.
    std::vector<size_t> by_value(n);
    std::vector<double> seed_value(n);
    for (size_t i = 0; i < n; ++i) {
      const Submission& sub = *ctx.pending[i].submission;
      cap[i] = sub.requested_tokens;
      seed[i] = MinGrant(options_, cap[i]);
      seed_value[i] = 1.0 / PredictRuntime(sub, seed[i]);
      by_value[i] = i;
    }
    std::stable_sort(by_value.begin(), by_value.end(),
                     [&](size_t a, size_t b) {
                       if (seed_value[a] != seed_value[b]) {
                         return seed_value[a] > seed_value[b];
                       }
                       return a < b;  // Ties: arrival order.
                     });
    double remaining = ctx.free_tokens;
    for (size_t i : by_value) {
      if (seed[i] <= remaining + kEps) {
        grant[i] = seed[i];
        remaining -= seed[i];
      }
    }
    // Water-fill the rest one quantum at a time toward the job whose
    // predicted throughput gains the most from it.
    struct Step {
      double gain;
      size_t pos;
    };
    auto worse = [](const Step& a, const Step& b) {
      if (a.gain != b.gain) return a.gain < b.gain;
      return a.pos > b.pos;  // Ties: arrival order wins.
    };
    std::priority_queue<Step, std::vector<Step>, decltype(worse)> heap(worse);
    auto marginal_gain = [&](size_t i) {
      const Submission& sub = *ctx.pending[i].submission;
      double step = std::min(options_.token_quantum, cap[i] - grant[i]);
      if (step <= kEps) return 0.0;
      return 1.0 / PredictRuntime(sub, grant[i] + step) -
             1.0 / PredictRuntime(sub, grant[i]);
    };
    for (size_t i = 0; i < n; ++i) {
      if (grant[i] > 0.0 && cap[i] - grant[i] > kEps) {
        double gain = marginal_gain(i);
        if (gain > 0.0) heap.push(Step{gain, i});
      }
    }
    while (remaining > kEps && !heap.empty()) {
      Step best = heap.top();
      heap.pop();
      size_t i = best.pos;
      double step =
          std::min({options_.token_quantum, cap[i] - grant[i], remaining});
      if (step <= kEps) continue;
      grant[i] += step;
      remaining -= step;
      if (cap[i] - grant[i] > kEps) {
        double gain = marginal_gain(i);
        if (gain > 0.0) heap.push(Step{gain, i});
      }
    }
    std::vector<TokenGrant> grants;
    for (size_t i = 0; i < n; ++i) {
      if (grant[i] > 0.0) {
        grants.push_back(TokenGrant{ctx.pending[i].index, grant[i]});
      }
    }
    return grants;
  }
};

// ---------------------------------------------------------------------------
// kMaxMinFair — progressive filling across tenants with demand caps.
class MaxMinFairArbiter final : public PolicyArbiter {
 public:
  MaxMinFairArbiter(ArbiterOptions options, PccBeliefs beliefs)
      : PolicyArbiter(std::move(options), std::move(beliefs)) {}

  void Reset(const SchedulerConfig&, const std::vector<Submission>&) override {
  }

  std::vector<TokenGrant> Arbitrate(const ArbitrationContext& ctx) override {
    if (ctx.pending.empty()) return {};
    // Current holdings per tenant: fairness levels count what a tenant
    // already occupies, so a tenant with running jobs ranks behind an
    // idle one.
    std::map<int64_t, double> usage;
    for (const RunningJob& running : ctx.running) {
      usage[running.tenant_id] += running.granted_tokens;
    }
    std::map<int64_t, double> demand;
    for (const PendingJob& pending : ctx.pending) {
      demand[pending.submission->tenant_id] +=
          pending.submission->requested_tokens;
    }
    // Progressive filling in quanta: always raise the tenant with the
    // lowest level (holdings + new budget) until demands are met or the
    // pool is dry. Ties break toward the smaller tenant id.
    std::map<int64_t, double> budget;
    double remaining = ctx.free_tokens;
    while (remaining > kEps) {
      int64_t best_tenant = 0;
      double best_level = 0.0;
      bool found = false;
      for (const auto& [tenant, tenant_demand] : demand) {
        if (tenant_demand <= kEps) continue;
        double level = usage[tenant] + budget[tenant];
        if (!found || level < best_level - kEps) {
          best_tenant = tenant;
          best_level = level;
          found = true;
        }
      }
      if (!found) break;
      double step =
          std::min({options_.token_quantum, demand[best_tenant], remaining});
      budget[best_tenant] += step;
      demand[best_tenant] -= step;
      remaining -= step;
    }
    // Each tenant spends its budget on its own jobs FIFO: full requests
    // first, then at most one partial grant above the floor.
    std::vector<TokenGrant> grants;
    double unspent = remaining;
    for (const PendingJob& pending : ctx.pending) {
      const Submission& sub = *pending.submission;
      double& tenant_budget = budget[sub.tenant_id];
      double request = sub.requested_tokens;
      if (request <= tenant_budget + kEps) {
        grants.push_back(TokenGrant{pending.index, request});
        tenant_budget -= request;
      } else if (tenant_budget >= MinGrant(options_, request)) {
        grants.push_back(TokenGrant{pending.index, tenant_budget});
        tenant_budget = 0.0;
      }
    }
    // Work conservation: tokens the budgets could not place (floors, or
    // demands smaller than the pool) backfill remaining jobs FIFO.
    for (const auto& [tenant, tenant_budget] : budget) {
      unspent += tenant_budget;
      (void)tenant;
    }
    if (unspent > kEps) {
      for (const PendingJob& pending : ctx.pending) {
        bool already = false;
        for (const TokenGrant& grant : grants) {
          if (grant.index == pending.index) {
            already = true;
            break;
          }
        }
        if (already) continue;
        double request = pending.submission->requested_tokens;
        if (request <= unspent + kEps) {
          grants.push_back(TokenGrant{pending.index, request});
          unspent -= request;
        }
      }
    }
    return grants;
  }
};

// ---------------------------------------------------------------------------
// kKarma — per-tenant credit accounts with bounded debt.
class KarmaArbiter final : public PolicyArbiter {
 public:
  KarmaArbiter(ArbiterOptions options, PccBeliefs beliefs)
      : PolicyArbiter(std::move(options), std::move(beliefs)) {}

  void Reset(const SchedulerConfig&,
             const std::vector<Submission>& submissions) override {
    credits_.clear();
    for (const Submission& submission : submissions) {
      credits_[submission.tenant_id] = options_.karma_initial_credits;
    }
    expected_credit_sum_ =
        options_.karma_initial_credits * static_cast<double>(credits_.size());
  }

  std::vector<TokenGrant> Arbitrate(const ArbitrationContext& ctx) override {
    if (ctx.pending.empty() || credits_.empty()) return {};
    double fair_share =
        ctx.cluster_tokens / static_cast<double>(credits_.size());
    std::map<int64_t, double> usage;
    for (const RunningJob& running : ctx.running) {
      usage[running.tenant_id] += running.granted_tokens;
    }
    double remaining = ctx.free_tokens;
    std::vector<TokenGrant> grants;
    for (const PendingJob& pending : ctx.pending) {
      const Submission& sub = *pending.submission;
      double request = sub.requested_tokens;
      double top = std::min(request, remaining);
      double floor = MinGrant(options_, request);
      if (top < floor - kEps) continue;
      // Scan grant candidates from the full request downward on a
      // bounded grid: the largest affordable grant wins. Usage within
      // the fair share costs nothing; the over-share part costs
      // price x over x predicted runtime, payable from credits down to
      // -max_debt.
      double tenant_usage = usage[sub.tenant_id];
      double step = std::max(options_.token_quantum, (top - floor) / 64.0);
      double granted = 0.0;
      double cost = 0.0;
      for (double g = top; g >= floor - kEps; g -= step) {
        double candidate = std::max(g, floor);
        double over = tenant_usage + candidate -
                      std::max(tenant_usage, fair_share);
        double candidate_cost =
            over <= 0.0 ? 0.0
                        : over * PredictRuntime(sub, candidate) *
                              options_.karma_price;
        if (credits_[sub.tenant_id] - candidate_cost >=
            -options_.karma_max_debt - kEps) {
          granted = candidate;
          cost = candidate_cost;
          break;
        }
      }
      if (granted <= 0.0) continue;
      if (cost > 0.0) {
        credits_[sub.tenant_id] -= cost;
        DistributeToDonors(cost, sub.tenant_id, fair_share, usage);
      }
      usage[sub.tenant_id] += granted;
      remaining -= granted;
      grants.push_back(TokenGrant{pending.index, granted});
      TASQ_DCHECK_LE(std::fabs(CreditSum() - expected_credit_sum_),
                     1e-6 * std::max(1.0, std::fabs(expected_credit_sum_)));
    }
    return grants;
  }

 private:
  double CreditSum() const {
    double sum = 0.0;
    for (const auto& [tenant, balance] : credits_) {
      sum += balance;
      (void)tenant;
    }
    return sum;
  }

  /// Pays `cost` credits to the tenants currently below their fair share,
  /// proportional to their headroom — the zero-sum transfer that keeps
  /// total credits constant (Karma's donate/borrow ledger).
  void DistributeToDonors(double cost, int64_t payer, double fair_share,
                          const std::map<int64_t, double>& usage) {
    double total_headroom = 0.0;
    for (const auto& [tenant, balance] : credits_) {
      if (tenant == payer) continue;
      auto it = usage.find(tenant);
      double used = it == usage.end() ? 0.0 : it->second;
      total_headroom += std::max(0.0, fair_share - used);
      (void)balance;
    }
    if (total_headroom > kEps) {
      for (auto& [tenant, balance] : credits_) {
        if (tenant == payer) continue;
        auto it = usage.find(tenant);
        double used = it == usage.end() ? 0.0 : it->second;
        balance += cost * std::max(0.0, fair_share - used) / total_headroom;
      }
      return;
    }
    // Every other tenant is at or over its share (possible only through
    // float dust, since the payer bursting implies aggregate headroom):
    // split evenly so the ledger still balances.
    double others = static_cast<double>(credits_.size()) - 1.0;
    if (others <= 0.0) return;
    for (auto& [tenant, balance] : credits_) {
      if (tenant != payer) balance += cost / others;
    }
  }

  double expected_credit_sum_ = 0.0;
};

}  // namespace

std::unique_ptr<PolicyArbiter> MakeArbiter(const ArbiterOptions& options,
                                           PccBeliefs beliefs) {
  switch (options.policy) {
    case ArbiterPolicy::kFifoGang:
      return std::make_unique<FifoGangArbiter>(options, std::move(beliefs));
    case ArbiterPolicy::kWelfareMax:
      return std::make_unique<WelfareMaxArbiter>(options, std::move(beliefs));
    case ArbiterPolicy::kMaxMinFair:
      return std::make_unique<MaxMinFairArbiter>(options, std::move(beliefs));
    case ArbiterPolicy::kKarma:
      return std::make_unique<KarmaArbiter>(options, std::move(beliefs));
  }
  TASQ_CHECK(false);  // Unknown arbiter policy.
  return nullptr;
}

PccBeliefs BeliefsFromPlans(const std::vector<Submission>& submissions) {
  PccBeliefs beliefs;
  for (const Submission& submission : submissions) {
    std::vector<PccSample> samples;
    for (double tokens = 1.0; tokens <= 1024.0; tokens *= 2.0) {
      samples.push_back(
          PccSample{tokens, AnalyticRuntime(submission.plan, tokens)});
    }
    Result<PowerLawFit> fit = FitPowerLaw(samples);
    if (fit.ok() && fit.value().pcc.IsMonotoneNonIncreasing()) {
      beliefs[submission.job_id] = fit.value().pcc;
    }
  }
  return beliefs;
}

std::vector<Submission> WithInflatedRequests(
    std::vector<Submission> submissions, int64_t tenant_id, double factor,
    double cap) {
  for (Submission& submission : submissions) {
    if (submission.tenant_id != tenant_id) continue;
    submission.requested_tokens =
        std::clamp(submission.requested_tokens * factor, 1.0, cap);
  }
  return submissions;
}

std::string FormatTrace(const std::vector<ScheduledJob>& trace) {
  std::string out;
  out.reserve(trace.size() * 96);
  char line[192];
  for (const ScheduledJob& job : trace) {
    std::snprintf(line, sizeof(line),
                  "job=%lld tenant=%lld arrive=%.6f start=%.6f finish=%.6f "
                  "req=%.3f grant=%.3f\n",
                  static_cast<long long>(job.job_id),
                  static_cast<long long>(job.tenant_id), job.arrival_seconds,
                  job.start_seconds, job.finish_seconds, job.requested_tokens,
                  job.granted_tokens);
    out += line;
  }
  return out;
}

TenantMetrics ComputeTenantMetrics(const std::vector<ScheduledJob>& trace,
                                   double cluster_tokens) {
  TenantMetrics metrics;
  if (trace.empty() || cluster_tokens <= 0.0) return metrics;
  double first_arrival = 1e300;
  double last_finish = 0.0;
  double served_token_seconds = 0.0;
  std::vector<double> waits;
  std::vector<double> latencies;
  std::map<int64_t, std::vector<double>> tenant_latencies;
  for (const ScheduledJob& job : trace) {
    first_arrival = std::min(first_arrival, job.arrival_seconds);
    last_finish = std::max(last_finish, job.finish_seconds);
    double held =
        job.granted_tokens > 0.0 ? job.granted_tokens : job.requested_tokens;
    double service = held * job.runtime_seconds;
    served_token_seconds += service;
    metrics.tenant_service_token_seconds[job.tenant_id] += service;
    waits.push_back(job.wait_seconds());
    double latency = job.finish_seconds - job.arrival_seconds;
    latencies.push_back(latency);
    tenant_latencies[job.tenant_id].push_back(latency);
  }
  double span = std::max(0.0, last_finish - first_arrival);
  if (span > 0.0) {
    metrics.utilization = served_token_seconds / (cluster_tokens * span);
  }
  double sum = 0.0;
  double sum_squares = 0.0;
  for (const auto& [tenant, service] : metrics.tenant_service_token_seconds) {
    sum += service;
    sum_squares += service * service;
    (void)tenant;
  }
  double n = static_cast<double>(metrics.tenant_service_token_seconds.size());
  // All-zero service means nothing ran; call that perfectly fair rather
  // than dividing 0/0.
  metrics.jain_fairness =
      sum_squares > 0.0 ? (sum * sum) / (n * sum_squares) : 1.0;
  metrics.p95_wait_seconds = Quantile(waits, 0.95);
  metrics.mean_latency_seconds = Mean(latencies);
  for (const auto& [tenant, values] : tenant_latencies) {
    metrics.tenant_mean_latency_seconds[tenant] = Mean(values);
  }
  return metrics;
}

double LiarsGain(const TenantMetrics& honest, const TenantMetrics& lying,
                 int64_t tenant_id) {
  auto honest_it = honest.tenant_mean_latency_seconds.find(tenant_id);
  auto lying_it = lying.tenant_mean_latency_seconds.find(tenant_id);
  if (honest_it == honest.tenant_mean_latency_seconds.end() ||
      lying_it == lying.tenant_mean_latency_seconds.end()) {
    return 0.0;
  }
  if (honest_it->second <= 0.0) return 0.0;
  return (honest_it->second - lying_it->second) / honest_it->second;
}

}  // namespace tasq
