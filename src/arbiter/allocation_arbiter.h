#ifndef TASQ_ARBITER_ALLOCATION_ARBITER_H_
#define TASQ_ARBITER_ALLOCATION_ARBITER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pcc/pcc.h"
#include "simcluster/cluster_scheduler.h"

namespace tasq {

/// Multi-tenant allocation policies over the shared token pool (ROADMAP
/// item 2). The paper optimizes one job's request in isolation; these
/// policies solve the *global* problem at every scheduling event: which
/// pending jobs start now, and at what grant, given the jobs' predicted
/// PCCs and a finite pool shared by competing tenants.
enum class ArbiterPolicy : int {
  /// Strict FIFO gang admission at the full request — the scheduler's
  /// historical behavior, kept as the baseline.
  kFifoGang = 0,
  /// Maximize total predicted throughput: seed jobs by their predicted
  /// throughput at entry grant, then water-fill the pool one quantum at a
  /// time toward the highest marginal gain (d(1/runtime)/d(tokens) from
  /// the PCC). Deliberately strategy-naive: a tenant that inflates its
  /// request raises its grant cap and entry grant, so lying pays.
  kWelfareMax,
  /// Max-min fairness with demand caps: progressive filling raises the
  /// lowest-usage tenant first until demands are met or the pool is dry;
  /// each tenant spends its share on its own jobs FIFO.
  kMaxMinFair,
  /// Karma-style credit accounts (Vuppalapati et al.): usage within the
  /// per-tenant fair share is free; bursting beyond it costs credits
  /// (price x over-share token-seconds, predicted from the PCC) paid to
  /// the tenants currently donating headroom. Debt is bounded, so a
  /// persistent liar goes broke and collapses back to its fair share.
  kKarma,
};

inline constexpr int kArbiterPolicyCount = 4;

/// Short lowercase slug ("fifo", "welfare", "maxmin", "karma") used in
/// tables and BENCH_arbiter.json keys.
const char* ArbiterPolicyName(ArbiterPolicy policy);

/// Tuning knobs shared by the policies.
struct ArbiterOptions {
  ArbiterPolicy policy = ArbiterPolicy::kFifoGang;
  /// Water-filling step for the partial-grant policies.
  double token_quantum = 1.0;
  /// A partial grant below max(1, fraction * request) is considered not
  /// worth starting; the job waits instead.
  double min_grant_fraction = 0.25;
  /// Karma: initial per-tenant credit balance (token-second units).
  double karma_initial_credits = 5000.0;
  /// Karma: how far below zero a tenant's balance may go.
  double karma_max_debt = 0.0;
  /// Karma: credits charged per over-fair-share token-second.
  double karma_price = 1.0;
};

/// The arbiter's belief about each job's performance characteristic
/// curve, keyed by job_id. Jobs without an entry fall back to the plan's
/// analytic bound max(critical_path, work / tokens).
using PccBeliefs = std::map<int64_t, PowerLawPcc>;

/// Base of all policy implementations. Exposes the Karma credit accounts
/// (empty for the other policies) so tests can assert credit
/// conservation and debt bounds.
class PolicyArbiter : public AllocationArbiter {
 public:
  const ArbiterOptions& options() const { return options_; }
  /// Per-tenant credit balances; populated by kKarma only.
  const std::map<int64_t, double>& tenant_credits() const { return credits_; }

 protected:
  PolicyArbiter(ArbiterOptions options, PccBeliefs beliefs);

  /// Predicted runtime of `submission` at `tokens`: the job's PCC belief
  /// when one is known and monotone, else the plan's analytic bound.
  double PredictRuntime(const Submission& submission, double tokens) const;

  ArbiterOptions options_;
  PccBeliefs beliefs_;
  std::map<int64_t, double> credits_;
};

/// Builds the arbiter for `options.policy`.
std::unique_ptr<PolicyArbiter> MakeArbiter(const ArbiterOptions& options,
                                           PccBeliefs beliefs);

/// Fits a power-law PCC belief per submission from the plan's analytic
/// runtime bound max(critical_path, work / tokens) sampled at doubling
/// token counts — the stand-in for a trained TASQ model when arbitrating
/// synthetic traces. Jobs whose fit diverges are simply omitted (the
/// arbiter falls back to the analytic bound itself).
PccBeliefs BeliefsFromPlans(const std::vector<Submission>& submissions);

/// Returns `submissions` with tenant `tenant_id`'s requests multiplied by
/// `factor` and clamped to [1, cap] — the misreporting-tenant model used
/// to measure strategy-proofness.
std::vector<Submission> WithInflatedRequests(
    std::vector<Submission> submissions, int64_t tenant_id, double factor,
    double cap);

/// Canonical one-line-per-job text rendering of a trace (submission
/// order, fixed precision). Byte-identical renderings are the
/// determinism and golden-test currency.
std::string FormatTrace(const std::vector<ScheduledJob>& trace);

/// Cross-tenant outcome metrics of one scheduled trace.
struct TenantMetrics {
  /// Granted token-seconds over pool x span (how busy the pool was).
  double utilization = 0.0;
  /// Jain's fairness index over per-tenant granted token-seconds
  /// (1 = perfectly equal service).
  double jain_fairness = 0.0;
  double p95_wait_seconds = 0.0;
  double mean_latency_seconds = 0.0;
  std::map<int64_t, double> tenant_service_token_seconds;
  std::map<int64_t, double> tenant_mean_latency_seconds;
};

TenantMetrics ComputeTenantMetrics(const std::vector<ScheduledJob>& trace,
                                   double cluster_tokens);

/// Relative mean-latency advantage tenant `tenant_id` gained by lying:
/// (honest - lying) / honest of its mean end-to-end latency. Positive
/// means misreporting paid off; a strategy-proof policy keeps this near
/// zero. Returns 0 when the tenant is absent or has no latency.
double LiarsGain(const TenantMetrics& honest, const TenantMetrics& lying,
                 int64_t tenant_id);

}  // namespace tasq

#endif  // TASQ_ARBITER_ALLOCATION_ARBITER_H_
