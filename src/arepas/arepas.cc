#include "arepas/arepas.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace tasq {

Result<Skyline> Arepas::SimulateSkyline(const Skyline& original,
                                        double new_allocation) const {
  if (original.duration_seconds() == 0) {
    return Status::InvalidArgument("cannot simulate an empty skyline");
  }
  if (new_allocation <= 0.0) {
    return Status::InvalidArgument("new allocation must be positive");
  }
  const auto& values = original.values();
  std::vector<double> simulated;
  simulated.reserve(values.size());
  for (const SkylineSection& section : SplitSections(original, new_allocation)) {
    if (!section.over_threshold) {
      // Under-allocated section: copied without change (Figure 6).
      simulated.insert(simulated.end(), values.begin() + section.start,
                       values.begin() + section.end);
      continue;
    }
    // Over-allocated section: flatten at the new allocation and lengthen to
    // preserve its area (Figure 7).
    double area = 0.0;
    for (size_t t = section.start; t < section.end; ++t) area += values[t];
    double exact_length = area / new_allocation;
    size_t new_length = 0;
    switch (options_.rounding) {
      case AreaRounding::kExact:
      case AreaRounding::kCeil:
        new_length = static_cast<size_t>(std::ceil(exact_length));
        break;
      case AreaRounding::kFloor:
        new_length = static_cast<size_t>(std::floor(exact_length));
        break;
    }
    new_length = std::max<size_t>(new_length, 1);
    for (size_t i = 0; i + 1 < new_length; ++i) {
      simulated.push_back(new_allocation);
    }
    double last = new_allocation;
    if (options_.rounding == AreaRounding::kExact) {
      last = area - new_allocation * static_cast<double>(new_length - 1);
      last = std::clamp(last, 0.0, new_allocation);
    }
    simulated.push_back(last);
  }
  Skyline result(std::move(simulated));
  // The simulated skyline must respect the new cap: copied under-threshold
  // ticks are <= new_allocation by SplitSections' definition, flattened
  // ticks equal it, and the exact-rounding remainder is clamped into it.
  for (double v : result.values()) {
    TASQ_DCHECK_LE(v, new_allocation * (1.0 + 1e-12));
  }
  // Area conservation (paper §AREPAS, Figure 12): exact rounding preserves
  // the skyline's area up to float accumulation; ceil/floor rounding trade
  // area for whole-tick lengths, so only kExact is checked.
  if (options_.rounding == AreaRounding::kExact) {
    TASQ_DCHECK_LE(std::fabs(result.Area() - original.Area()),
                   1e-6 * std::max(1.0, original.Area()));
  }
  return result;
}

Result<double> Arepas::SimulateRunTimeSeconds(const Skyline& original,
                                              double new_allocation) const {
  Result<Skyline> simulated = SimulateSkyline(original, new_allocation);
  if (!simulated.ok()) return simulated.status();
  return static_cast<double>(simulated.value().duration_seconds());
}

Result<std::vector<PccSample>> SamplePcc(const Skyline& original,
                                         const std::vector<double>& token_grid,
                                         const ArepasOptions& options) {
  Arepas arepas(options);
  std::vector<PccSample> samples;
  samples.reserve(token_grid.size());
  for (double tokens : token_grid) {
    Result<double> runtime = arepas.SimulateRunTimeSeconds(original, tokens);
    if (!runtime.ok()) return runtime.status();
    samples.push_back(PccSample{tokens, runtime.value()});
  }
  return samples;
}

std::vector<double> LinearTokenGrid(double lo, double hi, size_t count) {
  std::vector<double> grid;
  if (count < 2 || lo <= 0.0 || hi < lo) return grid;
  grid.reserve(count);
  double step = (hi - lo) / static_cast<double>(count - 1);
  for (size_t i = 0; i < count; ++i) {
    grid.push_back(lo + step * static_cast<double>(i));
  }
  return grid;
}

double AreaDeviationPercent(const Skyline& a, const Skyline& b) {
  double area_a = a.Area();
  double area_b = b.Area();
  double mean = (area_a + area_b) / 2.0;
  // num: float-eq relative error degenerates only at exactly zero mean
  if (mean == 0.0) return 0.0;
  return std::fabs(area_a - area_b) / mean * 100.0;
}

std::vector<double> PairwiseAreaDeviations(
    const std::vector<Skyline>& executions) {
  std::vector<double> deviations;
  for (size_t i = 0; i < executions.size(); ++i) {
    for (size_t j = i + 1; j < executions.size(); ++j) {
      deviations.push_back(AreaDeviationPercent(executions[i], executions[j]));
    }
  }
  return deviations;
}

int CountAreaOutliers(const std::vector<Skyline>& executions,
                      double tolerance_percent) {
  if (executions.size() < 2) return 0;
  int outliers = 0;
  for (size_t i = 0; i < executions.size(); ++i) {
    std::vector<double> deviations;
    deviations.reserve(executions.size() - 1);
    for (size_t j = 0; j < executions.size(); ++j) {
      if (j == i) continue;
      deviations.push_back(AreaDeviationPercent(executions[i], executions[j]));
    }
    if (Median(deviations) > tolerance_percent) ++outliers;
  }
  return outliers;
}

}  // namespace tasq
