#ifndef TASQ_AREPAS_AREPAS_H_
#define TASQ_AREPAS_AREPAS_H_

#include <vector>

#include "common/status.h"
#include "pcc/pcc.h"
#include "skyline/skyline.h"

namespace tasq {

/// How AREPAS rounds the stretched length of an over-allocation section.
enum class AreaRounding {
  /// ceil(area / allocation) ticks; the final tick carries the fractional
  /// remainder so the section area is preserved *exactly*. This is the
  /// default and what the simulator's "area preserving" name promises.
  kExact,
  /// floor(area / allocation) ticks, all at the allocation level — the
  /// literal pseudocode of Algorithm 1 (drops up to one tick of area).
  kFloor,
  /// ceil(area / allocation) ticks, all at the allocation level (adds up to
  /// one tick of area) — the paper's "right-nearest integer approximation".
  kCeil,
};

/// Options for AREPAS simulation.
struct ArepasOptions {
  AreaRounding rounding = AreaRounding::kExact;
};

/// AREPAS — Area Preserving Allocation Simulator (paper §3.2, Algorithm 1).
///
/// Given a job's observed resource-consumption skyline, synthesizes the
/// skyline (and hence the run time) the same job would have had under a
/// lower token allocation, assuming the total amount of work (the area under
/// the skyline, in token-seconds) stays constant:
///
///  * sections of the skyline at-or-under the new allocation are copied
///    unchanged (Figure 6);
///  * sections over the new allocation are flattened to the allocation level
///    and lengthened so their area is preserved (Figure 7).
///
/// The simulation is deterministic: no stochastic cluster behavior is
/// modeled. Simulating at an allocation at or above the skyline peak returns
/// the skyline unchanged.
///
/// Note on monotonicity: simulated run time is non-increasing in the
/// allocation up to 1-second quantization. Raising the allocation can split
/// one over-section into two (a tick that was over the old threshold falls
/// under the new one), and each stretched section rounds up to whole ticks —
/// so the run time can locally *increase by at most one tick per section
/// split*. The power-law fit downstream smooths over this quantization.
class Arepas {
 public:
  explicit Arepas(ArepasOptions options = {}) : options_(options) {}

  /// Simulates `original` under `new_allocation` tokens. Fails if the
  /// allocation is not strictly positive or the skyline is empty.
  TASQ_NODISCARD Result<Skyline> SimulateSkyline(const Skyline& original,
                                  double new_allocation) const;

  /// Run time (seconds) of the simulated skyline — the value used as an
  /// augmented training label.
  TASQ_NODISCARD Result<double> SimulateRunTimeSeconds(const Skyline& original,
                                        double new_allocation) const;

  const ArepasOptions& options() const { return options_; }

 private:
  ArepasOptions options_;
};

/// Samples the PCC of the job behind `original` over `token_grid` using
/// AREPAS. Grid values above the skyline peak yield the original run time
/// (extra tokens beyond the peak cannot speed the job up under the AREPAS
/// model). Fails on an empty skyline or non-positive grid entries.
TASQ_NODISCARD Result<std::vector<PccSample>> SamplePcc(const Skyline& original,
                                         const std::vector<double>& token_grid,
                                         const ArepasOptions& options = {});

/// Builds a linear token grid with `count` points spanning [lo, hi]
/// inclusive. Requires count >= 2 and 0 < lo <= hi (or returns empty).
std::vector<double> LinearTokenGrid(double lo, double hi, size_t count);

/// Symmetric percent difference in area between two skylines:
/// |a1 - a2| / ((a1 + a2) / 2) * 100. Returns 0 when both areas are zero.
double AreaDeviationPercent(const Skyline& a, const Skyline& b);

/// All C(n,2) pairwise area deviations among `executions` — the population
/// behind the Figure-12 tolerance CDF.
std::vector<double> PairwiseAreaDeviations(
    const std::vector<Skyline>& executions);

/// Number of executions that violate the constant-area assumption at
/// `tolerance_percent`: an execution is an outlier when the *median* of its
/// area deviations against the other executions exceeds the tolerance
/// (robust to one bad partner). With fewer than two executions there are no
/// outliers.
int CountAreaOutliers(const std::vector<Skyline>& executions,
                      double tolerance_percent);

}  // namespace tasq

#endif  // TASQ_AREPAS_AREPAS_H_
