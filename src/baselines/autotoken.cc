#include "baselines/autotoken.h"

#include <algorithm>
#include <cmath>

#include "common/fmath.h"
#include "common/stats.h"

namespace tasq {

double AutoToken::DataSizeFeature(const Job& job) {
  double cost = 0.0;
  if (!job.graph.operators.empty()) {
    cost = job.graph.operators.back().features.cost_total;
  }
  return CheckedLog1p(std::max(0.0, cost));
}

Status AutoToken::Train(const std::vector<ObservedJob>& observed) {
  if (observed.empty()) {
    return Status::InvalidArgument("cannot train AutoToken on zero jobs");
  }
  std::map<int, std::vector<const ObservedJob*>> groups;
  for (const ObservedJob& entry : observed) {
    if (entry.job.template_id >= 0) {
      groups[entry.job.template_id].push_back(&entry);
    }
  }
  models_.clear();
  for (const auto& [signature, members] : groups) {
    if (static_cast<int>(members.size()) < options_.min_history) continue;
    std::vector<double> x;
    std::vector<double> y;
    for (const ObservedJob* entry : members) {
      x.push_back(DataSizeFeature(entry->job));
      y.push_back(entry->peak_tokens);
    }
    GroupModel model;
    model.mean_peak = std::max(1.0, Mean(y));
    LineFit fit = FitLine(x, y);
    if (fit.ok && fit.r2 > 0.1) {
      model.slope = fit.slope;
      model.intercept = fit.intercept;
      model.use_regression = true;
    }
    models_[signature] = model;
  }
  trained_ = true;
  return Status::Ok();
}

Result<double> AutoToken::PredictPeakTokens(const Job& job) const {
  if (!trained_) {
    return Status::FailedPrecondition("AutoToken has not been trained");
  }
  if (job.template_id < 0) {
    return Status::NotFound("AutoToken does not cover ad-hoc jobs");
  }
  auto it = models_.find(job.template_id);
  if (it == models_.end()) {
    return Status::NotFound("job group has insufficient history");
  }
  const GroupModel& model = it->second;
  double prediction = model.use_regression
                          ? model.intercept +
                                model.slope * DataSizeFeature(job)
                          : model.mean_peak;
  if (!std::isfinite(prediction) || prediction < 1.0) {
    prediction = model.mean_peak;
  }
  return std::max(1.0, prediction);
}

}  // namespace tasq
