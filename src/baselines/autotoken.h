#ifndef TASQ_BASELINES_AUTOTOKEN_H_
#define TASQ_BASELINES_AUTOTOKEN_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "tasq/dataset.h"

namespace tasq {

/// The AutoToken baseline (paper §6.2): group recurring jobs by signature
/// and train an individual off-the-shelf model per group that predicts the
/// group's *peak* token allocation from compile-time job metadata (here: a
/// per-group linear regression of peak tokens on the log total estimated
/// cost, the data-size proxy). Faithfully limited like the original:
///  * covers only recurring jobs with enough history (no ad-hoc coverage);
///  * predicts a single peak number — no run-time / what-if predictions.
class AutoToken {
 public:
  struct Options {
    /// Minimum prior runs a group needs before its model is trained.
    int min_history = 3;
  };

  AutoToken() : AutoToken(Options()) {}
  explicit AutoToken(Options options) : options_(options) {}

  /// Trains the per-group models from observed historical runs.
  TASQ_NODISCARD Status Train(const std::vector<ObservedJob>& observed);

  /// Predicts the peak-token allocation for a job. NotFound for ad-hoc
  /// jobs or groups with insufficient history (the baseline's documented
  /// coverage gap).
  TASQ_NODISCARD Result<double> PredictPeakTokens(const Job& job) const;

  size_t num_groups() const { return models_.size(); }
  bool trained() const { return trained_; }

 private:
  struct GroupModel {
    /// peak = intercept + slope * log(cost_total).
    double slope = 0.0;
    double intercept = 0.0;
    /// Fallback when the regression is degenerate: the mean peak.
    double mean_peak = 1.0;
    bool use_regression = false;
  };

  static double DataSizeFeature(const Job& job);

  Options options_;
  bool trained_ = false;
  std::map<int, GroupModel> models_;
};

}  // namespace tasq

#endif  // TASQ_BASELINES_AUTOTOKEN_H_
