#include "baselines/stage_simulators.h"

#include <algorithm>
#include <cmath>

namespace tasq {

Status StageHistory::Record(const Job& job) {
  if (job.template_id < 0) {
    return Status::InvalidArgument(
        "ad-hoc jobs have no recurring key to record history under");
  }
  Status valid = job.plan.Validate();
  if (!valid.ok()) return valid;
  JobHistoryStats& stats = stats_[job.template_id];
  stats.job_key = job.template_id;
  if (stats.stages.size() < job.plan.stages.size()) {
    stats.stages.resize(job.plan.stages.size());
  }
  // Running mean over recorded executions, stage by stage.
  double n = static_cast<double>(stats.runs_observed);
  for (size_t s = 0; s < job.plan.stages.size(); ++s) {
    StageStats& stage = stats.stages[s];
    const StageSpec& run = job.plan.stages[s];
    stage.mean_tasks =
        (stage.mean_tasks * n + static_cast<double>(run.num_tasks)) / (n + 1);
    stage.mean_task_seconds =
        (stage.mean_task_seconds * n + run.task_duration_seconds) / (n + 1);
  }
  ++stats.runs_observed;
  return Status::Ok();
}

Result<JobHistoryStats> StageHistory::Lookup(const Job& job) const {
  if (job.template_id < 0) {
    return Status::NotFound("ad-hoc job has no history");
  }
  auto it = stats_.find(job.template_id);
  if (it == stats_.end()) {
    return Status::NotFound("no prior runs recorded for this job");
  }
  return it->second;
}

Result<double> AmdahlSimulateRunTime(const JobHistoryStats& stats,
                                     double tokens) {
  if (tokens < 1.0) {
    return Status::InvalidArgument("token count must be at least 1");
  }
  if (stats.stages.empty()) {
    return Status::InvalidArgument("history has no stage statistics");
  }
  double total = 0.0;
  for (const StageStats& stage : stats.stages) {
    // S: the critical path of the stage (one task's duration).
    // P: the remaining (parallelizable) work.
    double serial = stage.mean_task_seconds;
    double parallel =
        std::max(0.0, (stage.mean_tasks - 1.0) * stage.mean_task_seconds);
    total += serial + parallel / tokens;
  }
  return total;
}

Result<double> JockeySimulateRunTime(const JobHistoryStats& stats,
                                     double tokens) {
  if (tokens < 1.0) {
    return Status::InvalidArgument("token count must be at least 1");
  }
  if (stats.stages.empty()) {
    return Status::InvalidArgument("history has no stage statistics");
  }
  double capacity = std::floor(tokens);
  double total = 0.0;
  for (const StageStats& stage : stats.stages) {
    double waves = std::ceil(std::max(1.0, stage.mean_tasks) / capacity);
    total += waves * stage.mean_task_seconds;
  }
  return total;
}

}  // namespace tasq
