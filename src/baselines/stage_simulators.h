#ifndef TASQ_BASELINES_STAGE_SIMULATORS_H_
#define TASQ_BASELINES_STAGE_SIMULATORS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "simcluster/cluster_simulator.h"
#include "workload/job_graph.h"

namespace tasq {

/// Per-stage statistics aggregated over prior runs of one job — what the
/// Jockey and Amdahl's-law simulators consume (paper §6.3: both "operate
/// at a stage-level granularity" and compute their parameters as
/// "aggregated statistics obtained from prior runs of the job").
struct StageStats {
  /// Mean observed task count.
  double mean_tasks = 0.0;
  /// Mean observed per-task duration (seconds).
  double mean_task_seconds = 0.0;
};

/// Aggregated prior-run statistics of one recurring job.
struct JobHistoryStats {
  int64_t job_key = 0;
  int runs_observed = 0;
  std::vector<StageStats> stages;
};

/// Builds per-stage statistics from prior executions of the same job
/// template. This substitutes for the production telemetry both baseline
/// simulators require; their key limitation — no estimate for jobs without
/// history — is preserved by construction.
class StageHistory {
 public:
  /// Records one executed run of a job (the plan carries the realized
  /// stage structure). Keyed by the job's template id; ad-hoc jobs
  /// (template -1) are not recordable, mirroring the baselines' inability
  /// to cover fresh jobs.
  TASQ_NODISCARD Status Record(const Job& job);

  /// Statistics for a job's template; NotFound for ad-hoc/unseen jobs.
  TASQ_NODISCARD Result<JobHistoryStats> Lookup(const Job& job) const;

  size_t num_templates() const { return stats_.size(); }

 private:
  std::map<int, JobHistoryStats> stats_;
};

/// The Amdahl's-law simulator of paper §6.3: each stage is split into a
/// serial part S (the critical path of one task) and a parallel part P;
/// the run time at N tokens is T(N) = sum_s (S_s + P_s / N).
/// Requires prior-run statistics; cannot score fresh jobs.
TASQ_NODISCARD Result<double> AmdahlSimulateRunTime(const JobHistoryStats& stats,
                                     double tokens);

/// The Jockey simulator of paper §6.3: stage-by-stage simulation using
/// prior-run task statistics — each stage runs ceil(tasks / N) waves of
/// its mean task duration, with stages serialized by the barrier DAG
/// (simplified to a chain over the recorded stage order, as Jockey's
/// C(progress, allocation) table is over completed work).
TASQ_NODISCARD Result<double> JockeySimulateRunTime(const JobHistoryStats& stats,
                                     double tokens);

}  // namespace tasq

#endif  // TASQ_BASELINES_STAGE_SIMULATORS_H_
