#ifndef TASQ_COMMON_ARENA_H_
#define TASQ_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace tasq {

/// Bump-pointer arena for request-scoped allocation (ROADMAP item 5: the
/// cold submit path allocated ~41 heap allocations/request before PR 9;
/// with the serving layer's BatchScratch arena-backed it pays a single
/// block refill in steady state, pinned by tests/hot_path_test.cc).
///
/// Lifetime model — enforced statically by scripts/tasq_own.py:
///
///   - Every pointer handed out by Alloc/New/NewObject/NewArray is valid
///     until the *owning arena's* next Reset() (or destruction). Storing
///     one into anything that outlives that Reset is the arena-escape
///     defect class; copy out or own the arena instead.
///   - Reset() is O(live blocks), not O(allocations): it rewinds the bump
///     pointer and *keeps* every block it ever grew, so a steady-state
///     request loop allocates zero heap after warmup. Destructors of
///     New<T>-placed objects are deliberately never run — New<T> is
///     restricted to trivially destructible T by static_assert
///     (arena-nontrivial-dtor is the analyzer backstop for types it
///     cannot see). NewObject<T> lifts that restriction by registering
///     the destructor to run, newest first, at Reset/destruction.
///   - Not thread-safe: one arena belongs to one logical request/batch
///     at a time (the serving drain loop owns its BatchScratch arena the
///     same way it owns the rest of the scratch).
///
/// The default block is 64 KiB; oversized requests get a dedicated block
/// (and are counted, so benchmarks can see sizing mistakes). Alignment
/// is per-allocation, defaulting to alignof(std::max_align_t).
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {
    TASQ_CHECK(block_bytes_ > 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { RunDtors(); }

  /// `bytes` of storage aligned to `align`. Never returns null; a zero
  /// byte count yields a unique (still aligned) pointer into the block.
  void* Alloc(size_t bytes, size_t align = alignof(std::max_align_t)) {
    TASQ_DCHECK(align != 0 && (align & (align - 1)) == 0);
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      Refill(bytes, align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a trivially destructible T in the arena. The destructor
  /// is never run — that restriction is what makes Reset O(1) per
  /// object; use NewObject for anything that owns memory.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "Arena::New skips destructors; use Arena::NewObject for "
                  "types that need one");
    return ::new (Alloc(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Constructs any T in the arena and registers its destructor to run
  /// at Reset/destruction (newest first). The registration itself is
  /// arena-allocated, so it adds no heap traffic.
  template <typename T, typename... Args>
  T* NewObject(Args&&... args) {
    T* object = ::new (Alloc(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
    if (!std::is_trivially_destructible<T>::value) {
      auto* node = static_cast<DtorNode*>(
          Alloc(sizeof(DtorNode), alignof(DtorNode)));
      node->object = object;
      node->dtor = [](void* p) { static_cast<T*>(p)->~T(); };
      node->next = dtor_head_;
      dtor_head_ = node;
    }
    return object;
  }

  /// `count` default-initialized trivially-destructible Ts. Arithmetic
  /// types come back zeroed (the callers are feature buffers, where a
  /// stale lane is a silent wrong answer).
  template <typename T>
  T* NewArray(size_t count) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "Arena::NewArray skips destructors");
    T* data = static_cast<T*>(Alloc(sizeof(T) * count, alignof(T)));
    if (std::is_arithmetic<T>::value && count > 0) {
      std::memset(static_cast<void*>(data), 0, sizeof(T) * count);
    }
    return data;
  }

  /// Rewinds to empty, keeping every block for reuse: the steady-state
  /// request loop refills nothing. Runs registered destructors (newest
  /// first), invalidates every outstanding pointer.
  void Reset() {
    RunDtors();
    cursor_ = blocks_.empty()
                  ? uintptr_t{0}
                  : reinterpret_cast<uintptr_t>(blocks_.front().get());
    limit_ = blocks_.empty() ? uintptr_t{0}
                             : cursor_ + block_sizes_.front();
    next_block_ = blocks_.empty() ? 0 : 1;
    bytes_used_ = 0;
  }

  /// Bytes handed out since construction/Reset (excludes alignment pad).
  size_t bytes_used() const { return bytes_used_; }
  /// Heap blocks ever acquired; flat across iterations == zero heap
  /// traffic in steady state.
  size_t block_count() const { return blocks_.size(); }

 private:
  struct DtorNode {
    // own: arena points at an object placed in this arena's blocks
    void* object;
    void (*dtor)(void*);
    // own: arena next registration node, also arena-placed
    DtorNode* next;
  };

  void RunDtors() {
    // own: DtorNode chain lives in this arena's own blocks by design
    for (DtorNode* node = dtor_head_; node != nullptr; node = node->next) {
      node->dtor(node->object);
    }
    dtor_head_ = nullptr;
  }

  void Refill(size_t bytes, size_t align) {
    // Reuse an already-grown block when the request fits; otherwise grow
    // by one block sized for the request (oversized requests get a
    // dedicated block rather than inflating every future block).
    size_t need = bytes + align;
    while (next_block_ < blocks_.size()) {
      size_t have = block_sizes_[next_block_];
      if (have >= need) {
        cursor_ = reinterpret_cast<uintptr_t>(blocks_[next_block_].get());
        limit_ = cursor_ + have;
        ++next_block_;
        return;
      }
      ++next_block_;  // Too small for this request; skip, keep for later.
    }
    size_t block = need > block_bytes_ ? need : block_bytes_;
    // own: the unique_ptr in blocks_ owns this allocation
    blocks_.push_back(std::unique_ptr<char[]>(new char[block]));
    block_sizes_.push_back(block);
    cursor_ = reinterpret_cast<uintptr_t>(blocks_.back().get());
    limit_ = cursor_ + block;
    next_block_ = blocks_.size();
  }

  const size_t block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<size_t> block_sizes_;
  size_t next_block_ = 0;  // First block not yet handed to the cursor.
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t bytes_used_ = 0;
  // own: arena DtorNodes are placed in this arena's own blocks
  DtorNode* dtor_head_ = nullptr;
};

/// Std-allocator adapter over an Arena: plugs arena storage into standard
/// containers. Deallocate is a no-op (bump arenas don't free), so prefer
/// reserve()-then-fill usage; a geometric-growth push_back loop wastes
/// the abandoned copies until the next Reset.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t count) {
    return static_cast<T*>(arena_->Alloc(sizeof(T) * count, alignof(T)));
  }
  void deallocate(T*, size_t) {}  // Bump arena: freed at Reset().

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return !(*this == other);
  }

 private:
  // own: borrowed the container user keeps the arena alive
  Arena* arena_;
};

/// A vector whose storage lives in an arena. The element type must be
/// trivially destructible (the vector's own destructor still runs, but
/// abandoned grow-copies do not). Construct, reserve, fill, drop.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// A string whose characters live in an arena.
using ArenaString =
    std::basic_string<char, std::char_traits<char>, ArenaAllocator<char>>;

/// Per-request scratch arena: an Arena plus the convention that Reset()
/// runs at a request/batch boundary. The serving drain loop holds one
/// per worker activation; feature extraction and batch assembly allocate
/// from it and nothing outlives the batch (tasq_own.py's arena-escape
/// rule keeps that true).
class ScratchArena {
 public:
  explicit ScratchArena(size_t block_bytes = Arena::kDefaultBlockBytes)
      : arena_(block_bytes) {}

  /// The underlying arena, for New/Alloc and allocator adapters.
  Arena& arena() { return arena_; }

  /// Marks a request/batch boundary: everything handed out since the
  /// last Reset dies here.
  void Reset() { arena_.Reset(); }

  template <typename T>
  ArenaVector<T> MakeVector() {
    return ArenaVector<T>(ArenaAllocator<T>(&arena_));
  }

  /// A vector pre-sized to `count` value-initialized elements.
  template <typename T>
  ArenaVector<T> MakeVector(size_t count) {
    ArenaVector<T> v{ArenaAllocator<T>(&arena_)};
    v.resize(count);
    return v;
  }

  ArenaString MakeString() {
    return ArenaString(ArenaAllocator<char>(&arena_));
  }

 private:
  Arena arena_;
};

}  // namespace tasq

#endif  // TASQ_COMMON_ARENA_H_
