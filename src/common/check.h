#ifndef TASQ_COMMON_CHECK_H_
#define TASQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Runtime invariant checks for conditions that indicate a bug in TASQ
/// itself, as opposed to bad caller input. The policy (see DESIGN.md,
/// "Verification"):
///
///   - Data-dependent or caller-triggerable conditions return `Status` /
///     `Result<T>` — they are part of the API contract.
///   - Internal invariants that no input should ever violate use
///     `TASQ_CHECK*`. A failure prints file:line plus the failed
///     expression to stderr and aborts; there is no recovery path because
///     the process state is by definition wrong.
///   - `TASQ_DCHECK*` is for invariants too hot to verify in production
///     builds (per-element loops, O(n) scans of already-computed results).
///     They compile to nothing under NDEBUG unless TASQ_DEBUG_CHECKS is
///     defined — sanitizer builds define it so the full invariant layer
///     runs under ASan/UBSan/TSan.
///
/// The comparison forms additionally print both operand values:
///
///   TASQ_CHECK_GE(free_tokens, 0) -> "check failed ... free_tokens >= 0
///                                     (lhs=-1, rhs=0)"

namespace tasq {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expression) {
  std::fprintf(stderr, "%s:%d: check failed: %s\n", file, line, expression);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void CheckOkFailed(const char* file, int line,
                                       const char* expression,
                                       const Status& status) {
  std::fprintf(stderr, "%s:%d: check failed: %s (status: %s)\n", file, line,
               expression, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

// TASQ_CHECK_OK accepts both a plain `Status` and any `Result<T>`.
inline const Status& GetStatus(const Status& status) { return status; }
template <typename T>
const Status& GetStatus(const Result<T>& result) {
  return result.status();
}

template <typename Lhs, typename Rhs>
[[noreturn]] void CheckCmpFailed(const char* file, int line,
                                 const char* expression, const Lhs& lhs,
                                 const Rhs& rhs) {
  std::fprintf(stderr, "%s:%d: check failed: %s (lhs=%.17g, rhs=%.17g)\n",
               file, line, expression, static_cast<double>(lhs),
               static_cast<double>(rhs));
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace tasq

/// Aborts with file:line and the expression text when `condition` is false.
#define TASQ_CHECK(condition)                                          \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::tasq::internal::CheckFailed(__FILE__, __LINE__, #condition);   \
    }                                                                  \
  } while (false)

/// Aborts (printing the contained code and message) when a `Status` or
/// `Result<T>` expression is not OK.
#define TASQ_CHECK_OK(expression)                                         \
  do {                                                                    \
    const auto& tasq_check_ok_value = (expression);                       \
    if (!tasq_check_ok_value.ok()) {                                      \
      ::tasq::internal::CheckOkFailed(                                    \
          __FILE__, __LINE__, #expression,                                \
          ::tasq::internal::GetStatus(tasq_check_ok_value));              \
    }                                                                     \
  } while (false)

#define TASQ_INTERNAL_CHECK_CMP(lhs, rhs, op)                              \
  do {                                                                     \
    const auto& tasq_check_lhs = (lhs);                                    \
    const auto& tasq_check_rhs = (rhs);                                    \
    if (!(tasq_check_lhs op tasq_check_rhs)) {                             \
      ::tasq::internal::CheckCmpFailed(__FILE__, __LINE__,                 \
                                       #lhs " " #op " " #rhs,              \
                                       tasq_check_lhs, tasq_check_rhs);    \
    }                                                                      \
  } while (false)

#define TASQ_CHECK_EQ(lhs, rhs) TASQ_INTERNAL_CHECK_CMP(lhs, rhs, ==)
#define TASQ_CHECK_NE(lhs, rhs) TASQ_INTERNAL_CHECK_CMP(lhs, rhs, !=)
#define TASQ_CHECK_LT(lhs, rhs) TASQ_INTERNAL_CHECK_CMP(lhs, rhs, <)
#define TASQ_CHECK_LE(lhs, rhs) TASQ_INTERNAL_CHECK_CMP(lhs, rhs, <=)
#define TASQ_CHECK_GT(lhs, rhs) TASQ_INTERNAL_CHECK_CMP(lhs, rhs, >)
#define TASQ_CHECK_GE(lhs, rhs) TASQ_INTERNAL_CHECK_CMP(lhs, rhs, >=)

// Debug checks are live when the build asked for them (sanitizer builds
// define TASQ_DEBUG_CHECKS) or when NDEBUG is absent (plain Debug builds).
#if defined(TASQ_DEBUG_CHECKS) || !defined(NDEBUG)
#define TASQ_DCHECK_IS_ON 1
#else
#define TASQ_DCHECK_IS_ON 0
#endif

#if TASQ_DCHECK_IS_ON
#define TASQ_DCHECK(condition) TASQ_CHECK(condition)
#define TASQ_DCHECK_OK(expression) TASQ_CHECK_OK(expression)
#define TASQ_DCHECK_EQ(lhs, rhs) TASQ_CHECK_EQ(lhs, rhs)
#define TASQ_DCHECK_NE(lhs, rhs) TASQ_CHECK_NE(lhs, rhs)
#define TASQ_DCHECK_LT(lhs, rhs) TASQ_CHECK_LT(lhs, rhs)
#define TASQ_DCHECK_LE(lhs, rhs) TASQ_CHECK_LE(lhs, rhs)
#define TASQ_DCHECK_GT(lhs, rhs) TASQ_CHECK_GT(lhs, rhs)
#define TASQ_DCHECK_GE(lhs, rhs) TASQ_CHECK_GE(lhs, rhs)
#else
// Compiled out, but the condition stays visible to the compiler inside an
// unevaluated sizeof: it cannot bit-rot, and variables used only in a
// DCHECK do not trigger -Wunused in NDEBUG builds.
#define TASQ_INTERNAL_DCHECK_NOP(condition) \
  do {                                      \
    (void)sizeof(condition);                \
  } while (false)
#define TASQ_DCHECK(condition) TASQ_INTERNAL_DCHECK_NOP(condition)
#define TASQ_DCHECK_OK(expression) TASQ_INTERNAL_DCHECK_NOP((expression).ok())
#define TASQ_DCHECK_EQ(lhs, rhs) TASQ_INTERNAL_DCHECK_NOP((lhs) == (rhs))
#define TASQ_DCHECK_NE(lhs, rhs) TASQ_INTERNAL_DCHECK_NOP((lhs) != (rhs))
#define TASQ_DCHECK_LT(lhs, rhs) TASQ_INTERNAL_DCHECK_NOP((lhs) < (rhs))
#define TASQ_DCHECK_LE(lhs, rhs) TASQ_INTERNAL_DCHECK_NOP((lhs) <= (rhs))
#define TASQ_DCHECK_GT(lhs, rhs) TASQ_INTERNAL_DCHECK_NOP((lhs) > (rhs))
#define TASQ_DCHECK_GE(lhs, rhs) TASQ_INTERNAL_DCHECK_NOP((lhs) >= (rhs))
#endif  // TASQ_DCHECK_IS_ON

#endif  // TASQ_COMMON_CHECK_H_
