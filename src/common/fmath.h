#ifndef TASQ_COMMON_FMATH_H_
#define TASQ_COMMON_FMATH_H_

#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/status.h"

/// Checked transcendental math for TASQ's log-log pipeline.
///
/// The PCC power law `runtime = b * A^a` is fitted in log space and the
/// NN/GNN losses exponentiate predicted parameters, so a single log(0),
/// exp overflow, or NaN gradient silently poisons the fit and every
/// allocation decision downstream. This header is the one place raw
/// `std::log/exp/pow/sqrt` may appear in src/ (enforced by
/// scripts/tasq_num.py, rule raw-transcendental); everything else calls
/// through one of three tiers:
///
///   - `Safe*` returning `Result<double>`: for API paths where a domain
///     violation is data-dependent and the caller must handle it. These
///     functions validate the domain BEFORE evaluating, so they never
///     raise a floating-point exception themselves — they stay silent
///     even when the TASQ_FPE harness has hardware traps enabled.
///   - `Checked*` returning double: for hot loops whose domain is locally
///     guaranteed. They TASQ_DCHECK the contract (live in sanitizer
///     builds), and under TASQ_FPE a violated contract traps at the raw
///     call in release too.
///   - `Clamped*`/`Stable*` total functions: mathematically total
///     reformulations (stable sigmoid/softplus, exp clamped to the finite
///     range) for code that must accept any finite input.
///
/// `TASQ_ASSERT_FINITE(expr)` evaluates to the value of `expr` and aborts
/// (in every build type) when it is NaN or infinite.
///
/// NaN discipline: ordered comparisons (`<`, `<=`, ...) on NaN raise
/// FE_INVALID, which the TASQ_FPE test harness turns into a trap. Guards
/// in this header therefore test `std::isfinite`/`std::isnan` (quiet)
/// before any ordered comparison, and deployed call sites must do the
/// same when their inputs may be NaN.

namespace tasq {

/// Largest x with exp(x) finite: log(DBL_MAX) rounded down.
inline constexpr double kMaxExpArg = 709.78271289338396;

namespace internal {

[[noreturn]] inline void AssertFiniteFailed(const char* file, int line,
                                            const char* expression,
                                            double value) {
  std::fprintf(stderr,
               "%s:%d: check failed: TASQ_ASSERT_FINITE(%s) (value=%.17g)\n",
               file, line, expression, value);
  std::fflush(stderr);
  std::abort();
}

inline double AssertFinite(double value, const char* expression,
                           const char* file, int line) {
  if (!std::isfinite(value)) {
    AssertFiniteFailed(file, line, expression, value);
  }
  return value;
}

}  // namespace internal

/// Returns `x` when it is finite, `fallback` otherwise. The quiet clamp
/// for contexts that cannot fail (hashing, display, scaling fallbacks).
inline double FiniteOr(double x, double fallback) {
  return std::isfinite(x) ? x : fallback;
}

/// log(x) for finite x > 0; typed error otherwise. Never raises an FP
/// exception: the domain is rejected before std::log runs.
TASQ_NODISCARD inline Result<double> SafeLog(double x) {
  if (!std::isfinite(x) || x <= 0.0) {
    return Status::OutOfRange("SafeLog: x must be finite and positive, got " +
                              std::to_string(x));
  }
  return std::log(x);
}

/// exp(x) for finite x that does not overflow; typed error otherwise.
/// Underflow to +0 is well-defined and allowed.
TASQ_NODISCARD inline Result<double> SafeExp(double x) {
  if (!std::isfinite(x) || x > kMaxExpArg) {
    return Status::OutOfRange("SafeExp: exp(" + std::to_string(x) +
                              ") is not finite");
  }
  return std::exp(x);
}

/// num / den with the IEEE hazards rejected up front: non-finite operands,
/// den == 0, and quotients that would overflow to infinity.
TASQ_NODISCARD inline Result<double> SafeDiv(double num, double den) {
  if (!std::isfinite(num) || !std::isfinite(den)) {
    return Status::OutOfRange("SafeDiv: operands must be finite");
  }
  if (den == 0.0) {  // num: float-eq exact IEEE zero is the singular divisor
    return Status::OutOfRange("SafeDiv: division by zero");
  }
  // |den| >= 1 cannot overflow (|num| <= DBL_MAX). For |den| < 1 the
  // product below stays finite, so the overflow test itself cannot trap.
  if (std::fabs(den) < 1.0 &&
      std::fabs(num) >= std::fabs(den) * std::numeric_limits<double>::max()) {
    return Status::OutOfRange("SafeDiv: quotient overflows");
  }
  return num / den;
}

/// pow(base, exponent) with every NaN/overflow route rejected up front:
/// non-finite operands, 0 to a negative power, a negative base with a
/// non-integer exponent, and results beyond DBL_MAX. Magnitudes that
/// underflow toward 0 are well-defined and allowed.
TASQ_NODISCARD inline Result<double> SafePow(double base, double exponent) {
  if (!std::isfinite(base) || !std::isfinite(exponent)) {
    return Status::OutOfRange("SafePow: operands must be finite");
  }
  if (base == 0.0) {  // num: float-eq pow's domain splits at exact zero
    if (exponent > 0.0) return 0.0;
    if (exponent == 0.0) return 1.0;  // num: float-eq IEEE pow(0,0) == 1
    return Status::OutOfRange("SafePow: 0 raised to a negative power");
  }
  if (base < 0.0 && exponent != std::nearbyint(exponent)) {
    return Status::OutOfRange(
        "SafePow: negative base needs an integer exponent");
  }
  // |result| = exp(exponent * log|base|); test the magnitude in log space
  // without forming a product that could itself overflow. log|base| is
  // never subnormal (the smallest nonzero |log| is ~1.1e-16 at 1 +/- ulp),
  // so the division below stays finite.
  double log_base = std::log(std::fabs(base));
  if (log_base != 0.0) {  // num: float-eq |base| == 1 has magnitude 1 always
    bool grows = (log_base > 0.0) == (exponent > 0.0);
    if (grows && std::fabs(exponent) > kMaxExpArg / std::fabs(log_base)) {
      return Status::OutOfRange("SafePow: result overflows");
    }
  }
  return std::pow(base, exponent);
}

/// log(x) for call sites that locally guarantee finite x > 0 (e.g. behind
/// a std::max floor on validated data). The contract is DCHECKed; under
/// TASQ_FPE a violation traps at the raw call in release builds too.
inline double CheckedLog(double x) {
  TASQ_DCHECK(std::isfinite(x));
  TASQ_DCHECK_GT(x, 0.0);
  return std::log(x);
}

/// log1p(x) for call sites that locally guarantee finite x > -1 — in this
/// repo always log1p(max(0, count)) feature transforms, where the floor
/// makes the domain trivially safe.
inline double CheckedLog1p(double x) {
  TASQ_DCHECK(std::isfinite(x));
  TASQ_DCHECK_GT(x, -1.0);
  return std::log1p(x);
}

/// sqrt(x) for call sites that locally guarantee x >= 0 (sums of squares,
/// degrees with self-loops). +infinity is tolerated (sqrt(inf) = inf,
/// raises nothing); NaN and negatives are contract violations.
inline double CheckedSqrt(double x) {
  TASQ_DCHECK(!std::isnan(x));
  TASQ_DCHECK_GE(x, 0.0);
  return std::sqrt(x);
}

/// pow for call sites whose inputs cannot produce NaN (positive base, or
/// integer exponent). Overflow to +/-infinity is tolerated here — the
/// TASQ_FPE harness still traps it — but a NaN result (domain error) is a
/// contract violation.
inline double CheckedPow(double base, double exponent) {
  double result = std::pow(base, exponent);
  TASQ_DCHECK(!std::isnan(result));
  return result;
}

/// exp(x) clamped to the finite range: arguments above log(DBL_MAX) return
/// DBL_MAX instead of overflowing to +infinity (and trapping under
/// TASQ_FPE). Underflow to +0 is left alone. NaN propagates quietly and is
/// a DCHECKed contract violation.
inline double ClampedExp(double x) {
  TASQ_DCHECK(!std::isnan(x));
  if (std::isnan(x)) return x;
  if (x > kMaxExpArg) return std::numeric_limits<double>::max();
  return std::exp(x);
}

/// 1 / (1 + exp(-x)) evaluated so exp never sees a positive argument:
/// total over all finite x, trap-free under TASQ_FPE for any magnitude.
inline double StableSigmoid(double x) {
  TASQ_DCHECK(!std::isnan(x));
  if (std::isnan(x)) return x;
  if (x >= 0.0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

/// log(1 + exp(x)) via the overflow-free max(x, 0) + log1p(exp(-|x|))
/// form; its derivative is StableSigmoid.
inline double StableSoftplus(double x) {
  TASQ_DCHECK(!std::isnan(x));
  if (std::isnan(x)) return x;
  return (x > 0.0 ? x : 0.0) + std::log1p(std::exp(-std::fabs(x)));
}

}  // namespace tasq

/// Evaluates to the (double) value of `expression`, aborting with
/// file:line, the expression text, and the offending value when it is NaN
/// or infinite. Active in every build type, like TASQ_CHECK.
#define TASQ_ASSERT_FINITE(expression)                                    \
  (::tasq::internal::AssertFinite((expression), #expression, __FILE__,    \
                                  __LINE__))

#endif  // TASQ_COMMON_FMATH_H_
