#include "common/fpe.h"

#include <cfenv>

#include "common/check.h"

namespace tasq {

bool FpeTrapsRequested() {
#if defined(TASQ_FPE)
  return true;
#else
  return false;
#endif
}

Status EnableFpeTraps() {
#if defined(__GLIBC__)
  if (feenableexcept(FE_DIVBYZERO | FE_INVALID | FE_OVERFLOW) == -1) {
    return Status::Internal("feenableexcept(FE_DIVBYZERO|FE_INVALID|"
                            "FE_OVERFLOW) failed");
  }
  return Status::Ok();
#else
  return Status::FailedPrecondition(
      "FP-exception traps require glibc's feenableexcept");
#endif
}

void InstallFpeTrapsIfRequested() {
  if (!FpeTrapsRequested()) return;
  TASQ_CHECK_OK(EnableFpeTraps());
}

}  // namespace tasq
