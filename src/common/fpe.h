#ifndef TASQ_COMMON_FPE_H_
#define TASQ_COMMON_FPE_H_

#include "common/status.h"

/// Floating-point exception traps: the runtime enforcement tier behind the
/// checked-math layer (common/fmath.h). A build configured with
/// -DTASQ_FPE=ON defines TASQ_FPE, and every test binary's main() calls
/// InstallFpeTrapsIfRequested() before running tests, so FE_DIVBYZERO,
/// FE_INVALID, and FE_OVERFLOW deliver SIGFPE instead of silently
/// producing inf/NaN. A full green ctest run under TASQ_FPE proves the
/// deployed guards are exhaustive, not decorative: any unguarded log(0),
/// 0/0, exp overflow, or ordered comparison on NaN crashes the test that
/// reached it. FE_UNDERFLOW and FE_INEXACT stay untrapped — gradual
/// underflow and rounding are normal arithmetic, not bugs.

namespace tasq {

/// True when this build was configured with -DTASQ_FPE=ON (the TASQ_FPE
/// compile definition is present).
bool FpeTrapsRequested();

/// Enables hardware traps for FE_DIVBYZERO | FE_INVALID | FE_OVERFLOW on
/// this thread (and, on Linux, threads it subsequently spawns inherit the
/// environment). Fails with FailedPrecondition on platforms without
/// glibc's feenableexcept.
TASQ_NODISCARD Status EnableFpeTraps();

/// Test-main hook: a no-op unless the build requested traps (TASQ_FPE),
/// in which case it enables them and aborts if the platform cannot — a
/// trap harness that silently proves nothing is worse than one that
/// fails loudly.
void InstallFpeTrapsIfRequested();

}  // namespace tasq

#endif  // TASQ_COMMON_FPE_H_
