#ifndef TASQ_COMMON_HOT_H_
#define TASQ_COMMON_HOT_H_

/// Hot-path performance annotation — the marker behind the
/// scripts/tasq_hot.py conformance analyzer (see DESIGN.md, "Hot-path
/// conformance").
///
/// `TASQ_HOT` goes immediately before the return type of a function
/// declaration (preferably the header declaration; annotating the
/// definition also works):
///
///   TASQ_HOT uint64_t Fingerprint() const;
///
/// The annotation is a *contract*, enforced transitively over the static
/// call graph by scripts/tasq_hot.py: the function, and every src/
/// function reachable from it, must be
///
///   - allocation-free: no new/malloc/make_unique, no container growth
///     (push_back/resize/insert/...), no std::string construction, no
///     std::function (its captures heap-allocate);
///   - lock-free except for locks on the declared shard-local allowlist
///     (scripts/hot_locks.txt) — O(1) critical sections that are never
///     held across allocation, I/O, or another lock;
///   - non-blocking: no sleeps, no condition-variable waits, no I/O;
///   - abort-free: no throw, no abort/exit, no TASQ_CHECK (use
///     TASQ_DCHECK, which compiles out of Release serving builds).
///
/// A deliberate, reviewed exception carries a same-line (or
/// preceding-line) waiver comment with a reason:
///
///   buffer.push_back(x);  // hot: bounded by ctor-time reserve(capacity)
///
/// The macro itself expands to nothing: it exists so the analyzer (and a
/// reader) can see which paths promise predictable latency. The runtime
/// tier (tests/alloc_counter.h + hot_path_test.cc) pins the promise down
/// with a counting operator new: the warm cache-hit serving path must
/// measure exactly zero heap allocations per request.
#define TASQ_HOT

#endif  // TASQ_COMMON_HOT_H_
