#ifndef TASQ_COMMON_HOT_H_
#define TASQ_COMMON_HOT_H_

/// Hot-path performance annotation — the marker behind the
/// scripts/tasq_hot.py conformance analyzer (see DESIGN.md, "Hot-path
/// conformance").
///
/// `TASQ_HOT` goes immediately before the return type of a function
/// declaration (preferably the header declaration; annotating the
/// definition also works):
///
///   TASQ_HOT uint64_t Fingerprint() const;
///
/// The annotation is a *contract*, enforced transitively over the static
/// call graph by scripts/tasq_hot.py: the function, and every src/
/// function reachable from it, must be
///
///   - allocation-free: no new/malloc/make_unique, no container growth
///     (push_back/resize/insert/...), no std::string construction, no
///     std::function (its captures heap-allocate);
///   - lock-free except for locks on the declared shard-local allowlist
///     (scripts/hot_locks.txt) — O(1) critical sections that are never
///     held across allocation, I/O, or another lock;
///   - non-blocking: no sleeps, no condition-variable waits, no I/O;
///   - abort-free: no throw, no abort/exit, no TASQ_CHECK (use
///     TASQ_DCHECK, which compiles out of Release serving builds).
///
/// A deliberate, reviewed exception carries a same-line (or
/// preceding-line) waiver comment with a reason:
///
///   buffer.push_back(x);  // hot: bounded by ctor-time reserve(capacity)
///
/// The macro itself expands to nothing: it exists so the analyzer (and a
/// reader) can see which paths promise predictable latency. The runtime
/// tier (tests/alloc_counter.h + hot_path_test.cc) pins the promise down
/// with a counting operator new: the warm cache-hit serving path must
/// measure exactly zero heap allocations per request.
#define TASQ_HOT

/// Vectorization annotation — the marker behind the scripts/tasq_vec.py
/// conformance analyzer (see DESIGN.md, "Vectorization policy").
///
/// `TASQ_VEC` goes on its own line (or the same line) immediately before
/// a `for`/`while` loop that MUST auto-vectorize:
///
///   TASQ_VEC
///   for (size_t j = 0; j < n; ++j) out[j] += a * b[j];
///
/// Unlike the other conformance layers, the contract is not checked
/// against the source text: a dedicated build (cmake -DTASQ_VEC_REPORT=ON)
/// compiles src/ with the compiler's vectorizer report enabled
/// (-fopt-info-vec-all on GCC, -fsave-optimization-record on Clang) and
/// scripts/tasq_vec.py maps the report back to every annotated loop. An
/// annotated loop the compiler reports as "not vectorized" fails the
/// analyzer with the compiler's own reason (aliasing, non-contiguous
/// access, function call in loop, ...); an annotation that binds to no
/// vectorizer decision at all (loop deleted, turned into memset/memcpy,
/// file not compiled) fails as vec-unresolved.
///
/// A deliberate, reviewed exception carries a `// vec: <reason>` waiver on
/// the annotation line, the loop line, or the line directly above; the
/// analyzer flags waivers whose loop vectorizes anyway as stale.
///
/// Kernels that carry this annotation must stay vectorizable under strict
/// IEEE semantics — no -ffast-math anywhere in this repo. In practice:
/// __restrict-qualified raw spans (so the vectorizer needs no runtime
/// alias versioning), unit-stride accesses, no function calls in the loop
/// body, and reductions restructured into fixed-lane accumulators
/// (ml/kernels.h) instead of relying on reassociation.
#define TASQ_VEC

#endif  // TASQ_COMMON_HOT_H_
