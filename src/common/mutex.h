#ifndef TASQ_COMMON_MUTEX_H_
#define TASQ_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace tasq {

/// The repo's mutex: std::mutex declared as a Clang thread-safety
/// capability, so TASQ_GUARDED_BY(mu) on a field makes un-locked access a
/// compile error under -Wthread-safety (see common/thread_annotations.h).
///
/// std::mutex itself carries no capability attributes (libstdc++ is not
/// annotated), which is why all of src/ locks through this wrapper — the
/// `raw-lock-in-src` lint rule keeps it that way.
class TASQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TASQ_ACQUIRE() { mu_.lock(); }
  void Unlock() TASQ_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;  // CondVar::Wait atomically unlocks/relocks mu_.
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated as a scoped capability: the analysis
/// treats the mutex as held from construction to the end of the enclosing
/// scope. The only way src/ code takes a lock:
///
///   MutexLock lock(mutex_);
///   ++guarded_field_;   // OK: mutex_ held
class TASQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TASQ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TASQ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the mutex
/// while sleeping and reacquires it before returning; the capability is held
/// across the call from the analysis' point of view, which matches what the
/// caller observes. Spurious wakeups happen — always wait in a loop:
///
///   MutexLock lock(mutex_);
///   while (!condition_) cv_.Wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously); `mu` must be held.
  void Wait(Mutex& mu) TASQ_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait, then
    // release the std::unique_lock's ownership claim so the caller's
    // MutexLock remains the one true owner.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tasq

#endif  // TASQ_COMMON_MUTEX_H_
