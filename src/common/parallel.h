#ifndef TASQ_COMMON_PARALLEL_H_
#define TASQ_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tasq {

/// Minimal task-execution interface: something that can run closures on
/// worker threads. `ParallelFor(Executor&, ...)` fans loop bodies out over
/// an executor instead of spawning fresh threads per call, which is what
/// long-lived services want (see serve/thread_pool.h for the standard
/// implementation, a bounded-queue thread pool).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `task` to run on a worker thread. May block while the
  /// executor is saturated (bounded queues). Returns false — without
  /// running or keeping `task` — when the executor no longer accepts work
  /// (e.g., it is shutting down); the caller must then run or drop the
  /// task itself.
  virtual bool Submit(std::function<void()> task) = 0;

  /// Worker threads available to run submitted tasks (>= 1).
  virtual unsigned concurrency() const = 0;
};

/// Runs `body(i)` for every i in [0, count) across up to `num_threads`
/// worker threads (0 = hardware concurrency). Work is handed out by an
/// atomic counter, so uneven per-item cost balances naturally. The caller
/// is responsible for making `body` safe to run concurrently for distinct
/// indices (typically: write only to slot i of a pre-sized output vector).
/// Deterministic outputs are preserved because each index computes the
/// same value regardless of which thread runs it.
///
/// Exception contract: if `body` throws, the first exception caught (in
/// completion order) is rethrown on the calling thread after every worker
/// has been joined — never std::terminate. Remaining indices may or may
/// not run once an exception is pending, so a throwing `body` must leave
/// shared state valid for partially processed ranges.
inline void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                        unsigned num_threads = 0) {
  if (count == 0) return;
  unsigned hardware = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = hardware > 0 ? hardware : 1;
  if (num_threads > count) num_threads = static_cast<unsigned>(count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Relaxed throughout for both atomics: `next` only partitions indices
  // (each i is claimed exactly once by the RMW; results are published by
  // the joins below, not by the counter), and `cancelled` is a
  // best-effort stop flag whose only effect is skipping work.
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  Mutex exception_mutex;
  std::exception_ptr first_exception;  // Guarded by exception_mutex.
  auto worker = [&]() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          MutexLock lock(exception_mutex);
          if (!first_exception) first_exception = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (unsigned t = 0; t + 1 < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  worker();  // The calling thread participates.
  for (std::thread& thread : threads) thread.join();
  if (first_exception) std::rethrow_exception(first_exception);
}

/// ParallelFor over a persistent executor: runs `body(i)` for every i in
/// [0, count) on up to `executor.concurrency()` workers plus the calling
/// thread, which always participates (so progress is guaranteed even when
/// the executor rejects or delays the helper tasks). Work is handed out by
/// an atomic counter exactly as in the thread-spawning overload, and the
/// same exception contract holds: the first exception thrown by a body is
/// rethrown on the calling thread after every helper task has finished.
inline void ParallelFor(Executor& executor, size_t count,
                        const std::function<void(size_t)>& body) {
  if (count == 0) return;
  unsigned helpers = executor.concurrency();
  if (helpers + 1 > count) {
    helpers = static_cast<unsigned>(count - 1);
  }
  if (helpers == 0) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  struct SharedState {
    // Relaxed (same reasoning as the thread-spawning overload): the
    // ticket RMW claims each index exactly once, the stop flag is
    // best-effort, and completion is published by done_cv/mutex.
    std::atomic<size_t> next{0};
    std::atomic<bool> cancelled{false};
    Mutex mutex;
    CondVar done_cv;
    size_t active_helpers TASQ_GUARDED_BY(mutex) = 0;
    std::exception_ptr first_exception TASQ_GUARDED_BY(mutex);
  };
  auto state = std::make_shared<SharedState>();
  auto drain = [state, count, &body]() {
    while (!state->cancelled.load(std::memory_order_relaxed)) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          MutexLock lock(state->mutex);
          if (!state->first_exception) {
            state->first_exception = std::current_exception();
          }
        }
        state->cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  for (unsigned t = 0; t < helpers; ++t) {
    {
      MutexLock lock(state->mutex);
      ++state->active_helpers;
    }
    bool accepted = executor.Submit([state, drain]() {
      drain();
      MutexLock lock(state->mutex);
      --state->active_helpers;
      state->done_cv.NotifyAll();
    });
    if (!accepted) {
      MutexLock lock(state->mutex);
      --state->active_helpers;
      break;  // Executor is shutting down; the caller drains alone.
    }
  }
  drain();  // The calling thread participates.
  {
    MutexLock lock(state->mutex);
    while (state->active_helpers != 0) state->done_cv.Wait(state->mutex);
    if (state->first_exception) {
      std::rethrow_exception(state->first_exception);
    }
  }
}

}  // namespace tasq

#endif  // TASQ_COMMON_PARALLEL_H_
