#ifndef TASQ_COMMON_PARALLEL_H_
#define TASQ_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tasq {

/// Runs `body(i)` for every i in [0, count) across up to `num_threads`
/// worker threads (0 = hardware concurrency). Work is handed out by an
/// atomic counter, so uneven per-item cost balances naturally. The caller
/// is responsible for making `body` safe to run concurrently for distinct
/// indices (typically: write only to slot i of a pre-sized output vector).
/// Deterministic outputs are preserved because each index computes the
/// same value regardless of which thread runs it.
///
/// Exception contract: if `body` throws, the first exception caught (in
/// completion order) is rethrown on the calling thread after every worker
/// has been joined — never std::terminate. Remaining indices may or may
/// not run once an exception is pending, so a throwing `body` must leave
/// shared state valid for partially processed ranges.
inline void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                        unsigned num_threads = 0) {
  if (count == 0) return;
  unsigned hardware = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = hardware > 0 ? hardware : 1;
  if (num_threads > count) num_threads = static_cast<unsigned>(count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex exception_mutex;
  std::exception_ptr first_exception;  // Guarded by exception_mutex.
  auto worker = [&]() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(exception_mutex);
          if (!first_exception) first_exception = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (unsigned t = 0; t + 1 < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  worker();  // The calling thread participates.
  for (std::thread& thread : threads) thread.join();
  if (first_exception) std::rethrow_exception(first_exception);
}

}  // namespace tasq

#endif  // TASQ_COMMON_PARALLEL_H_
