#ifndef TASQ_COMMON_PARALLEL_H_
#define TASQ_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace tasq {

/// Runs `body(i)` for every i in [0, count) across up to `num_threads`
/// worker threads (0 = hardware concurrency). Work is handed out by an
/// atomic counter, so uneven per-item cost balances naturally. The caller
/// is responsible for making `body` safe to run concurrently for distinct
/// indices (typically: write only to slot i of a pre-sized output vector).
/// Deterministic outputs are preserved because each index computes the
/// same value regardless of which thread runs it.
inline void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                        unsigned num_threads = 0) {
  if (count == 0) return;
  unsigned hardware = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = hardware > 0 ? hardware : 1;
  if (num_threads > count) num_threads = static_cast<unsigned>(count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      body(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (unsigned t = 0; t + 1 < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  worker();  // The calling thread participates.
  for (std::thread& thread : threads) thread.join();
}

}  // namespace tasq

#endif  // TASQ_COMMON_PARALLEL_H_
