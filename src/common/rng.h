#ifndef TASQ_COMMON_RNG_H_
#define TASQ_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace tasq {

/// Deterministic random number generator used throughout TASQ.
///
/// All stochastic components (workload generation, cluster noise, model
/// initialization, sampling) draw from an explicitly seeded `Rng`, so every
/// experiment is reproducible given its seed. `Fork(tag)` derives an
/// independent child stream, which lets parallel or per-entity randomness
/// stay stable when unrelated draws are added elsewhere.
class Rng {
 public:
  /// Constructs a generator seeded with `seed`.
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Returns a child generator whose stream is a pure function of this
  /// generator's seed and `tag` (it does not consume entropy from `this`).
  Rng Fork(uint64_t tag) const {
    // SplitMix64-style mixing of (seed, tag) into a child seed.
    uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL * (tag + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to mean/stddev.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal draw with the given parameters of the underlying normal.
  double LogNormal(double log_mean, double log_stddev) {
    return std::lognormal_distribution<double>(log_mean, log_stddev)(engine_);
  }

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Zero/negative weights are treated as zero; if all weights are zero the
  /// draw is uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Access to the underlying engine for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace tasq

#endif  // TASQ_COMMON_RNG_H_
