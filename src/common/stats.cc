#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/fmath.h"

namespace tasq {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return CheckedSqrt(acc / static_cast<double>(values.size()));
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

double MeanAbsoluteError(const std::vector<double>& predicted,
                         const std::vector<double>& actual) {
  if (predicted.empty() || predicted.size() != actual.size()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    acc += std::fabs(predicted[i] - actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

std::vector<double> AbsolutePercentErrors(const std::vector<double>& predicted,
                                          const std::vector<double>& actual) {
  std::vector<double> errors;
  size_t n = std::min(predicted.size(), actual.size());
  errors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // num: float-eq exact zero is the one undefined denominator
    if (actual[i] == 0.0) continue;
    errors.push_back(std::fabs(predicted[i] - actual[i]) /
                     std::fabs(actual[i]) * 100.0);
  }
  return errors;
}

double MedianAbsolutePercentError(const std::vector<double>& predicted,
                                  const std::vector<double>& actual) {
  return Median(AbsolutePercentErrors(predicted, actual));
}

double MeanAbsolutePercentError(const std::vector<double>& predicted,
                                const std::vector<double>& actual) {
  return Mean(AbsolutePercentErrors(predicted, actual));
}

double EmpiricalCdf(const std::vector<double>& values, double x) {
  if (values.empty()) return 0.0;
  size_t count = 0;
  for (double v : values) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t ia = 0;
  size_t ib = 0;
  double d = 0.0;
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  while (ia < a.size() && ib < b.size()) {
    double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    double fa = static_cast<double>(ia) / na;
    double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

LineFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  LineFit fit;
  if (x.size() < 2 || x.size() != y.size()) return fit;
  double mx = Mean(x);
  double my = Mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  // num: float-eq a degenerate (constant-x) design is exactly sxx == 0
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  // R^2 = 1 - SS_res / SS_tot; a constant target (syy == 0) is perfectly
  // fitted by the horizontal line.
  // num: float-eq constant target: R^2 of the horizontal line is 1
  if (syy == 0.0) {
    fit.r2 = 1.0;
  } else {
    double ss_res = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      double r = y[i] - (fit.intercept + fit.slope * x[i]);
      ss_res += r * r;
    }
    fit.r2 = 1.0 - ss_res / syy;
  }
  fit.ok = true;
  return fit;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() < 2 || x.size() != y.size()) return 0.0;
  double mx = Mean(x);
  double my = Mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  // num: float-eq correlation is undefined only at exactly zero variance
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / CheckedSqrt(sxx * syy);
}

}  // namespace tasq
