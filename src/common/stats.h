#ifndef TASQ_COMMON_STATS_H_
#define TASQ_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace tasq {

/// Descriptive statistics and error metrics used by the evaluation harness.
/// All functions take values by const reference and are pure; functions that
/// need sorted input sort a local copy.

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Population standard deviation; returns 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0,1]; returns 0 for an empty vector.
double Quantile(std::vector<double> values, double q);

/// Median (Quantile at 0.5).
double Median(std::vector<double> values);

/// Mean absolute error between predictions and targets (equal, nonzero size).
double MeanAbsoluteError(const std::vector<double>& predicted,
                         const std::vector<double>& actual);

/// Absolute percentage errors |pred - actual| / |actual| * 100 per element.
/// Elements with actual == 0 are skipped.
std::vector<double> AbsolutePercentErrors(const std::vector<double>& predicted,
                                          const std::vector<double>& actual);

/// Median of AbsolutePercentErrors — the paper's "Median AE (Run Time)".
double MedianAbsolutePercentError(const std::vector<double>& predicted,
                                  const std::vector<double>& actual);

/// Mean of AbsolutePercentErrors — the paper's "MeanAPE".
double MeanAbsolutePercentError(const std::vector<double>& predicted,
                                const std::vector<double>& actual);

/// One point of an empirical CDF: fraction of `values` that are <= x.
double EmpiricalCdf(const std::vector<double>& values, double x);

/// Two-sample Kolmogorov-Smirnov statistic: the maximum vertical distance
/// between the empirical CDFs of `a` and `b`. Returns 1.0 if either sample
/// is empty (maximal mismatch), matching the use in job-subset selection
/// where an empty sample can never represent the population.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Ordinary least squares line fit y = intercept + slope * x.
/// Requires at least two points with distinct x; `ok` is set accordingly.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination of the fit (1 = perfect).
  double r2 = 0.0;
  bool ok = false;
};
LineFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation; returns 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace tasq

#endif  // TASQ_COMMON_STATS_H_
