#ifndef TASQ_COMMON_STATUS_H_
#define TASQ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

/// Marks a function whose return value carries an error signal the caller
/// must consume. Every function returning Status or Result<T> by value is
/// annotated (enforced by scripts/tasq_arch.py, rule nodiscard-missing),
/// so silently dropping an error is a compiler warning — and an error in
/// CI, which builds with -Werror. To ignore a result deliberately, write
///
///   (void)DoThing();  // reason the error is safe to ignore
///
/// The reason comment is mandatory (rule discard-needs-reason).
#define TASQ_NODISCARD [[nodiscard]]

namespace tasq {

/// Error categories used across the library. Kept deliberately small: most
/// failures in this codebase are caller bugs (invalid arguments) or
/// data-dependent conditions (e.g., fitting a curve to fewer than two
/// points).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kInternal,
};

/// Returns a short human-readable name for `code` (e.g., "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error result carrying a code and a message.
///
/// TASQ does not use exceptions across API boundaries; fallible operations
/// return `Status` (or `Result<T>` when they also produce a value).
/// Example:
///
///   Status s = DoThing();
///   if (!s.ok()) { log(s.ToString()); return s; }
class TASQ_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  TASQ_NODISCARD static Status Ok() { return Status(); }
  TASQ_NODISCARD static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  TASQ_NODISCARD static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  TASQ_NODISCARD static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  TASQ_NODISCARD static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  TASQ_NODISCARD static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// The value-or-error return type used by fallible functions that produce a
/// value. Access the value only after checking `ok()`.
///
///   Result<PowerLawFit> fit = FitPowerLaw(points);
///   if (!fit.ok()) return fit.status();
///   Use(fit.value());
template <typename T>
class TASQ_NODISCARD Result {
 public:
  /// Constructs a successful result holding `value`. Implicit so callers
  /// can `return value;` from a Result-returning function.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  Result(T value) : value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK. Implicit so
  /// callers can `return Status::Invalid(...);`.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Returns the contained value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tasq

#endif  // TASQ_COMMON_STATUS_H_
