#ifndef TASQ_COMMON_SYNC_MPSC_QUEUE_H_
#define TASQ_COMMON_SYNC_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hot.h"

namespace tasq {

/// Bounded multi-producer single-consumer ring (Vyukov sequence-number
/// scheme). Producers claim slots with a CAS loop; hand-off per slot is
/// a release store / acquire load of that slot's sequence number, so no
/// mutex is ever taken and the fast path never allocates — the backing
/// array is sized once at construction (TASQ_HOT-compatible on both
/// ends).
///
/// This is the per-shard request queue for the shard-per-core serving
/// design (ROADMAP item 1): many request threads push, exactly one
/// shard worker pops. The single-consumer restriction is what lets the
/// head cursor stay a plain (non-atomic) integer; calling TryPop from
/// two threads concurrently is a data race by contract, and the TSan
/// stress suite (tests/sync_test.cc) exercises the supported shape.
///
/// T must be default-constructible and movable. Slots hold T by value:
/// a popped element is moved out and the slot is recycled, so T's own
/// move must not block (true for pointers, PODs, and small structs —
/// the intended cargo).
template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so slot
  /// indexing is a mask, not a division.
  explicit MpscQueue(size_t min_capacity)
      : cells_(RoundUpPow2(min_capacity)), mask_(cells_.size() - 1) {
    for (size_t i = 0; i < cells_.size(); ++i) {
      // Slot i is initially writable by the producer whose ticket == i.
      // Relaxed: the queue is not shared until the constructor returns.
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  size_t capacity() const noexcept { return cells_.size(); }

  /// Attempts to enqueue; returns false if the ring is full. Safe to
  /// call from any number of producer threads concurrently. Lock-free:
  /// a stalled producer cannot block others from claiming later slots,
  /// though an unfinished *write* delays the consumer reaching that
  /// slot (bounded ring, FIFO hand-off).
  TASQ_HOT bool TryPush(T value) noexcept {
    // Relaxed: the ticket value itself carries no payload; slot
    // ownership is established by the seq acquire load below.
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[static_cast<size_t>(pos) & mask_];
      // Acquire: pairs with the consumer's release in TryPop — after
      // this we may overwrite the slot the consumer finished with.
      uint64_t seq = cell.seq.load(std::memory_order_acquire);
      int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        // Slot is free for ticket `pos`: claim it. Weak CAS in a retry
        // loop (spurious failure just re-reads `pos` and tries again).
        // Relaxed on both: winning the ticket publishes nothing —
        // the release store of seq below is the actual hand-off.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          // Release: publishes cell.value to the consumer's acquire.
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; loop re-examines the new slot.
      } else if (dif < 0) {
        // Slot still holds an unconsumed element from one lap ago:
        // the ring is full.
        return false;
      } else {
        // Another producer claimed ticket `pos` first; chase the tail.
        // Relaxed: same reasoning as the initial ticket read.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Attempts to dequeue into *out; returns false if the ring is empty.
  /// Must only ever be called from one thread at a time (the consumer).
  TASQ_HOT bool TryPop(T* out) noexcept {
    Cell& cell = cells_[static_cast<size_t>(head_) & mask_];
    // Acquire: pairs with the producer's release — after this,
    // cell.value is fully written.
    uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(head_ + 1) < 0) {
      return false;  // Producer for this slot has not published yet.
    }
    *out = std::move(cell.value);
    // Release: hands the emptied slot back to the producer one lap
    // ahead (its acquire load of seq pairs with this).
    cell.seq.store(head_ + cells_.size(), std::memory_order_release);
    // head_ is plain on purpose: only the single consumer touches it.
    ++head_;
    return true;
  }

 private:
  struct Cell {
    /// Ticket protocol: seq == index        → free for producer lap 0,
    ///                  seq == ticket + 1   → full, ready for consumer,
    ///                  seq == ticket + cap → free for the next lap.
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  static size_t RoundUpPow2(size_t n) {
    size_t cap = 2;
    while (cap < n) {
      TASQ_CHECK(cap <= (size_t{1} << 62));
      cap <<= 1;
    }
    return cap;
  }

  std::vector<Cell> cells_;
  size_t mask_;
  /// Producer ticket counter (multi-writer, CAS-claimed).
  std::atomic<uint64_t> tail_{0};
  /// Consumer cursor. Deliberately non-atomic: single-consumer contract.
  uint64_t head_ = 0;
};

}  // namespace tasq

#endif  // TASQ_COMMON_SYNC_MPSC_QUEUE_H_
