#ifndef TASQ_COMMON_SYNC_PAUSE_H_
#define TASQ_COMMON_SYNC_PAUSE_H_

namespace tasq {

/// One CPU "relax" hint for the body of a bounded busy-wait loop.
///
/// A spin loop without a pause instruction saturates the core's
/// speculation machinery and starves the hyper-twin that is trying to
/// make the condition true; on x86 it can also trigger the memory-order
/// machine-clear penalty when the awaited line finally changes. Every
/// busy-wait in src/ therefore calls CpuRelax() (or escalates to
/// std::this_thread::yield()) in its body — enforced by the
/// spin-without-pause rule of scripts/tasq_sync.py.
///
/// The hint is not a fence and not a syscall: it never blocks, never
/// allocates, and is safe inside TASQ_HOT code.
inline void CpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");  // sync: volatile asm hint, not data
#else
  // No portable pause hint: a compiler barrier at least forces the
  // condition to be re-read instead of hoisted out of the loop.
  asm volatile("" ::: "memory");  // sync: volatile asm barrier, not data
#endif
}

}  // namespace tasq

#endif  // TASQ_COMMON_SYNC_PAUSE_H_
