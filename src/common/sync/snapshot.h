#ifndef TASQ_COMMON_SYNC_SNAPSHOT_H_
#define TASQ_COMMON_SYNC_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/hot.h"
#include "common/mutex.h"
#include "common/sync/pause.h"
#include "common/thread_annotations.h"

namespace tasq {

/// Lock-free publication of an immutable value: any number of readers
/// pin the current version without taking a lock or touching the heap,
/// while writers replace it wholesale via copy-update-swap.
///
/// This is the serving layer's read-mostly primitive (ROADMAP item 1:
/// models and report tables published as immutable snapshots so the
/// request path takes zero locks). The design is a two-slot left-right
/// scheme with reader registration:
///
///   - Two slots each hold one `shared_ptr<const T>` version plus a
///     reader count. Exactly one slot is active at a time.
///   - `Read()` pins the active slot (one atomic increment), re-checks
///     that the slot is still active (a racing `Publish` may have flipped
///     between the load and the increment), and hands out a `View` whose
///     destructor unpins. No mutex, no allocation, no retry unless a
///     publish raced the entry — safe inside TASQ_HOT code.
///   - `Publish()` (serialized on a writer mutex; rare, cold) installs
///     the next version into the retired slot, flips the active index,
///     then waits for the replaced slot's readers to drain and drops its
///     version — so by the time Publish returns, the previous snapshot
///     has been reclaimed unless a caller still owns it via ReadOwned().
///
/// Memory-ordering policy (see DESIGN.md, "Memory-ordering policy"): the
/// flip store, the reader's pin increment, and both re-check/drain loads
/// are seq_cst because the entry protocol is a store-buffering litmus
/// test — with only acquire/release, the writer could miss a freshly
/// pinned reader while that reader simultaneously misses the flip, and
/// both would proceed into the same slot. Everything else is the plain
/// acquire/release publication pattern.
///
/// Lifetime: every `View` must be destroyed before the Snapshot; a View
/// must not be handed across threads without an external happens-before
/// edge. Writers may block briefly (bounded by the longest concurrent
/// reader critical section); readers never block.
template <typename T>
class Snapshot {
 public:
  /// A pinned, read-only reference to one published version. Move-only;
  /// destroying it releases the pin. Keep the critical section short —
  /// a live View delays the *next* Publish, never other readers.
  class View {
   public:
    View(View&& other) noexcept
        : owner_(other.owner_), slot_(other.slot_), value_(other.value_) {
      other.owner_ = nullptr;
    }
    View& operator=(View&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        slot_ = other.slot_;
        value_ = other.value_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    View(const View&) = delete;
    View& operator=(const View&) = delete;
    ~View() { Release(); }

    const T& operator*() const noexcept { return *value_; }
    const T* operator->() const noexcept { return value_; }
    const T* get() const noexcept { return value_; }

   private:
    friend class Snapshot;
    View(const Snapshot* owner, uint32_t slot, const T* value) noexcept
        : owner_(owner), slot_(slot), value_(value) {}

    void Release() noexcept {
      if (owner_ != nullptr) {
        // Release: the reader's loads from the version must complete
        // before the writer can observe the unpin and reclaim it.
        owner_->slots_[slot_].readers.fetch_sub(1, std::memory_order_release);
        owner_ = nullptr;
      }
    }

    // own: borrowed unpinned in Release; the Snapshot outlives its Views
    const Snapshot* owner_ = nullptr;
    uint32_t slot_ = 0;
    // own: borrowed points into the pinned slot's version while pinned
    const T* value_ = nullptr;
  };

  /// Starts at a default-constructed T.
  Snapshot() : Snapshot(std::make_shared<const T>()) {}

  /// Starts at `initial` (must be non-null: Read() never returns an
  /// empty View).
  explicit Snapshot(std::shared_ptr<const T> initial) {
    TASQ_CHECK(initial != nullptr);
    slots_[0].value = std::move(initial);
  }

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Pins and returns the current version. Lock-free and allocation-free
  /// (TASQ_HOT-safe): one atomic increment, two atomic loads, and in the
  /// rare case of a racing Publish one back-out-and-retry round.
  TASQ_HOT View Read() const noexcept {
    for (;;) {
      // sync: seqcst entry protocol is an SB litmus with Publish's flip
      uint32_t idx = active_.load(std::memory_order_seq_cst);
      // sync: seqcst pin must be globally ordered against the flip store
      slots_[idx].readers.fetch_add(1, std::memory_order_seq_cst);
      // Re-check: if the flip landed between the load and the pin, the
      // pin may have hit the retired slot after the writer's drain scan
      // passed it — back out and retry on the new active slot.
      // sync: seqcst see above — one side of the SB pair must observe the other
      if (active_.load(std::memory_order_seq_cst) == idx) {
        // The pinned slot's value is immutable until this View unpins:
        // Publish only writes a slot after draining its readers.
        return View(this, idx, slots_[idx].value.get());
      }
      slots_[idx].readers.fetch_sub(1, std::memory_order_release);
    }
  }

  /// Pins, copies out an owning reference, and unpins. The returned
  /// shared_ptr keeps that version alive past any number of Publish
  /// calls — for callers that hold a snapshot across a long computation
  /// and must not delay publishers. Allocation-free (refcount bump), but
  /// not TASQ_HOT: the copy is not needed on the request path.
  std::shared_ptr<const T> ReadOwned() const {
    View view = Read();
    // Safe concurrent copy: no thread mutates the pinned slot's
    // shared_ptr object itself while readers hold pins.
    return slots_[view.slot_].value;
  }

  /// Publishes `next` (non-null) as the current version and reclaims the
  /// replaced one: when Publish returns, the old version has been
  /// released unless a ReadOwned() caller still owns it. Serialized
  /// against other writers on writer_mutex_; blocks until every reader
  /// still pinning the replaced version unpins. Never call from code
  /// holding a View (self-deadlock).
  void Publish(std::shared_ptr<const T> next) TASQ_EXCLUDES(writer_mutex_) {
    TASQ_CHECK(next != nullptr);
    MutexLock lock(writer_mutex_);
    // Relaxed: active_ is only written under writer_mutex_, so the
    // writer's own last store is already visible to it.
    uint32_t old = active_.load(std::memory_order_relaxed);
    uint32_t idx = old ^ 1u;
    // The retired slot was drained and emptied by the previous Publish;
    // install the next version before making it reachable.
    slots_[idx].value = std::move(next);
    // sync: seqcst flip must be globally ordered against reader pins (SB)
    active_.store(idx, std::memory_order_seq_cst);
    // Grace period: wait out readers that pinned the replaced version
    // before the flip, then reclaim it. New readers cannot pin slot
    // `old` any more (they either see the flip, or their pin is seen
    // by this drain scan — the seq_cst pair above guarantees one).
    WaitForDrain(slots_[old].readers);
    slots_[old].value.reset();
  }

  /// Copy-update-swap convenience: copies the current version, lets
  /// `mutate` edit the copy, publishes the result. Writer-serialized by
  /// Publish; readers see either the old or the new version, never a
  /// torn one.
  template <typename Fn>
  void Update(Fn&& mutate) {
    std::shared_ptr<const T> current = ReadOwned();
    auto next = std::make_shared<T>(*current);
    mutate(*next);
    Publish(std::shared_ptr<const T>(std::move(next)));
  }

 private:
  struct Slot {
    /// Written only by the writer while the slot is retired and drained;
    /// read by readers only while pinned. The pin/flip protocol above is
    /// what makes those phases non-overlapping.
    std::shared_ptr<const T> value;
    /// Number of Views currently pinning this slot.
    mutable std::atomic<uint64_t> readers{0};
  };

  static void WaitForDrain(const std::atomic<uint64_t>& readers) {
    // sync: seqcst drain scan is the writer's side of the SB entry pair
    for (int spins = 0; readers.load(std::memory_order_seq_cst) != 0;
         ++spins) {
      if (spins < 64) {
        CpuRelax();
      } else {
        // Reader critical sections are a few loads; a long drain means
        // the reader thread was preempted — yield to let it finish.
        std::this_thread::yield();
      }
    }
  }

  Slot slots_[2];
  /// Index of the active slot; flipped by Publish, pinned by Read.
  std::atomic<uint32_t> active_{0};
  /// Guarded by writer_mutex_: the flip protocol and both slots' value
  /// fields on the writer side — Publish is the only mutator, so one
  /// writer at a time copies, installs, flips, drains, reclaims. Readers
  /// synchronize through active_/readers, never through this mutex.
  Mutex writer_mutex_;
};

}  // namespace tasq

#endif  // TASQ_COMMON_SYNC_SNAPSHOT_H_
