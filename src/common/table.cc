#include "common/table.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace tasq {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      if (c + 1 < cells.size()) {
        line.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Cell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Cell(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n\n";
}

double ScaleFromEnv() {
  const char* raw = std::getenv("TASQ_SCALE");
  if (raw == nullptr) return 1.0;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (end == raw || v <= 0.0) return 1.0;
  return v;
}

}  // namespace tasq
