#ifndef TASQ_COMMON_TABLE_H_
#define TASQ_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace tasq {

/// Fixed-width text table used by the benchmark harness to print the rows of
/// the paper's tables and figure series. Cells are strings; use `Cell(...)`
/// helpers for numeric formatting. Example:
///
///   TextTable t({"Model", "Pattern", "MAE"});
///   t.AddRow({"GNN", Cell(100.0, 0) + "%", Cell(0.071, 3)});
///   std::cout << t.ToString();
class TextTable {
 public:
  /// Constructs a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty, extra cells are
  /// dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header underline and 2-space column gaps.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `decimals` digits after the point.
std::string Cell(double value, int decimals);

/// Formats an integer cell.
std::string Cell(int64_t value);

/// Writes a section banner ("== title ==") followed by a newline to `os`.
/// Library code never owns stdout; the bench/example binaries pass
/// std::cout explicitly.
void PrintBanner(std::ostream& os, const std::string& title);

/// Reads the TASQ_SCALE environment variable as a positive multiplier for
/// experiment sizes (number of jobs, epochs, ...). Returns 1.0 when unset or
/// invalid. Benches multiply their default sizes by this.
double ScaleFromEnv();

}  // namespace tasq

#endif  // TASQ_COMMON_TABLE_H_
