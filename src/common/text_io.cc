#include "common/text_io.h"

#include <cstdio>
#include <limits>

namespace tasq {

void TextArchiveWriter::Scalar(const std::string& tag, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ << tag << ' ' << buf << '\n';
}

void TextArchiveWriter::Scalar(const std::string& tag, int64_t value) {
  out_ << tag << ' ' << value << '\n';
}

void TextArchiveWriter::String(const std::string& tag,
                               const std::string& value) {
  // Values are single whitespace-free tokens by convention.
  out_ << tag << ' ' << value << '\n';
}

void TextArchiveWriter::Vector(const std::string& tag,
                               const std::vector<double>& values) {
  out_ << tag << ' ' << values.size();
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << ' ' << buf;
  }
  out_ << '\n';
}

bool TextArchiveReader::ExpectTag(const std::string& tag) {
  if (!status_.ok()) return false;
  std::string token;
  if (!(in_ >> token)) {
    Fail("unexpected end of archive; wanted tag '" + tag + "'");
    return false;
  }
  if (token != tag) {
    Fail("archive mismatch: wanted tag '" + tag + "', found '" + token + "'");
    return false;
  }
  return true;
}

void TextArchiveReader::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::InvalidArgument(message);
}

void TextArchiveReader::Scalar(const std::string& tag, double& value) {
  if (!ExpectTag(tag)) return;
  if (!(in_ >> value)) Fail("malformed double for tag '" + tag + "'");
}

void TextArchiveReader::Scalar(const std::string& tag, int64_t& value) {
  if (!ExpectTag(tag)) return;
  if (!(in_ >> value)) Fail("malformed integer for tag '" + tag + "'");
}

void TextArchiveReader::String(const std::string& tag, std::string& value) {
  if (!ExpectTag(tag)) return;
  if (!(in_ >> value)) Fail("malformed string for tag '" + tag + "'");
}

void TextArchiveReader::Vector(const std::string& tag,
                               std::vector<double>& values) {
  if (!ExpectTag(tag)) return;
  int64_t size = 0;
  if (!(in_ >> size) || size < 0) {
    Fail("malformed vector size for tag '" + tag + "'");
    return;
  }
  // Guard against absurd sizes from corrupted archives.
  if (size > (int64_t{1} << 32)) {
    Fail("vector size out of range for tag '" + tag + "'");
    return;
  }
  values.resize(static_cast<size_t>(size));
  for (double& v : values) {
    if (!(in_ >> v)) {
      Fail("malformed vector element for tag '" + tag + "'");
      return;
    }
  }
}

}  // namespace tasq
