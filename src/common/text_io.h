#ifndef TASQ_COMMON_TEXT_IO_H_
#define TASQ_COMMON_TEXT_IO_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace tasq {

/// Minimal tagged text archive used by the model store: whitespace-
/// separated `tag value...` records with full-precision doubles. The format
/// is self-describing enough to catch loading the wrong artifact (every
/// record is preceded by its expected tag) while staying dependency-free
/// and diff-friendly.
///
///   TextArchiveWriter w(stream);
///   w.Scalar("epochs", 60);
///   w.Vector("weights", weights);
///
///   TextArchiveReader r(stream);
///   int64_t epochs;   r.Scalar("epochs", epochs);
///   std::vector<double> weights;  r.Vector("weights", weights);
///   if (!r.status().ok()) ...
class TextArchiveWriter {
 public:
  explicit TextArchiveWriter(std::ostream& out) : out_(out) {}

  void Scalar(const std::string& tag, double value);
  void Scalar(const std::string& tag, int64_t value);
  void String(const std::string& tag, const std::string& value);
  /// Writes the size followed by the elements.
  void Vector(const std::string& tag, const std::vector<double>& values);

 private:
  std::ostream& out_;
};

/// Reads archives produced by TextArchiveWriter. The first failed read
/// latches an error status; subsequent reads are no-ops, so callers can
/// read a whole object and check `status()` once.
class TextArchiveReader {
 public:
  explicit TextArchiveReader(std::istream& in) : in_(in) {}

  void Scalar(const std::string& tag, double& value);
  void Scalar(const std::string& tag, int64_t& value);
  void String(const std::string& tag, std::string& value);
  void Vector(const std::string& tag, std::vector<double>& values);

  const Status& status() const { return status_; }

  /// Latches an error from a caller-side consistency check (e.g., two
  /// loaded vectors whose sizes must agree).
  void ForceError(const std::string& message) { Fail(message); }

 private:
  /// Consumes one token and verifies it equals `tag`.
  bool ExpectTag(const std::string& tag);
  void Fail(const std::string& message);

  std::istream& in_;
  Status status_;
};

}  // namespace tasq

#endif  // TASQ_COMMON_TEXT_IO_H_
