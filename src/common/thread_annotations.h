#ifndef TASQ_COMMON_THREAD_ANNOTATIONS_H_
#define TASQ_COMMON_THREAD_ANNOTATIONS_H_

/// Macros over Clang's thread-safety attributes (-Wthread-safety), so the
/// locking contract of the concurrent modules (src/serve, common/parallel.h)
/// is stated in the type system and checked at compile time:
///
///   * which mutex guards which field       TASQ_GUARDED_BY(mu)
///   * which functions need a lock held     TASQ_REQUIRES(mu)
///   * which functions take/drop a lock     TASQ_ACQUIRE(mu) / TASQ_RELEASE(mu)
///   * which functions must NOT hold it     TASQ_EXCLUDES(mu)
///
/// Under Clang with `-Wthread-safety` (CMake option TASQ_THREAD_SAFETY=ON
/// promotes it to -Werror=thread-safety; CI job `static-analysis`), touching
/// an annotated field without its mutex is a build break, not a latent race.
/// Under other compilers every macro expands to nothing, so the annotations
/// cost nothing and cannot change behavior.
///
/// The annotations only bite on types declared as capabilities — use the
/// tasq::Mutex / tasq::MutexLock / tasq::CondVar wrappers from
/// common/mutex.h, never raw std::mutex (enforced by the `raw-lock-in-src`
/// and `mutex-unannotated` rules in scripts/tasq_lint.py).
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define TASQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TASQ_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability ("mutex" by convention).
#define TASQ_CAPABILITY(x) TASQ_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock).
#define TASQ_SCOPED_CAPABILITY TASQ_THREAD_ANNOTATION_(scoped_lockable)

/// Field annotation: reads and writes require `x` to be held.
#define TASQ_GUARDED_BY(x) TASQ_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer-field annotation: the pointee (not the pointer) is guarded.
#define TASQ_PT_GUARDED_BY(x) TASQ_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function annotation: callers must hold every listed capability, and the
/// function neither acquires nor releases them.
#define TASQ_REQUIRES(...) \
  TASQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities; callers must not
/// already hold them.
#define TASQ_ACQUIRE(...) \
  TASQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities; callers must hold
/// them on entry.
#define TASQ_RELEASE(...) \
  TASQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function annotation: may acquire the capability; the boolean/pointer
/// return value tells whether it did (first argument is the success value).
#define TASQ_TRY_ACQUIRE(...) \
  TASQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function annotation: callers must NOT hold the listed capabilities
/// (deadlock prevention for functions that acquire them internally).
#define TASQ_EXCLUDES(...) TASQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function annotation: returns a reference to the given capability (for
/// accessor functions exposing a mutex).
#define TASQ_RETURN_CAPABILITY(x) TASQ_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must explain
/// why the contract cannot be expressed (and is expected to be rare).
#define TASQ_NO_THREAD_SAFETY_ANALYSIS \
  TASQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // TASQ_COMMON_THREAD_ANNOTATIONS_H_
