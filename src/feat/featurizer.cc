#include "feat/featurizer.h"

#include <cmath>

#include "common/fmath.h"

namespace tasq {

void Featurizer::OperatorRow(const OperatorNode& node, double* out) {
  const OperatorFeatures& f = node.features;
  size_t i = 0;
  out[i++] = CheckedLog1p(std::max(0.0, f.output_cardinality));
  out[i++] = CheckedLog1p(std::max(0.0, f.leaf_input_cardinality));
  out[i++] = CheckedLog1p(std::max(0.0, f.children_input_cardinality));
  out[i++] = CheckedLog1p(std::max(0.0, f.average_row_length));
  out[i++] = CheckedLog1p(std::max(0.0, f.cost_subtree));
  out[i++] = CheckedLog1p(std::max(0.0, f.cost_exclusive));
  out[i++] = CheckedLog1p(std::max(0.0, f.cost_total));
  out[i++] = CheckedLog1p(static_cast<double>(std::max(0, f.num_partitions)));
  out[i++] = static_cast<double>(f.num_partitioning_columns);
  out[i++] = static_cast<double>(f.num_sort_columns);
  for (size_t k = 0; k < kPhysicalOperatorCount; ++k) out[i + k] = 0.0;
  out[i + static_cast<size_t>(node.op)] = 1.0;
  i += kPhysicalOperatorCount;
  for (size_t k = 0; k < kPartitioningMethodCount; ++k) out[i + k] = 0.0;
  if (node.partitioning != PartitioningMethod::kNone) {
    out[i + static_cast<size_t>(node.partitioning) - 1] = 1.0;
  }
}

std::string Featurizer::JobFeatureName(size_t index) {
  static constexpr const char* kNumeric[] = {
      "mean log output_cardinality", "mean log leaf_input_cardinality",
      "mean log children_input_cardinality", "mean log average_row_length",
      "mean log cost_subtree", "mean log cost_exclusive",
      "mean log cost_total", "mean log num_partitions",
      "mean num_partitioning_columns", "mean num_sort_columns"};
  if (index < 10) return kNumeric[index];
  if (index < 10 + kPhysicalOperatorCount) {
    return std::string("count ") +
           OperatorName(static_cast<PhysicalOperator>(index - 10));
  }
  size_t partition_base = 10 + kPhysicalOperatorCount;
  if (index < partition_base + kPartitioningMethodCount) {
    return std::string("count partitioning ") +
           PartitioningMethodName(static_cast<PartitioningMethod>(
               index - partition_base + 1));
  }
  if (index == kOperatorFeatureDim) return "num_operators";
  if (index == kOperatorFeatureDim + 1) return "num_stages";
  if (index == kJobFeatureDim) return "log1p tokens";
  return "unknown";
}

Status Featurizer::JobLevelInto(const JobGraph& graph, double* out) const {
  Status valid = graph.Validate();
  if (!valid.ok()) return valid;
  double row[kOperatorFeatureDim];
  for (size_t k = 0; k < kJobFeatureDim; ++k) out[k] = 0.0;
  double n = static_cast<double>(graph.operators.size());
  for (const OperatorNode& node : graph.operators) {
    OperatorRow(node, row);
    // Numeric features (first 10) are aggregated by mean; categorical
    // one-hots by frequency count (paper §4.3).
    for (size_t k = 0; k < 10; ++k) out[k] += row[k] / n;
    for (size_t k = 10; k < kOperatorFeatureDim; ++k) out[k] += row[k];
  }
  out[kOperatorFeatureDim] = n;
  out[kOperatorFeatureDim + 1] = static_cast<double>(graph.NumStages());
  return Status::Ok();
}

Result<std::vector<double>> Featurizer::JobLevel(const JobGraph& graph) const {
  std::vector<double> agg(kJobFeatureDim, 0.0);
  Status status = JobLevelInto(graph, agg.data());
  if (!status.ok()) return status;
  return agg;
}

Result<JobFeatures> Featurizer::Featurize(const JobGraph& graph) const {
  Result<std::vector<double>> job_vec = JobLevel(graph);
  if (!job_vec.ok()) return job_vec.status();
  JobFeatures features;
  features.job_vector = std::move(job_vec.value());
  size_t n = graph.operators.size();
  features.num_operators = n;
  features.op_matrix.resize(n * kOperatorFeatureDim);
  for (size_t i = 0; i < n; ++i) {
    OperatorRow(graph.operators[i],
                features.op_matrix.data() + i * kOperatorFeatureDim);
  }
  // GCN-normalized adjacency over the undirected DAG skeleton with self
  // loops: D^-1/2 (A + A^T + I) D^-1/2.
  std::vector<double> adj(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) adj[i * n + i] = 1.0;
  for (const auto& [from, to] : graph.Edges()) {
    adj[static_cast<size_t>(from) * n + static_cast<size_t>(to)] = 1.0;
    adj[static_cast<size_t>(to) * n + static_cast<size_t>(from)] = 1.0;
  }
  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (size_t j = 0; j < n; ++j) degree += adj[i * n + j];
    inv_sqrt_degree[i] = 1.0 / CheckedSqrt(degree);
  }
  features.norm_adjacency.resize(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      features.norm_adjacency[i * n + j] =
          adj[i * n + j] * inv_sqrt_degree[i] * inv_sqrt_degree[j];
    }
  }
  return features;
}

Result<FeatureScaler> FeatureScaler::Fit(const std::vector<double>& data,
                                         size_t rows, size_t dim) {
  if (rows == 0 || dim == 0 || data.size() != rows * dim) {
    return Status::InvalidArgument("scaler needs a non-empty rows*dim matrix");
  }
  std::vector<double> mean(dim, 0.0);
  std::vector<double> std(dim, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < dim; ++c) mean[c] += data[r * dim + c];
  }
  for (double& m : mean) m /= static_cast<double>(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      double d = data[r * dim + c] - mean[c];
      std[c] += d * d;
    }
  }
  for (double& s : std) {
    s = CheckedSqrt(s / static_cast<double>(rows));
    if (s < 1e-12) s = 1.0;  // Constant column: center only.
  }
  return FeatureScaler(std::move(mean), std::move(std));
}

void FeatureScaler::Serialize(TextArchiveWriter& writer,
                         const std::string& tag) const {
  writer.Vector(tag + ".mean", mean_);
  writer.Vector(tag + ".std", std_);
}

FeatureScaler FeatureScaler::Deserialize(TextArchiveReader& reader,
                                  const std::string& tag) {
  std::vector<double> mean;
  std::vector<double> std;
  reader.Vector(tag + ".mean", mean);
  reader.Vector(tag + ".std", std);
  if (mean.size() != std.size()) {
    reader.ForceError("scaler mean/std size mismatch for tag '" + tag + "'");
    return FeatureScaler({}, {});
  }
  return FeatureScaler(std::move(mean), std::move(std));
}

void FeatureScaler::Transform(std::vector<double>& vec) const {
  TransformRow(vec.data(), vec.size());
}

void FeatureScaler::TransformRow(double* row, size_t dim) const {
  for (size_t c = 0; c < dim && c < mean_.size(); ++c) {
    row[c] = (row[c] - mean_[c]) / std_[c];
  }
}

void FeatureScaler::TransformMatrix(std::vector<double>& data) const {
  size_t dim = mean_.size();
  for (size_t offset = 0; offset + dim <= data.size(); offset += dim) {
    for (size_t c = 0; c < dim; ++c) {
      data[offset + c] = (data[offset + c] - mean_[c]) / std_[c];
    }
  }
}

}  // namespace tasq
