#ifndef TASQ_FEAT_FEATURIZER_H_
#define TASQ_FEAT_FEATURIZER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/text_io.h"
#include "workload/job_graph.h"

namespace tasq {

/// Featurized views of a job graph (paper §4.3, Table 2):
///  * `job_vector` — the aggregated job-level features used by XGBoost and
///    the NN (continuous/count features aggregated by mean, categorical
///    features by frequency count, plus operator and stage counts);
///  * `op_matrix` — the N x Po operator-level matrix used by the GNN;
///  * `norm_adjacency` — the GCN-normalized adjacency
///    D^-1/2 (A + A^T + I) D^-1/2 over the operator DAG (message passing is
///    symmetric, as in standard GCNs).
///
/// Cardinalities, costs, row lengths and partition counts span orders of
/// magnitude, so they are log1p-scaled at featurization time.
struct JobFeatures {
  std::vector<double> job_vector;
  size_t num_operators = 0;
  /// Row-major N x kOperatorFeatureDim.
  std::vector<double> op_matrix;
  /// Row-major N x N.
  std::vector<double> norm_adjacency;
};

/// Maps job graphs to model inputs. Stateless; all layout constants are
/// static so models can size themselves without an instance.
class Featurizer {
 public:
  /// 7 log-scaled continuous + 3 discrete + 35 operator one-hot +
  /// 4 partitioning one-hot.
  static constexpr size_t kOperatorFeatureDim =
      7 + 3 + kPhysicalOperatorCount + kPartitioningMethodCount;

  /// Means of the 10 numeric features, frequency counts of the 39
  /// categorical indicators, plus operator count and stage count.
  static constexpr size_t kJobFeatureDim =
      7 + 3 + kPhysicalOperatorCount + kPartitioningMethodCount + 2;

  /// Featurizes all views of `graph`. Fails on an invalid graph.
  TASQ_NODISCARD Result<JobFeatures> Featurize(const JobGraph& graph) const;

  /// Only the aggregated job-level vector (cheaper; used by XGBoost/NN).
  TASQ_NODISCARD Result<std::vector<double>> JobLevel(const JobGraph& graph) const;

  /// JobLevel into a caller-provided buffer of kJobFeatureDim doubles.
  /// Heap-allocation-free (the per-operator row lives on the stack —
  /// both dims are constexpr): this is the cold serving path's
  /// featurizer, bit-identical to JobLevel (which delegates here).
  TASQ_NODISCARD Status JobLevelInto(const JobGraph& graph, double* out) const;

  /// Fills `out` (size kOperatorFeatureDim) with one operator's features.
  static void OperatorRow(const OperatorNode& node, double* out);

  /// Human-readable name of job-level feature `index` (e.g.,
  /// "mean log cost_subtree", "count HashJoin", "num_operators").
  /// Index kJobFeatureDim names the token feature the XGBoost runtime
  /// model appends ("log1p tokens"); anything beyond is "unknown".
  static std::string JobFeatureName(size_t index);
};

/// Per-dimension standardization (z-score) fitted on a training matrix and
/// applied at training and scoring time. Dimensions with zero variance are
/// centered only.
class FeatureScaler {
 public:
  /// Fits mean/std per column over `rows` vectors of dimension `dim` stored
  /// row-major in `data`. Requires a non-empty matrix.
  TASQ_NODISCARD static Result<FeatureScaler> Fit(const std::vector<double>& data,
                                   size_t rows, size_t dim);

  /// Standardizes `vec` in place. `vec.size()` must equal `dim()`.
  void Transform(std::vector<double>& vec) const;

  /// Standardizes a row-major matrix in place (size must be rows * dim()).
  void TransformMatrix(std::vector<double>& data) const;

  /// Standardizes `dim` values in place starting at `row` (the
  /// allocation-free flavor used by the serving path; `dim` values beyond
  /// the fitted dimension are left untouched, matching Transform).
  void TransformRow(double* row, size_t dim) const;

  size_t dim() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& std() const { return std_; }

  /// Writes the scaler into an archive under `tag`.
  void Serialize(TextArchiveWriter& writer, const std::string& tag) const;

  /// Reads a scaler written by Save; on malformed input the reader's
  /// status latches and an empty scaler is returned.
  static FeatureScaler Deserialize(TextArchiveReader& reader, const std::string& tag);

 private:
  FeatureScaler(std::vector<double> mean, std::vector<double> std)
      : mean_(std::move(mean)), std_(std::move(std)) {}

  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace tasq

#endif  // TASQ_FEAT_FEATURIZER_H_
