#include "gbdt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/fmath.h"
#include "common/hot.h"
#include "common/rng.h"

namespace tasq {
namespace {

// Squared-error gradient/hessian, hoisted out of the per-row objective
// branch so the compiler sees a straight-line two-output elementwise
// kernel over __restrict spans. (The Gamma branch calls ClampedExp per
// row and stays scalar by design.)
void SquaredErrorGradHess(const double* __restrict score,
                          const double* __restrict targets,
                          double* __restrict grad, double* __restrict hess,
                          size_t n) {
  TASQ_VEC
  for (size_t i = 0; i < n; ++i) {
    grad[i] = score[i] - targets[i];
    hess[i] = 1.0;
  }
}

double LeafWeight(double grad, double hess, double l2) {
  return -grad / (hess + l2);
}

double SplitScore(double grad, double hess, double l2) {
  return grad * grad / (hess + l2);
}

// The gather kernels take __restrict *parameters* rather than local
// __restrict pointers: GCC only propagates the no-alias guarantee from
// parameter qualifiers, and without it the gather loads get no vectype /
// a possible-alias refusal (empirically verified; tasq_vec.py would
// fire vec-not-vectorized on the local-pointer spelling).
void GatherPack(const int* __restrict idx, const double* __restrict g,
                const double* __restrict h, double* __restrict ng,
                double* __restrict nh, size_t n) {
  // The only indexed reads of grad/hess in the whole split search: one
  // fused gather pass per node instead of one gather per (feature, row).
  TASQ_VEC
  for (size_t i = 0; i < n; ++i) {
    ng[i] = g[static_cast<size_t>(idx[i])];
    nh[i] = h[static_cast<size_t>(idx[i])];
  }
}

void GatherBins(const int* __restrict idx, const int32_t* __restrict col,
                int32_t* __restrict nb, size_t n) {
  // Bin gather from the feature-major column (unit-stride destination).
  TASQ_VEC
  for (size_t i = 0; i < n; ++i) {
    nb[i] = col[static_cast<size_t>(idx[i])];
  }
}

}  // namespace

namespace gbdt_internal {

void PackNode(const std::vector<int>& samples, const std::vector<double>& grad,
              const std::vector<double>& hess, HistScratch& scratch) {
  size_t n = samples.size();
  scratch.node_grad.resize(n);
  scratch.node_hess.resize(n);
  GatherPack(samples.data(), grad.data(), hess.data(),
             scratch.node_grad.data(), scratch.node_hess.data(), n);
}

void BuildFeatureHistogram(const int32_t* col, const std::vector<int>& samples,
                           size_t nbins, HistScratch& scratch) {
  size_t n = samples.size();
  scratch.node_bins.resize(n);
  scratch.grad_sum.assign(nbins, 0.0);
  scratch.hess_sum.assign(nbins, 0.0);
  scratch.count.assign(nbins, 0);
  GatherBins(samples.data(), col, scratch.node_bins.data(), n);
  const int32_t* __restrict nb = scratch.node_bins.data();
  const double* __restrict ng = scratch.node_grad.data();
  const double* __restrict nh = scratch.node_hess.data();
  double* __restrict gs = scratch.grad_sum.data();
  double* __restrict hs = scratch.hess_sum.data();
  int* __restrict cnt = scratch.count.data();
  // Deliberately NOT TASQ_VEC: the scatter's bin indices are
  // data-dependent, so lanes can collide on the same accumulator and the
  // vectorizer rightly refuses. The packs above make every *read* here
  // unit-stride, which is the useful part. Accumulation order per bin is
  // samples order, exactly as the historical row-major build.
  for (size_t i = 0; i < n; ++i) {
    int32_t b = nb[i];
    gs[b] += ng[i];
    hs[b] += nh[i];
    ++cnt[b];
  }
}

}  // namespace gbdt_internal

GbdtRegressor::GbdtRegressor(GbdtOptions options)
    : options_(std::move(options)) {}

double GbdtRegressor::Tree::Eval(const double* row) const {
  int node = 0;
  while (nodes[static_cast<size_t>(node)].feature >= 0) {
    const TreeNode& n = nodes[static_cast<size_t>(node)];
    // Training buckets a value equal to a threshold into the *right* bin
    // (upper_bound semantics), so evaluation must use a strict comparison.
    node = row[n.feature] < n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<size_t>(node)].value;
}

Status GbdtRegressor::Train(const std::vector<double>& features, size_t rows,
                            size_t dim, const std::vector<double>& targets) {
  if (rows == 0 || dim == 0 || features.size() != rows * dim ||
      targets.size() != rows) {
    return Status::InvalidArgument("feature/target matrix sizes mismatch");
  }
  for (double y : targets) {
    // isfinite first: a NaN target must not reach the ordered comparison
    // below (FE_INVALID under TASQ_FPE) or the gradient loop at all.
    if (!std::isfinite(y)) {
      return Status::InvalidArgument("targets must be finite");
    }
    if (options_.objective == GbdtOptions::Objective::kGamma && y <= 0.0) {
      return Status::InvalidArgument(
          "gamma objective requires positive targets");
    }
  }
  dim_ = dim;
  trees_.clear();

  // Base score in link space.
  double mean = 0.0;
  for (double y : targets) mean += y;
  mean /= static_cast<double>(rows);
  base_score_ = options_.objective == GbdtOptions::Objective::kGamma
                    ? CheckedLog(std::max(mean, 1e-12))
                    : mean;
  has_base_ = true;

  // Quantile thresholds per feature, computed once at the root.
  size_t bins = static_cast<size_t>(std::max(2, options_.max_bins));
  std::vector<std::vector<double>> thresholds(dim);
  {
    std::vector<double> column(rows);
    for (size_t f = 0; f < dim; ++f) {
      for (size_t r = 0; r < rows; ++r) column[r] = features[r * dim + f];
      std::sort(column.begin(), column.end());
      std::vector<double>& t = thresholds[f];
      for (size_t b = 1; b < bins; ++b) {
        double q = static_cast<double>(b) / static_cast<double>(bins);
        double v = column[static_cast<size_t>(
            q * static_cast<double>(rows - 1))];
        if (t.empty() || v > t.back()) t.push_back(v);
      }
    }
  }
  // Bin index per (feature, row): the number of thresholds <= value.
  // Feature-major (column f spans [f*rows, (f+1)*rows)) so the per-node
  // histogram build walks one contiguous column per feature; int32 rather
  // than uint16 because the bin-gather pass only vectorizes on 32-bit
  // element types (see DESIGN.md "Vectorization policy").
  std::vector<int32_t> bin_index(rows * dim);
  for (size_t f = 0; f < dim; ++f) {
    const auto& t = thresholds[f];
    int32_t* col = &bin_index[f * rows];
    for (size_t r = 0; r < rows; ++r) {
      double v = features[r * dim + f];
      col[r] = static_cast<int32_t>(
          std::upper_bound(t.begin(), t.end(), v) - t.begin());
    }
  }

  std::vector<double> score(rows, base_score_);
  std::vector<double> grad(rows);
  std::vector<double> hess(rows);
  Rng rng(options_.seed);

  gbdt_internal::HistScratch scratch;

  for (int tree_index = 0; tree_index < options_.num_trees; ++tree_index) {
    // First/second derivatives of the objective w.r.t. the link-space
    // score F, with the objective branch hoisted out of the row loop.
    if (options_.objective == GbdtOptions::Objective::kGamma) {
      for (size_t r = 0; r < rows; ++r) {
        double ratio = targets[r] * ClampedExp(-score[r]);
        grad[r] = 1.0 - ratio;
        hess[r] = ratio;
      }
    } else {
      SquaredErrorGradHess(score.data(), targets.data(), grad.data(),
                           hess.data(), rows);
    }
    std::vector<int> samples;
    samples.reserve(rows);
    if (options_.subsample < 1.0) {
      for (size_t r = 0; r < rows; ++r) {
        if (rng.Bernoulli(options_.subsample)) {
          samples.push_back(static_cast<int>(r));
        }
      }
      if (samples.empty()) samples.push_back(0);
    } else {
      samples.resize(rows);
      std::iota(samples.begin(), samples.end(), 0);
    }
    Tree tree;
    // The features matrix is needed to evaluate; splits use bins only. The
    // recursion takes grad/hess/bins/thresholds by reference and threads
    // one shared HistScratch so histogram buffers allocate once per Train.
    GrowNode(tree, samples, 0, grad, hess, bin_index, rows, thresholds,
             scratch);
    // Update scores with the shrunken tree output.
    for (size_t r = 0; r < rows; ++r) {
      score[r] += options_.learning_rate * tree.Eval(&features[r * dim]);
    }
    trees_.push_back(std::move(tree));
  }
  return Status::Ok();
}

int GbdtRegressor::GrowNode(Tree& tree, std::vector<int>& samples, int depth,
                            const std::vector<double>& grad,
                            const std::vector<double>& hess,
                            const std::vector<int32_t>& bins, size_t rows,
                            const std::vector<std::vector<double>>& thresholds,
                            gbdt_internal::HistScratch& scratch) {
  // Pack grad/hess for this node once; every feature's histogram pass
  // below then reads nothing but unit-stride spans.
  gbdt_internal::PackNode(samples, grad, hess, scratch);
  // Node totals accumulate sequentially in samples order — the exact
  // association the historical gather loop used, keeping trained trees
  // bit-identical across the restructure.
  double total_grad = 0.0;
  double total_hess = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    total_grad += scratch.node_grad[i];
    total_hess += scratch.node_hess[i];
  }
  int node_index = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes.back().value =
      LeafWeight(total_grad, total_hess, options_.l2_lambda);

  if (depth >= options_.max_depth ||
      static_cast<int>(samples.size()) < 2 * options_.min_samples_leaf) {
    return node_index;
  }

  // Best split across all features and their quantile thresholds.
  double parent_score = SplitScore(total_grad, total_hess, options_.l2_lambda);
  double best_gain = 1e-9;
  int best_feature = -1;
  int best_bin = -1;
  for (size_t f = 0; f < dim_; ++f) {
    size_t nbins = thresholds[f].size() + 1;
    if (nbins < 2) continue;
    gbdt_internal::BuildFeatureHistogram(&bins[f * rows], samples, nbins,
                                         scratch);
    double left_grad = 0.0;
    double left_hess = 0.0;
    int left_count = 0;
    for (size_t b = 0; b + 1 < nbins; ++b) {
      left_grad += scratch.grad_sum[b];
      left_hess += scratch.hess_sum[b];
      left_count += scratch.count[b];
      int right_count = static_cast<int>(samples.size()) - left_count;
      if (left_count < options_.min_samples_leaf ||
          right_count < options_.min_samples_leaf) {
        continue;
      }
      double gain =
          0.5 * (SplitScore(left_grad, left_hess, options_.l2_lambda) +
                 SplitScore(total_grad - left_grad, total_hess - left_hess,
                            options_.l2_lambda) -
                 parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = static_cast<int>(b);
      }
    }
  }
  if (best_feature < 0) return node_index;

  double threshold =
      thresholds[static_cast<size_t>(best_feature)][static_cast<size_t>(best_bin)];
  std::vector<int> left;
  std::vector<int> right;
  const int32_t* best_col = &bins[static_cast<size_t>(best_feature) * rows];
  for (int r : samples) {
    if (best_col[static_cast<size_t>(r)] <= best_bin) {
      left.push_back(r);
    } else {
      right.push_back(r);
    }
  }
  // Free the parent's sample list before recursing to bound memory.
  samples.clear();
  samples.shrink_to_fit();

  int left_child = GrowNode(tree, left, depth + 1, grad, hess, bins, rows,
                            thresholds, scratch);
  int right_child = GrowNode(tree, right, depth + 1, grad, hess, bins, rows,
                             thresholds, scratch);
  TreeNode& node = tree.nodes[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = threshold;
  node.left = left_child;
  node.right = right_child;
  return node_index;
}

std::vector<double> GbdtRegressor::FeatureImportance() const {
  std::vector<double> importance(dim_, 0.0);
  double total = 0.0;
  for (const Tree& tree : trees_) {
    for (const TreeNode& node : tree.nodes) {
      if (node.feature >= 0 &&
          static_cast<size_t>(node.feature) < importance.size()) {
        importance[static_cast<size_t>(node.feature)] += 1.0;
        total += 1.0;
      }
    }
  }
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

void GbdtRegressor::Serialize(TextArchiveWriter& writer) const {
  writer.String("gbdt.format", "tasq-gbdt-v1");
  writer.Scalar("gbdt.objective",
                static_cast<int64_t>(options_.objective ==
                                             GbdtOptions::Objective::kGamma
                                         ? 1
                                         : 0));
  writer.Scalar("gbdt.num_trees_opt", static_cast<int64_t>(options_.num_trees));
  writer.Scalar("gbdt.max_depth", static_cast<int64_t>(options_.max_depth));
  writer.Scalar("gbdt.learning_rate", options_.learning_rate);
  writer.Scalar("gbdt.min_samples_leaf",
                static_cast<int64_t>(options_.min_samples_leaf));
  writer.Scalar("gbdt.l2_lambda", options_.l2_lambda);
  writer.Scalar("gbdt.max_bins", static_cast<int64_t>(options_.max_bins));
  writer.Scalar("gbdt.subsample", options_.subsample);
  writer.Scalar("gbdt.seed", static_cast<int64_t>(options_.seed));
  writer.Scalar("gbdt.dim", static_cast<int64_t>(dim_));
  writer.Scalar("gbdt.has_base", static_cast<int64_t>(has_base_ ? 1 : 0));
  writer.Scalar("gbdt.base_score", base_score_);
  writer.Scalar("gbdt.num_trees", static_cast<int64_t>(trees_.size()));
  for (const Tree& tree : trees_) {
    // Flatten the node array: 5 numbers per node.
    std::vector<double> flat;
    flat.reserve(tree.nodes.size() * 5);
    for (const TreeNode& node : tree.nodes) {
      flat.push_back(static_cast<double>(node.feature));
      flat.push_back(node.threshold);
      flat.push_back(static_cast<double>(node.left));
      flat.push_back(static_cast<double>(node.right));
      flat.push_back(node.value);
    }
    writer.Vector("gbdt.tree", flat);
  }
}

GbdtRegressor GbdtRegressor::Deserialize(TextArchiveReader& reader) {
  std::string format;
  reader.String("gbdt.format", format);
  if (reader.status().ok() && format != "tasq-gbdt-v1") {
    reader.ForceError("unknown gbdt archive format '" + format + "'");
  }
  GbdtOptions options;
  int64_t objective = 0;
  int64_t num_trees_opt = 0;
  int64_t max_depth = 0;
  int64_t min_leaf = 0;
  int64_t max_bins = 0;
  int64_t seed = 0;
  reader.Scalar("gbdt.objective", objective);
  reader.Scalar("gbdt.num_trees_opt", num_trees_opt);
  reader.Scalar("gbdt.max_depth", max_depth);
  reader.Scalar("gbdt.learning_rate", options.learning_rate);
  reader.Scalar("gbdt.min_samples_leaf", min_leaf);
  reader.Scalar("gbdt.l2_lambda", options.l2_lambda);
  reader.Scalar("gbdt.max_bins", max_bins);
  reader.Scalar("gbdt.subsample", options.subsample);
  reader.Scalar("gbdt.seed", seed);
  options.objective = objective == 1 ? GbdtOptions::Objective::kGamma
                                     : GbdtOptions::Objective::kSquaredError;
  options.num_trees = static_cast<int>(num_trees_opt);
  options.max_depth = static_cast<int>(max_depth);
  options.min_samples_leaf = static_cast<int>(min_leaf);
  options.max_bins = static_cast<int>(max_bins);
  options.seed = static_cast<uint64_t>(seed);

  GbdtRegressor model(options);
  int64_t dim = 0;
  int64_t has_base = 0;
  int64_t tree_count = 0;
  reader.Scalar("gbdt.dim", dim);
  reader.Scalar("gbdt.has_base", has_base);
  reader.Scalar("gbdt.base_score", model.base_score_);
  reader.Scalar("gbdt.num_trees", tree_count);
  if (!reader.status().ok() || dim < 0 || tree_count < 0) {
    return GbdtRegressor(options);
  }
  model.dim_ = static_cast<size_t>(dim);
  model.has_base_ = has_base == 1;
  for (int64_t t = 0; t < tree_count; ++t) {
    std::vector<double> flat;
    reader.Vector("gbdt.tree", flat);
    if (!reader.status().ok() || flat.size() % 5 != 0) {
      reader.ForceError("malformed gbdt tree record");
      return GbdtRegressor(options);
    }
    Tree tree;
    tree.nodes.reserve(flat.size() / 5);
    int node_count = static_cast<int>(flat.size() / 5);
    for (size_t i = 0; i < flat.size(); i += 5) {
      TreeNode node;
      node.feature = static_cast<int>(flat[i]);
      node.threshold = flat[i + 1];
      node.left = static_cast<int>(flat[i + 2]);
      node.right = static_cast<int>(flat[i + 3]);
      node.value = flat[i + 4];
      if (node.feature >= static_cast<int>(model.dim_) ||
          node.left >= node_count || node.right >= node_count) {
        reader.ForceError("gbdt tree node references out of range");
        return GbdtRegressor(options);
      }
      tree.nodes.push_back(node);
    }
    if (tree.nodes.empty()) {
      reader.ForceError("gbdt tree has no nodes");
      return GbdtRegressor(options);
    }
    model.trees_.push_back(std::move(tree));
  }
  return model;
}

double GbdtRegressor::Predict(const double* row) const {
  if (!has_base_) return 0.0;
  double score = base_score_;
  for (const Tree& tree : trees_) {
    score += options_.learning_rate * tree.Eval(row);
  }
  return options_.objective == GbdtOptions::Objective::kGamma
             ? ClampedExp(score)
             : score;
}

}  // namespace tasq
