#include "gbdt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/fmath.h"
#include "common/rng.h"

namespace tasq {
namespace {

// Per-tree split search state shared down the recursion via pointers held
// in GrowNode's signature; kept free of globals.
struct BinHistogram {
  std::vector<double> grad_sum;
  std::vector<double> hess_sum;
  std::vector<int> count;
  void Reset(size_t bins) {
    grad_sum.assign(bins, 0.0);
    hess_sum.assign(bins, 0.0);
    count.assign(bins, 0);
  }
};

double LeafWeight(double grad, double hess, double l2) {
  return -grad / (hess + l2);
}

double SplitScore(double grad, double hess, double l2) {
  return grad * grad / (hess + l2);
}

}  // namespace

GbdtRegressor::GbdtRegressor(GbdtOptions options)
    : options_(std::move(options)) {}

double GbdtRegressor::Tree::Eval(const double* row) const {
  int node = 0;
  while (nodes[static_cast<size_t>(node)].feature >= 0) {
    const TreeNode& n = nodes[static_cast<size_t>(node)];
    // Training buckets a value equal to a threshold into the *right* bin
    // (upper_bound semantics), so evaluation must use a strict comparison.
    node = row[n.feature] < n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<size_t>(node)].value;
}

Status GbdtRegressor::Train(const std::vector<double>& features, size_t rows,
                            size_t dim, const std::vector<double>& targets) {
  if (rows == 0 || dim == 0 || features.size() != rows * dim ||
      targets.size() != rows) {
    return Status::InvalidArgument("feature/target matrix sizes mismatch");
  }
  for (double y : targets) {
    // isfinite first: a NaN target must not reach the ordered comparison
    // below (FE_INVALID under TASQ_FPE) or the gradient loop at all.
    if (!std::isfinite(y)) {
      return Status::InvalidArgument("targets must be finite");
    }
    if (options_.objective == GbdtOptions::Objective::kGamma && y <= 0.0) {
      return Status::InvalidArgument(
          "gamma objective requires positive targets");
    }
  }
  dim_ = dim;
  trees_.clear();

  // Base score in link space.
  double mean = 0.0;
  for (double y : targets) mean += y;
  mean /= static_cast<double>(rows);
  base_score_ = options_.objective == GbdtOptions::Objective::kGamma
                    ? CheckedLog(std::max(mean, 1e-12))
                    : mean;
  has_base_ = true;

  // Quantile thresholds per feature, computed once at the root.
  size_t bins = static_cast<size_t>(std::max(2, options_.max_bins));
  std::vector<std::vector<double>> thresholds(dim);
  {
    std::vector<double> column(rows);
    for (size_t f = 0; f < dim; ++f) {
      for (size_t r = 0; r < rows; ++r) column[r] = features[r * dim + f];
      std::sort(column.begin(), column.end());
      std::vector<double>& t = thresholds[f];
      for (size_t b = 1; b < bins; ++b) {
        double q = static_cast<double>(b) / static_cast<double>(bins);
        double v = column[static_cast<size_t>(
            q * static_cast<double>(rows - 1))];
        if (t.empty() || v > t.back()) t.push_back(v);
      }
    }
  }
  // Bin index per (row, feature): the number of thresholds <= value.
  std::vector<uint16_t> bin_index(rows * dim);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t f = 0; f < dim; ++f) {
      const auto& t = thresholds[f];
      double v = features[r * dim + f];
      bin_index[r * dim + f] = static_cast<uint16_t>(
          std::upper_bound(t.begin(), t.end(), v) - t.begin());
    }
  }

  std::vector<double> score(rows, base_score_);
  std::vector<double> grad(rows);
  std::vector<double> hess(rows);
  Rng rng(options_.seed);

  for (int tree_index = 0; tree_index < options_.num_trees; ++tree_index) {
    // First/second derivatives of the objective w.r.t. the link-space
    // score F.
    for (size_t r = 0; r < rows; ++r) {
      if (options_.objective == GbdtOptions::Objective::kGamma) {
        double ratio = targets[r] * ClampedExp(-score[r]);
        grad[r] = 1.0 - ratio;
        hess[r] = ratio;
      } else {
        grad[r] = score[r] - targets[r];
        hess[r] = 1.0;
      }
    }
    std::vector<int> samples;
    samples.reserve(rows);
    if (options_.subsample < 1.0) {
      for (size_t r = 0; r < rows; ++r) {
        if (rng.Bernoulli(options_.subsample)) {
          samples.push_back(static_cast<int>(r));
        }
      }
      if (samples.empty()) samples.push_back(0);
    } else {
      samples.resize(rows);
      std::iota(samples.begin(), samples.end(), 0);
    }
    Tree tree;
    // The features matrix is needed to evaluate; splits use bins only. The
    // recursion takes grad/hess/bins/thresholds by reference.
    GrowNode(tree, samples, 0, grad, hess, bin_index, thresholds);
    // Update scores with the shrunken tree output.
    for (size_t r = 0; r < rows; ++r) {
      score[r] += options_.learning_rate * tree.Eval(&features[r * dim]);
    }
    trees_.push_back(std::move(tree));
  }
  return Status::Ok();
}

int GbdtRegressor::GrowNode(Tree& tree, std::vector<int>& samples, int depth,
                            const std::vector<double>& grad,
                            const std::vector<double>& hess,
                            const std::vector<uint16_t>& bins,
                            const std::vector<std::vector<double>>& thresholds) {
  double total_grad = 0.0;
  double total_hess = 0.0;
  for (int r : samples) {
    total_grad += grad[static_cast<size_t>(r)];
    total_hess += hess[static_cast<size_t>(r)];
  }
  int node_index = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();
  tree.nodes.back().value =
      LeafWeight(total_grad, total_hess, options_.l2_lambda);

  if (depth >= options_.max_depth ||
      static_cast<int>(samples.size()) < 2 * options_.min_samples_leaf) {
    return node_index;
  }

  // Best split across all features and their quantile thresholds.
  double parent_score = SplitScore(total_grad, total_hess, options_.l2_lambda);
  double best_gain = 1e-9;
  int best_feature = -1;
  int best_bin = -1;
  BinHistogram histogram;
  for (size_t f = 0; f < dim_; ++f) {
    size_t nbins = thresholds[f].size() + 1;
    if (nbins < 2) continue;
    histogram.Reset(nbins);
    for (int r : samples) {
      uint16_t b = bins[static_cast<size_t>(r) * dim_ + f];
      histogram.grad_sum[b] += grad[static_cast<size_t>(r)];
      histogram.hess_sum[b] += hess[static_cast<size_t>(r)];
      ++histogram.count[b];
    }
    double left_grad = 0.0;
    double left_hess = 0.0;
    int left_count = 0;
    for (size_t b = 0; b + 1 < nbins; ++b) {
      left_grad += histogram.grad_sum[b];
      left_hess += histogram.hess_sum[b];
      left_count += histogram.count[b];
      int right_count = static_cast<int>(samples.size()) - left_count;
      if (left_count < options_.min_samples_leaf ||
          right_count < options_.min_samples_leaf) {
        continue;
      }
      double gain =
          0.5 * (SplitScore(left_grad, left_hess, options_.l2_lambda) +
                 SplitScore(total_grad - left_grad, total_hess - left_hess,
                            options_.l2_lambda) -
                 parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = static_cast<int>(b);
      }
    }
  }
  if (best_feature < 0) return node_index;

  double threshold =
      thresholds[static_cast<size_t>(best_feature)][static_cast<size_t>(best_bin)];
  std::vector<int> left;
  std::vector<int> right;
  for (int r : samples) {
    if (bins[static_cast<size_t>(r) * dim_ +
             static_cast<size_t>(best_feature)] <=
        static_cast<uint16_t>(best_bin)) {
      left.push_back(r);
    } else {
      right.push_back(r);
    }
  }
  // Free the parent's sample list before recursing to bound memory.
  samples.clear();
  samples.shrink_to_fit();

  int left_child = GrowNode(tree, left, depth + 1, grad, hess, bins,
                            thresholds);
  int right_child = GrowNode(tree, right, depth + 1, grad, hess, bins,
                             thresholds);
  TreeNode& node = tree.nodes[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = threshold;
  node.left = left_child;
  node.right = right_child;
  return node_index;
}

std::vector<double> GbdtRegressor::FeatureImportance() const {
  std::vector<double> importance(dim_, 0.0);
  double total = 0.0;
  for (const Tree& tree : trees_) {
    for (const TreeNode& node : tree.nodes) {
      if (node.feature >= 0 &&
          static_cast<size_t>(node.feature) < importance.size()) {
        importance[static_cast<size_t>(node.feature)] += 1.0;
        total += 1.0;
      }
    }
  }
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

void GbdtRegressor::Serialize(TextArchiveWriter& writer) const {
  writer.String("gbdt.format", "tasq-gbdt-v1");
  writer.Scalar("gbdt.objective",
                static_cast<int64_t>(options_.objective ==
                                             GbdtOptions::Objective::kGamma
                                         ? 1
                                         : 0));
  writer.Scalar("gbdt.num_trees_opt", static_cast<int64_t>(options_.num_trees));
  writer.Scalar("gbdt.max_depth", static_cast<int64_t>(options_.max_depth));
  writer.Scalar("gbdt.learning_rate", options_.learning_rate);
  writer.Scalar("gbdt.min_samples_leaf",
                static_cast<int64_t>(options_.min_samples_leaf));
  writer.Scalar("gbdt.l2_lambda", options_.l2_lambda);
  writer.Scalar("gbdt.max_bins", static_cast<int64_t>(options_.max_bins));
  writer.Scalar("gbdt.subsample", options_.subsample);
  writer.Scalar("gbdt.seed", static_cast<int64_t>(options_.seed));
  writer.Scalar("gbdt.dim", static_cast<int64_t>(dim_));
  writer.Scalar("gbdt.has_base", static_cast<int64_t>(has_base_ ? 1 : 0));
  writer.Scalar("gbdt.base_score", base_score_);
  writer.Scalar("gbdt.num_trees", static_cast<int64_t>(trees_.size()));
  for (const Tree& tree : trees_) {
    // Flatten the node array: 5 numbers per node.
    std::vector<double> flat;
    flat.reserve(tree.nodes.size() * 5);
    for (const TreeNode& node : tree.nodes) {
      flat.push_back(static_cast<double>(node.feature));
      flat.push_back(node.threshold);
      flat.push_back(static_cast<double>(node.left));
      flat.push_back(static_cast<double>(node.right));
      flat.push_back(node.value);
    }
    writer.Vector("gbdt.tree", flat);
  }
}

GbdtRegressor GbdtRegressor::Deserialize(TextArchiveReader& reader) {
  std::string format;
  reader.String("gbdt.format", format);
  if (reader.status().ok() && format != "tasq-gbdt-v1") {
    reader.ForceError("unknown gbdt archive format '" + format + "'");
  }
  GbdtOptions options;
  int64_t objective = 0;
  int64_t num_trees_opt = 0;
  int64_t max_depth = 0;
  int64_t min_leaf = 0;
  int64_t max_bins = 0;
  int64_t seed = 0;
  reader.Scalar("gbdt.objective", objective);
  reader.Scalar("gbdt.num_trees_opt", num_trees_opt);
  reader.Scalar("gbdt.max_depth", max_depth);
  reader.Scalar("gbdt.learning_rate", options.learning_rate);
  reader.Scalar("gbdt.min_samples_leaf", min_leaf);
  reader.Scalar("gbdt.l2_lambda", options.l2_lambda);
  reader.Scalar("gbdt.max_bins", max_bins);
  reader.Scalar("gbdt.subsample", options.subsample);
  reader.Scalar("gbdt.seed", seed);
  options.objective = objective == 1 ? GbdtOptions::Objective::kGamma
                                     : GbdtOptions::Objective::kSquaredError;
  options.num_trees = static_cast<int>(num_trees_opt);
  options.max_depth = static_cast<int>(max_depth);
  options.min_samples_leaf = static_cast<int>(min_leaf);
  options.max_bins = static_cast<int>(max_bins);
  options.seed = static_cast<uint64_t>(seed);

  GbdtRegressor model(options);
  int64_t dim = 0;
  int64_t has_base = 0;
  int64_t tree_count = 0;
  reader.Scalar("gbdt.dim", dim);
  reader.Scalar("gbdt.has_base", has_base);
  reader.Scalar("gbdt.base_score", model.base_score_);
  reader.Scalar("gbdt.num_trees", tree_count);
  if (!reader.status().ok() || dim < 0 || tree_count < 0) {
    return GbdtRegressor(options);
  }
  model.dim_ = static_cast<size_t>(dim);
  model.has_base_ = has_base == 1;
  for (int64_t t = 0; t < tree_count; ++t) {
    std::vector<double> flat;
    reader.Vector("gbdt.tree", flat);
    if (!reader.status().ok() || flat.size() % 5 != 0) {
      reader.ForceError("malformed gbdt tree record");
      return GbdtRegressor(options);
    }
    Tree tree;
    tree.nodes.reserve(flat.size() / 5);
    int node_count = static_cast<int>(flat.size() / 5);
    for (size_t i = 0; i < flat.size(); i += 5) {
      TreeNode node;
      node.feature = static_cast<int>(flat[i]);
      node.threshold = flat[i + 1];
      node.left = static_cast<int>(flat[i + 2]);
      node.right = static_cast<int>(flat[i + 3]);
      node.value = flat[i + 4];
      if (node.feature >= static_cast<int>(model.dim_) ||
          node.left >= node_count || node.right >= node_count) {
        reader.ForceError("gbdt tree node references out of range");
        return GbdtRegressor(options);
      }
      tree.nodes.push_back(node);
    }
    if (tree.nodes.empty()) {
      reader.ForceError("gbdt tree has no nodes");
      return GbdtRegressor(options);
    }
    model.trees_.push_back(std::move(tree));
  }
  return model;
}

double GbdtRegressor::Predict(const double* row) const {
  if (!has_base_) return 0.0;
  double score = base_score_;
  for (const Tree& tree : trees_) {
    score += options_.learning_rate * tree.Eval(row);
  }
  return options_.objective == GbdtOptions::Objective::kGamma
             ? ClampedExp(score)
             : score;
}

}  // namespace tasq
