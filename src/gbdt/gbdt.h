#ifndef TASQ_GBDT_GBDT_H_
#define TASQ_GBDT_GBDT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/text_io.h"

namespace tasq {

/// Hyper-parameters for the gradient-boosted tree regressor.
struct GbdtOptions {
  enum class Objective {
    /// Squared error; predictions live directly in target space.
    kSquaredError,
    /// Gamma deviance with a log link (the paper trains "XGBoost with
    /// Gamma regression trees" for run times, which are positive and
    /// right-skewed). Targets must be strictly positive.
    kGamma,
  };

  int num_trees = 120;
  int max_depth = 5;
  double learning_rate = 0.1;
  int min_samples_leaf = 10;
  /// L2 regularization on leaf weights (XGBoost's lambda).
  double l2_lambda = 1.0;
  /// Candidate split thresholds per feature (quantile sketch at the root).
  int max_bins = 32;
  /// Row subsampling per tree.
  double subsample = 0.8;
  Objective objective = Objective::kGamma;
  uint64_t seed = 13;
};

/// Internal histogram-build kernels, exposed so the microbenchmarks
/// (bench/microbench_core.cc) and the kernel-equivalence tests
/// (tests/gbdt_test.cc) can drive the exact code the trainer runs. Not
/// part of the model API.
namespace gbdt_internal {

/// Reusable buffers for one node's histogram build. The split search is
/// restructured into gather-free per-feature contiguous passes: grad/hess
/// and the feature's bin column are packed for the node's samples ONCE
/// (the only indexed reads), after which the accumulation pass touches
/// nothing but unit-stride spans.
struct HistScratch {
  /// Node-packed gradient/hessian, aligned with `samples` order.
  std::vector<double> node_grad;
  std::vector<double> node_hess;
  /// Node-packed bin indices for the feature currently being scanned.
  std::vector<int32_t> node_bins;
  /// Per-bin accumulators for the feature currently being scanned.
  std::vector<double> grad_sum;
  std::vector<double> hess_sum;
  std::vector<int> count;
};

/// Packs grad/hess for `samples` into scratch.node_grad/node_hess — the
/// once-per-node vectorized gather pass.
void PackNode(const std::vector<int>& samples, const std::vector<double>& grad,
              const std::vector<double>& hess, HistScratch& scratch);

/// Builds the per-bin grad/hess/count histogram for one feature. `col`
/// is the feature's bin column (feature-major, one entry per training
/// row); scratch must already hold the node packing from PackNode. A
/// vectorized bin-gather pass fills node_bins, then the scalar scatter
/// accumulates — every read in the accumulation is unit-stride.
void BuildFeatureHistogram(const int32_t* col, const std::vector<int>& samples,
                           size_t nbins, HistScratch& scratch);

}  // namespace gbdt_internal

/// Gradient-boosted regression trees trained with second-order (Newton)
/// boosting, histogram splits on root-level quantile thresholds, and row
/// subsampling — a from-scratch stand-in for XGBoost (see DESIGN.md).
class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtOptions options = {});

  /// Trains on a row-major `rows` x `dim` feature matrix. For the Gamma
  /// objective every target must be positive.
  TASQ_NODISCARD Status Train(const std::vector<double>& features, size_t rows, size_t dim,
               const std::vector<double>& targets);

  /// Predicts the target for one feature row of length `dim`.
  /// Returns 0 if the model is untrained.
  double Predict(const double* row) const;
  double Predict(const std::vector<double>& row) const {
    return Predict(row.data());
  }

  bool trained() const { return !trees_.empty() || has_base_; }
  size_t num_trees() const { return trees_.size(); }
  size_t dim() const { return dim_; }
  const GbdtOptions& options() const { return options_; }

  /// Split-count feature importance: for each input feature, the number of
  /// internal nodes across all trees that split on it, normalized to sum
  /// to 1 (all-zero for an untrained or stump-only model). A cheap,
  /// standard view of what the model actually uses.
  std::vector<double> FeatureImportance() const;

  /// Serializes the trained model (objective, learning rate, trees) into an
  /// archive. Training-only hyper-parameters are included so a reloaded
  /// model reports the options it was trained with.
  void Serialize(TextArchiveWriter& writer) const;

  /// Reconstructs a model written by Save; on malformed input the reader's
  /// status latches and the returned model is untrained.
  static GbdtRegressor Deserialize(TextArchiveReader& reader);

 private:
  struct TreeNode {
    /// Split feature; -1 marks a leaf.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    /// Leaf weight (only meaningful for leaves).
    double value = 0.0;
  };
  struct Tree {
    std::vector<TreeNode> nodes;
    double Eval(const double* row) const;
  };

  /// Recursively grows a tree over `samples`; returns the node index.
  /// `bins` is the feature-major bin matrix (column f spans
  /// [f*rows, (f+1)*rows)); `scratch` carries the reusable histogram
  /// buffers down the recursion.
  int GrowNode(Tree& tree, std::vector<int>& samples, int depth,
               const std::vector<double>& grad, const std::vector<double>& hess,
               const std::vector<int32_t>& bins, size_t rows,
               const std::vector<std::vector<double>>& thresholds,
               gbdt_internal::HistScratch& scratch);

  GbdtOptions options_;
  size_t dim_ = 0;
  bool has_base_ = false;
  /// Initial score in link space (log-mean for Gamma, mean for squared).
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
};

}  // namespace tasq

#endif  // TASQ_GBDT_GBDT_H_
