#include "gbdt/xgb_pcc.h"

#include <algorithm>
#include <cmath>

#include "common/fmath.h"

namespace tasq {

XgbRuntimeModel::XgbRuntimeModel(XgbPccOptions options)
    : options_(std::move(options)), model_(options_.gbdt) {}

Status XgbRuntimeModel::Train(const std::vector<double>& job_features,
                              size_t rows, size_t feature_dim,
                              const std::vector<double>& tokens,
                              const std::vector<double>& runtimes) {
  if (rows == 0 || feature_dim == 0 ||
      job_features.size() != rows * feature_dim || tokens.size() != rows ||
      runtimes.size() != rows) {
    return Status::InvalidArgument("training matrix sizes mismatch");
  }
  feature_dim_ = feature_dim;
  size_t dim = feature_dim + 1;
  std::vector<double> augmented(rows * dim);
  for (size_t r = 0; r < rows; ++r) {
    std::copy_n(job_features.begin() + static_cast<long>(r * feature_dim),
                feature_dim, augmented.begin() + static_cast<long>(r * dim));
    augmented[r * dim + feature_dim] = CheckedLog1p(std::max(0.0, tokens[r]));
  }
  return model_.Train(augmented, rows, dim, runtimes);
}

void XgbRuntimeModel::Serialize(TextArchiveWriter& writer) const {
  writer.String("xgb.format", "tasq-xgb-v1");
  writer.Scalar("xgb.window_fraction", options_.window_fraction);
  writer.Scalar("xgb.grid_points", static_cast<int64_t>(options_.grid_points));
  writer.Scalar("xgb.spline_lambda", options_.spline_lambda);
  writer.Scalar("xgb.feature_dim", static_cast<int64_t>(feature_dim_));
  model_.Serialize(writer);
}

XgbRuntimeModel XgbRuntimeModel::Deserialize(TextArchiveReader& reader) {
  std::string format;
  reader.String("xgb.format", format);
  if (reader.status().ok() && format != "tasq-xgb-v1") {
    reader.ForceError("unknown xgb archive format '" + format + "'");
  }
  XgbPccOptions options;
  int64_t grid_points = 0;
  int64_t feature_dim = 0;
  reader.Scalar("xgb.window_fraction", options.window_fraction);
  reader.Scalar("xgb.grid_points", grid_points);
  reader.Scalar("xgb.spline_lambda", options.spline_lambda);
  reader.Scalar("xgb.feature_dim", feature_dim);
  options.grid_points = static_cast<size_t>(std::max<int64_t>(0, grid_points));
  XgbRuntimeModel model(options);
  model.model_ = GbdtRegressor::Deserialize(reader);
  model.options_.gbdt = model.model_.options();
  if (reader.status().ok() && feature_dim >= 0) {
    model.feature_dim_ = static_cast<size_t>(feature_dim);
  }
  return model;
}

Result<double> XgbRuntimeModel::PredictRuntime(
    const std::vector<double>& job_features, double tokens) const {
  if (!model_.trained()) {
    return Status::FailedPrecondition("model has not been trained");
  }
  if (job_features.size() != feature_dim_ || tokens <= 0.0) {
    return Status::InvalidArgument(
        "feature dimension mismatch or non-positive tokens");
  }
  std::vector<double> row(job_features);
  row.push_back(CheckedLog1p(tokens));
  return model_.Predict(row);
}

Result<std::vector<PccSample>> XgbRuntimeModel::PredictCurve(
    const std::vector<double>& job_features, double reference_tokens) const {
  if (reference_tokens <= 0.0) {
    return Status::InvalidArgument("reference tokens must be positive");
  }
  double lo = std::max(1.0, reference_tokens * (1.0 - options_.window_fraction));
  double hi = reference_tokens * (1.0 + options_.window_fraction);
  size_t points = std::max<size_t>(3, options_.grid_points);
  std::vector<PccSample> curve;
  curve.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double tokens =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    Result<double> runtime = PredictRuntime(job_features, tokens);
    if (!runtime.ok()) return runtime.status();
    curve.push_back({tokens, runtime.value()});
  }
  return curve;
}

Result<std::vector<PccSample>> XgbRuntimeModel::PredictSmoothedCurve(
    const std::vector<double>& job_features, double reference_tokens) const {
  Result<std::vector<PccSample>> raw =
      PredictCurve(job_features, reference_tokens);
  if (!raw.ok()) return raw.status();
  std::vector<double> x;
  std::vector<double> y;
  for (const PccSample& s : raw.value()) {
    // Quantile-threshold trees can predict identical values on adjacent
    // grid points; spline knots must strictly increase, so collapse ties
    // in x (tokens are distinct by construction, this is belt and braces).
    if (!x.empty() && s.tokens <= x.back()) continue;
    x.push_back(s.tokens);
    y.push_back(s.runtime_seconds);
  }
  Result<SmoothingSpline> spline =
      SmoothingSpline::Fit(x, y, options_.spline_lambda);
  if (!spline.ok()) return spline.status();
  std::vector<PccSample> smoothed;
  smoothed.reserve(x.size());
  for (double tokens : x) {
    smoothed.push_back({tokens, spline.value().Eval(tokens)});
  }
  return smoothed;
}

Result<PowerLawPcc> XgbRuntimeModel::PredictPowerLawPcc(
    const std::vector<double>& job_features, double reference_tokens) const {
  Result<std::vector<PccSample>> raw =
      PredictCurve(job_features, reference_tokens);
  if (!raw.ok()) return raw.status();
  Result<PowerLawFit> fit = FitPowerLaw(raw.value());
  if (!fit.ok()) return fit.status();
  return fit.value().pcc;
}

}  // namespace tasq
