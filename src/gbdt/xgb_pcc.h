#ifndef TASQ_GBDT_XGB_PCC_H_
#define TASQ_GBDT_XGB_PCC_H_

#include <vector>

#include "common/status.h"
#include "gbdt/gbdt.h"
#include "pcc/pcc.h"

namespace tasq {

/// Options for the XGBoost-style PCC predictors.
struct XgbPccOptions {
  GbdtOptions gbdt;
  /// Half-width of the token window around the reference count used to
  /// construct the curve (the paper uses +/-40%).
  double window_fraction = 0.4;
  /// Points sampled across the window when building a curve.
  size_t grid_points = 9;
  /// Smoothing parameter for the XGBoost-SS spline.
  double spline_lambda = 1.0;
};

/// Run-time point predictor in the XGBoost style (paper §4.4): a
/// gradient-boosted model over [job features ++ log1p(tokens)] predicting
/// run time directly. The PCC is then *constructed* from point predictions,
/// either smoothed (XGBoost SS) or refit as a power law (XGBoost PL) —
/// neither construction can guarantee a monotone non-increasing trend.
class XgbRuntimeModel {
 public:
  explicit XgbRuntimeModel(XgbPccOptions options = {});

  /// Trains on N examples: `job_features` is row-major N x feature_dim,
  /// `tokens` and `runtimes` have length N. The caller supplies AREPAS-
  /// augmented examples at alternate token counts (paper §4.4).
  TASQ_NODISCARD Status Train(const std::vector<double>& job_features, size_t rows,
               size_t feature_dim, const std::vector<double>& tokens,
               const std::vector<double>& runtimes);

  /// Predicts run time (seconds) for one job at `tokens`.
  TASQ_NODISCARD Result<double> PredictRuntime(const std::vector<double>& job_features,
                                double tokens) const;

  /// Raw point predictions across the window around `reference_tokens`.
  TASQ_NODISCARD Result<std::vector<PccSample>> PredictCurve(
      const std::vector<double>& job_features, double reference_tokens) const;

  /// XGBoost SS: point predictions passed through a cubic smoothing spline.
  TASQ_NODISCARD Result<std::vector<PccSample>> PredictSmoothedCurve(
      const std::vector<double>& job_features, double reference_tokens) const;

  /// XGBoost PL: a power law refit to the point predictions.
  TASQ_NODISCARD Result<PowerLawPcc> PredictPowerLawPcc(
      const std::vector<double>& job_features, double reference_tokens) const;

  bool trained() const { return model_.trained(); }
  size_t feature_dim() const { return feature_dim_; }
  const XgbPccOptions& options() const { return options_; }
  /// The underlying boosted-tree ensemble (e.g., for feature importance).
  /// Feature index `feature_dim()` is the appended token feature.
  const GbdtRegressor& gbdt() const { return model_; }

  /// Serializes the trained runtime model and its curve-construction
  /// options into an archive.
  void Serialize(TextArchiveWriter& writer) const;

  /// Reconstructs a model written by Save; errors latch on the reader.
  static XgbRuntimeModel Deserialize(TextArchiveReader& reader);

 private:
  XgbPccOptions options_;
  size_t feature_dim_ = 0;
  GbdtRegressor model_;
};

}  // namespace tasq

#endif  // TASQ_GBDT_XGB_PCC_H_
