#include "gnn/gnn_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ml/matrix_io.h"
#include "ml/optimizer.h"

namespace tasq {

GnnPccModel::GnnPccModel(size_t node_feature_dim, GnnOptions options)
    : node_feature_dim_(node_feature_dim), options_(std::move(options)) {
  Rng rng(options_.seed);
  size_t previous = node_feature_dim_;
  for (size_t width : options_.gcn_hidden) {
    size_t in_width = options_.aggregator == GnnAggregator::kSage
                          ? 2 * previous
                          : previous;
    gcn_weights_.push_back(
        MakeParameter(Matrix::GlorotUniform(in_width, width, rng)));
    gcn_biases_.push_back(MakeParameter(Matrix(1, width)));
    previous = width;
  }
  context_weight_ =
      MakeParameter(Matrix::GlorotUniform(previous, previous, rng));
  context_bias_ = MakeParameter(Matrix(1, previous));
  for (size_t width : options_.head_hidden) {
    head_weights_.push_back(
        MakeParameter(Matrix::GlorotUniform(previous, width, rng)));
    head_biases_.push_back(MakeParameter(Matrix(1, width)));
    previous = width;
  }
  head1_weight_ = MakeParameter(Matrix::GlorotUniform(previous, 1, rng));
  head1_bias_ = MakeParameter(Matrix(1, 1));
  head2_weight_ = MakeParameter(Matrix::GlorotUniform(previous, 1, rng));
  head2_bias_ = MakeParameter(Matrix(1, 1));
}

std::vector<Var> GnnPccModel::AllParameters() const {
  std::vector<Var> params;
  for (size_t i = 0; i < gcn_weights_.size(); ++i) {
    params.push_back(gcn_weights_[i]);
    params.push_back(gcn_biases_[i]);
  }
  params.push_back(context_weight_);
  params.push_back(context_bias_);
  for (size_t i = 0; i < head_weights_.size(); ++i) {
    params.push_back(head_weights_[i]);
    params.push_back(head_biases_[i]);
  }
  params.push_back(head1_weight_);
  params.push_back(head1_bias_);
  params.push_back(head2_weight_);
  params.push_back(head2_bias_);
  return params;
}

int64_t GnnPccModel::NumParameters() const {
  return CountParameters(AllParameters());
}

std::pair<Var, Var> GnnPccModel::Forward(const GraphExample& graph) const {
  size_t n = graph.num_nodes;
  Var adjacency = MakeConstant(
      Matrix(n, n, graph.norm_adjacency));
  Var h = MakeConstant(Matrix(n, node_feature_dim_, graph.node_features));
  // Node-level embeddings: stacked graph layers.
  for (size_t l = 0; l < gcn_weights_.size(); ++l) {
    Var aggregated = MatMul(adjacency, h);
    Var input = options_.aggregator == GnnAggregator::kSage
                    ? ConcatCols(h, aggregated)
                    : aggregated;
    h = Relu(Add(MatMul(input, gcn_weights_[l]), gcn_biases_[l]));
  }
  Var graph_embedding;
  if (options_.attention_pooling) {
    // Global context: nonlinear transform of the mean node embedding.
    Var context =
        Tanh(Add(MatMul(MeanRows(h), context_weight_), context_bias_));
    // Attention weight per node: similarity to the context.
    Var scores = Sigmoid(MatMul(h, Transpose(context)));  // N x 1.
    // Graph embedding: attention-weighted sum of node embeddings.
    graph_embedding = MatMul(Transpose(scores), h);  // 1 x d.
  } else {
    graph_embedding = MeanRows(h);
  }
  Var out = graph_embedding;
  for (size_t l = 0; l < head_weights_.size(); ++l) {
    out = Relu(Add(MatMul(out, head_weights_[l]), head_biases_[l]));
  }
  Var p1 = Softplus(Add(MatMul(out, head1_weight_), head1_bias_));
  Var p2 = Add(MatMul(out, head2_weight_), head2_bias_);
  return {p1, p2};
}

Result<double> GnnPccModel::Train(const std::vector<GraphExample>& graphs,
                                  const PccSupervision& supervision) {
  bool needs_xgb = options_.loss_form == LossForm::kLF3;
  Status valid = supervision.Validate(needs_xgb);
  if (!valid.ok()) return valid;
  size_t n = supervision.size();
  if (graphs.size() != n) {
    return Status::InvalidArgument("one graph per supervision example");
  }
  for (size_t i = 0; i < n; ++i) {
    if (graphs[i].num_nodes == 0 ||
        graphs[i].node_features.size() !=
            graphs[i].num_nodes * node_feature_dim_ ||
        graphs[i].norm_adjacency.size() !=
            graphs[i].num_nodes * graphs[i].num_nodes) {
      return Status::InvalidArgument("graph example shapes are inconsistent");
    }
  }
  Result<PccTargetScaling> scaling = PccTargetScaling::Fit(supervision.targets);
  if (!scaling.ok()) return scaling.status();
  scaling_ = std::make_unique<PccTargetScaling>(scaling.value());

  LossWeights weights = options_.override_weights
                            ? options_.weights
                            : DefaultLossWeights(options_.loss_form);
  AdamOptimizer optimizer(AllParameters(),
                          {.learning_rate = options_.learning_rate,
                           .weight_decay = options_.weight_decay});
  Rng rng(options_.seed ^ 0xFEEDF00DULL);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  size_t batch = std::max<size_t>(1, std::min(options_.batch_size, n));

  // Optional validation split (tail of a one-time deterministic shuffle).
  size_t validation = 0;
  if (options_.validation_fraction > 0.0 && n >= 10) {
    rng.Shuffle(order);
    validation = std::min(
        n / 2, static_cast<size_t>(std::ceil(
                   options_.validation_fraction * static_cast<double>(n))));
  }
  size_t train_count = n - validation;

  // Loss of one example; shared by training and validation passes.
  auto example_loss = [&](size_t idx) -> Result<Var> {
    auto [p1, p2] = Forward(graphs[idx]);
    PccLossBatch loss_batch;
    auto [t1, t2] = scaling_->ToScaled(supervision.targets[idx]);
    loss_batch.scaled_targets = {t1, t2};
    loss_batch.observed_tokens = {supervision.observed_tokens[idx]};
    loss_batch.observed_runtime = {supervision.observed_runtime[idx]};
    if (needs_xgb) {
      loss_batch.xgb_runtime = {supervision.xgb_runtime[idx]};
    }
    return BuildPccLoss(p1, p2, *scaling_, loss_batch, weights);
  };

  std::vector<Var> parameters = AllParameters();
  std::vector<Matrix> best_values;
  double best_validation_loss = 1e300;
  int epochs_without_improvement = 0;

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    // Shuffle only the training head so the validation tail stays fixed.
    for (size_t i = train_count; i > 1; --i) {
      size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < train_count; start += batch) {
      size_t end = std::min(start + batch, train_count);
      Var total;
      for (size_t k = start; k < end; ++k) {
        Result<Var> loss = example_loss(order[k]);
        if (!loss.ok()) return loss.status();
        total = total ? Add(total, loss.value()) : loss.value();
      }
      Var mean_loss =
          ScalarMul(total, 1.0 / static_cast<double>(end - start));
      Backward(mean_loss);
      optimizer.Step();
      epoch_loss += mean_loss->value.At(0, 0);
      ++batches;
    }
    last_epoch_loss =
        epoch_loss / static_cast<double>(std::max<size_t>(1, batches));

    if (validation > 0) {
      double val_loss = 0.0;
      for (size_t k = train_count; k < n; ++k) {
        Result<Var> loss = example_loss(order[k]);
        if (!loss.ok()) return loss.status();
        val_loss += loss.value()->value.At(0, 0);
      }
      val_loss /= static_cast<double>(validation);
      if (val_loss < best_validation_loss - 1e-9) {
        best_validation_loss = val_loss;
        epochs_without_improvement = 0;
        best_values.clear();
        for (const Var& p : parameters) best_values.push_back(p->value);
      } else if (++epochs_without_improvement >=
                 options_.early_stopping_patience) {
        break;
      }
    }
  }
  if (validation > 0 && !best_values.empty()) {
    for (size_t i = 0; i < parameters.size(); ++i) {
      parameters[i]->value = best_values[i];
    }
    return best_validation_loss;
  }
  return last_epoch_loss;
}

void GnnPccModel::Serialize(TextArchiveWriter& writer) const {
  writer.String("gnn.format", "tasq-gnn-v1");
  writer.Scalar("gnn.node_feature_dim",
                static_cast<int64_t>(node_feature_dim_));
  std::vector<double> gcn;
  for (size_t width : options_.gcn_hidden) {
    gcn.push_back(static_cast<double>(width));
  }
  writer.Vector("gnn.gcn_hidden", gcn);
  std::vector<double> head;
  for (size_t width : options_.head_hidden) {
    head.push_back(static_cast<double>(width));
  }
  writer.Vector("gnn.head_hidden", head);
  writer.Scalar("gnn.attention",
                static_cast<int64_t>(options_.attention_pooling ? 1 : 0));
  writer.Scalar("gnn.aggregator",
                static_cast<int64_t>(
                    options_.aggregator == GnnAggregator::kSage ? 1 : 0));
  writer.Scalar("gnn.trained", static_cast<int64_t>(trained() ? 1 : 0));
  if (trained()) {
    writer.Scalar("gnn.scaling_s1", scaling_->s1());
    writer.Scalar("gnn.scaling_s2", scaling_->s2());
  }
  for (size_t i = 0; i < gcn_weights_.size(); ++i) {
    SaveMatrix(writer, "gnn.gcn_w" + std::to_string(i), gcn_weights_[i]->value);
    SaveMatrix(writer, "gnn.gcn_b" + std::to_string(i), gcn_biases_[i]->value);
  }
  SaveMatrix(writer, "gnn.ctx_w", context_weight_->value);
  SaveMatrix(writer, "gnn.ctx_b", context_bias_->value);
  for (size_t i = 0; i < head_weights_.size(); ++i) {
    SaveMatrix(writer, "gnn.head_w" + std::to_string(i),
               head_weights_[i]->value);
    SaveMatrix(writer, "gnn.head_b" + std::to_string(i),
               head_biases_[i]->value);
  }
  SaveMatrix(writer, "gnn.head1_w", head1_weight_->value);
  SaveMatrix(writer, "gnn.head1_b", head1_bias_->value);
  SaveMatrix(writer, "gnn.head2_w", head2_weight_->value);
  SaveMatrix(writer, "gnn.head2_b", head2_bias_->value);
}

GnnPccModel GnnPccModel::Deserialize(TextArchiveReader& reader) {
  std::string format;
  reader.String("gnn.format", format);
  if (reader.status().ok() && format != "tasq-gnn-v1") {
    reader.ForceError("unknown gnn archive format '" + format + "'");
  }
  int64_t node_dim = 0;
  std::vector<double> gcn;
  std::vector<double> head;
  int64_t attention = 1;
  int64_t aggregator = 0;
  int64_t trained = 0;
  reader.Scalar("gnn.node_feature_dim", node_dim);
  reader.Vector("gnn.gcn_hidden", gcn);
  reader.Vector("gnn.head_hidden", head);
  reader.Scalar("gnn.attention", attention);
  reader.Scalar("gnn.aggregator", aggregator);
  reader.Scalar("gnn.trained", trained);
  GnnOptions options;
  options.gcn_hidden.clear();
  for (double width : gcn) {
    options.gcn_hidden.push_back(static_cast<size_t>(width));
  }
  options.head_hidden.clear();
  for (double width : head) {
    options.head_hidden.push_back(static_cast<size_t>(width));
  }
  options.attention_pooling = attention == 1;
  options.aggregator =
      aggregator == 1 ? GnnAggregator::kSage : GnnAggregator::kGcn;
  GnnPccModel model(static_cast<size_t>(std::max<int64_t>(0, node_dim)),
                    options);
  if (trained == 1) {
    double s1 = 1.0;
    double s2 = 1.0;
    reader.Scalar("gnn.scaling_s1", s1);
    reader.Scalar("gnn.scaling_s2", s2);
    if (reader.status().ok() && s1 > 0.0 && s2 > 0.0) {
      model.scaling_ = std::make_unique<PccTargetScaling>(s1, s2);
    } else {
      reader.ForceError("gnn scaling factors must be positive");
    }
  }
  auto load_into = [&](const std::string& tag, const Var& parameter) {
    Matrix loaded = LoadMatrix(reader, tag);
    if (reader.status().ok() && !loaded.SameShape(parameter->value)) {
      reader.ForceError("gnn parameter shape mismatch for '" + tag + "'");
      return;
    }
    if (reader.status().ok()) parameter->value = std::move(loaded);
  };
  for (size_t i = 0; i < model.gcn_weights_.size(); ++i) {
    load_into("gnn.gcn_w" + std::to_string(i), model.gcn_weights_[i]);
    load_into("gnn.gcn_b" + std::to_string(i), model.gcn_biases_[i]);
  }
  load_into("gnn.ctx_w", model.context_weight_);
  load_into("gnn.ctx_b", model.context_bias_);
  for (size_t i = 0; i < model.head_weights_.size(); ++i) {
    load_into("gnn.head_w" + std::to_string(i), model.head_weights_[i]);
    load_into("gnn.head_b" + std::to_string(i), model.head_biases_[i]);
  }
  load_into("gnn.head1_w", model.head1_weight_);
  load_into("gnn.head1_b", model.head1_bias_);
  load_into("gnn.head2_w", model.head2_weight_);
  load_into("gnn.head2_b", model.head2_bias_);
  if (!reader.status().ok()) model.scaling_.reset();
  return model;
}

Result<PowerLawPcc> GnnPccModel::Predict(const GraphExample& graph) const {
  if (!trained()) {
    return Status::FailedPrecondition("model has not been trained");
  }
  if (graph.num_nodes == 0 ||
      graph.node_features.size() != graph.num_nodes * node_feature_dim_ ||
      graph.norm_adjacency.size() != graph.num_nodes * graph.num_nodes) {
    return Status::InvalidArgument("graph example shapes are inconsistent");
  }
  auto [p1, p2] = Forward(graph);
  return scaling_->FromScaled(p1->value.At(0, 0), p2->value.At(0, 0));
}

}  // namespace tasq
