#ifndef TASQ_GNN_GNN_MODEL_H_
#define TASQ_GNN_GNN_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/text_io.h"
#include "ml/autograd.h"
#include "nn/nn_model.h"
#include "nn/pcc_loss.h"
#include "pcc/pcc.h"

namespace tasq {

/// One job graph prepared for the GNN: standardized operator-level features
/// and the GCN-normalized adjacency (see Featurizer).
struct GraphExample {
  size_t num_nodes = 0;
  /// Row-major num_nodes x node_feature_dim.
  std::vector<double> node_features;
  /// Row-major num_nodes x num_nodes.
  std::vector<double> norm_adjacency;
};

/// Neighborhood-aggregation scheme for the graph layers.
enum class GnnAggregator {
  /// Kipf-Welling GCN: H' = relu(A_hat H W) with the normalized adjacency.
  kGcn,
  /// GraphSAGE-style: H' = relu([H, A_hat H] W) — the node's own features
  /// concatenated with the aggregated neighborhood (W is 2*d_in x d_out).
  kSage,
};

/// Hyper-parameters for the graph model.
struct GnnOptions {
  /// Output widths of the stacked GCN layers.
  std::vector<size_t> gcn_hidden = {64, 32};
  GnnAggregator aggregator = GnnAggregator::kGcn;
  /// Hidden widths of the fully connected head after pooling.
  std::vector<size_t> head_hidden = {32};
  int epochs = 25;
  /// Graphs per gradient step (losses averaged across the mini-batch).
  size_t batch_size = 16;
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  LossForm loss_form = LossForm::kLF2;
  bool override_weights = false;
  LossWeights weights;
  /// When false, attention pooling is replaced by plain mean pooling
  /// (ablation knob).
  bool attention_pooling = true;
  /// Fraction of graphs held out for validation-based early stopping;
  /// 0 trains on everything for the full epoch budget.
  double validation_fraction = 0.0;
  /// Epochs without validation improvement tolerated before stopping; the
  /// best-validation parameters are restored at the end.
  int early_stopping_patience = 5;
  uint64_t seed = 1;
};

/// Graph neural network over operator-level features (paper §4.4, Figure
/// 10): stacked graph-convolution layers produce node embeddings, a
/// SimGNN-style attention layer pools them into a graph embedding (each
/// node weighted by the sigmoid similarity to a learned nonlinear global
/// context), and a fully connected head predicts the two scaled PCC
/// parameters under the same sign-constrained mapping as the NN.
class GnnPccModel {
 public:
  GnnPccModel(size_t node_feature_dim, GnnOptions options);

  /// Trains on one graph per supervision example. Returns the final
  /// epoch's mean training loss.
  TASQ_NODISCARD Result<double> Train(const std::vector<GraphExample>& graphs,
                       const PccSupervision& supervision);

  /// Predicts the (guaranteed monotone non-increasing) PCC for one graph.
  TASQ_NODISCARD Result<PowerLawPcc> Predict(const GraphExample& graph) const;

  /// Total trainable scalar parameters (Table 7).
  int64_t NumParameters() const;

  bool trained() const { return scaling_ != nullptr; }
  size_t node_feature_dim() const { return node_feature_dim_; }
  const GnnOptions& options() const { return options_; }

  /// Serializes the trained network (architecture, weights, target
  /// scaling) into an archive.
  void Serialize(TextArchiveWriter& writer) const;

  /// Reconstructs a model written by Save; errors latch on the reader and
  /// the returned model is untrained.
  static GnnPccModel Deserialize(TextArchiveReader& reader);

 private:
  /// Per-graph forward pass to the scaled (p1, p2) pair (each 1 x 1).
  std::pair<Var, Var> Forward(const GraphExample& graph) const;
  std::vector<Var> AllParameters() const;

  size_t node_feature_dim_;
  GnnOptions options_;
  std::vector<Var> gcn_weights_;
  std::vector<Var> gcn_biases_;
  Var context_weight_;
  Var context_bias_;
  std::vector<Var> head_weights_;
  std::vector<Var> head_biases_;
  Var head1_weight_;
  Var head1_bias_;
  Var head2_weight_;
  Var head2_bias_;
  std::unique_ptr<PccTargetScaling> scaling_;
};

}  // namespace tasq

#endif  // TASQ_GNN_GNN_MODEL_H_
