#include "ml/autograd.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/fmath.h"
#include "ml/kernels.h"

namespace tasq {
namespace {

Var MakeOp(Matrix value, std::vector<Var> parents) {
  auto node = std::make_shared<AutogradNode>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  return node;
}

}  // namespace

void AutogradNode::EnsureGrad() {
  if (!grad.SameShape(value)) {
    grad = Matrix(value.rows(), value.cols());
  } else {
    grad.SetZero();
  }
}

Var MakeConstant(Matrix value) {
  auto node = std::make_shared<AutogradNode>();
  node->value = std::move(value);
  return node;
}

Var MakeParameter(Matrix value) {
  auto node = std::make_shared<AutogradNode>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->EnsureGrad();
  return node;
}

void Backward(const Var& root) {
  // Backprop seeds d(root)/d(root) = 1, which is only meaningful for a
  // scalar loss; a non-scalar root silently trains on garbage gradients.
  TASQ_CHECK_EQ(root->value.rows(), 1u);
  TASQ_CHECK_EQ(root->value.cols(), 1u);
  // Iterative post-order DFS to topologically sort the graph.
  std::vector<AutogradNode*> order;
  std::unordered_set<AutogradNode*> visited;
  std::vector<std::pair<AutogradNode*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      AutogradNode* child = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(child).second) stack.emplace_back(child, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Zero interior gradients (parameters keep accumulating until ZeroGrads;
  // interior nodes are fresh per forward pass, so their grads start unset).
  for (AutogradNode* node : order) {
    if (!node->requires_grad) node->EnsureGrad();
  }
  root->grad.At(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backprop) (*it)->backprop();
  }
}

void ZeroGrads(const std::vector<Var>& nodes) {
  for (const Var& node : nodes) node->EnsureGrad();
}

Var MatMul(const Var& a, const Var& b) {
  Var out = MakeOp(a->value.MatMul(b->value), {a, b});
  AutogradNode* o = out.get();
  out->backprop = [o, a, b]() {
    a->grad.AddInPlace(o->grad.MatMul(b->value.Transposed()));
    b->grad.AddInPlace(a->value.Transposed().MatMul(o->grad));
  };
  return out;
}

Var Add(const Var& a, const Var& b) {
  const Matrix& av = a->value;
  const Matrix& bv = b->value;
  bool broadcast = bv.rows() == 1 && av.rows() > 1 && bv.cols() == av.cols();
  // Either a true elementwise add or a row-vector bias broadcast; any other
  // shape pair is a wiring bug in the model graph.
  TASQ_CHECK(broadcast || av.SameShape(bv));
  Matrix value = av;
  if (broadcast) {
    // Row-broadcast bias add through the batch-major kernel: one
    // contiguous vectorized pass per batch row.
    for (size_t r = 0; r < av.rows(); ++r) {
      VecBiasAdd(value.Row(r), bv.Row(0), av.cols());
    }
  } else {
    value.AddInPlace(bv);
  }
  Var out = MakeOp(std::move(value), {a, b});
  AutogradNode* o = out.get();
  out->backprop = [o, a, b, broadcast]() {
    a->grad.AddInPlace(o->grad);
    if (broadcast) {
      for (size_t r = 0; r < o->grad.rows(); ++r) {
        for (size_t c = 0; c < o->grad.cols(); ++c) {
          b->grad.At(0, c) += o->grad.At(r, c);
        }
      }
    } else {
      b->grad.AddInPlace(o->grad);
    }
  };
  return out;
}

Var Sub(const Var& a, const Var& b) {
  TASQ_CHECK(a->value.SameShape(b->value));
  Matrix value = a->value;
  value.AddScaledInPlace(b->value, -1.0);
  Var out = MakeOp(std::move(value), {a, b});
  AutogradNode* o = out.get();
  out->backprop = [o, a, b]() {
    a->grad.AddInPlace(o->grad);
    b->grad.AddScaledInPlace(o->grad, -1.0);
  };
  return out;
}

Var Mul(const Var& a, const Var& b) {
  TASQ_CHECK(a->value.SameShape(b->value));
  Matrix value = a->value;
  VecMulInPlace(value.data().data(), b->value.data().data(), value.size());
  Var out = MakeOp(std::move(value), {a, b});
  AutogradNode* o = out.get();
  out->backprop = [o, a, b]() {
    for (size_t i = 0; i < o->grad.size(); ++i) {
      a->grad.data()[i] += o->grad.data()[i] * b->value.data()[i];
      b->grad.data()[i] += o->grad.data()[i] * a->value.data()[i];
    }
  };
  return out;
}

Var ScalarMul(const Var& a, double s) {
  Matrix value = a->value;
  VecScale(value.data().data(), s, value.size());
  Var out = MakeOp(std::move(value), {a});
  AutogradNode* o = out.get();
  out->backprop = [o, a, s]() { a->grad.AddScaledInPlace(o->grad, s); };
  return out;
}

Var Transpose(const Var& a) {
  Var out = MakeOp(a->value.Transposed(), {a});
  AutogradNode* o = out.get();
  out->backprop = [o, a]() { a->grad.AddInPlace(o->grad.Transposed()); };
  return out;
}

namespace {

// Shared scaffolding for elementwise unary ops whose derivative can be
// computed from input and output values.
Var UnaryOp(const Var& a, double (*fwd)(double),
            double (*dfn)(double /*x*/, double /*y*/)) {
  Matrix value = a->value;
  for (double& v : value.data()) v = fwd(v);
  Var out = MakeOp(std::move(value), {a});
  AutogradNode* o = out.get();
  out->backprop = [o, a, dfn]() {
    for (size_t i = 0; i < o->grad.size(); ++i) {
      a->grad.data()[i] +=
          o->grad.data()[i] * dfn(a->value.data()[i], o->value.data()[i]);
    }
  };
  return out;
}

}  // namespace

Var Relu(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return x > 0.0 ? x : 0.0; },
      +[](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return std::tanh(x); },
      +[](double, double y) { return 1.0 - y * y; });
}

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return StableSigmoid(x); },
      +[](double, double y) { return y * (1.0 - y); });
}

Var Abs(const Var& a) {
  return UnaryOp(
      a, +[](double x) { return std::fabs(x); },
      +[](double x, double) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
}

Var Softplus(const Var& a) {
  return UnaryOp(
      a,
      +[](double x) { return StableSoftplus(x); },
      +[](double x, double) { return StableSigmoid(x); });
}

Var Exp(const Var& a) {
  return UnaryOp(
      // Clamped so a wild pre-activation saturates at DBL_MAX instead
      // of overflowing to +inf (and trapping under TASQ_FPE).
      a, +[](double x) { return ClampedExp(x); },
      +[](double, double y) { return y; });
}

Var MeanRows(const Var& a) {
  size_t rows = a->value.rows();
  size_t cols = a->value.cols();
  // Averaging zero rows divides by zero and poisons the whole graph with
  // NaNs several ops downstream of the actual bug.
  TASQ_CHECK_GT(rows, 0u);
  Matrix value(1, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      value.At(0, c) += a->value.At(r, c) / static_cast<double>(rows);
    }
  }
  Var out = MakeOp(std::move(value), {a});
  AutogradNode* o = out.get();
  out->backprop = [o, a, rows]() {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < o->grad.cols(); ++c) {
        a->grad.At(r, c) += o->grad.At(0, c) / static_cast<double>(rows);
      }
    }
  };
  return out;
}

Var ConcatCols(const Var& a, const Var& b) {
  TASQ_CHECK_EQ(a->value.rows(), b->value.rows());
  size_t rows = a->value.rows();
  size_t ca = a->value.cols();
  size_t cb = b->value.cols();
  Matrix value(rows, ca + cb);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < ca; ++c) value.At(r, c) = a->value.At(r, c);
    for (size_t c = 0; c < cb; ++c) value.At(r, ca + c) = b->value.At(r, c);
  }
  Var out = MakeOp(std::move(value), {a, b});
  AutogradNode* o = out.get();
  out->backprop = [o, a, b, rows, ca, cb]() {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < ca; ++c) a->grad.At(r, c) += o->grad.At(r, c);
      for (size_t c = 0; c < cb; ++c) {
        b->grad.At(r, c) += o->grad.At(r, ca + c);
      }
    }
  };
  return out;
}

Var Mean(const Var& a) {
  TASQ_CHECK_GT(a->value.size(), 0u);
  double n = static_cast<double>(a->value.size());
  Matrix value(1, 1);
  value.At(0, 0) = a->value.Sum() / n;
  Var out = MakeOp(std::move(value), {a});
  AutogradNode* o = out.get();
  out->backprop = [o, a, n]() {
    double g = o->grad.At(0, 0) / n;
    for (double& v : a->grad.data()) v += g;
  };
  return out;
}

Var Sum(const Var& a) {
  Matrix value(1, 1);
  value.At(0, 0) = a->value.Sum();
  Var out = MakeOp(std::move(value), {a});
  AutogradNode* o = out.get();
  out->backprop = [o, a]() {
    double g = o->grad.At(0, 0);
    for (double& v : a->grad.data()) v += g;
  };
  return out;
}

Var MaeLoss(const Var& prediction, const Var& target) {
  return Mean(Abs(Sub(prediction, target)));
}

}  // namespace tasq
