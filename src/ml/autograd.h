#ifndef TASQ_ML_AUTOGRAD_H_
#define TASQ_ML_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "ml/matrix.h"

namespace tasq {

/// A node in a dynamically-built computation graph. Create nodes with
/// `MakeConstant` / `MakeParameter` and compose them with the free-function
/// operators below; call `Backward` on a scalar (1x1) result to populate
/// `grad` on every node that contributed to it.
///
/// Graphs are rebuilt per forward pass (define-by-run); parameters persist
/// across passes and are updated by an optimizer reading their `grad`.
class AutogradNode {
 public:
  Matrix value;
  /// Gradient of the scalar loss w.r.t. `value`; sized on first use.
  Matrix grad;
  /// True for trainable parameters (leaf nodes an optimizer updates).
  bool requires_grad = false;

  std::vector<std::shared_ptr<AutogradNode>> parents;
  /// Propagates this node's `grad` into its parents' `grad`s.
  std::function<void()> backprop;

  /// Zero-fills (and sizes) the gradient buffer.
  void EnsureGrad();
};

using Var = std::shared_ptr<AutogradNode>;

/// Wraps a value that does not require gradients (inputs, adjacency, ...).
Var MakeConstant(Matrix value);

/// Wraps a trainable parameter.
Var MakeParameter(Matrix value);

/// Runs reverse-mode differentiation from `root`, which must be 1x1.
/// Gradients accumulate into every ancestor's `grad`; call `ZeroGrads`
/// on the parameters between steps.
void Backward(const Var& root);

/// Zeroes the gradients of the given nodes.
void ZeroGrads(const std::vector<Var>& nodes);

// ---- Operators -----------------------------------------------------------

/// Matrix product a(M x K) * b(K x N).
Var MatMul(const Var& a, const Var& b);

/// Elementwise sum. Also supports bias broadcast: when `b` is 1 x C and `a`
/// is N x C, `b` is added to every row.
Var Add(const Var& a, const Var& b);

/// Elementwise difference (same shapes; no broadcast).
Var Sub(const Var& a, const Var& b);

/// Elementwise (Hadamard) product of same-shaped operands.
Var Mul(const Var& a, const Var& b);

/// Multiplies every element by the scalar `s`.
Var ScalarMul(const Var& a, double s);

/// Transpose.
Var Transpose(const Var& a);

/// Rectified linear unit, max(x, 0).
Var Relu(const Var& a);

/// Hyperbolic tangent.
Var Tanh(const Var& a);

/// Logistic sigmoid 1 / (1 + exp(-x)).
Var Sigmoid(const Var& a);

/// Elementwise absolute value (subgradient 0 at 0).
Var Abs(const Var& a);

/// Softplus log(1 + exp(x)): a smooth non-negative squashing used to
/// enforce sign constraints (e.g., the PCC exponent magnitude).
Var Softplus(const Var& a);

/// Elementwise exponential.
Var Exp(const Var& a);

/// Column-wise mean over rows: N x C -> 1 x C.
Var MeanRows(const Var& a);

/// Horizontal concatenation of same-row-count operands:
/// (N x C1, N x C2) -> N x (C1 + C2).
Var ConcatCols(const Var& a, const Var& b);

/// Mean of all elements -> 1 x 1.
Var Mean(const Var& a);

/// Sum of all elements -> 1 x 1.
Var Sum(const Var& a);

/// Mean absolute error between same-shaped predictions and targets -> 1x1.
/// Convenience for Mean(Abs(Sub(a, b))).
Var MaeLoss(const Var& prediction, const Var& target);

}  // namespace tasq

#endif  // TASQ_ML_AUTOGRAD_H_
