#include "ml/kernels.h"

#include "common/hot.h"

namespace tasq {

// Every TASQ_VEC loop below is verified vectorized by scripts/tasq_vec.py
// against the compiler's own report (cmake -DTASQ_VEC_REPORT=ON). Keep
// the bodies call-free and unit-stride; the annotation is a contract, not
// a hint.

void VecAddInPlace(double* __restrict a, const double* __restrict b,
                   size_t n) {
  TASQ_VEC
  for (size_t i = 0; i < n; ++i) a[i] += b[i];
}

void VecAddScaledInPlace(double* __restrict a, const double* __restrict b,
                         double scale, size_t n) {
  TASQ_VEC
  for (size_t i = 0; i < n; ++i) a[i] += scale * b[i];
}

void VecMulInPlace(double* __restrict a, const double* __restrict b,
                   size_t n) {
  TASQ_VEC
  for (size_t i = 0; i < n; ++i) a[i] *= b[i];
}

void VecScale(double* __restrict x, double s, size_t n) {
  TASQ_VEC
  for (size_t i = 0; i < n; ++i) x[i] *= s;
}

double VecSum(const double* __restrict x, size_t n) {
  // Four independent accumulators make the loop lane-parallel in source
  // order: the vectorizer needs no FP reassociation (illegal under strict
  // IEEE), and the result is identical on every machine and vector width.
  double l0 = 0.0;
  double l1 = 0.0;
  double l2 = 0.0;
  double l3 = 0.0;
  size_t n4 = n - n % 4;
  TASQ_VEC
  for (size_t i = 0; i < n4; i += 4) {
    l0 += x[i];
    l1 += x[i + 1];
    l2 += x[i + 2];
    l3 += x[i + 3];
  }
  double total = (l0 + l1) + (l2 + l3);
  for (size_t i = n4; i < n; ++i) total += x[i];
  return total;
}

double VecDot(const double* __restrict x, const double* __restrict y,
              size_t n) {
  double l0 = 0.0;
  double l1 = 0.0;
  double l2 = 0.0;
  double l3 = 0.0;
  size_t n4 = n - n % 4;
  TASQ_VEC
  for (size_t i = 0; i < n4; i += 4) {
    l0 += x[i] * y[i];
    l1 += x[i + 1] * y[i + 1];
    l2 += x[i + 2] * y[i + 2];
    l3 += x[i + 3] * y[i + 3];
  }
  double total = (l0 + l1) + (l2 + l3);
  for (size_t i = n4; i < n; ++i) total += x[i] * y[i];
  return total;
}

void VecBiasRelu(double* __restrict o, const double* __restrict bias,
                 size_t n) {
  TASQ_VEC
  for (size_t j = 0; j < n; ++j) {
    double v = o[j] + bias[j];
    o[j] = v > 0.0 ? v : 0.0;
  }
}

void MatMulAccum(double* __restrict out, const double* __restrict a,
                 const double* __restrict b, size_t rows, size_t inner,
                 size_t cols) {
  // i,k,j order with k unrolled by 4: each output row is loaded/stored a
  // quarter as often. The unrolled update is a DEPENDENT chain
  //   v += a0*b0[j]; v += a1*b1[j]; v += a2*b2[j]; v += a3*b3[j];
  // not the fused `v += a0*b0[j] + ... + a3*b3[j]` — the fused form sums
  // the products first, a different association that changes low-order
  // bits vs four sequential axpy passes. The chain is exactly the
  // historical scalar order (bit-identical), and still vectorizes: the
  // j lanes are independent even though each j's adds are serial.
  size_t k4 = inner - inner % 4;
  for (size_t i = 0; i < rows; ++i) {
    const double* arow = a + i * inner;
    double* orow = out + i * cols;
    size_t k = 0;
    for (; k < k4; k += 4) {
      const double a0 = arow[k];
      const double a1 = arow[k + 1];
      const double a2 = arow[k + 2];
      const double a3 = arow[k + 3];
      const double* b0 = b + k * cols;
      const double* b1 = b0 + cols;
      const double* b2 = b1 + cols;
      const double* b3 = b2 + cols;
      TASQ_VEC
      for (size_t j = 0; j < cols; ++j) {
        double v = orow[j];
        v += a0 * b0[j];
        v += a1 * b1[j];
        v += a2 * b2[j];
        v += a3 * b3[j];
        orow[j] = v;
      }
    }
    for (; k < inner; ++k) {
      const double ak = arow[k];
      const double* brow = b + k * cols;
      TASQ_VEC
      for (size_t j = 0; j < cols; ++j) orow[j] += ak * brow[j];
    }
  }
}

}  // namespace tasq
