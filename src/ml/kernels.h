#ifndef TASQ_ML_KERNELS_H_
#define TASQ_ML_KERNELS_H_

#include <cstddef>

namespace tasq {

/// Raw-span SIMD kernels for the dense-matrix layer (ml/matrix) and the
/// batched NN forward pass (nn/nn_model). Every loop marked TASQ_VEC in
/// kernels.cc is machine-checked against the compiler's vectorizer report
/// by scripts/tasq_vec.py (cmake -DTASQ_VEC_REPORT=ON): a refactor that
/// silently de-vectorizes one fails CI with the compiler's reason.
///
/// Design rules (DESIGN.md, "Vectorization policy"):
///   - `__restrict`-qualified pointers: callers guarantee the spans do
///     not alias, so the vectorizer needs no runtime alias versioning.
///   - strict IEEE only — this repo never compiles with -ffast-math.
///     Elementwise kernels vectorize as-is; reductions (VecSum, VecDot)
///     use a FIXED 4-lane accumulator combined in a fixed order, so the
///     result is run-to-run (and compiler-flag) deterministic while the
///     lane-parallel source order is vectorizable without reassociation.
///   - no function calls inside annotated loops.
///
/// Determinism note: the 4-lane reductions produce different low-order
/// bits than a left-to-right scalar sum (lane order changes the rounding
/// sequence). The switch is a one-time, reviewed golden regeneration
/// (tests/golden, --update_golden); after it, results are bit-stable.

/// a[i] += b[i]. Spans must not alias.
void VecAddInPlace(double* __restrict a, const double* __restrict b,
                   size_t n);

/// a[i] += scale * b[i]. Spans must not alias.
void VecAddScaledInPlace(double* __restrict a, const double* __restrict b,
                         double scale, size_t n);

/// a[i] *= b[i]. Spans must not alias.
void VecMulInPlace(double* __restrict a, const double* __restrict b,
                   size_t n);

/// x[i] *= s.
void VecScale(double* __restrict x, double s, size_t n);

/// Fixed-4-lane sum: lanes accumulate strided quarters in source order,
/// then combine as (l0+l1)+(l2+l3); the tail (< 4 elements) folds in
/// left-to-right. Deterministic for a fixed n regardless of vector width.
double VecSum(const double* __restrict x, size_t n);

/// Fixed-4-lane dot product, same lane/combine order as VecSum.
double VecDot(const double* __restrict x, const double* __restrict y,
              size_t n);

/// o[j] = o[j] + bias[j] (row-broadcast bias add). Spans must not alias.
/// A named wrapper, not a second definition: an out-of-line copy would be
/// body-identical to VecAddInPlace and GCC's IPA-ICF would fold it away,
/// leaving its TASQ_VEC loop with no vectorizer verdict (vec-unresolved).
inline void VecBiasAdd(double* __restrict o, const double* __restrict bias,
                       size_t n) {
  VecAddInPlace(o, bias, n);
}

/// o[j] = max(o[j] + bias[j], 0) — bias add fused with ReLU, the hidden-
/// layer epilogue of the batched forward pass. Spans must not alias.
void VecBiasRelu(double* __restrict o, const double* __restrict bias,
                 size_t n);

/// out += a * b for row-major batch-major operands: `a` is rows x inner
/// (one batch row per matrix row, contiguous), `b` is inner x cols, `out`
/// is rows x cols and must be pre-zeroed (or hold a partial sum to
/// accumulate onto). Accumulation order per output element is k = 0, 1,
/// ..., inner-1 exactly — the same association as the historical scalar
/// i,k,j matmul, so the k-unrolled kernel is bit-identical to it for
/// finite inputs. Spans must not alias.
void MatMulAccum(double* __restrict out, const double* __restrict a,
                 const double* __restrict b, size_t rows, size_t inner,
                 size_t cols);

}  // namespace tasq

#endif  // TASQ_ML_KERNELS_H_
