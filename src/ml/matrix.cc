#include "ml/matrix.h"

#include <cmath>

#include "common/check.h"
#include "common/fmath.h"
#include "ml/kernels.h"

namespace tasq {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  // A wrapped buffer of the wrong size would alias out-of-bounds memory on
  // the first At(); fail at the construction site instead.
  TASQ_CHECK_EQ(data_.size(), rows_ * cols_);
}

Matrix Matrix::RowVector(std::vector<double> values) {
  size_t n = values.size();
  return Matrix(1, n, std::move(values));
}

Matrix Matrix::ColumnVector(std::vector<double> values) {
  size_t n = values.size();
  return Matrix(n, 1, std::move(values));
}

Matrix Matrix::GlorotUniform(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  double limit = CheckedSqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng.Uniform(-limit, limit);
  return m;
}

void Matrix::SetZero() {
  for (double& v : data_) v = 0.0;
}

void Matrix::AddInPlace(const Matrix& other) {
  // Shape agreement is the op's contract; mismatched operands would read
  // past other.data_ rather than produce a wrong sum.
  TASQ_CHECK(SameShape(other));
  VecAddInPlace(data_.data(), other.data_.data(), data_.size());
}

void Matrix::AddScaledInPlace(const Matrix& other, double scale) {
  TASQ_CHECK(SameShape(other));
  VecAddScaledInPlace(data_.data(), other.data_.data(), scale, data_.size());
}

Matrix Matrix::MatMul(const Matrix& other) const {
  // Inner dimensions must agree or the k-loop walks off other's rows.
  TASQ_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // The historical scalar path skipped exact-zero `a` operands; the
  // kernel multiplies through instead (o + 0.0*b == o bitwise for the
  // finite values this library trains on), keeping the k-unrolled loop
  // branch-free and vectorizable.
  MatMulAccum(out.data_.data(), data_.data(), other.data_.data(), rows_,
              cols_, other.cols_);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

double Matrix::Sum() const {
  // Fixed-4-lane reduction (ml/kernels.h): deterministic bit-for-bit at
  // any vector width, vectorizable without FP reassociation. Lane order
  // differs from the old left-to-right sum, so the switch regenerated the
  // training goldens once (tests/golden, --update_golden).
  return VecSum(data_.data(), data_.size());
}

}  // namespace tasq
