#include "ml/matrix.h"

#include <cmath>

#include "common/check.h"
#include "common/fmath.h"

namespace tasq {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  // A wrapped buffer of the wrong size would alias out-of-bounds memory on
  // the first At(); fail at the construction site instead.
  TASQ_CHECK_EQ(data_.size(), rows_ * cols_);
}

Matrix Matrix::RowVector(std::vector<double> values) {
  size_t n = values.size();
  return Matrix(1, n, std::move(values));
}

Matrix Matrix::ColumnVector(std::vector<double> values) {
  size_t n = values.size();
  return Matrix(n, 1, std::move(values));
}

Matrix Matrix::GlorotUniform(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  double limit = CheckedSqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng.Uniform(-limit, limit);
  return m;
}

void Matrix::SetZero() {
  for (double& v : data_) v = 0.0;
}

void Matrix::AddInPlace(const Matrix& other) {
  // Shape agreement is the op's contract; mismatched operands would read
  // past other.data_ rather than produce a wrong sum.
  TASQ_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaledInPlace(const Matrix& other, double scale) {
  TASQ_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

Matrix Matrix::MatMul(const Matrix& other) const {
  // Inner dimensions must agree or the k-loop walks off other's rows.
  TASQ_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = data_[i * cols_ + k];
      // num: float-eq exact-zero operand: skipping is a pure optimization
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

double Matrix::Sum() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

}  // namespace tasq
