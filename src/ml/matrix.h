#ifndef TASQ_ML_MATRIX_H_
#define TASQ_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tasq {

/// A dense row-major matrix of doubles — the value type of the autograd
/// engine. Sized for this library's models (feature batches of thousands of
/// rows, layers of tens of units): simple loops, no BLAS.
///
/// Layout contract (batch-major): storage is one contiguous
/// rows x cols span; row r occupies [r*cols, (r+1)*cols). A batch of
/// examples is stored one example per row, so every per-example kernel
/// pass (matmul row update, bias broadcast, activation) walks memory with
/// unit stride. The arithmetic lives in the __restrict raw-span kernels
/// of ml/kernels.h, whose TASQ_VEC loops are machine-checked against the
/// compiler's vectorizer report (scripts/tasq_vec.py).
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;

  /// A rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// A rows x cols matrix wrapping `data` (size must match).
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  /// A 1 x values.size() row vector.
  static Matrix RowVector(std::vector<double> values);

  /// A values.size() x 1 column vector.
  static Matrix ColumnVector(std::vector<double> values);

  /// Glorot/Xavier-uniform initialization for a weight matrix.
  static Matrix GlorotUniform(size_t rows, size_t cols, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  double& At(size_t r, size_t c) {
    // Bounds are debug-only: At() sits in every training inner loop.
    TASQ_DCHECK_LT(r, rows_);
    TASQ_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    TASQ_DCHECK_LT(r, rows_);
    TASQ_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Contiguous raw span of row `r` (cols() doubles) — the handle the
  /// batch-major kernels take. Valid only while the shape is unchanged.
  double* Row(size_t r) {
    TASQ_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* Row(size_t r) const {
    TASQ_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// Reshapes to rows x cols, reusing the existing storage when its
  /// capacity allows (contents are unspecified afterwards). Scratch
  /// matrices on the serving path Resize per batch and stop allocating
  /// once warm.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Sets every element to zero.
  void SetZero();

  /// this += other (shapes must match).
  void AddInPlace(const Matrix& other);

  /// this += scale * other (shapes must match).
  void AddScaledInPlace(const Matrix& other, double scale);

  /// Returns this * other (inner dimensions must agree).
  Matrix MatMul(const Matrix& other) const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Sum of all elements, computed with the fixed-4-lane deterministic
  /// reduction (ml/kernels.h VecSum): lanes fold strided quarters, then
  /// combine as (l0+l1)+(l2+l3), tail left-to-right. Identical bits on
  /// every machine; for n < 4 it degenerates to the plain sequential sum.
  double Sum() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tasq

#endif  // TASQ_ML_MATRIX_H_
