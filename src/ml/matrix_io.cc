#include "ml/matrix_io.h"

namespace tasq {

void SaveMatrix(TextArchiveWriter& writer, const std::string& tag,
                const Matrix& matrix) {
  writer.Scalar(tag + ".rows", static_cast<int64_t>(matrix.rows()));
  writer.Scalar(tag + ".cols", static_cast<int64_t>(matrix.cols()));
  writer.Vector(tag + ".data", matrix.data());
}

Matrix LoadMatrix(TextArchiveReader& reader, const std::string& tag) {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<double> data;
  reader.Scalar(tag + ".rows", rows);
  reader.Scalar(tag + ".cols", cols);
  reader.Vector(tag + ".data", data);
  if (!reader.status().ok() || rows < 0 || cols < 0 ||
      data.size() != static_cast<size_t>(rows * cols)) {
    return Matrix();
  }
  return Matrix(static_cast<size_t>(rows), static_cast<size_t>(cols),
                std::move(data));
}

}  // namespace tasq
