#ifndef TASQ_ML_MATRIX_IO_H_
#define TASQ_ML_MATRIX_IO_H_

#include "common/text_io.h"
#include "ml/matrix.h"

namespace tasq {

/// Writes `matrix` under `tag` (shape followed by row-major data).
void SaveMatrix(TextArchiveWriter& writer, const std::string& tag,
                const Matrix& matrix);

/// Reads a matrix written by SaveMatrix; errors latch on the reader.
Matrix LoadMatrix(TextArchiveReader& reader, const std::string& tag);

}  // namespace tasq

#endif  // TASQ_ML_MATRIX_IO_H_
