#include "ml/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "common/fmath.h"

namespace tasq {

AdamOptimizer::AdamOptimizer(std::vector<Var> parameters)
    : AdamOptimizer(std::move(parameters), Options()) {}

AdamOptimizer::AdamOptimizer(std::vector<Var> parameters, Options options)
    : parameters_(std::move(parameters)), options_(options) {
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (const Var& p : parameters_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
    p->EnsureGrad();
  }
}

void AdamOptimizer::Step() {
  ++steps_;
  double bias1 = 1.0 - CheckedPow(options_.beta1, static_cast<double>(steps_));
  double bias2 = 1.0 - CheckedPow(options_.beta2, static_cast<double>(steps_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Matrix& value = parameters_[i]->value;
    Matrix& grad = parameters_[i]->grad;
    // The k-loop indexes value, grad, and the moment buffers with one
    // counter; if a parameter was resized after construction the update
    // would scribble across buffers instead of failing loudly.
    TASQ_DCHECK(grad.SameShape(value));
    TASQ_DCHECK(m_[i].SameShape(value));
    for (size_t k = 0; k < value.size(); ++k) {
      double g = grad.data()[k];
      if (options_.weight_decay > 0.0) {
        g += options_.weight_decay * value.data()[k];
      }
      double& m = m_[i].data()[k];
      double& v = v_[i].data()[k];
      m = options_.beta1 * m + (1.0 - options_.beta1) * g;
      v = options_.beta2 * v + (1.0 - options_.beta2) * g * g;
      double m_hat = m / bias1;
      double v_hat = v / bias2;
      // CheckedSqrt makes a NaN gradient die here (sanitizer/FPE
      // builds) instead of poisoning every parameter it touches.
      value.data()[k] -= options_.learning_rate * m_hat /
                         (CheckedSqrt(v_hat) + options_.epsilon);
    }
    grad.SetZero();
  }
}

SgdOptimizer::SgdOptimizer(std::vector<Var> parameters, double learning_rate,
                           double momentum)
    : parameters_(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  velocity_.reserve(parameters_.size());
  for (const Var& p : parameters_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
    p->EnsureGrad();
  }
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Matrix& value = parameters_[i]->value;
    Matrix& grad = parameters_[i]->grad;
    TASQ_DCHECK(grad.SameShape(value));
    TASQ_DCHECK(velocity_[i].SameShape(value));
    for (size_t k = 0; k < value.size(); ++k) {
      double& vel = velocity_[i].data()[k];
      vel = momentum_ * vel - learning_rate_ * grad.data()[k];
      value.data()[k] += vel;
    }
    grad.SetZero();
  }
}

int64_t CountParameters(const std::vector<Var>& parameters) {
  int64_t total = 0;
  for (const Var& p : parameters) {
    total += static_cast<int64_t>(p->value.size());
  }
  return total;
}

}  // namespace tasq
