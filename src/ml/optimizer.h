#ifndef TASQ_ML_OPTIMIZER_H_
#define TASQ_ML_OPTIMIZER_H_

#include <vector>

#include "ml/autograd.h"

namespace tasq {

/// Adam optimizer (Kingma & Ba) over a fixed set of parameter nodes.
/// Call `Step()` after `Backward` has populated gradients; gradients are
/// zeroed by the step, so the train loop is: forward -> Backward -> Step.
class AdamOptimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    /// Optional L2 weight decay (0 disables).
    double weight_decay = 0.0;
  };

  explicit AdamOptimizer(std::vector<Var> parameters);
  AdamOptimizer(std::vector<Var> parameters, Options options);

  /// Applies one Adam update from the accumulated gradients, then zeroes
  /// the gradients.
  void Step();

  /// Number of steps taken so far.
  int64_t steps() const { return steps_; }

  const std::vector<Var>& parameters() const { return parameters_; }

 private:
  std::vector<Var> parameters_;
  Options options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t steps_ = 0;
};

/// Plain SGD with optional momentum, used by ablations.
class SgdOptimizer {
 public:
  SgdOptimizer(std::vector<Var> parameters, double learning_rate,
               double momentum = 0.0);

  /// Applies one update, then zeroes the gradients.
  void Step();

 private:
  std::vector<Var> parameters_;
  double learning_rate_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Total number of scalar parameters across `parameters` (Table 7's
/// "Number of Parameters").
int64_t CountParameters(const std::vector<Var>& parameters);

}  // namespace tasq

#endif  // TASQ_ML_OPTIMIZER_H_
