#include "nn/nn_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/fmath.h"
#include "common/rng.h"
#include "ml/kernels.h"
#include "ml/matrix_io.h"
#include "ml/optimizer.h"

namespace tasq {

namespace {

/// Layer epilogues for the batched forward pass. The hidden layers and
/// the identity head ride vectorized kernels; the softplus head is
/// exp-based, and there is no vector math library under strict IEEE (no
/// -ffast-math in this repo), so it stays scalar by design — it touches
/// count x 1 outputs, not the count x width hidden activations.
enum class Activation { kRelu, kSoftplus, kIdentity };

/// out = activation(x * w + bias), with `x` a batch-major rows x inner
/// raw span and bias row-broadcast. Replicates the autograd path
/// bit-for-bit: the product rides the same MatMulAccum kernel (identical
/// i,k,j association) as Matrix::MatMul, and the fused bias+activation
/// epilogue performs the same per-element operations in the same order as
/// the Add node followed by the elementwise activation — so
/// PredictBatchInto and the autograd Forward produce identical bytes
/// (pinned by the determinism tests).
void DenseLayerInto(const double* x, size_t rows, size_t inner,
                    const Matrix& w, const Matrix& bias,
                    Activation activation, Matrix* out) {
  TASQ_CHECK_EQ(inner, w.rows());
  size_t cols = w.cols();
  out->Resize(rows, cols);
  out->SetZero();
  MatMulAccum(out->data().data(), x, w.data().data(), rows, inner, cols);
  const double* bd = bias.data().data();
  for (size_t i = 0; i < rows; ++i) {
    double* orow = out->Row(i);
    switch (activation) {
      case Activation::kRelu:
        VecBiasRelu(orow, bd, cols);
        break;
      case Activation::kSoftplus:
        for (size_t j = 0; j < cols; ++j) {
          orow[j] = StableSoftplus(orow[j] + bd[j]);
        }
        break;
      case Activation::kIdentity:
        VecBiasAdd(orow, bd, cols);
        break;
    }
  }
}

}  // namespace

Status PccSupervision::Validate(bool needs_xgb) const {
  size_t n = targets.size();
  if (n == 0) return Status::InvalidArgument("supervision is empty");
  if (observed_tokens.size() != n || observed_runtime.size() != n) {
    return Status::InvalidArgument(
        "observed tokens/runtime must match target count");
  }
  if (needs_xgb && xgb_runtime.size() != n) {
    return Status::InvalidArgument("LF3 requires xgb_runtime per example");
  }
  return Status::Ok();
}

NnPccModel::NnPccModel(size_t input_dim, NnOptions options)
    : input_dim_(input_dim), options_(std::move(options)) {
  Rng rng(options_.seed);
  size_t previous = input_dim_;
  for (size_t width : options_.hidden_sizes) {
    layer_weights_.push_back(
        MakeParameter(Matrix::GlorotUniform(previous, width, rng)));
    layer_biases_.push_back(MakeParameter(Matrix(1, width)));
    previous = width;
  }
  head1_weight_ = MakeParameter(Matrix::GlorotUniform(previous, 1, rng));
  head1_bias_ = MakeParameter(Matrix(1, 1));
  head2_weight_ = MakeParameter(Matrix::GlorotUniform(previous, 1, rng));
  head2_bias_ = MakeParameter(Matrix(1, 1));
}

std::vector<Var> NnPccModel::AllParameters() const {
  std::vector<Var> params;
  for (size_t i = 0; i < layer_weights_.size(); ++i) {
    params.push_back(layer_weights_[i]);
    params.push_back(layer_biases_[i]);
  }
  params.push_back(head1_weight_);
  params.push_back(head1_bias_);
  params.push_back(head2_weight_);
  params.push_back(head2_bias_);
  return params;
}

int64_t NnPccModel::NumParameters() const {
  return CountParameters(AllParameters());
}

std::pair<Var, Var> NnPccModel::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layer_weights_.size(); ++i) {
    h = Relu(Add(MatMul(h, layer_weights_[i]), layer_biases_[i]));
  }
  Var p1 = Softplus(Add(MatMul(h, head1_weight_), head1_bias_));
  Var p2 = Add(MatMul(h, head2_weight_), head2_bias_);
  return {p1, p2};
}

Result<double> NnPccModel::Train(const std::vector<double>& features,
                                 const PccSupervision& supervision) {
  bool needs_xgb = options_.loss_form == LossForm::kLF3;
  Status valid = supervision.Validate(needs_xgb);
  if (!valid.ok()) return valid;
  size_t n = supervision.size();
  if (features.size() != n * input_dim_) {
    return Status::InvalidArgument("feature matrix size mismatch");
  }
  Result<PccTargetScaling> scaling = PccTargetScaling::Fit(supervision.targets);
  if (!scaling.ok()) return scaling.status();
  scaling_ = std::make_unique<PccTargetScaling>(scaling.value());

  std::vector<double> scaled_targets(2 * n);
  for (size_t i = 0; i < n; ++i) {
    auto [t1, t2] = scaling_->ToScaled(supervision.targets[i]);
    scaled_targets[2 * i] = t1;
    scaled_targets[2 * i + 1] = t2;
  }
  LossWeights weights = options_.override_weights
                            ? options_.weights
                            : DefaultLossWeights(options_.loss_form);

  AdamOptimizer optimizer(AllParameters(),
                          {.learning_rate = options_.learning_rate,
                           .weight_decay = options_.weight_decay});
  Rng rng(options_.seed ^ 0xBADC0FFEULL);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Optional validation split for early stopping: a deterministic shuffle
  // assigns the tail to validation; training shuffles only the head.
  size_t validation = 0;
  if (options_.validation_fraction > 0.0 && n >= 10) {
    rng.Shuffle(order);
    validation = std::min(
        n / 2, static_cast<size_t>(std::ceil(
                   options_.validation_fraction * static_cast<double>(n))));
  }
  size_t train_count = n - validation;

  // Builds a loss graph over a set of example indices.
  auto build_loss = [&](const size_t* idx, size_t count) -> Result<Var> {
    Matrix x(count, input_dim_);
    PccLossBatch loss_batch;
    loss_batch.scaled_targets.resize(2 * count);
    loss_batch.observed_tokens.resize(count);
    loss_batch.observed_runtime.resize(count);
    if (needs_xgb) loss_batch.xgb_runtime.resize(count);
    for (size_t r = 0; r < count; ++r) {
      size_t i = idx[r];
      std::copy_n(features.begin() + static_cast<long>(i * input_dim_),
                  input_dim_,
                  x.data().begin() + static_cast<long>(r * input_dim_));
      loss_batch.scaled_targets[2 * r] = scaled_targets[2 * i];
      loss_batch.scaled_targets[2 * r + 1] = scaled_targets[2 * i + 1];
      loss_batch.observed_tokens[r] = supervision.observed_tokens[i];
      loss_batch.observed_runtime[r] = supervision.observed_runtime[i];
      if (needs_xgb) loss_batch.xgb_runtime[r] = supervision.xgb_runtime[i];
    }
    auto [p1, p2] = Forward(MakeConstant(std::move(x)));
    return BuildPccLoss(p1, p2, *scaling_, loss_batch, weights);
  };

  std::vector<Var> parameters = AllParameters();
  std::vector<Matrix> best_values;
  double best_validation_loss = 1e300;
  int epochs_without_improvement = 0;

  size_t batch = std::max<size_t>(1, std::min(options_.batch_size, n));
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    // Shuffle only the training head so the validation tail stays fixed.
    for (size_t i = train_count; i > 1; --i) {
      size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < train_count; start += batch) {
      size_t end = std::min(start + batch, train_count);
      Result<Var> loss = build_loss(order.data() + start, end - start);
      if (!loss.ok()) return loss.status();
      Backward(loss.value());
      optimizer.Step();
      epoch_loss += loss.value()->value.At(0, 0);
      ++batches;
    }
    last_epoch_loss =
        epoch_loss / static_cast<double>(std::max<size_t>(1, batches));

    if (validation > 0) {
      Result<Var> val_loss =
          build_loss(order.data() + train_count, validation);
      if (!val_loss.ok()) return val_loss.status();
      double value = val_loss.value()->value.At(0, 0);
      if (value < best_validation_loss - 1e-9) {
        best_validation_loss = value;
        epochs_without_improvement = 0;
        best_values.clear();
        for (const Var& p : parameters) best_values.push_back(p->value);
      } else if (++epochs_without_improvement >=
                 options_.early_stopping_patience) {
        break;
      }
    }
  }
  if (validation > 0 && !best_values.empty()) {
    for (size_t i = 0; i < parameters.size(); ++i) {
      parameters[i]->value = best_values[i];
    }
    return best_validation_loss;
  }
  return last_epoch_loss;
}

void NnPccModel::Serialize(TextArchiveWriter& writer) const {
  writer.String("nn.format", "tasq-nn-v1");
  writer.Scalar("nn.input_dim", static_cast<int64_t>(input_dim_));
  std::vector<double> hidden;
  for (size_t width : options_.hidden_sizes) {
    hidden.push_back(static_cast<double>(width));
  }
  writer.Vector("nn.hidden_sizes", hidden);
  writer.Scalar("nn.trained", static_cast<int64_t>(trained() ? 1 : 0));
  if (trained()) {
    writer.Scalar("nn.scaling_s1", scaling_->s1());
    writer.Scalar("nn.scaling_s2", scaling_->s2());
  }
  for (size_t i = 0; i < layer_weights_.size(); ++i) {
    SaveMatrix(writer, "nn.w" + std::to_string(i), layer_weights_[i]->value);
    SaveMatrix(writer, "nn.b" + std::to_string(i), layer_biases_[i]->value);
  }
  SaveMatrix(writer, "nn.head1_w", head1_weight_->value);
  SaveMatrix(writer, "nn.head1_b", head1_bias_->value);
  SaveMatrix(writer, "nn.head2_w", head2_weight_->value);
  SaveMatrix(writer, "nn.head2_b", head2_bias_->value);
}

NnPccModel NnPccModel::Deserialize(TextArchiveReader& reader) {
  std::string format;
  reader.String("nn.format", format);
  if (reader.status().ok() && format != "tasq-nn-v1") {
    reader.ForceError("unknown nn archive format '" + format + "'");
  }
  int64_t input_dim = 0;
  std::vector<double> hidden;
  int64_t trained = 0;
  reader.Scalar("nn.input_dim", input_dim);
  reader.Vector("nn.hidden_sizes", hidden);
  reader.Scalar("nn.trained", trained);
  NnOptions options;
  options.hidden_sizes.clear();
  for (double width : hidden) {
    options.hidden_sizes.push_back(static_cast<size_t>(width));
  }
  NnPccModel model(static_cast<size_t>(std::max<int64_t>(0, input_dim)),
                   options);
  if (trained == 1) {
    double s1 = 1.0;
    double s2 = 1.0;
    reader.Scalar("nn.scaling_s1", s1);
    reader.Scalar("nn.scaling_s2", s2);
    if (reader.status().ok() && s1 > 0.0 && s2 > 0.0) {
      model.scaling_ = std::make_unique<PccTargetScaling>(s1, s2);
    } else {
      reader.ForceError("nn scaling factors must be positive");
    }
  }
  auto load_into = [&](const std::string& tag, const Var& parameter) {
    Matrix loaded = LoadMatrix(reader, tag);
    if (reader.status().ok() && !loaded.SameShape(parameter->value)) {
      reader.ForceError("nn parameter shape mismatch for '" + tag + "'");
      return;
    }
    if (reader.status().ok()) parameter->value = std::move(loaded);
  };
  for (size_t i = 0; i < model.layer_weights_.size(); ++i) {
    load_into("nn.w" + std::to_string(i), model.layer_weights_[i]);
    load_into("nn.b" + std::to_string(i), model.layer_biases_[i]);
  }
  load_into("nn.head1_w", model.head1_weight_);
  load_into("nn.head1_b", model.head1_bias_);
  load_into("nn.head2_w", model.head2_weight_);
  load_into("nn.head2_b", model.head2_bias_);
  if (!reader.status().ok()) model.scaling_.reset();
  return model;
}

Result<PowerLawPcc> NnPccModel::Predict(
    const std::vector<double>& features) const {
  Result<std::vector<PowerLawPcc>> batch = PredictBatch(features, 1);
  if (!batch.ok()) return batch.status();
  return batch.value()[0];
}

Result<std::vector<PowerLawPcc>> NnPccModel::PredictBatch(
    const std::vector<double>& features, size_t count) const {
  if (features.size() != count * input_dim_ || count == 0) {
    return Status::InvalidArgument("feature matrix size mismatch");
  }
  InferenceScratch scratch;
  std::vector<PowerLawPcc> out(count);
  Status status = PredictBatchInto(features.data(), count, scratch,
                                   out.data());
  if (!status.ok()) return status;
  return out;
}

Status NnPccModel::PredictBatchInto(const double* features, size_t count,
                                    InferenceScratch& scratch,
                                    PowerLawPcc* out) const {
  if (!trained()) {
    return Status::FailedPrecondition("model has not been trained");
  }
  if (count == 0) return Status::Ok();
  if (scratch.hidden.size() != layer_weights_.size()) {
    scratch.hidden.resize(layer_weights_.size());
  }
  // The first layer reads the caller's batch-major feature span in place;
  // the old path copied it into a scratch matrix first.
  const double* h = features;
  size_t h_cols = input_dim_;
  for (size_t i = 0; i < layer_weights_.size(); ++i) {
    DenseLayerInto(h, count, h_cols, layer_weights_[i]->value,
                   layer_biases_[i]->value, Activation::kRelu,
                   &scratch.hidden[i]);
    h = scratch.hidden[i].data().data();
    h_cols = scratch.hidden[i].cols();
  }
  DenseLayerInto(h, count, h_cols, head1_weight_->value, head1_bias_->value,
                 Activation::kSoftplus, &scratch.head1);
  DenseLayerInto(h, count, h_cols, head2_weight_->value, head2_bias_->value,
                 Activation::kIdentity, &scratch.head2);
  for (size_t i = 0; i < count; ++i) {
    out[i] = scaling_->FromScaled(scratch.head1.At(i, 0),
                                  scratch.head2.At(i, 0));
  }
  return Status::Ok();
}

}  // namespace tasq
