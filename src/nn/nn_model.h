#ifndef TASQ_NN_NN_MODEL_H_
#define TASQ_NN_NN_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/text_io.h"
#include "ml/autograd.h"
#include "nn/pcc_loss.h"
#include "pcc/pcc.h"

namespace tasq {

/// Supervision for PCC-parameter models (NN and GNN heads): per example the
/// fitted power-law target plus the observed run at the reference token
/// count (for the LF2/LF3 runtime terms).
struct PccSupervision {
  std::vector<PowerLawPcc> targets;
  std::vector<double> observed_tokens;
  std::vector<double> observed_runtime;
  /// XGBoost predictions at the observed tokens; required only for LF3.
  std::vector<double> xgb_runtime;

  size_t size() const { return targets.size(); }
  /// Checks all populated vectors share the same length.
  TASQ_NODISCARD Status Validate(bool needs_xgb) const;
};

/// Training hyper-parameters for the feed-forward model.
struct NnOptions {
  std::vector<size_t> hidden_sizes = {32, 16};
  int epochs = 60;
  size_t batch_size = 64;
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  LossForm loss_form = LossForm::kLF2;
  /// When true, `weights` overrides DefaultLossWeights(loss_form).
  bool override_weights = false;
  LossWeights weights;
  /// Fraction of examples held out for validation-based early stopping;
  /// 0 trains on everything for the full epoch budget.
  double validation_fraction = 0.0;
  /// Epochs without validation improvement tolerated before stopping
  /// (only meaningful when validation_fraction > 0). The parameters from
  /// the best validation epoch are restored at the end.
  int early_stopping_patience = 10;
  uint64_t seed = 1;
};

/// Feed-forward fully connected network over aggregated job-level features
/// predicting the two scaled PCC parameters (paper §4.4 "NN"). The first
/// head passes through a softplus, so every predicted curve is monotone
/// non-increasing by construction (§4.5).
class NnPccModel {
 public:
  /// Builds an untrained model for `input_dim` features.
  NnPccModel(size_t input_dim, NnOptions options);

  /// Trains on standardized features (row-major N x input_dim) with the
  /// given supervision; fits the target scaling internally. Returns the
  /// final epoch's mean training loss.
  TASQ_NODISCARD Result<double> Train(const std::vector<double>& features,
                       const PccSupervision& supervision);

  /// Predicts the PCC for one standardized feature vector. Fails before
  /// training.
  TASQ_NODISCARD Result<PowerLawPcc> Predict(const std::vector<double>& features) const;

  /// Batch prediction over row-major N x input_dim features.
  TASQ_NODISCARD Result<std::vector<PowerLawPcc>> PredictBatch(
      const std::vector<double>& features, size_t count) const;

  /// Reusable activation buffers for PredictBatchInto. Matrices keep
  /// their capacity across calls, so a serving loop that recycles one
  /// scratch pays zero heap allocations per batch once warm. The first
  /// layer reads the caller's feature span directly (batch-major,
  /// count x input_dim contiguous), so there is no input staging buffer.
  struct InferenceScratch {
    std::vector<Matrix> hidden;
    Matrix head1;
    Matrix head2;
  };

  /// Inference-only batch prediction into `out` (size `count`),
  /// allocation-free once `scratch` is warm. Bit-identical to the
  /// autograd Forward pass: the dense layers ride the same MatMulAccum
  /// kernel (ml/kernels.h, identical i,k,j association) as Matrix::MatMul
  /// plus fused bias+activation epilogues performing the Add node's and
  /// the activation's operations in the same order — PredictBatch
  /// delegates here, so the golden/determinism tests pin both paths to
  /// the same bytes.
  TASQ_NODISCARD Status PredictBatchInto(const double* features, size_t count,
                                         InferenceScratch& scratch,
                                         PowerLawPcc* out) const;

  /// Total trainable scalar parameters (Table 7).
  int64_t NumParameters() const;

  size_t input_dim() const { return input_dim_; }
  bool trained() const { return scaling_ != nullptr; }
  const NnOptions& options() const { return options_; }

  /// Serializes the trained network (architecture, weights, target
  /// scaling) into an archive.
  void Serialize(TextArchiveWriter& writer) const;

  /// Reconstructs a model written by Save; errors latch on the reader and
  /// the returned model is untrained.
  static NnPccModel Deserialize(TextArchiveReader& reader);

 private:
  /// Forward pass: returns the (p1, p2) column pair for a batch input.
  std::pair<Var, Var> Forward(const Var& x) const;
  std::vector<Var> AllParameters() const;

  size_t input_dim_;
  NnOptions options_;
  std::vector<Var> layer_weights_;
  std::vector<Var> layer_biases_;
  Var head1_weight_;
  Var head1_bias_;
  Var head2_weight_;
  Var head2_bias_;
  std::unique_ptr<PccTargetScaling> scaling_;
};

}  // namespace tasq

#endif  // TASQ_NN_NN_MODEL_H_
