#include "nn/pcc_loss.h"

#include <algorithm>
#include <cmath>

#include "common/fmath.h"
#include "common/stats.h"

namespace tasq {

Result<PccTargetScaling> PccTargetScaling::Fit(
    const std::vector<PowerLawPcc>& targets) {
  if (targets.empty()) {
    return Status::InvalidArgument("target scaling needs at least one target");
  }
  std::vector<double> abs_a;
  std::vector<double> log_b;
  abs_a.reserve(targets.size());
  log_b.reserve(targets.size());
  for (const PowerLawPcc& t : targets) {
    // A single NaN target would make both scale factors NaN and poison
    // every loss the scaling ever touches; fail on the input instead.
    if (!std::isfinite(t.a) || !std::isfinite(t.b)) {
      return Status::InvalidArgument(
          "target scaling needs finite PCC parameters");
    }
    abs_a.push_back(std::fabs(t.a));
    log_b.push_back(CheckedLog(std::max(t.b, 1e-9)));
  }
  // Guard against degenerate (constant) target sets.
  double s1 = std::max(StdDev(abs_a), 1e-3);
  double s2 = std::max(StdDev(log_b), 1e-3);
  return PccTargetScaling(s1, s2);
}

std::pair<double, double> PccTargetScaling::ToScaled(
    const PowerLawPcc& pcc) const {
  double t1 = std::fabs(pcc.a) / s1_;
  // FiniteOr keeps a NaN/inf b out of std::max (ordered comparisons on
  // NaN raise FE_INVALID) and pins it to the same floor as a tiny b.
  double t2 = CheckedLog(std::max(FiniteOr(pcc.b, 1e-9), 1e-9)) / s2_;
  return {t1, t2};
}

PowerLawPcc PccTargetScaling::FromScaled(double p1, double p2) const {
  PowerLawPcc pcc;
  pcc.a = -std::max(0.0, p1) * s1_;
  // Clamped: an extreme predicted parameter saturates at DBL_MAX
  // instead of decoding to an infinite curve scale.
  pcc.b = ClampedExp(p2 * s2_);
  return pcc;
}

LossWeights DefaultLossWeights(LossForm form) {
  // Tuned (paper §5.3): the runtime penalization weight is set so the curve
  // parameter MAE under LF2 stays close to LF1; the LF3 transfer term is
  // kept smaller than the ground-truth runtime term.
  switch (form) {
    case LossForm::kLF1:
      return LossWeights{0.0, 0.0};
    case LossForm::kLF2:
      return LossWeights{1.5, 0.0};
    case LossForm::kLF3:
      return LossWeights{1.5, 0.3};
  }
  return LossWeights{};
}

Result<Var> BuildPccLoss(const Var& p1, const Var& p2,
                         const PccTargetScaling& scaling,
                         const PccLossBatch& batch,
                         const LossWeights& weights) {
  size_t n = p1->value.rows();
  if (p1->value.cols() != 1 || p2->value.cols() != 1 ||
      p2->value.rows() != n || n == 0) {
    return Status::InvalidArgument("p1/p2 must be non-empty N x 1 columns");
  }
  if (batch.scaled_targets.size() != 2 * n) {
    return Status::InvalidArgument("scaled_targets must hold N (t1,t2) pairs");
  }
  std::vector<double> t1(n);
  std::vector<double> t2(n);
  for (size_t i = 0; i < n; ++i) {
    t1[i] = batch.scaled_targets[2 * i];
    t2[i] = batch.scaled_targets[2 * i + 1];
  }
  // LF1: MAE of the two scaled curve parameters, equally weighted.
  Var loss = ScalarMul(
      Add(MaeLoss(p1, MakeConstant(Matrix::ColumnVector(t1))),
          MaeLoss(p2, MakeConstant(Matrix::ColumnVector(t2)))),
      0.5);

  bool needs_runtime =
      weights.runtime_percent > 0.0 || weights.transfer_percent > 0.0;
  if (!needs_runtime) return loss;

  if (batch.observed_tokens.size() != n) {
    return Status::InvalidArgument(
        "runtime loss terms need observed_tokens per example");
  }
  // Predicted runtime at the observed tokens, differentiable through both
  // parameters: runtime = exp(p2*s2 - p1*s1*log A).
  std::vector<double> log_tokens(n);
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(batch.observed_tokens[i])) {
      return Status::InvalidArgument("observed_tokens must be finite");
    }
    log_tokens[i] = CheckedLog(std::max(batch.observed_tokens[i], 1.0));
  }
  Var log_runtime =
      Sub(ScalarMul(p2, scaling.s2()),
          Mul(ScalarMul(p1, scaling.s1()),
              MakeConstant(Matrix::ColumnVector(log_tokens))));
  Var runtime_pred = Exp(log_runtime);

  // Percent-error term against a reference runtime vector:
  // mean(|pred - ref| / ref).
  auto percent_term = [&](const std::vector<double>& reference)
      -> Result<Var> {
    if (reference.size() != n) {
      return Status::InvalidArgument("reference runtime size mismatch");
    }
    std::vector<double> inv(n);
    for (size_t i = 0; i < n; ++i) {
      if (!std::isfinite(reference[i]) || reference[i] <= 0.0) {
        return Status::InvalidArgument(
            "reference runtimes must be positive and finite");
      }
      inv[i] = 1.0 / reference[i];
    }
    Var diff =
        Abs(Sub(runtime_pred, MakeConstant(Matrix::ColumnVector(reference))));
    return Mean(Mul(diff, MakeConstant(Matrix::ColumnVector(inv))));
  };

  if (weights.runtime_percent > 0.0) {
    Result<Var> term = percent_term(batch.observed_runtime);
    if (!term.ok()) return term.status();
    loss = Add(loss, ScalarMul(term.value(), weights.runtime_percent));
  }
  if (weights.transfer_percent > 0.0) {
    Result<Var> term = percent_term(batch.xgb_runtime);
    if (!term.ok()) return term.status();
    loss = Add(loss, ScalarMul(term.value(), weights.transfer_percent));
  }
  return loss;
}

}  // namespace tasq
