#ifndef TASQ_NN_PCC_LOSS_H_
#define TASQ_NN_PCC_LOSS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/autograd.h"
#include "pcc/pcc.h"

namespace tasq {

/// Scaling between power-law parameters and the model's prediction space
/// (paper §4.5): the two targets are scaled "so that neither would dominate
/// the loss function", and the mapping back guarantees inconsistent signs —
/// hence a monotone non-increasing PCC — by construction.
///
/// Concretely the model predicts (p1, p2) with p1 >= 0 enforced by a
/// softplus head, and the mapping is
///
///   a = -p1 * s1        (always <= 0)
///   b = exp(p2 * s2)    (always > 0)
///
/// where s1 = std(-a) and s2 = std(log b) over the training targets.
class PccTargetScaling {
 public:
  /// Fits the two scale factors from training targets. Targets with
  /// positive `a` (non-monotone fits, rare under AREPAS) contribute their
  /// magnitude. Requires a non-empty set.
  TASQ_NODISCARD static Result<PccTargetScaling> Fit(const std::vector<PowerLawPcc>& targets);

  /// Explicit scales (both must be positive). Used by tests.
  PccTargetScaling(double s1, double s2) : s1_(s1), s2_(s2) {}

  /// Maps a fitted power law to scaled target space (t1, t2).
  /// t1 = |a| / s1 (so a flat curve maps to 0), t2 = log(max(b, eps)) / s2.
  std::pair<double, double> ToScaled(const PowerLawPcc& pcc) const;

  /// Maps scaled predictions back to a guaranteed-monotone power law.
  PowerLawPcc FromScaled(double p1, double p2) const;

  double s1() const { return s1_; }
  double s2() const { return s2_; }

 private:
  double s1_;
  double s2_;
};

/// The three loss functions of paper §4.5. All use mean absolute error
/// components balanced by tuned weights.
enum class LossForm {
  /// MAE of the scaled curve parameters only.
  kLF1,
  /// LF1 + MAE (in percent) of the run-time prediction at the observed
  /// token count.
  kLF2,
  /// LF2 + mean absolute percent difference to the XGBoost run-time
  /// prediction at the observed token count (transfer term).
  kLF3,
};

/// Component weights for a composite loss. The parameter term always has
/// weight 1; the others correspond to LF2/LF3 extensions.
struct LossWeights {
  double runtime_percent = 0.0;
  double transfer_percent = 0.0;
};

/// The tuned defaults used in the evaluation: weights chosen so the curve
/// parameter MAE under LF2/LF3 stays close to LF1 (paper §5.3).
LossWeights DefaultLossWeights(LossForm form);

/// One batch of supervision for the composite loss. All vectors have the
/// same length N; `xgb_runtime` may be empty unless the transfer weight is
/// nonzero.
struct PccLossBatch {
  /// Scaled targets, N x 2 entries as (t1, t2) pairs, row-major.
  std::vector<double> scaled_targets;
  /// Observed token count per example (for the runtime terms).
  std::vector<double> observed_tokens;
  /// Ground-truth run time at the observed tokens (seconds).
  std::vector<double> observed_runtime;
  /// XGBoost run-time prediction at the observed tokens (seconds).
  std::vector<double> xgb_runtime;
};

/// Builds the composite loss node.
///  * `p1` — N x 1, non-negative scaled |a| predictions (post-softplus);
///  * `p2` — N x 1, scaled log-b predictions;
/// The run-time terms rebuild runtime = exp(p2*s2 - p1*s1*log A) inside the
/// graph so gradients flow through both parameters. Fails if sizes are
/// inconsistent or required supervision is missing.
TASQ_NODISCARD Result<Var> BuildPccLoss(const Var& p1, const Var& p2,
                         const PccTargetScaling& scaling,
                         const PccLossBatch& batch,
                         const LossWeights& weights);

}  // namespace tasq

#endif  // TASQ_NN_PCC_LOSS_H_
