#include "pcc/pcc.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/fmath.h"
#include "common/stats.h"

namespace tasq {
namespace {

// Solves the dense system `a * x = rhs` in place by Gaussian elimination
// with partial pivoting. `a` is row-major n x n. Returns false when the
// matrix is (numerically) singular.
bool SolveDense(std::vector<double>& a, std::vector<double>& rhs, size_t n) {
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(rhs[col], rhs[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a[r * n + col] / a[col * n + col];
      // num: float-eq exact-zero factor: skipping is a pure optimization
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      rhs[r] -= factor * rhs[col];
    }
  }
  for (size_t row = n; row > 0; --row) {
    size_t r = row - 1;
    double acc = rhs[r];
    for (size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * rhs[c];
    rhs[r] = acc / a[r * n + r];
  }
  return true;
}

void SortByTokens(std::vector<PccSample>& samples) {
  std::sort(samples.begin(), samples.end(),
            [](const PccSample& lhs, const PccSample& rhs) {
              return lhs.tokens < rhs.tokens;
            });
}

}  // namespace

double PowerLawPcc::EvalRunTime(double tokens) const {
  // Fitted curves carry finite a and positive b (FitPowerLaw rejects
  // anything else), so a NaN here means the caller fed a negative token
  // count or a hand-built degenerate curve.
  return b * CheckedPow(tokens, a);
}

bool PowerLawPcc::IsMonotoneNonIncreasing() const {
  // num: float-eq the exactly-flat curve is the monotone edge case
  if (a == 0.0) return true;
  return (a < 0.0) != (b < 0.0);
}

double PowerLawPcc::MinTokensForSlowdown(
    double reference_tokens, double max_slowdown_fraction) const {
  if (reference_tokens < 1.0) reference_tokens = 1.0;
  if (!IsMonotoneNonIncreasing() || max_slowdown_fraction < 0.0) {
    return reference_tokens;
  }
  // num: float-eq only the exactly-flat curve short-circuits
  if (a == 0.0) return 1.0;  // Flat curve: any allocation performs alike.
  double min_tokens =
      reference_tokens * CheckedPow(1.0 + max_slowdown_fraction, 1.0 / a);
  min_tokens = std::clamp(min_tokens, 1.0, reference_tokens);
  // The paper's core guarantee (§"PCC modeling"): on a monotone
  // non-increasing curve with a positive scale, shrinking to min_tokens
  // slows the job by at most the requested fraction relative to the
  // reference allocation. (b <= 0 models degenerate negative "runtimes";
  // the bound is meaningless there.)
  if (b > 0.0) {
    TASQ_DCHECK_LE(EvalRunTime(min_tokens),
                   EvalRunTime(reference_tokens) *
                       (1.0 + max_slowdown_fraction) * (1.0 + 1e-9));
  }
  return min_tokens;
}

double PowerLawPcc::OptimalTokens(double min_improvement_percent,
                                  double max_tokens) const {
  if (max_tokens < 1.0) max_tokens = 1.0;
  if (!IsMonotoneNonIncreasing() || min_improvement_percent <= 0.0) {
    return max_tokens;
  }
  // d(runtime)/dA / runtime = a / A, so the marginal improvement per token
  // drops below p% at A* = |a| * 100 / p.
  double optimal = std::fabs(a) * 100.0 / min_improvement_percent;
  optimal = std::clamp(optimal, 1.0, max_tokens);
  // An allocation outside [1, max_tokens] can never be handed to the
  // scheduler; the clamp above is the last line of defense.
  TASQ_DCHECK_GE(optimal, 1.0);
  TASQ_DCHECK_LE(optimal, max_tokens);
  return optimal;
}

Result<PowerLawFit> FitPowerLaw(const std::vector<PccSample>& samples) {
  std::vector<double> log_tokens;
  std::vector<double> log_runtime;
  for (const PccSample& s : samples) {
    // isfinite runs first: an ordered comparison on NaN raises
    // FE_INVALID, which the TASQ_FPE harness turns into a trap, and a
    // non-finite sample reaching std::log would poison the whole fit.
    if (!std::isfinite(s.tokens) || !std::isfinite(s.runtime_seconds) ||
        s.tokens <= 0.0 || s.runtime_seconds <= 0.0) {
      continue;
    }
    log_tokens.push_back(CheckedLog(s.tokens));
    log_runtime.push_back(CheckedLog(s.runtime_seconds));
  }
  if (log_tokens.size() < 2) {
    return Status::InvalidArgument(
        "power-law fit needs at least two samples with positive, finite "
        "tokens and run time");
  }
  LineFit line = FitLine(log_tokens, log_runtime);
  if (!line.ok) {
    return Status::InvalidArgument(
        "power-law fit needs at least two distinct token values");
  }
  // A usable fit needs a finite exponent and a positive finite scale.
  // Extreme-but-finite samples (runtimes near DBL_MAX or denormal) can
  // push the intercept past exp's range, so these are typed errors on
  // the data, not internal invariants.
  if (!std::isfinite(line.slope) || !std::isfinite(line.intercept)) {
    return Status::OutOfRange("power-law fit diverged in log space");
  }
  Result<double> scale = SafeExp(line.intercept);
  if (!scale.ok() || scale.value() <= 0.0) {
    return Status::OutOfRange(
        "power-law scale exp(intercept) is not a positive finite value");
  }
  PowerLawFit fit;
  fit.pcc.a = line.slope;
  fit.pcc.b = scale.value();
  fit.log_log_r2 = line.r2;
  return fit;
}

bool IsCurveMonotoneNonIncreasing(std::vector<PccSample> samples,
                                  double tolerance_percent) {
  SortByTokens(samples);
  for (size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].tokens == samples[i - 1].tokens) continue;
    double allowed =
        samples[i - 1].runtime_seconds * (1.0 + tolerance_percent / 100.0);
    if (samples[i].runtime_seconds > allowed + 1e-12) return false;
  }
  return true;
}

std::vector<PccSample> FilterAroundReference(
    const std::vector<PccSample>& samples, double reference_tokens,
    double window_fraction) {
  std::vector<PccSample> filtered;
  double lo = reference_tokens * (1.0 - window_fraction);
  double hi = reference_tokens * (1.0 + window_fraction);
  for (const PccSample& s : samples) {
    if (s.tokens >= lo && s.tokens <= hi) filtered.push_back(s);
  }
  return filtered;
}

Result<double> OptimalTokensFromSamples(const std::vector<PccSample>& samples,
                                        double min_improvement_percent) {
  if (min_improvement_percent <= 0.0) {
    return Status::InvalidArgument("improvement threshold must be positive");
  }
  std::vector<PccSample> valid;
  for (const PccSample& s : samples) {
    // isfinite first — see FitPowerLaw; the walk below compares runtimes
    // and a NaN would both trap under TASQ_FPE and corrupt the answer.
    if (std::isfinite(s.tokens) && std::isfinite(s.runtime_seconds) &&
        s.tokens > 0.0 && s.runtime_seconds > 0.0) {
      valid.push_back(s);
    }
  }
  if (valid.size() < 2) {
    return Status::InvalidArgument(
        "optimal-token search needs at least two positive samples");
  }
  SortByTokens(valid);
  size_t i = valid.size() - 1;
  while (i > 0) {
    const PccSample& here = valid[i];
    const PccSample& lower = valid[i - 1];
    double delta_tokens = here.tokens - lower.tokens;
    if (delta_tokens <= 0.0) {  // Duplicate token value; skip.
      --i;
      continue;
    }
    double delta_runtime = lower.runtime_seconds - here.runtime_seconds;
    if (delta_runtime < 0.0) break;  // Non-monotone segment: stop here.
    double relative_cost_per_token =
        delta_runtime / here.runtime_seconds / delta_tokens;
    if (relative_cost_per_token >= min_improvement_percent / 100.0) {
      // Below this point each surrendered token costs too much run time.
      break;
    }
    --i;
  }
  // The walk only ever lands on one of the filtered samples, all of which
  // carry positive token counts.
  TASQ_DCHECK_GT(valid[i].tokens, 0.0);
  return valid[i].tokens;
}

Result<double> FindElbowTokens(std::vector<PccSample> samples) {
  SortByTokens(samples);
  if (samples.size() < 3) {
    return Status::InvalidArgument("elbow detection needs at least 3 samples");
  }
  double x0 = samples.front().tokens;
  double x1 = samples.back().tokens;
  double y0 = samples.front().runtime_seconds;
  double y1 = samples.back().runtime_seconds;
  double x_range = x1 - x0;
  double y_range = std::fabs(y1 - y0);
  if (x_range <= 0.0 || y_range <= 0.0) {
    return Status::InvalidArgument(
        "elbow detection needs a nonzero token and runtime range");
  }
  double best_distance = 0.0;
  double best_tokens = samples.front().tokens;
  for (const PccSample& s : samples) {
    double xn = (s.tokens - x0) / x_range;
    double yn = (s.runtime_seconds - y0) / (y1 - y0);
    // Chord in normalized space runs from (0,0) to (1,1). A convex
    // decreasing curve drops steeply first, so its normalized points rise
    // above the chord; the elbow is the point of maximum excess.
    double distance = yn - xn;
    if (distance > best_distance) {
      best_distance = distance;
      best_tokens = s.tokens;
    }
  }
  if (best_distance <= 0.0) {
    return Status::OutOfRange("curve has no elbow (not convex decreasing)");
  }
  // The elbow is one of the input samples, so it lies inside the scanned
  // token range by construction.
  TASQ_DCHECK_GE(best_tokens, x0);
  TASQ_DCHECK_LE(best_tokens, x1);
  return best_tokens;
}

Result<SmoothingSpline> SmoothingSpline::Fit(const std::vector<double>& x,
                                             const std::vector<double>& y,
                                             double lambda) {
  size_t n = x.size();
  if (n < 3 || y.size() != n) {
    return Status::InvalidArgument(
        "smoothing spline needs >= 3 points and matching x/y sizes");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  for (size_t i = 1; i < n; ++i) {
    if (x[i] <= x[i - 1]) {
      return Status::InvalidArgument("x values must be strictly increasing");
    }
  }
  std::vector<double> h(n - 1);
  for (size_t i = 0; i + 1 < n; ++i) h[i] = x[i + 1] - x[i];

  size_t m = n - 2;  // Number of interior knots.
  // Q is n x m: column j couples interior knot j+1 to its neighbors.
  auto q_entry = [&](size_t row, size_t col) -> double {
    if (row == col) return 1.0 / h[col];
    if (row == col + 1) return -1.0 / h[col] - 1.0 / h[col + 1];
    if (row == col + 2) return 1.0 / h[col + 1];
    return 0.0;
  };
  // System matrix M = R + lambda * Q^T Q (m x m, dense for simplicity —
  // PCC grids are tens of points).
  std::vector<double> mat(m * m, 0.0);
  for (size_t j = 0; j < m; ++j) {
    mat[j * m + j] += (h[j] + h[j + 1]) / 3.0;
    if (j + 1 < m) {
      mat[j * m + (j + 1)] += h[j + 1] / 6.0;
      mat[(j + 1) * m + j] += h[j + 1] / 6.0;
    }
  }
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = j; k < m && k <= j + 2; ++k) {
      double dot = 0.0;
      // Columns j and k of Q overlap only on rows [max start, min end].
      size_t lo = std::max(j, k);
      size_t hi = std::min(j + 2, k + 2);
      for (size_t row = lo; row <= hi; ++row) {
        dot += q_entry(row, j) * q_entry(row, k);
      }
      mat[j * m + k] += lambda * dot;
      if (k != j) mat[k * m + j] += lambda * dot;
    }
  }
  std::vector<double> rhs(m, 0.0);
  for (size_t j = 0; j < m; ++j) {
    rhs[j] = q_entry(j, j) * y[j] + q_entry(j + 1, j) * y[j + 1] +
             q_entry(j + 2, j) * y[j + 2];
  }
  if (!SolveDense(mat, rhs, m)) {
    return Status::Internal("smoothing spline system is singular");
  }
  // Fitted values f = y - lambda * Q * gamma_interior.
  std::vector<double> f = y;
  for (size_t j = 0; j < m; ++j) {
    f[j] -= lambda * q_entry(j, j) * rhs[j];
    f[j + 1] -= lambda * q_entry(j + 1, j) * rhs[j];
    f[j + 2] -= lambda * q_entry(j + 2, j) * rhs[j];
  }
  std::vector<double> gamma(n, 0.0);
  for (size_t j = 0; j < m; ++j) gamma[j + 1] = rhs[j];
  // Eval() indexes f_ and gamma_ by knot position; a size mismatch with x_
  // would be silent memory corruption there, not a wrong answer.
  TASQ_CHECK_EQ(f.size(), n);
  TASQ_CHECK_EQ(gamma.size(), n);
  return SmoothingSpline(x, std::move(f), std::move(gamma));
}

double SmoothingSpline::Eval(double x) const {
  size_t n = x_.size();
  if (x <= x_.front()) {
    double h = x_[1] - x_[0];
    double slope = (f_[1] - f_[0]) / h - h * gamma_[1] / 6.0;
    return f_.front() + slope * (x - x_.front());
  }
  if (x >= x_.back()) {
    double h = x_[n - 1] - x_[n - 2];
    double slope = (f_[n - 1] - f_[n - 2]) / h + h * gamma_[n - 2] / 6.0;
    return f_.back() + slope * (x - x_.back());
  }
  size_t hi = static_cast<size_t>(
      std::upper_bound(x_.begin(), x_.end(), x) - x_.begin());
  size_t lo = hi - 1;
  double h = x_[hi] - x_[lo];
  double a = (x_[hi] - x) / h;
  double b = (x - x_[lo]) / h;
  return a * f_[lo] + b * f_[hi] +
         ((a * a * a - a) * gamma_[lo] + (b * b * b - b) * gamma_[hi]) * h *
             h / 6.0;
}

}  // namespace tasq
