#ifndef TASQ_PCC_PCC_H_
#define TASQ_PCC_PCC_H_

#include <vector>

#include "common/status.h"

namespace tasq {

/// One point of a performance characteristic curve: run time at a token
/// allocation.
struct PccSample {
  double tokens = 0.0;
  double runtime_seconds = 0.0;
};

/// A power-law performance characteristic curve (paper §4.1, Eq. 2):
///
///   runtime(A) = b * A^a
///
/// where `A` is the token allocation. Amdahl's law is the special case
/// a = -1. The curve is monotone non-increasing in A exactly when the signs
/// of `a` and `b` are inconsistent (for a physically meaningful curve,
/// b > 0 and a <= 0).
struct PowerLawPcc {
  /// Exponent of the power law.
  double a = 0.0;
  /// Scale of the power law (runtime at A = 1).
  double b = 0.0;

  /// Run time at `tokens` (point prediction). Requires tokens > 0.
  double EvalRunTime(double tokens) const;

  /// True when run time does not increase with tokens: a and b have
  /// inconsistent signs (or a == 0, a flat curve).
  bool IsMonotoneNonIncreasing() const;

  /// The smallest allocation whose run time stays within
  /// `max_slowdown_fraction` of the run time at `reference_tokens`
  /// (the user-specified performance constraint of §2.1). For the power
  /// law runtime(A)/runtime(ref) = (A/ref)^a, so the bound is
  /// A >= ref * (1 + s)^(1/a). Returns reference_tokens for a
  /// non-monotone curve or non-positive arguments; a == 0 (flat curve)
  /// allows any allocation down to 1 token.
  double MinTokensForSlowdown(double reference_tokens,
                              double max_slowdown_fraction) const;

  /// The optimal token count under a diminishing-returns threshold: the
  /// allocation at which adding one token improves run time by less than
  /// `min_improvement_percent` percent (paper §2.1 / §4.4, f'(A)/f(A) = p%).
  /// For the power law the relative slope is a/A, so the threshold point is
  /// A* = |a| * 100 / p, clamped to [1, max_tokens]. Requires a monotone
  /// non-increasing curve and positive arguments; otherwise returns
  /// max_tokens (no safe saving opportunity).
  double OptimalTokens(double min_improvement_percent,
                       double max_tokens) const;
};

/// Result of fitting a power law to PCC samples in log-log space.
struct PowerLawFit {
  PowerLawPcc pcc;
  /// R^2 of the straight-line fit in log-log space (Figure 9 bottom).
  double log_log_r2 = 0.0;
};

/// Fits `runtime = b * A^a` by ordinary least squares on
/// log(runtime) = log(b) + a*log(A) (paper §4.1, Figure 9). Requires at
/// least two samples with strictly positive tokens and run time and at
/// least two distinct token values.
TASQ_NODISCARD Result<PowerLawFit> FitPowerLaw(const std::vector<PccSample>& samples);

/// True when the sampled curve (sorted by tokens internally) never increases
/// by more than `tolerance_percent` of the preceding value as tokens grow —
/// the paper's "Pattern (Non-Increase)" metric, with the §5.1 10% tolerance
/// available for noisy ground truth.
bool IsCurveMonotoneNonIncreasing(std::vector<PccSample> samples,
                                  double tolerance_percent = 0.0);

/// Restricts samples to tokens within ±`window_fraction` of
/// `reference_tokens` — the paper evaluates XGBoost-SS monotonicity within
/// ±40% of the reference token count.
std::vector<PccSample> FilterAroundReference(
    const std::vector<PccSample>& samples, double reference_tokens,
    double window_fraction);

/// Numeric counterpart of PowerLawPcc::OptimalTokens for *sampled* curves
/// (e.g., the XGBoost-SS spline): walking down from the largest sampled
/// token count, returns the smallest allocation at which giving up the
/// next step's tokens would still cost less than `min_improvement_percent`
/// of run time per token — the paper's gradient-descent-with-termination
/// formulation (§2.1) applied to a discrete curve. Requires >= 2 samples
/// with positive tokens; non-monotone segments terminate the walk (beyond
/// them the curve is not a trustworthy trade-off).
TASQ_NODISCARD Result<double> OptimalTokensFromSamples(const std::vector<PccSample>& samples,
                                        double min_improvement_percent);

/// Finds the elbow of a sampled PCC (Figure 3's red marker): the sample
/// with maximum distance below the chord from the first to the last sample
/// after normalizing both axes to [0,1]. Requires >= 3 samples spanning a
/// nonzero token and runtime range.
TASQ_NODISCARD Result<double> FindElbowTokens(std::vector<PccSample> samples);

/// A natural cubic smoothing spline (Reinsch/Green-Silverman formulation)
/// used to build the XGBoost-SS curve from point predictions: minimizes
/// sum_i (y_i - f(x_i))^2 + lambda * integral f''(t)^2 dt over natural
/// cubic splines with knots at the x_i.
///
/// lambda = 0 interpolates the points; larger lambda approaches the least-
/// squares straight line. Evaluation outside [x_front, x_back] extrapolates
/// linearly (a natural spline has zero second derivative at the ends).
class SmoothingSpline {
 public:
  /// Fits the spline. Requires >= 3 strictly increasing x values and
  /// lambda >= 0.
  TASQ_NODISCARD static Result<SmoothingSpline> Fit(const std::vector<double>& x,
                                     const std::vector<double>& y,
                                     double lambda);

  /// Evaluates the fitted spline at `x`.
  double Eval(double x) const;

  /// Fitted values at the knots.
  const std::vector<double>& fitted_values() const { return f_; }

 private:
  SmoothingSpline(std::vector<double> x, std::vector<double> f,
                  std::vector<double> gamma)
      : x_(std::move(x)), f_(std::move(f)), gamma_(std::move(gamma)) {}

  std::vector<double> x_;
  /// Smoothed values at the knots.
  std::vector<double> f_;
  /// Second derivatives at all knots (natural: first and last are zero).
  std::vector<double> gamma_;
};

}  // namespace tasq

#endif  // TASQ_PCC_PCC_H_
