#include "selection/flighting.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace tasq {

Result<FlightedJob> FlightHarness::FlightJob(const Job& job) const {
  FlightedJob flighted;
  flighted.job_id = job.id;
  flighted.reference_tokens = job.default_tokens;

  ClusterSimulator simulator;
  std::vector<double> fractions = config_.token_fractions;
  std::sort(fractions.rbegin(), fractions.rend());  // Descending tokens.
  int repetitions = std::max(1, config_.repetitions);

  for (size_t f = 0; f < fractions.size(); ++f) {
    double tokens =
        std::max(1.0, std::round(job.default_tokens * fractions[f]));
    FlightRecord record;
    record.job_id = job.id;
    record.tokens = tokens;
    std::vector<std::pair<double, Skyline>> runs;
    for (int rep = 0; rep < repetitions; ++rep) {
      RunConfig run_config;
      run_config.tokens = tokens;
      run_config.noise = config_.noise;
      // Seed varies per (job, token fraction, repetition): every flight is
      // an independent noisy execution.
      run_config.seed = config_.seed ^
                        (static_cast<uint64_t>(job.id) * 1000003ULL) ^
                        (static_cast<uint64_t>(f) * 7919ULL) ^
                        (static_cast<uint64_t>(rep) * 104729ULL);
      Result<RunResult> run = simulator.Run(job.plan, run_config);
      if (!run.ok()) return run.status();
      record.repetition_runtimes.push_back(run.value().runtime_seconds);
      runs.emplace_back(run.value().runtime_seconds,
                        std::move(run.value().skyline));
    }
    // Representative execution: the repetition with the median run time.
    std::sort(runs.begin(), runs.end(),
              [](const auto& lhs, const auto& rhs) {
                return lhs.first < rhs.first;
              });
    const auto& median_run = runs[runs.size() / 2];
    record.runtime_seconds = median_run.first;
    record.skyline = median_run.second;
    flighted.flights.push_back(std::move(record));
  }

  // Filter (1): at least two flights.
  flighted.enough_flights = flighted.flights.size() >= 2;
  // Filter (2): usage never exceeded the allocation.
  flighted.within_allocation = true;
  for (const FlightRecord& record : flighted.flights) {
    if (record.skyline.Peak() > record.tokens + 1e-9) {
      flighted.within_allocation = false;
      break;
    }
  }
  // Filter (3): run time monotone non-increasing in tokens, within
  // tolerance. Flights are ordered by descending tokens, so run time must
  // be non-decreasing along the list.
  flighted.monotone = true;
  for (size_t i = 1; i < flighted.flights.size(); ++i) {
    double more_tokens = flighted.flights[i - 1].runtime_seconds;
    double fewer_tokens = flighted.flights[i].runtime_seconds;
    double allowed =
        fewer_tokens * (1.0 + config_.monotone_tolerance_percent / 100.0);
    if (more_tokens > allowed) {
      flighted.monotone = false;
      break;
    }
  }
  return flighted;
}

std::vector<FlightedJob> FlightHarness::FlightJobs(
    const std::vector<Job>& jobs) const {
  // Flights are independent and seeded per (job, fraction, repetition), so
  // they parallelize with results identical to a serial run.
  std::vector<Result<FlightedJob>> results(jobs.size(),
                                           Status::Internal("not run"));
  ParallelFor(jobs.size(),
              [&](size_t i) { results[i] = FlightJob(jobs[i]); });
  std::vector<FlightedJob> out;
  out.reserve(jobs.size());
  for (Result<FlightedJob>& flighted : results) {
    if (flighted.ok()) out.push_back(std::move(flighted.value()));
  }
  return out;
}

std::vector<FlightedJob> FilterNonAnomalous(
    const std::vector<FlightedJob>& flighted) {
  std::vector<FlightedJob> kept;
  for (const FlightedJob& job : flighted) {
    if (job.NonAnomalous()) kept.push_back(job);
  }
  return kept;
}

}  // namespace tasq
