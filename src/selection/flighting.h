#ifndef TASQ_SELECTION_FLIGHTING_H_
#define TASQ_SELECTION_FLIGHTING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "simcluster/cluster_simulator.h"
#include "workload/job_graph.h"

namespace tasq {

/// Configuration for job flighting — re-executing selected jobs at several
/// token counts to gather ground truth (paper §5.1). On the real platform
/// this used SCOPE's pre-production flighting capability; here each flight
/// is a noisy cluster-simulator run.
struct FlightConfig {
  /// Fractions of the job's reference (default) token count to flight.
  std::vector<double> token_fractions = {1.0, 0.8, 0.6, 0.2};
  /// Runs per unique (job, tokens) flight, "to establish redundancy".
  int repetitions = 3;
  NoiseModel noise = {.enabled = true};
  /// Tolerance for the run-time monotonicity filter (filter 3).
  double monotone_tolerance_percent = 10.0;
  uint64_t seed = 1234;
};

/// One unique flight: a (job, token count) pair with its representative
/// run time and skyline (the repetition with the median run time).
struct FlightRecord {
  int64_t job_id = 0;
  double tokens = 0.0;
  double runtime_seconds = 0.0;
  Skyline skyline;
  /// Run times of all repetitions of this flight.
  std::vector<double> repetition_runtimes;
};

/// All flights of one job, plus the §5.1 filter verdicts.
struct FlightedJob {
  int64_t job_id = 0;
  /// The job's reference (submitted) token count.
  double reference_tokens = 0.0;
  /// One record per flighted token count, descending tokens.
  std::vector<FlightRecord> flights;
  /// Filter (1): at least two successful flights.
  bool enough_flights = false;
  /// Filter (2): no flight used more tokens than allocated.
  bool within_allocation = false;
  /// Filter (3): run time monotonically non-increasing in tokens within
  /// the tolerance.
  bool monotone = false;

  bool NonAnomalous() const {
    return enough_flights && within_allocation && monotone;
  }
};

/// Executes the flighting protocol for a set of jobs on the simulated
/// cluster. Deterministic given the config seed.
class FlightHarness {
 public:
  explicit FlightHarness(FlightConfig config) : config_(std::move(config)) {}

  /// Flights one job at all configured token fractions.
  TASQ_NODISCARD Result<FlightedJob> FlightJob(const Job& job) const;

  /// Flights a batch; jobs whose simulation fails are skipped.
  std::vector<FlightedJob> FlightJobs(const std::vector<Job>& jobs) const;

  const FlightConfig& config() const { return config_; }

 private:
  FlightConfig config_;
};

/// Keeps only jobs passing all three §5.1 filters.
std::vector<FlightedJob> FilterNonAnomalous(
    const std::vector<FlightedJob>& flighted);

}  // namespace tasq

#endif  // TASQ_SELECTION_FLIGHTING_H_
