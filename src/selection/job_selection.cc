#include "selection/job_selection.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/rng.h"
#include "common/stats.h"
#include "selection/kmeans.h"

namespace tasq {

Result<SelectionOutcome> SelectRepresentativeJobs(
    const std::vector<double>& features, size_t rows, size_t dim,
    const std::vector<double>& summary, const std::vector<int>& template_ids,
    const std::vector<size_t>& pool, const SelectionConfig& config) {
  if (rows == 0 || dim == 0 || features.size() != rows * dim) {
    return Status::InvalidArgument("population feature matrix size mismatch");
  }
  if (summary.size() != rows || template_ids.size() != rows) {
    return Status::InvalidArgument("summary/template sizes must match rows");
  }
  if (pool.empty()) {
    return Status::InvalidArgument("pre-selected pool is empty");
  }
  for (size_t idx : pool) {
    if (idx >= rows) {
      return Status::InvalidArgument("pool index out of range");
    }
  }
  size_t k = std::min(config.num_clusters, rows);
  Rng rng(config.seed);
  Result<KMeansResult> clusters = KMeans(features, rows, dim, k, rng);
  if (!clusters.ok()) return clusters.status();
  const KMeansResult& km = clusters.value();

  SelectionOutcome outcome;
  outcome.population_proportions.assign(k, 0.0);
  outcome.pool_proportions.assign(k, 0.0);
  outcome.selected_proportions.assign(k, 0.0);

  for (size_t r = 0; r < rows; ++r) {
    outcome.population_proportions[static_cast<size_t>(km.assignments[r])] +=
        1.0 / static_cast<double>(rows);
  }
  std::vector<std::vector<size_t>> pool_by_cluster(k);
  for (size_t idx : pool) {
    size_t c = static_cast<size_t>(km.assignments[idx]);
    pool_by_cluster[c].push_back(idx);
    outcome.pool_proportions[c] += 1.0 / static_cast<double>(pool.size());
  }

  // Stratified under-sampling: per-cluster quota proportional to the
  // cluster's population share, filled by random draws from the pool with
  // the per-template cap.
  std::map<int, int> template_uses;
  size_t target = std::min(config.sample_size, pool.size());
  for (size_t c = 0; c < k; ++c) {
    auto& bucket = pool_by_cluster[c];
    rng.Shuffle(bucket);
    size_t quota = static_cast<size_t>(std::lround(
        outcome.population_proportions[c] * static_cast<double>(target)));
    size_t taken = 0;
    for (size_t idx : bucket) {
      if (taken >= quota) break;
      int tmpl = template_ids[idx];
      if (config.max_per_template > 0 && tmpl >= 0) {
        int& uses = template_uses[tmpl];
        if (uses >= config.max_per_template) continue;
        ++uses;
      }
      outcome.selected.push_back(idx);
      ++taken;
    }
  }
  if (outcome.selected.empty()) {
    return Status::Internal("selection produced an empty subset");
  }
  for (size_t idx : outcome.selected) {
    outcome.selected_proportions[static_cast<size_t>(km.assignments[idx])] +=
        1.0 / static_cast<double>(outcome.selected.size());
  }

  // Quality evaluation: KS of the summary scalar against the population,
  // before (pool) and after (subset) selection.
  std::vector<double> population_summary(summary);
  std::vector<double> pool_summary;
  pool_summary.reserve(pool.size());
  for (size_t idx : pool) pool_summary.push_back(summary[idx]);
  std::vector<double> selected_summary;
  selected_summary.reserve(outcome.selected.size());
  for (size_t idx : outcome.selected) {
    selected_summary.push_back(summary[idx]);
  }
  outcome.ks_before = KsStatistic(population_summary, pool_summary);
  outcome.ks_after = KsStatistic(population_summary, selected_summary);
  return outcome;
}

}  // namespace tasq
