#ifndef TASQ_SELECTION_JOB_SELECTION_H_
#define TASQ_SELECTION_JOB_SELECTION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tasq {

/// Configuration of the stratified under-sampling procedure (paper §5.1):
/// K-means over the population, then within-cluster random under-sampling
/// of the pre-selected pool proportional to the population's cluster sizes,
/// with a cap on how often one job type can be picked, validated by a
/// Kolmogorov-Smirnov test.
struct SelectionConfig {
  size_t num_clusters = 8;
  /// Target subset size.
  size_t sample_size = 200;
  /// Maximum selections per job type (template); <= 0 disables the cap.
  int max_per_template = 3;
  uint64_t seed = 99;
};

/// Output of the selection procedure, including the Figure-11 cluster
/// proportions and the before/after KS statistics.
struct SelectionOutcome {
  /// Indices (into the population) of the selected jobs.
  std::vector<size_t> selected;
  /// Per-cluster share of the whole population.
  std::vector<double> population_proportions;
  /// Per-cluster share of the pre-selected pool.
  std::vector<double> pool_proportions;
  /// Per-cluster share of the selected subset.
  std::vector<double> selected_proportions;
  /// KS statistic of the pool's summary scalar vs the population's.
  double ks_before = 1.0;
  /// KS statistic of the subset's summary scalar vs the population's.
  double ks_after = 1.0;
};

/// Selects a representative job subset from a constrained pool.
///
///  * `features`     — row-major population feature matrix (rows x dim),
///                     the clustering space;
///  * `summary`      — one scalar per population job (e.g., requested
///                     tokens) used for the KS quality check;
///  * `template_ids` — job type id per population job (-1 = unique/ad-hoc,
///                     never capped);
///  * `pool`         — indices of the pre-selected (constraint-satisfying)
///                     jobs the subset must come from.
///
/// Fails on inconsistent sizes or an empty pool.
TASQ_NODISCARD Result<SelectionOutcome> SelectRepresentativeJobs(
    const std::vector<double>& features, size_t rows, size_t dim,
    const std::vector<double>& summary, const std::vector<int>& template_ids,
    const std::vector<size_t>& pool, const SelectionConfig& config);

}  // namespace tasq

#endif  // TASQ_SELECTION_JOB_SELECTION_H_
