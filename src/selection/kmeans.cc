#include "selection/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tasq {
namespace {

double SquaredDistance(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<double>& data, size_t rows,
                            size_t dim, size_t k, Rng& rng,
                            int max_iterations) {
  if (rows == 0 || dim == 0 || data.size() != rows * dim) {
    return Status::InvalidArgument("kmeans needs a non-empty rows*dim matrix");
  }
  if (k == 0 || k > rows) {
    return Status::InvalidArgument("kmeans needs 1 <= k <= rows");
  }
  KMeansResult result;
  result.k = k;
  result.dim = dim;
  result.centroids.resize(k * dim);
  result.assignments.assign(rows, 0);

  // k-means++ seeding.
  std::vector<double> min_dist(rows, std::numeric_limits<double>::max());
  size_t first = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(rows) - 1));
  std::copy_n(&data[first * dim], dim, &result.centroids[0]);
  for (size_t c = 1; c < k; ++c) {
    for (size_t r = 0; r < rows; ++r) {
      double d = SquaredDistance(&data[r * dim],
                                 &result.centroids[(c - 1) * dim], dim);
      min_dist[r] = std::min(min_dist[r], d);
    }
    size_t chosen = rng.Categorical(min_dist);
    std::copy_n(&data[chosen * dim], dim, &result.centroids[c * dim]);
  }

  std::vector<double> sums(k * dim);
  std::vector<int> counts(k);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t r = 0; r < rows; ++r) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        double d = SquaredDistance(&data[r * dim], &result.centroids[c * dim],
                                   dim);
        if (d < best_dist) {
          best_dist = d;
          best = static_cast<int>(c);
        }
      }
      if (result.assignments[r] != best) {
        result.assignments[r] = best;
        changed = true;
      }
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t r = 0; r < rows; ++r) {
      size_t c = static_cast<size_t>(result.assignments[r]);
      ++counts[c];
      for (size_t i = 0; i < dim; ++i) sums[c * dim + i] += data[r * dim + i];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its
        // centroid assignment.
        size_t farthest = 0;
        double far_dist = -1.0;
        for (size_t r = 0; r < rows; ++r) {
          size_t assigned = static_cast<size_t>(result.assignments[r]);
          double d = SquaredDistance(&data[r * dim],
                                     &result.centroids[assigned * dim], dim);
          if (d > far_dist) {
            far_dist = d;
            farthest = r;
          }
        }
        std::copy_n(&data[farthest * dim], dim, &result.centroids[c * dim]);
        changed = true;
        continue;
      }
      for (size_t i = 0; i < dim; ++i) {
        result.centroids[c * dim + i] =
            sums[c * dim + i] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }
  result.inertia = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    size_t c = static_cast<size_t>(result.assignments[r]);
    result.inertia +=
        SquaredDistance(&data[r * dim], &result.centroids[c * dim], dim);
  }
  return result;
}

int NearestCentroid(const KMeansResult& result, const double* row) {
  int best = 0;
  double best_dist = std::numeric_limits<double>::max();
  for (size_t c = 0; c < result.k; ++c) {
    double d = SquaredDistance(row, &result.centroids[c * result.dim],
                               result.dim);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace tasq
