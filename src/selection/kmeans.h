#ifndef TASQ_SELECTION_KMEANS_H_
#define TASQ_SELECTION_KMEANS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace tasq {

/// Result of a K-means run.
struct KMeansResult {
  size_t k = 0;
  size_t dim = 0;
  /// Row-major k x dim centroid matrix.
  std::vector<double> centroids;
  /// Cluster index per input row.
  std::vector<int> assignments;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
};

/// Lloyd's algorithm with k-means++ initialization over a row-major
/// `rows` x `dim` matrix. Deterministic given `rng`'s seed. Requires
/// 1 <= k <= rows. Empty clusters are re-seeded from the farthest point.
TASQ_NODISCARD Result<KMeansResult> KMeans(const std::vector<double>& data, size_t rows,
                            size_t dim, size_t k, Rng& rng,
                            int max_iterations = 50);

/// Index of the centroid nearest to `row` (length `result.dim`).
int NearestCentroid(const KMeansResult& result, const double* row);

}  // namespace tasq

#endif  // TASQ_SELECTION_KMEANS_H_
