#include "serve/cache.h"

#include <bit>
#include <utility>

namespace tasq {

namespace {

uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

size_t HashReportCacheKey(const ReportCacheKey& key) {
  // operator== compares reference_tokens with double ==, under which
  // -0.0 == +0.0 — but their bit patterns differ. Hash the canonical zero,
  // or equal keys would land in different buckets (the unordered_map
  // hash/equality contract requires equal keys to hash equal).
  double tokens =
      // num: float-eq canonicalizes -0.0 to +0.0 before hashing
      key.reference_tokens == 0.0 ? 0.0 : key.reference_tokens;
  uint64_t h = Mix(key.fingerprint);
  h = Mix(h ^ (static_cast<uint64_t>(key.model) + 0x9E3779B97F4A7C15ULL));
  h = Mix(h ^ std::bit_cast<uint64_t>(tokens));
  h = Mix(h ^ key.grid_points);
  return static_cast<size_t>(h);
}

ReportCache::ReportCache(size_t capacity) : capacity_(capacity) {}

std::optional<WhatIfReport> ReportCache::Get(const ReportCacheKey& key) {
  std::optional<WhatIfReport> report;
  report.emplace();
  if (!GetInto(key, &report.value())) {
    report.reset();
  }
  return report;
}

bool ReportCache::GetInto(const ReportCacheKey& key, WhatIfReport* out) {
  // Zero locks: pin the current table version (lock-free), look up, copy
  // out. A concurrent Put publishes a *new* table; the pinned version and
  // every entry it references stay valid until the pin is released.
  Snapshot<Table>::View table = table_.Read();
  auto it = table->find(key);
  if (it == table->end()) {
    // Relaxed: independent event counter (see header).
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Refresh recency. Relaxed store: the tick feeds the eviction
  // heuristic only; no other data is published through it.
  it->second->last_used.store(NextTick(), std::memory_order_relaxed);
  // Relaxed: independent event counter (see header).
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Copy-assign instead of returning a fresh report: when the caller's
  // buffer is warm (its curve vector's capacity covers this report),
  // libstdc++ reuses the storage and the hit allocates nothing.
  *out = it->second->report;
  return true;
}

void ReportCache::Put(const ReportCacheKey& key, WhatIfReport report) {
  if (capacity_ == 0) return;
  // Copy-update-swap, serialized across writers so no Put can overwrite
  // another's insert: copy the current table (per-entry shared_ptr copy,
  // not report bytes), mutate the copy, publish. Readers keep serving
  // the previous version lock-free until the publish lands.
  MutexLock lock(put_mutex_);
  auto next = std::make_shared<Table>(*table_.ReadOwned());

  if (auto it = next->find(key); it != next->end()) {
    // Refresh: entries are immutable after publication, so replace the
    // entry rather than mutating the report other readers may be copying.
    auto entry = std::make_shared<CacheEntry>();
    entry->report = std::move(report);
    entry->last_used.store(NextTick(), std::memory_order_relaxed);
    it->second = std::move(entry);
    table_.Publish(std::move(next));
    return;
  }

  if (next->size() >= capacity_) {
    // Evict the minimum-tick entry — exactly the back of the old
    // std::list LRU under sequential use, approximate under racing hits.
    auto victim = next->begin();
    uint64_t victim_tick =
        victim->second->last_used.load(std::memory_order_relaxed);
    for (auto it = std::next(next->begin()); it != next->end(); ++it) {
      uint64_t tick = it->second->last_used.load(std::memory_order_relaxed);
      if (tick < victim_tick) {
        victim = it;
        victim_tick = tick;
      }
    }
    next->erase(victim);
    // Relaxed: independent event counter (see header).
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  auto entry = std::make_shared<CacheEntry>();
  entry->report = std::move(report);
  entry->last_used.store(NextTick(), std::memory_order_relaxed);
  (*next)[key] = std::move(entry);
  // Relaxed: independent event counter (see header).
  insertions_.fetch_add(1, std::memory_order_relaxed);
  table_.Publish(std::move(next));
}

ReportCacheCounters ReportCache::counters() const {
  ReportCacheCounters counters;
  // Relaxed loads: each counter is independently exact; callers only
  // rely on cross-counter consistency at quiescence (see header).
  counters.hits = hits_.load(std::memory_order_relaxed);
  counters.misses = misses_.load(std::memory_order_relaxed);
  counters.evictions = evictions_.load(std::memory_order_relaxed);
  counters.insertions = insertions_.load(std::memory_order_relaxed);
  counters.size = table_.ReadOwned()->size();
  counters.capacity = capacity_;
  return counters;
}

}  // namespace tasq
