#include "serve/cache.h"

#include <bit>

namespace tasq {

namespace {

uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

size_t HashReportCacheKey(const ReportCacheKey& key) {
  // operator== compares reference_tokens with double ==, under which
  // -0.0 == +0.0 — but their bit patterns differ. Hash the canonical zero,
  // or equal keys would land in different buckets (the unordered_map
  // hash/equality contract requires equal keys to hash equal).
  double tokens =
      // num: float-eq canonicalizes -0.0 to +0.0 before hashing
      key.reference_tokens == 0.0 ? 0.0 : key.reference_tokens;
  uint64_t h = Mix(key.fingerprint);
  h = Mix(h ^ (static_cast<uint64_t>(key.model) + 0x9E3779B97F4A7C15ULL));
  h = Mix(h ^ std::bit_cast<uint64_t>(tokens));
  h = Mix(h ^ key.grid_points);
  return static_cast<size_t>(h);
}

ReportCache::ReportCache(size_t capacity) : capacity_(capacity) {}

std::optional<WhatIfReport> ReportCache::Get(const ReportCacheKey& key) {
  std::optional<WhatIfReport> report;
  report.emplace();
  if (!GetInto(key, &report.value())) {
    report.reset();
  }
  return report;
}

bool ReportCache::GetInto(const ReportCacheKey& key, WhatIfReport* out) {
  // Sanctioned by scripts/hot_locks.txt: shard-local mutex, O(1) critical
  // section, never held across allocation, I/O, or another lock.
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // Refresh recency.
  // Copy-assign instead of returning a fresh report: when the caller's
  // buffer is warm (its curve vector's capacity covers this report),
  // libstdc++ reuses the storage and the hit allocates nothing.
  *out = it->second->second;
  return true;
}

void ReportCache::Put(const ReportCacheKey& key, WhatIfReport report) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(report);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, std::move(report));
  index_[key] = lru_.begin();
  ++insertions_;
}

ReportCacheCounters ReportCache::counters() const {
  MutexLock lock(mutex_);
  ReportCacheCounters counters;
  counters.hits = hits_;
  counters.misses = misses_;
  counters.evictions = evictions_;
  counters.insertions = insertions_;
  counters.size = lru_.size();
  counters.capacity = capacity_;
  return counters;
}

}  // namespace tasq
