#ifndef TASQ_SERVE_CACHE_H_
#define TASQ_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/hot.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "tasq/what_if.h"

namespace tasq {

/// Identity of one scoring request for cache purposes: the job graph's
/// content fingerprint (JobGraph::Fingerprint) plus every scoring knob
/// that changes the report. Two requests with equal keys produce
/// byte-identical WhatIfReports, because scoring a trained pipeline is a
/// pure function of (graph, model, reference tokens, grid resolution).
struct ReportCacheKey {
  uint64_t fingerprint = 0;
  ModelKind model = ModelKind::kNn;
  double reference_tokens = 0.0;
  uint64_t grid_points = 0;

  bool operator==(const ReportCacheKey& other) const {
    return fingerprint == other.fingerprint && model == other.model &&
           reference_tokens == other.reference_tokens &&
           grid_points == other.grid_points;
  }
};

/// Splitmix-style mix of the four key fields — the hash behind
/// ReportCacheKeyHash, exposed as a free function so the hot-path
/// analyzer can anchor its contract here (the functor call inside
/// unordered_map is invisible to a textual call graph).
TASQ_HOT size_t HashReportCacheKey(const ReportCacheKey& key);

/// Hash for ReportCacheKey; delegates to HashReportCacheKey.
struct ReportCacheKeyHash {
  size_t operator()(const ReportCacheKey& key) const {
    return HashReportCacheKey(key);
  }
};

/// Counter snapshot of a cache instance since construction.
struct ReportCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  size_t size = 0;
  size_t capacity = 0;
};

/// A thread-safe LRU cache of WhatIfReports keyed by request identity.
/// The paper's dominant workload is recurring jobs (same template, same
/// compile-time graph), so the serving layer answers repeats from here
/// and skips model inference entirely. Capacity 0 disables caching (every
/// Get is a miss, Put is a no-op) — handy for A/B benchmarks.
class ReportCache {
 public:
  explicit ReportCache(size_t capacity);

  /// Returns the cached report and refreshes its recency, or nullopt on a
  /// miss. Counts the hit/miss either way. Allocating convenience over
  /// GetInto; the serving fast path uses GetInto directly.
  std::optional<WhatIfReport> Get(const ReportCacheKey& key);

  /// Copies the cached report into `*out` (refreshing recency) and
  /// returns true, or returns false on a miss leaving `*out` untouched.
  /// Counts the hit/miss either way. Steady-state allocation-free: the
  /// copy-assign into a warm `*out` reuses the curve vector's existing
  /// capacity, so a caller that recycles its report buffer pays zero
  /// heap allocations per hit (pinned by tests/hot_path_test.cc). The
  /// single shard-local lock is on the scripts/hot_locks.txt allowlist.
  TASQ_HOT bool GetInto(const ReportCacheKey& key, WhatIfReport* out);

  /// Inserts (or refreshes) `report`, evicting the least recently used
  /// entry when at capacity.
  void Put(const ReportCacheKey& key, WhatIfReport report);

  /// Point-in-time counters (consistent snapshot).
  ReportCacheCounters counters() const;

 private:
  using Entry = std::pair<ReportCacheKey, WhatIfReport>;

  const size_t capacity_;  // Immutable after construction.
  mutable Mutex mutex_;
  // Most recently used at the front.
  std::list<Entry> lru_ TASQ_GUARDED_BY(mutex_);
  std::unordered_map<ReportCacheKey, std::list<Entry>::iterator,
                     ReportCacheKeyHash>
      index_ TASQ_GUARDED_BY(mutex_);
  uint64_t hits_ TASQ_GUARDED_BY(mutex_) = 0;
  uint64_t misses_ TASQ_GUARDED_BY(mutex_) = 0;
  uint64_t evictions_ TASQ_GUARDED_BY(mutex_) = 0;
  uint64_t insertions_ TASQ_GUARDED_BY(mutex_) = 0;
};

}  // namespace tasq

#endif  // TASQ_SERVE_CACHE_H_
