#ifndef TASQ_SERVE_CACHE_H_
#define TASQ_SERVE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/hot.h"
#include "common/mutex.h"
#include "common/sync/snapshot.h"
#include "tasq/what_if.h"

namespace tasq {

/// Identity of one scoring request for cache purposes: the job graph's
/// content fingerprint (JobGraph::Fingerprint) plus every scoring knob
/// that changes the report. Two requests with equal keys produce
/// byte-identical WhatIfReports, because scoring a trained pipeline is a
/// pure function of (graph, model, reference tokens, grid resolution).
struct ReportCacheKey {
  uint64_t fingerprint = 0;
  ModelKind model = ModelKind::kNn;
  double reference_tokens = 0.0;
  uint64_t grid_points = 0;

  bool operator==(const ReportCacheKey& other) const {
    return fingerprint == other.fingerprint && model == other.model &&
           reference_tokens == other.reference_tokens &&
           grid_points == other.grid_points;
  }
};

/// Splitmix-style mix of the four key fields — the hash behind
/// ReportCacheKeyHash, exposed as a free function so the hot-path
/// analyzer can anchor its contract here (the functor call inside
/// unordered_map is invisible to a textual call graph).
TASQ_HOT size_t HashReportCacheKey(const ReportCacheKey& key);

/// Hash for ReportCacheKey; delegates to HashReportCacheKey.
struct ReportCacheKeyHash {
  size_t operator()(const ReportCacheKey& key) const {
    return HashReportCacheKey(key);
  }
};

/// Counter snapshot of a cache instance since construction.
struct ReportCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  size_t size = 0;
  size_t capacity = 0;
};

/// A thread-safe LRU cache of WhatIfReports keyed by request identity.
/// The paper's dominant workload is recurring jobs (same template, same
/// compile-time graph), so the serving layer answers repeats from here
/// and skips model inference entirely. Capacity 0 disables caching (every
/// Get is a miss, Put is a no-op) — handy for A/B benchmarks.
///
/// Concurrency design (PR 8, ROADMAP item 1): the table is an immutable
/// snapshot behind Snapshot<Table>, so the read path — GetInto, the
/// serving fast path — takes **zero locks**: one lock-free snapshot pin,
/// a hash lookup, and relaxed-atomic counter bumps. Writers (Put) do
/// copy-update-swap of the whole table under a writer mutex; recency is
/// a shared monotonic tick written into each entry's relaxed atomic
/// `last_used` on every hit, and eviction scans for the minimum tick.
/// Under sequential use the tick order is exactly the classic list-LRU
/// order (the unit tests pin this); under concurrency it is LRU up to
/// racing hits, which only shifts *which* entry evicts, never breaks
/// the size bound.
class ReportCache {
 public:
  explicit ReportCache(size_t capacity);

  /// Returns the cached report and refreshes its recency, or nullopt on a
  /// miss. Counts the hit/miss either way. Allocating convenience over
  /// GetInto; the serving fast path uses GetInto directly.
  std::optional<WhatIfReport> Get(const ReportCacheKey& key);

  /// Copies the cached report into `*out` (refreshing recency) and
  /// returns true, or returns false on a miss leaving `*out` untouched.
  /// Counts the hit/miss either way. Lock-free (Snapshot<Table> pin; no
  /// mutex anywhere on this path) and steady-state allocation-free: the
  /// copy-assign into a warm `*out` reuses the curve vector's existing
  /// capacity, so a caller that recycles its report buffer pays zero
  /// heap allocations per hit (pinned by tests/hot_path_test.cc).
  TASQ_HOT bool GetInto(const ReportCacheKey& key, WhatIfReport* out);

  /// Inserts (or refreshes) `report`, evicting the least recently used
  /// entry when at capacity. Cold path: copies the table (shared_ptr
  /// per entry, not report bytes) and publishes the new version.
  void Put(const ReportCacheKey& key, WhatIfReport report);

  /// Point-in-time counters. Each counter is individually exact; a
  /// cross-counter snapshot is only guaranteed consistent when no
  /// concurrent operations are in flight (true everywhere it is read:
  /// tests and post-drain stats).
  ReportCacheCounters counters() const;

 private:
  /// One cached report. The report is immutable after publication; the
  /// recency tick is the only mutable field and is updated by readers
  /// through a relaxed store (no ordering needed — it feeds an eviction
  /// heuristic, not a happens-before edge).
  struct CacheEntry {
    WhatIfReport report;
    mutable std::atomic<uint64_t> last_used{0};
  };

  /// Entries are shared between successive table versions, so a hit's
  /// recency bump is visible to the writer regardless of which version
  /// the reader pinned.
  using Table =
      std::unordered_map<ReportCacheKey, std::shared_ptr<const CacheEntry>,
                         ReportCacheKeyHash>;

  uint64_t NextTick() const {
    // Relaxed: the tick is a monotonic recency stamp; ordering between
    // the bump and the entry store it feeds is irrelevant to safety.
    return tick_.fetch_add(1, std::memory_order_relaxed);
  }

  const size_t capacity_;  // Immutable after construction.
  /// Guarded by put_mutex_: the read-copy-update sequence in Put (read
  /// current table, copy, mutate, publish). Readers never take it —
  /// they go through table_'s lock-free pin protocol.
  mutable Mutex put_mutex_;
  Snapshot<Table> table_;
  /// Monotonic recency clock; advanced (relaxed) by hits and inserts.
  mutable std::atomic<uint64_t> tick_{0};
  // Statistic counters: relaxed throughout — each is an independent
  // monotonic event count, never used to order or publish other data.
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
};

}  // namespace tasq

#endif  // TASQ_SERVE_CACHE_H_
