#ifndef TASQ_SERVE_LATENCY_HISTOGRAM_H_
#define TASQ_SERVE_LATENCY_HISTOGRAM_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/hot.h"
#include "common/sync/pause.h"

namespace tasq {

/// Fixed-bucket latency histogram for the serving request path.
///
/// Buckets are powers of two over nanoseconds (bucket b holds durations
/// whose bit width is b, i.e. [2^(b-1), 2^b)), so Record is a handful of
/// relaxed atomic increments: no allocation, no lock, no per-request
/// state — safe inside TASQ_HOT code, safe from any number of threads.
/// The price is quantile resolution: a reported quantile is the upper
/// edge of its bucket, at worst 2x the true value. For the question the
/// serving layer asks ("is the tail microseconds or milliseconds, and
/// did it regress 10x?") that resolution is plenty; exact quantiles
/// would need per-request samples, which is exactly the allocation the
/// hot path bans.
///
/// Thread-safety: Record is wait-free apart from the max CAS loop (which
/// retries only while racing writers raise the max). TakeSnapshot reads
/// each counter with relaxed loads; a snapshot taken concurrently with
/// writers is approximately consistent (counters may disagree by the
/// in-flight requests), which is the usual contract for monitoring
/// counters. Counters exposed through a happens-before edge (promise
/// fulfillment, join) are exact — serve_test.cc relies on that.
class LatencyHistogram {
 public:
  /// bit_width of a uint64_t is 0..64, one bucket per value.
  static constexpr size_t kBuckets = 65;

  /// Point-in-time copy of the histogram, plus derived statistics.
  /// Field names (count / total_ms / max_ms / mean_ms) deliberately match
  /// the StageLatency accumulator so call sites read the same.
  struct Snapshot {
    uint64_t count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
    uint64_t buckets[kBuckets] = {};

    double mean_ms() const { return count > 0 ? total_ms / count : 0.0; }

    /// Upper-edge estimate of the q-quantile (q in [0, 1]) in
    /// milliseconds; 0 when empty. Clamped to max_ms so quantiles never
    /// exceed the observed maximum. Monotone in q.
    double QuantileMs(double q) const {
      if (count == 0) return 0.0;
      double clamped = std::min(std::max(q, 0.0), 1.0);
      uint64_t rank = static_cast<uint64_t>(
          std::ceil(clamped * static_cast<double>(count)));
      if (rank < 1) rank = 1;
      uint64_t seen = 0;
      for (size_t b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank) {
          // Bucket b spans [2^(b-1), 2^b) ns; report the upper edge.
          double upper_ns = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
          return std::min(upper_ns / 1e6, max_ms);
        }
      }
      return max_ms;
    }

    double p50_ms() const { return QuantileMs(0.50); }
    double p99_ms() const { return QuantileMs(0.99); }
  };

  /// Observes one duration. Hot-path safe: relaxed atomics only.
  TASQ_HOT void Observe(uint64_t ns) noexcept {
    // Relaxed throughout: each counter is an independent statistic; the
    // snapshot contract (see class comment) never derives a
    // happens-before edge from them.
    buckets_[static_cast<size_t>(std::bit_width(ns))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    // Weak CAS in a retry loop: retries only while racing writers raise
    // the max (CAS failure reloads `prev`). Relaxed success and failure
    // orders — the max publishes no other data.
    while (prev < ns && !max_ns_.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed,
                            std::memory_order_relaxed)) {
      CpuRelax();
    }
  }

  Snapshot TakeSnapshot() const {
    // Relaxed loads: monitoring read of independent counters; exactness
    // across counters comes from external happens-before edges only.
    Snapshot snapshot;
    snapshot.count = count_.load(std::memory_order_relaxed);
    snapshot.total_ms =
        static_cast<double>(total_ns_.load(std::memory_order_relaxed)) / 1e6;
    snapshot.max_ms =
        static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e6;
    for (size_t b = 0; b < kBuckets; ++b) {
      snapshot.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

}  // namespace tasq

#endif  // TASQ_SERVE_LATENCY_HISTOGRAM_H_
