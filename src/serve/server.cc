#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace tasq {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Integer nanoseconds for the end-to-end histogram; steady_clock never
// runs backwards, so the cast is safe. Allocation-free (hot-path callee).
uint64_t NsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void RecordLatency(StageLatency& stage, double ms) {
  ++stage.count;
  stage.total_ms += ms;
  stage.max_ms = std::max(stage.max_ms, ms);
}

}  // namespace

std::string ServerStats::ToText() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "requests: %llu received, %llu completed, %llu failed\n",
                static_cast<unsigned long long>(received),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed));
  out += line;
  uint64_t lookups = cache_hits + cache_misses;
  std::snprintf(line, sizeof(line),
                "cache:    %llu hits / %llu lookups (%.1f%%), "
                "%llu evictions, %zu entries\n",
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(lookups),
                lookups > 0 ? 100.0 * static_cast<double>(cache_hits) /
                                  static_cast<double>(lookups)
                            : 0.0,
                static_cast<unsigned long long>(cache_evictions), cache_size);
  out += line;
  std::snprintf(line, sizeof(line),
                "batches:  %llu scored, mean size %.2f\n",
                static_cast<unsigned long long>(batches),
                batches > 0 ? static_cast<double>(batched_requests) /
                                  static_cast<double>(batches)
                            : 0.0);
  out += line;
  std::snprintf(line, sizeof(line),
                "queue:    depth %zu, max %zu, capacity %zu\n", queue_depth,
                max_queue_depth, queue_capacity);
  out += line;
  std::snprintf(line, sizeof(line),
                "latency:  queue-wait mean %.3f ms (max %.3f), "
                "inference/batch mean %.3f ms (max %.3f)\n",
                queue_wait.mean_ms(), queue_wait.max_ms, inference.mean_ms(),
                inference.max_ms);
  out += line;
  std::snprintf(line, sizeof(line),
                "          end-to-end mean %.3f ms (max %.3f, "
                "p50 %.3f, p99 %.3f)\n",
                end_to_end.mean_ms(), end_to_end.max_ms,
                end_to_end.p50_ms(), end_to_end.p99_ms());
  out += line;
  return out;
}

PccServer::PccServer(const Tasq& tasq, PccServerOptions options)
    : tasq_(tasq),
      options_(options),
      cache_(options.cache_capacity),
      // Drain tasks on the pool never exceed num_threads (see
      // active_drainers_), so the pool's own queue can stay small; request
      // backpressure happens on queue_ below.
      pool_(options.num_threads,
            static_cast<size_t>(
                options.num_threads > 0
                    ? options.num_threads
                    : std::max(1u, std::thread::hardware_concurrency())) +
                1) {
  if (options_.num_threads == 0) options_.num_threads = pool_.concurrency();
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

PccServer::~PccServer() { Shutdown(); }

std::future<Result<WhatIfReport>> PccServer::Submit(ScoreRequest request) {
  auto submitted_at = std::chrono::steady_clock::now();
  ReportCacheKey key;
  key.fingerprint = request.graph.Fingerprint();
  key.model = request.model;
  key.reference_tokens = request.reference_tokens;
  key.grid_points = request.grid_points;

  Pending pending;
  pending.request = std::move(request);
  pending.key = key;
  pending.submitted_at = submitted_at;
  std::future<Result<WhatIfReport>> future = pending.promise.get_future();

  received_.fetch_add(1, std::memory_order_relaxed);

  // Fingerprint-cache fast path: recurring jobs (the dominant workload)
  // skip the queue and model inference entirely. (TryScoreCached is the
  // future-free flavor of this same path.)
  std::optional<WhatIfReport> cached = cache_.Get(key);
  if (cached.has_value()) {
    FulfillOk(pending, std::move(cached.value()), /*from_cache=*/true);
    return future;
  }

  bool schedule_drainer = false;
  bool rejected = false;
  {
    MutexLock lock(mutex_);
    while (!shutting_down_ && queue_.size() >= options_.queue_capacity) {
      space_free_cv_.Wait(mutex_);
    }
    if (shutting_down_) {
      rejected = true;
    } else {
      queue_.push_back(std::move(pending));
      max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
      if (active_drainers_ < options_.num_threads) {
        ++active_drainers_;
        schedule_drainer = true;
      }
    }
  }
  if (rejected) {
    FulfillError(pending, Status::FailedPrecondition("server is shut down"));
    return future;
  }
  if (schedule_drainer && !pool_.Submit([this]() { DrainQueue(); })) {
    // The pool only rejects during shutdown; drain on the caller so the
    // request cannot be stranded.
    DrainQueue();
  }
  return future;
}

bool PccServer::TryScoreCached(const ScoreRequest& request,
                               WhatIfReport* out) {
  auto submitted_at = std::chrono::steady_clock::now();
  ReportCacheKey key;
  key.fingerprint = request.graph.Fingerprint();
  key.model = request.model;
  key.reference_tokens = request.reference_tokens;
  key.grid_points = request.grid_points;
  if (!cache_.GetInto(key, out)) {
    // The miss is already in the cache counters; received_ stays
    // untouched so the caller's follow-up Submit counts the request
    // exactly once.
    return false;
  }
  // A hit is a fully served request: count it exactly like a Submit-path
  // completion. Relaxed is enough — the counts are published to the
  // caller by this function's return (sequenced-before) and to other
  // threads by whatever edge hands them the result.
  received_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  end_to_end_hist_.Observe(NsSince(submitted_at));
  return true;
}

Result<WhatIfReport> PccServer::Score(ScoreRequest request) {
  return Submit(std::move(request)).get();
}

std::vector<Result<WhatIfReport>> PccServer::ScoreBatch(
    std::vector<ScoreRequest> requests) {
  std::vector<std::future<Result<WhatIfReport>>> futures;
  futures.reserve(requests.size());
  for (ScoreRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  std::vector<Result<WhatIfReport>> results;
  results.reserve(futures.size());
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

void PccServer::Shutdown() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  // Wake producers blocked on backpressure; they observe the flag and
  // reject their requests.
  space_free_cv_.NotifyAll();
  // Drainers exit only once the queue is empty, and the pool's graceful
  // shutdown waits for them — so every request accepted before the flag
  // flipped is scored and its future fulfilled.
  pool_.Shutdown();
}

void PccServer::DrainQueue() {
  // One scratch set per drainer activation: after the first few batches
  // every vector below has grown to its steady-state capacity and the
  // drain loop stops allocating batch bookkeeping altogether.
  BatchScratch scratch;
  for (;;) {
    scratch.batch.clear();
    {
      MutexLock lock(mutex_);
      if (queue_.empty()) {
        --active_drainers_;
        return;
      }
      size_t take = std::min(options_.max_batch, queue_.size());
      scratch.batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        scratch.batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    space_free_cv_.NotifyAll();
    auto picked_at = std::chrono::steady_clock::now();
    {
      MutexLock lock(stats_mutex_);
      for (const Pending& pending : scratch.batch) {
        RecordLatency(queue_wait_, std::chrono::duration<double, std::milli>(
                                picked_at - pending.submitted_at)
                                .count());
      }
      ++batches_;
      batched_requests_ += scratch.batch.size();
    }
    ProcessBatch(scratch);
  }
}

void PccServer::ProcessBatch(BatchScratch& scratch) {
  std::vector<Pending>& batch = scratch.batch;
  auto inference_start = std::chrono::steady_clock::now();

  // Everything assembled for this batch lives in the scratch arena and
  // dies here: pointers below must not outlive this call (tasq_own.py's
  // arena-escape rule). Reset keeps the arena's blocks, so the assembly
  // is heap-allocation-free once the blocks have grown to the realized
  // batch size.
  scratch.arena.Reset();
  Arena& arena = scratch.arena.arena();

  // Group the parametric requests per model kind so the batch shares
  // inference (one NN forward pass per group); XGBoost-SS has no
  // parametric form and scores per request.
  static_assert(kModelKindCount == 4,
                "parametric group initializers below cover every kind");
  ArenaVector<size_t> parametric[kModelKindCount] = {
      ArenaVector<size_t>(ArenaAllocator<size_t>(&arena)),
      ArenaVector<size_t>(ArenaAllocator<size_t>(&arena)),
      ArenaVector<size_t>(ArenaAllocator<size_t>(&arena)),
      ArenaVector<size_t>(ArenaAllocator<size_t>(&arena))};
  for (ArenaVector<size_t>& group : parametric) group.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].request.model != ModelKind::kXgboostSs) {
      parametric[static_cast<size_t>(batch[i].request.model)].push_back(i);
    }
  }
  for (const ArenaVector<size_t>& group : parametric) {
    if (group.empty()) continue;
    ModelKind kind = batch[group.front()].request.model;
    ArenaVector<const JobGraph*> graphs{
        ArenaAllocator<const JobGraph*>(&arena)};
    ArenaVector<double> reference_tokens{ArenaAllocator<double>(&arena)};
    graphs.reserve(group.size());
    reference_tokens.reserve(group.size());
    for (size_t i : group) {
      graphs.push_back(&batch[i].request.graph);
      reference_tokens.push_back(batch[i].request.reference_tokens);
    }
    PowerLawPcc* pccs = arena.NewArray<PowerLawPcc>(group.size());
    Status predicted = tasq_.PredictPccBatchInto(
        graphs.data(), graphs.size(), kind, reference_tokens.data(),
        scratch.tasq, pccs);
    if (predicted.ok()) {
      for (size_t g = 0; g < group.size(); ++g) {
        Pending& pending = batch[group[g]];
        Result<WhatIfReport> report = BuildWhatIfReportFromPcc(
            pccs[g], kind, pending.request.reference_tokens,
            pending.request.grid_points);
        if (report.ok()) {
          FulfillOk(pending, std::move(report.value()), /*from_cache=*/false);
        } else {
          FulfillError(pending, report.status());
        }
      }
    } else {
      // A batch fails as a unit (e.g., one unfeaturizable graph); rescore
      // individually so each request gets its own verdict, exactly as the
      // sequential path would.
      for (size_t i : group) ScoreOne(batch[i]);
    }
  }
  for (Pending& pending : batch) {
    if (pending.request.model == ModelKind::kXgboostSs) {
      ScoreOne(pending);
    }
  }

  double inference_ms = MsSince(inference_start);
  MutexLock lock(stats_mutex_);
  RecordLatency(inference_, inference_ms);
}

void PccServer::ScoreOne(Pending& pending) {
  Result<WhatIfReport> report = BuildWhatIfReport(
      tasq_, pending.request.graph, pending.request.model,
      pending.request.reference_tokens, pending.request.grid_points);
  if (report.ok()) {
    FulfillOk(pending, std::move(report.value()), /*from_cache=*/false);
  } else {
    FulfillError(pending, report.status());
  }
}

void PccServer::FulfillOk(Pending& pending, WhatIfReport report,
                          bool from_cache) {
  // The capacity check lives here, not just inside Put: with caching
  // disabled the by-value parameter copy (curve vector and all) would be
  // the cold path's biggest per-request allocation, paid for nothing.
  if (!from_cache && options_.cache_capacity > 0) {
    cache_.Put(pending.key, report);
  }
  uint64_t total_ns = NsSince(pending.submitted_at);
  // Count before resolving the future so a caller that observed the result
  // never reads a Stats() snapshot that has not seen it yet — set_value /
  // future::get is the happens-before edge that publishes these relaxed
  // updates to the waiter.
  completed_.fetch_add(1, std::memory_order_relaxed);
  end_to_end_hist_.Observe(total_ns);
  pending.promise.set_value(std::move(report));
}

void PccServer::FulfillError(Pending& pending, Status status) {
  uint64_t total_ns = NsSince(pending.submitted_at);
  failed_.fetch_add(1, std::memory_order_relaxed);
  end_to_end_hist_.Observe(total_ns);
  pending.promise.set_value(std::move(status));
}

ServerStats PccServer::Stats() const {
  ServerStats stats;
  stats.received = received_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.end_to_end = end_to_end_hist_.TakeSnapshot();
  {
    MutexLock lock(stats_mutex_);
    stats.batches = batches_;
    stats.batched_requests = batched_requests_;
    stats.queue_wait = queue_wait_;
    stats.inference = inference_;
  }
  {
    MutexLock lock(mutex_);
    stats.queue_depth = queue_.size();
    stats.max_queue_depth = max_queue_depth_;
    stats.queue_capacity = options_.queue_capacity;
  }
  ReportCacheCounters cache = cache_.counters();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_size = cache.size;
  return stats;
}

}  // namespace tasq
