#ifndef TASQ_SERVE_SERVER_H_
#define TASQ_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/hot.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "serve/cache.h"
#include "serve/latency_histogram.h"
#include "serve/thread_pool.h"
#include "tasq/tasq.h"
#include "tasq/what_if.h"
#include "workload/job_graph.h"

namespace tasq {

/// One scoring request: the compile-time artifact TASQ sees at submission
/// (paper §2.2 — the job's operator graph plus the tokens the user asked
/// for), and which model family should score it.
struct ScoreRequest {
  JobGraph graph;
  ModelKind model = ModelKind::kNn;
  double reference_tokens = 1.0;
  size_t grid_points = 9;
};

/// Accumulated latency of one serving stage, in milliseconds.
struct StageLatency {
  uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;

  double mean_ms() const { return count > 0 ? total_ms / count : 0.0; }
};

/// Point-in-time snapshot of a PccServer's behavior since construction.
struct ServerStats {
  /// Requests accepted by Submit (cache hits included).
  uint64_t received = 0;
  /// Requests fulfilled with an OK report.
  uint64_t completed = 0;
  /// Requests fulfilled with an error status (shutdown rejections included).
  uint64_t failed = 0;

  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_size = 0;

  /// Worker-side batches scored and the requests they covered
  /// (batched_requests / batches = realized mean batch size).
  uint64_t batches = 0;
  uint64_t batched_requests = 0;

  size_t queue_depth = 0;
  size_t max_queue_depth = 0;
  size_t queue_capacity = 0;

  /// Per-request time between enqueue and worker pickup.
  StageLatency queue_wait;
  /// Per-batch model-inference time (count == batches).
  StageLatency inference;
  /// Per-request time from Submit to fulfillment (TryScoreCached hits
  /// included). A histogram snapshot rather than a plain accumulator:
  /// mean/max as before, plus p50_ms()/p99_ms() tail quantiles, recorded
  /// on the request path without a lock or an allocation.
  LatencyHistogram::Snapshot end_to_end;

  /// Renders the snapshot as an aligned human-readable block.
  std::string ToText() const;
};

/// Configuration of the serving layer.
struct PccServerOptions {
  /// Worker threads scoring requests (0 = hardware concurrency).
  unsigned num_threads = 2;
  /// Bound on requests waiting to be scored; Submit blocks (backpressure)
  /// while the queue is at capacity.
  size_t queue_capacity = 1024;
  /// Most requests a worker pulls per batch. Batched NN requests share one
  /// forward pass (Tasq::PredictPccBatch).
  size_t max_batch = 16;
  /// LRU entries of finished reports, keyed by job-graph fingerprint; 0
  /// disables caching.
  size_t cache_capacity = 4096;
};

/// The compile-time scoring service of paper §2.2: accepts what-if scoring
/// requests for submitted jobs, answers recurring jobs from a fingerprint
/// cache, and batches the rest through the trained pipeline on a
/// persistent worker pool.
///
/// The server borrows the pipeline: `tasq` must stay alive and untouched
/// (no Train/Save/move) for the server's lifetime. Scoring a trained Tasq
/// is const and thread-safe (see tasq.h), which is what lets every worker
/// share one pipeline without locks.
///
/// Results are deterministic: a request scores to the same report whether
/// it is served sequentially, batched with others, or replayed from the
/// cache (serve_test.cc pins all three down byte-for-byte).
class PccServer {
 public:
  explicit PccServer(const Tasq& tasq, PccServerOptions options = {});
  ~PccServer();

  PccServer(const PccServer&) = delete;
  PccServer& operator=(const PccServer&) = delete;

  /// Enqueues one request and returns the future report. Blocks while the
  /// request queue is at capacity. Cache hits resolve immediately without
  /// entering the queue. After Shutdown the future resolves to
  /// FailedPrecondition.
  std::future<Result<WhatIfReport>> Submit(ScoreRequest request)
      TASQ_EXCLUDES(mutex_, stats_mutex_);

  /// Synchronous fingerprint-cache fast path: on a hit, copies the cached
  /// report into `*out` and returns true; on a miss, returns false
  /// leaving `*out` untouched (the caller then goes through Submit).
  /// This is the zero-allocation, zero-lock serving path: a caller that
  /// reuses one `WhatIfReport` buffer across requests pays no heap
  /// allocation, no future/promise machinery, and no lock at all — the
  /// report table is an immutable snapshot behind Snapshot<Table>
  /// (src/common/sync/snapshot.h), pinned lock-free per lookup. Pinned
  /// at exactly 0 allocations per warm hit by tests/hot_path_test.cc and
  /// enforced transitively by scripts/tasq_hot.py (whose hot-mutex rule,
  /// with ReportCache::GetInto now *off* the scripts/hot_locks.txt
  /// allowlist, is the lock-freedom regression gate). Hits count into
  /// received/completed/cache_hits and end-to-end latency exactly like
  /// Submit-path requests.
  TASQ_HOT bool TryScoreCached(const ScoreRequest& request,
                               WhatIfReport* out)
      TASQ_EXCLUDES(mutex_, stats_mutex_);

  /// Blocking convenience: Submit + wait.
  TASQ_NODISCARD Result<WhatIfReport> Score(ScoreRequest request);

  /// Submits every request, then waits for all of them. Entry i of the
  /// result corresponds to requests[i].
  std::vector<Result<WhatIfReport>> ScoreBatch(
      std::vector<ScoreRequest> requests);

  /// Graceful shutdown: stops accepting requests, scores everything
  /// already enqueued, fulfills every outstanding future, joins the
  /// workers. Idempotent; also runs from the destructor.
  void Shutdown() TASQ_EXCLUDES(mutex_, stats_mutex_);

  /// Consistent snapshot of counters and latency accumulators.
  ServerStats Stats() const TASQ_EXCLUDES(mutex_, stats_mutex_);

 private:
  struct Pending {
    ScoreRequest request;
    ReportCacheKey key;
    std::promise<Result<WhatIfReport>> promise;
    std::chrono::steady_clock::time_point submitted_at;
  };

  /// Per-drainer scratch, reused across every batch the drainer
  /// processes. Batch-assembly storage (per-kind index groups, graph
  /// pointers, reference tokens, predicted PCCs) comes from a bump
  /// arena that Reset()s at each batch boundary: after the arena's
  /// blocks have grown to the realized batch size, the whole assembly
  /// path performs zero heap allocations per batch (src/common/arena.h;
  /// the ownership rules are enforced by scripts/tasq_own.py). The
  /// pending requests themselves stay in a std::vector — promises have
  /// nontrivial destructors and outlive the batch via their futures, so
  /// they must not live in the arena. `tasq` carries the feature-row and
  /// NN-activation buffers for Tasq::PredictPccBatchInto. One instance
  /// per DrainQueue activation — never shared, so no lock guards it.
  struct BatchScratch {
    std::vector<Pending> batch;
    ScratchArena arena;
    TasqBatchScratch tasq;
  };

  /// Worker-side loop: repeatedly pulls up to max_batch pending requests
  /// and scores them; exits when the queue is empty.
  void DrainQueue() TASQ_EXCLUDES(mutex_, stats_mutex_);
  void ProcessBatch(BatchScratch& scratch)
      TASQ_EXCLUDES(stats_mutex_);
  void ScoreOne(Pending& pending) TASQ_EXCLUDES(stats_mutex_);
  void FulfillOk(Pending& pending, WhatIfReport report, bool from_cache)
      TASQ_EXCLUDES(stats_mutex_);
  void FulfillError(Pending& pending, Status status)
      TASQ_EXCLUDES(stats_mutex_);

  const Tasq& tasq_;
  PccServerOptions options_;  // Normalized in the ctor, immutable after.
  ReportCache cache_;
  ThreadPool pool_;

  // Request-path state: the bounded pending queue and its backpressure.
  // Lock ordering: never hold mutex_ and stats_mutex_ at the same time.
  mutable Mutex mutex_;
  CondVar space_free_cv_;
  std::deque<Pending> queue_ TASQ_GUARDED_BY(mutex_);
  size_t active_drainers_ TASQ_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ TASQ_GUARDED_BY(mutex_) = false;
  size_t max_queue_depth_ TASQ_GUARDED_BY(mutex_) = 0;

  // Per-request observability: lock-free so the cache-hit fast path
  // (TryScoreCached) records without touching any mutex. Relaxed ordering
  // suffices — counts are made visible to observers by the promise/future
  // (or TryScoreCached-return) happens-before edge, not by the counters
  // themselves.
  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  LatencyHistogram end_to_end_hist_;

  // Batch-path observability, off the request path entirely (only
  // drainers touch these, once per batch).
  mutable Mutex stats_mutex_;
  uint64_t batches_ TASQ_GUARDED_BY(stats_mutex_) = 0;
  uint64_t batched_requests_ TASQ_GUARDED_BY(stats_mutex_) = 0;
  StageLatency queue_wait_ TASQ_GUARDED_BY(stats_mutex_);
  StageLatency inference_ TASQ_GUARDED_BY(stats_mutex_);
};

}  // namespace tasq

#endif  // TASQ_SERVE_SERVER_H_
