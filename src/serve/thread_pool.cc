#include "serve/thread_pool.h"

#include <utility>

namespace tasq {

namespace {
// Which pool (if any) owns the current thread. Set once at worker startup;
// lets Submit detect reentrant worker-thread submissions without sharing a
// mutable id list with the constructor.
thread_local const ThreadPool* t_owning_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned num_threads, size_t queue_capacity) {
  if (num_threads == 0) {
    unsigned hardware = std::thread::hardware_concurrency();
    num_threads = hardware > 0 ? hardware : 1;
  }
  num_threads_ = num_threads;
  queue_capacity_ =
      queue_capacity > 0 ? queue_capacity : static_cast<size_t>(num_threads) * 4;
  workers_.reserve(num_threads_);
  for (unsigned t = 0; t < num_threads_; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::OnWorkerThread() const { return t_owning_pool == this; }

bool ThreadPool::Submit(std::function<void()> task) {
  MutexLock lock(mutex_);
  if (shutting_down_) return false;
  if (queue_.size() >= queue_capacity_) {
    if (OnWorkerThread()) return false;  // Blocking here could deadlock.
    while (!shutting_down_ && queue_.size() >= queue_capacity_) {
      space_free_cv_.Wait(mutex_);
    }
    if (shutting_down_) return false;
  }
  queue_.push_back(std::move(task));
  task_ready_cv_.NotifyOne();
  return true;
}

void ThreadPool::Shutdown() {
  // Swapping the threads out under the lock makes Shutdown idempotent and
  // safe against concurrent callers: exactly one of them joins.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
    to_join.swap(workers_);
  }
  task_ready_cv_.NotifyAll();
  space_free_cv_.NotifyAll();
  // Workers drain the queue before exiting, so joining them is the
  // "graceful" part: every accepted task runs to completion.
  for (std::thread& worker : to_join) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

bool ThreadPool::shutting_down() const {
  MutexLock lock(mutex_);
  return shutting_down_;
}

void ThreadPool::WorkerLoop() {
  t_owning_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) {
        task_ready_cv_.Wait(mutex_);
      }
      if (queue_.empty()) return;  // Shutting down and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_free_cv_.NotifyOne();
    task();
  }
}

}  // namespace tasq
