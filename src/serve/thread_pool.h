#ifndef TASQ_SERVE_THREAD_POOL_H_
#define TASQ_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace tasq {

/// A persistent worker pool with a bounded task queue and graceful
/// shutdown — the long-lived counterpart of the thread-per-call
/// `ParallelFor` in common/parallel.h. Services (serve/server.h) keep one
/// pool alive for their whole lifetime instead of paying thread
/// creation/teardown per request.
///
/// Contract:
///  * `Submit` enqueues a task, blocking while the queue is at capacity
///    (backpressure) — except when called from one of the pool's own
///    worker threads, where blocking could deadlock the pool; there a full
///    queue makes `Submit` return false immediately and the caller runs
///    the task itself (`ParallelFor(Executor&, ...)` already does).
///  * `Shutdown` is graceful: it stops admissions, lets the workers drain
///    every task already accepted, then joins them. It is idempotent and
///    also runs from the destructor.
///  * Tasks must not throw: the pool runs them under the repo-wide
///    no-exceptions contract (common/status.h); a throwing task would
///    terminate the process.
class ThreadPool : public Executor {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, minimum 1).
  /// `queue_capacity` bounds the number of tasks waiting to run; 0 picks
  /// a default proportional to the thread count.
  explicit ThreadPool(unsigned num_threads = 0, size_t queue_capacity = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `task`; see the class contract for blocking semantics.
  /// Returns false (dropping `task`) once shutdown has begun or when a
  /// worker-thread submission meets a full queue.
  bool Submit(std::function<void()> task) override;

  /// Stops accepting tasks, drains the queue, joins all workers. Blocks
  /// until every accepted task has finished.
  void Shutdown();

  /// Worker threads in the pool.
  unsigned concurrency() const override { return num_threads_; }

  /// Tasks accepted but not yet started (approximate; racy by nature).
  size_t queue_depth() const;

  /// True once Shutdown has begun; new submissions are rejected.
  bool shutting_down() const;

 private:
  void WorkerLoop();
  bool OnWorkerThread() const;

  unsigned num_threads_ = 0;
  size_t queue_capacity_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable task_ready_cv_;   // Signals workers: task or stop.
  std::condition_variable space_free_cv_;   // Signals producers: queue space.
  std::deque<std::function<void()>> queue_;  // Guarded by mutex_.
  bool shutting_down_ = false;               // Guarded by mutex_.

  std::vector<std::thread> workers_;
};

}  // namespace tasq

#endif  // TASQ_SERVE_THREAD_POOL_H_
