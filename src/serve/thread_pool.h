#ifndef TASQ_SERVE_THREAD_POOL_H_
#define TASQ_SERVE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/thread_annotations.h"

namespace tasq {

/// A persistent worker pool with a bounded task queue and graceful
/// shutdown — the long-lived counterpart of the thread-per-call
/// `ParallelFor` in common/parallel.h. Services (serve/server.h) keep one
/// pool alive for their whole lifetime instead of paying thread
/// creation/teardown per request.
///
/// Contract:
///  * `Submit` enqueues a task, blocking while the queue is at capacity
///    (backpressure) — except when called from one of the pool's own
///    worker threads, where blocking could deadlock the pool; there a full
///    queue makes `Submit` return false immediately and the caller runs
///    the task itself (`ParallelFor(Executor&, ...)` already does).
///  * `Shutdown` is graceful: it stops admissions, lets the workers drain
///    every task already accepted, then joins them. It is idempotent and
///    also runs from the destructor.
///  * Tasks must not throw: the pool runs them under the repo-wide
///    no-exceptions contract (common/status.h); a throwing task would
///    terminate the process.
class ThreadPool : public Executor {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, minimum 1).
  /// `queue_capacity` bounds the number of tasks waiting to run; 0 picks
  /// a default proportional to the thread count.
  explicit ThreadPool(unsigned num_threads = 0, size_t queue_capacity = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `task`; see the class contract for blocking semantics.
  /// Returns false (dropping `task`) once shutdown has begun or when a
  /// worker-thread submission meets a full queue.
  bool Submit(std::function<void()> task) override TASQ_EXCLUDES(mutex_);

  /// Stops accepting tasks, drains the queue, joins all workers. Blocks
  /// until every accepted task has finished.
  void Shutdown() TASQ_EXCLUDES(mutex_);

  /// Worker threads in the pool.
  unsigned concurrency() const override { return num_threads_; }

  /// Tasks accepted but not yet started (approximate; racy by nature).
  size_t queue_depth() const TASQ_EXCLUDES(mutex_);

  /// True once Shutdown has begun; new submissions are rejected.
  bool shutting_down() const TASQ_EXCLUDES(mutex_);

 private:
  void WorkerLoop() TASQ_EXCLUDES(mutex_);
  bool OnWorkerThread() const;

  // Both set in the constructor, immutable afterwards.
  unsigned num_threads_ = 0;
  size_t queue_capacity_ = 0;

  mutable Mutex mutex_;
  CondVar task_ready_cv_;   // Signals workers: task or stop.
  CondVar space_free_cv_;   // Signals producers: queue space.
  std::deque<std::function<void()>> queue_ TASQ_GUARDED_BY(mutex_);
  bool shutting_down_ TASQ_GUARDED_BY(mutex_) = false;

  // Populated in the constructor (before any worker can call Shutdown),
  // swapped out once under mutex_ by the first Shutdown.
  std::vector<std::thread> workers_ TASQ_GUARDED_BY(mutex_);
};

}  // namespace tasq

#endif  // TASQ_SERVE_THREAD_POOL_H_
