#include "simcluster/cluster_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/check.h"
#include "common/stats.h"

namespace tasq {
namespace {

struct Completion {
  double time;
  double tokens;
  /// Index into the submissions vector; only the arbiter path uses it (to
  /// retire entries from the running set). Adaptive-release partial
  /// returns reuse the struct with `final_release == false`.
  size_t job_index;
  bool final_release;
  bool operator>(const Completion& other) const { return time > other.time; }
};

}  // namespace

Result<std::vector<ScheduledJob>> ClusterScheduler::Run(
    std::vector<Submission> submissions) const {
  return Run(std::move(submissions), nullptr);
}

Result<std::vector<ScheduledJob>> ClusterScheduler::Run(
    std::vector<Submission> submissions, AllocationArbiter* arbiter) const {
  for (const Submission& submission : submissions) {
    if (submission.requested_tokens < 1.0 ||
        submission.requested_tokens > config_.cluster_tokens) {
      return Status::InvalidArgument(
          "request must be within [1, cluster_tokens]");
    }
    Status valid = submission.plan.Validate();
    if (!valid.ok()) return valid;
  }
  if (arbiter != nullptr && config_.adaptive_release) {
    return Status::InvalidArgument(
        "adaptive_release is not supported with an arbiter: arbiter grants "
        "are held whole until completion");
  }
  // Admission order: by arrival, ties by submission order (stable).
  std::vector<size_t> order(submissions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return submissions[a].arrival_seconds < submissions[b].arrival_seconds;
  });

  ClusterSimulator simulator;
  std::vector<ScheduledJob> results(submissions.size());
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  std::deque<size_t> queue;  // Indices into `submissions`, FIFO.
  std::vector<RunningJob> running;
  double free_tokens = config_.cluster_tokens;
  double now = 0.0;
  size_t next_arrival = 0;

  if (arbiter != nullptr) arbiter->Reset(config_, submissions);

  // Starts submission `idx` now, holding `granted` tokens for its whole
  // runtime. Shared by the FIFO path (granted == request) and the arbiter
  // path (granted in [1, request]).
  auto start_job = [&](size_t idx, double granted) {
    const Submission& submission = submissions[idx];
    free_tokens -= granted;
    // Admission gate: a job is only admitted when its grant fits, so the
    // pool can dip at most an epsilon below zero (the admission
    // comparison tolerates 1e-9 of float noise).
    TASQ_CHECK_GE(free_tokens, -1e-9);
    RunConfig run_config;
    run_config.tokens = granted;
    run_config.noise = config_.noise;
    run_config.seed = config_.seed ^
                      (static_cast<uint64_t>(submission.job_id) *
                       0x9E3779B97F4A7C15ULL);
    Result<RunResult> run = simulator.Run(submission.plan, run_config);
    // Plans were validated upfront; a failure here is internal.
    double runtime = run.ok() ? run.value().runtime_seconds : 0.0;
    ScheduledJob& out = results[idx];
    out.job_id = submission.job_id;
    out.tenant_id = submission.tenant_id;
    out.arrival_seconds = submission.arrival_seconds;
    out.start_seconds = now;
    out.runtime_seconds = runtime;
    out.finish_seconds = now + runtime;
    out.requested_tokens = submission.requested_tokens;
    out.granted_tokens = granted;
    // Causality: a job cannot start before it arrives, and no job
    // finishes before it starts (runtimes are non-negative).
    TASQ_CHECK_GE(out.start_seconds, out.arrival_seconds);
    TASQ_CHECK_GE(out.finish_seconds, out.start_seconds);
    if (config_.adaptive_release && run.ok()) {
      // Progressive release: hold only the suffix maximum of the job's
      // usage — tokens the job will never need again return to the pool
      // as soon as that is known (one tick after the fact).
      const auto& usage = run.value().skyline.values();
      std::vector<double> level(usage.size());
      double running_max = 0.0;
      for (size_t t = usage.size(); t > 0; --t) {
        running_max = std::max(running_max, std::min(usage[t - 1], granted));
        level[t - 1] = running_max;
      }
      double held = granted;
      for (size_t t = 0; t < level.size(); ++t) {
        if (level[t] < held) {
          completions.push(Completion{now + static_cast<double>(t) + 1.0,
                                      held - level[t], idx, false});
          held = level[t];
        }
      }
      completions.push(Completion{out.finish_seconds, held, idx, true});
    } else {
      completions.push(Completion{out.finish_seconds, granted, idx, true});
    }
    running.push_back(RunningJob{idx, submission.tenant_id, granted});
  };

  auto admit_fifo_head = [&]() {
    while (!queue.empty()) {
      size_t idx = queue.front();
      const Submission& submission = submissions[idx];
      if (submission.requested_tokens > free_tokens + 1e-9) break;
      queue.pop_front();
      start_job(idx, submission.requested_tokens);
    }
  };

  auto arbitrate_and_admit = [&]() {
    std::vector<PendingJob> pending;
    pending.reserve(queue.size());
    for (size_t idx : queue) {
      pending.push_back(PendingJob{idx, &submissions[idx]});
    }
    ArbitrationContext context{now, free_tokens, config_.cluster_tokens,
                               pending, running};
    std::vector<TokenGrant> grants = arbiter->Arbitrate(context);
    // Validate the arbiter's decision: grants reference distinct pending
    // jobs, stay within [1, request], and fit the free pool. A violation
    // is a policy bug, not a user error.
    std::sort(grants.begin(), grants.end(),
              [](const TokenGrant& a, const TokenGrant& b) {
                return a.index < b.index;
              });
    if (grants.empty() && running.empty() &&
        next_arrival >= order.size() && !queue.empty()) {
      // No-starvation backstop: the pool is fully free, no more events
      // will ever arrive, and the policy still granted nothing (e.g. a
      // credit-broke Karma tenant whose request exceeds its fair share).
      // Force-admit the oldest pending job at its full request — it
      // always fits an idle pool because requests were validated against
      // cluster_tokens.
      size_t idx = queue.front();
      queue.pop_front();
      start_job(idx, submissions[idx].requested_tokens);
      return;
    }
    double granted_total = 0.0;
    size_t previous_index = 0;
    bool first = true;
    for (const TokenGrant& grant : grants) {
      TASQ_CHECK(first || grant.index > previous_index);
      first = false;
      previous_index = grant.index;
      const Submission& submission = submissions[grant.index];
      TASQ_CHECK_GE(grant.tokens, 1.0 - 1e-9);
      TASQ_CHECK_LE(grant.tokens, submission.requested_tokens + 1e-9);
      granted_total += grant.tokens;
      bool was_pending = false;
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (*it == grant.index) {
          queue.erase(it);
          was_pending = true;
          break;
        }
      }
      TASQ_CHECK(was_pending);
      start_job(grant.index, std::min(grant.tokens,
                                      submission.requested_tokens));
    }
    TASQ_CHECK_LE(granted_total, context.free_tokens + 1e-6);
  };

  if (arbiter == nullptr) {
    // FIFO gang admission, one event per iteration (the original
    // semantics, kept byte-for-byte for existing traces and goldens).
    while (next_arrival < order.size() || !completions.empty()) {
      double arrival_time =
          next_arrival < order.size()
              ? submissions[order[next_arrival]].arrival_seconds
              : 1e300;
      double completion_time =
          !completions.empty() ? completions.top().time : 1e300;
      if (arrival_time <= completion_time) {
        now = std::max(now, arrival_time);
        queue.push_back(order[next_arrival]);
        ++next_arrival;
      } else {
        now = completion_time;
        free_tokens += completions.top().tokens;
        completions.pop();
        // Releases return only what was held: the pool never exceeds the
        // cluster's capacity (within accumulated float noise).
        TASQ_CHECK_LE(free_tokens, config_.cluster_tokens + 1e-6);
      }
      admit_fifo_head();
    }
  } else {
    // Arbiter path: batch all events at the same instant (completions
    // free their tokens first, then simultaneous arrivals join the
    // queue), so the policy decides with the full picture of the event.
    while (next_arrival < order.size() || !completions.empty()) {
      double arrival_time =
          next_arrival < order.size()
              ? submissions[order[next_arrival]].arrival_seconds
              : 1e300;
      double completion_time =
          !completions.empty() ? completions.top().time : 1e300;
      now = std::max(now, std::min(arrival_time, completion_time));
      while (!completions.empty() && completions.top().time <= now) {
        const Completion& done = completions.top();
        free_tokens += done.tokens;
        TASQ_CHECK_LE(free_tokens, config_.cluster_tokens + 1e-6);
        if (done.final_release) {
          for (auto it = running.begin(); it != running.end(); ++it) {
            if (it->index == done.job_index) {
              running.erase(it);
              break;
            }
          }
        }
        completions.pop();
      }
      while (next_arrival < order.size() &&
             submissions[order[next_arrival]].arrival_seconds <= now) {
        queue.push_back(order[next_arrival]);
        ++next_arrival;
      }
      arbitrate_and_admit();
    }
  }
  // Drain: every submission fits the cluster (validated above), so the
  // queue must be empty and every reserved token returned to the pool.
  TASQ_CHECK(queue.empty());
  TASQ_CHECK_LE(std::fabs(free_tokens - config_.cluster_tokens),
                1e-6 * std::max(1.0, config_.cluster_tokens));
  return results;
}

TraceSummary SummarizeTrace(const std::vector<ScheduledJob>& trace,
                            double cluster_tokens) {
  // Degenerate inputs return the all-zero summary; every division below
  // is guarded so this never raises an FP exception (the fpe leg runs
  // these paths with FE_INVALID trapping).
  TraceSummary summary;
  if (trace.empty() || cluster_tokens <= 0.0) return summary;
  std::vector<double> waits;
  std::vector<double> runtimes;
  double first_arrival = 1e300;
  double last_finish = 0.0;
  double reserved_token_seconds = 0.0;
  for (const ScheduledJob& job : trace) {
    waits.push_back(job.wait_seconds());
    runtimes.push_back(job.runtime_seconds);
    first_arrival = std::min(first_arrival, job.arrival_seconds);
    last_finish = std::max(last_finish, job.finish_seconds);
    // Arbiter traces hold the grant, not the request; hand-built jobs
    // may carry only a request.
    double held = job.granted_tokens > 0.0 ? job.granted_tokens
                                           : job.requested_tokens;
    reserved_token_seconds += held * job.runtime_seconds;
  }
  summary.mean_wait_seconds = Mean(waits);
  summary.median_wait_seconds = Median(waits);
  summary.p95_wait_seconds = Quantile(waits, 0.95);
  summary.mean_runtime_seconds = Mean(runtimes);
  summary.span_seconds = std::max(0.0, last_finish - first_arrival);
  if (summary.span_seconds > 0.0) {
    summary.mean_reserved_fraction =
        reserved_token_seconds / (cluster_tokens * summary.span_seconds);
  }
  return summary;
}

}  // namespace tasq
