#include "simcluster/cluster_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/check.h"
#include "common/stats.h"

namespace tasq {
namespace {

struct Completion {
  double time;
  double tokens;
  bool operator>(const Completion& other) const { return time > other.time; }
};

}  // namespace

Result<std::vector<ScheduledJob>> ClusterScheduler::Run(
    std::vector<Submission> submissions) const {
  for (const Submission& submission : submissions) {
    if (submission.requested_tokens < 1.0 ||
        submission.requested_tokens > config_.cluster_tokens) {
      return Status::InvalidArgument(
          "request must be within [1, cluster_tokens]");
    }
    Status valid = submission.plan.Validate();
    if (!valid.ok()) return valid;
  }
  // Admission order: by arrival, ties by submission order (stable).
  std::vector<size_t> order(submissions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return submissions[a].arrival_seconds < submissions[b].arrival_seconds;
  });

  ClusterSimulator simulator;
  std::vector<ScheduledJob> results(submissions.size());
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  std::deque<size_t> queue;  // Indices into `submissions`, FIFO.
  double free_tokens = config_.cluster_tokens;
  double now = 0.0;
  size_t next_arrival = 0;

  auto admit_head = [&]() {
    while (!queue.empty()) {
      size_t idx = queue.front();
      const Submission& submission = submissions[idx];
      if (submission.requested_tokens > free_tokens + 1e-9) break;
      queue.pop_front();
      free_tokens -= submission.requested_tokens;
      // Admission gate: a job is only admitted when its full request fits,
      // so the pool can dip at most an epsilon below zero (the admission
      // comparison tolerates 1e-9 of float noise).
      TASQ_CHECK_GE(free_tokens, -1e-9);
      RunConfig run_config;
      run_config.tokens = submission.requested_tokens;
      run_config.noise = config_.noise;
      run_config.seed = config_.seed ^
                        (static_cast<uint64_t>(submission.job_id) *
                         0x9E3779B97F4A7C15ULL);
      Result<RunResult> run = simulator.Run(submission.plan, run_config);
      // Plans were validated upfront; a failure here is internal.
      double runtime = run.ok() ? run.value().runtime_seconds : 0.0;
      ScheduledJob& out = results[idx];
      out.job_id = submission.job_id;
      out.arrival_seconds = submission.arrival_seconds;
      out.start_seconds = now;
      out.runtime_seconds = runtime;
      out.finish_seconds = now + runtime;
      out.requested_tokens = submission.requested_tokens;
      // Causality: a job cannot start before it arrives, and no job
      // finishes before it starts (runtimes are non-negative).
      TASQ_CHECK_GE(out.start_seconds, out.arrival_seconds);
      TASQ_CHECK_GE(out.finish_seconds, out.start_seconds);
      if (config_.adaptive_release && run.ok()) {
        // Progressive release: hold only the suffix maximum of the job's
        // usage — tokens the job will never need again return to the pool
        // as soon as that is known (one tick after the fact).
        const auto& usage = run.value().skyline.values();
        std::vector<double> level(usage.size());
        double running = 0.0;
        for (size_t t = usage.size(); t > 0; --t) {
          running = std::max(
              running, std::min(usage[t - 1], submission.requested_tokens));
          level[t - 1] = running;
        }
        double held = submission.requested_tokens;
        for (size_t t = 0; t < level.size(); ++t) {
          if (level[t] < held) {
            completions.push(Completion{now + static_cast<double>(t) + 1.0,
                                        held - level[t]});
            held = level[t];
          }
        }
        completions.push(Completion{out.finish_seconds, held});
      } else {
        completions.push(Completion{out.finish_seconds,
                                    submission.requested_tokens});
      }
    }
  };

  while (next_arrival < order.size() || !completions.empty()) {
    // Advance to the next event: an arrival or a completion.
    double arrival_time = next_arrival < order.size()
                              ? submissions[order[next_arrival]].arrival_seconds
                              : 1e300;
    double completion_time =
        !completions.empty() ? completions.top().time : 1e300;
    if (arrival_time <= completion_time) {
      now = std::max(now, arrival_time);
      queue.push_back(order[next_arrival]);
      ++next_arrival;
    } else {
      now = completion_time;
      free_tokens += completions.top().tokens;
      completions.pop();
      // Releases return only what was held: the pool never exceeds the
      // cluster's capacity (within accumulated float noise).
      TASQ_CHECK_LE(free_tokens, config_.cluster_tokens + 1e-6);
    }
    admit_head();
  }
  // Drain: every submission fits the cluster (validated above), so the
  // queue must be empty and every reserved token returned to the pool.
  TASQ_CHECK(queue.empty());
  TASQ_CHECK_LE(std::fabs(free_tokens - config_.cluster_tokens),
                1e-6 * std::max(1.0, config_.cluster_tokens));
  return results;
}

TraceSummary SummarizeTrace(const std::vector<ScheduledJob>& trace,
                            double cluster_tokens) {
  TraceSummary summary;
  if (trace.empty() || cluster_tokens <= 0.0) return summary;
  std::vector<double> waits;
  std::vector<double> runtimes;
  double first_arrival = 1e300;
  double last_finish = 0.0;
  double reserved_token_seconds = 0.0;
  for (const ScheduledJob& job : trace) {
    waits.push_back(job.wait_seconds());
    runtimes.push_back(job.runtime_seconds);
    first_arrival = std::min(first_arrival, job.arrival_seconds);
    last_finish = std::max(last_finish, job.finish_seconds);
    reserved_token_seconds += job.requested_tokens * job.runtime_seconds;
  }
  summary.mean_wait_seconds = Mean(waits);
  summary.median_wait_seconds = Median(waits);
  summary.p95_wait_seconds = Quantile(waits, 0.95);
  summary.mean_runtime_seconds = Mean(runtimes);
  summary.span_seconds = std::max(0.0, last_finish - first_arrival);
  if (summary.span_seconds > 0.0) {
    summary.mean_reserved_fraction =
        reserved_token_seconds / (cluster_tokens * summary.span_seconds);
  }
  return summary;
}

}  // namespace tasq
