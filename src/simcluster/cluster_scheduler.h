#ifndef TASQ_SIMCLUSTER_CLUSTER_SCHEDULER_H_
#define TASQ_SIMCLUSTER_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "simcluster/cluster_simulator.h"
#include "simcluster/job_plan.h"

namespace tasq {

/// One job submitted to the shared cluster with a guaranteed token request.
struct Submission {
  int64_t job_id = 0;
  double arrival_seconds = 0.0;
  /// Tokens to reserve for the job's whole lifetime (SCOPE's guaranteed
  /// allocation: the job cannot start until the full request is free).
  /// This is the *user-reported* demand — a strategic tenant may inflate
  /// it, which is exactly what the arbiter policies are measured against.
  double requested_tokens = 1.0;
  JobPlan plan;
  /// Owning tenant (user / virtual cluster). The FIFO baseline ignores it;
  /// the multi-tenant arbiter policies allocate across tenants.
  int64_t tenant_id = 0;
};

/// Scheduling outcome of one submission.
struct ScheduledJob {
  int64_t job_id = 0;
  double arrival_seconds = 0.0;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  double requested_tokens = 0.0;
  double runtime_seconds = 0.0;
  /// Tokens actually granted and held for the job's lifetime. Equals
  /// requested_tokens under FIFO gang admission; an arbiter may grant
  /// less (partial grant) but never more.
  double granted_tokens = 0.0;
  int64_t tenant_id = 0;

  double wait_seconds() const { return start_seconds - arrival_seconds; }
};

/// Configuration of the shared cluster.
struct SchedulerConfig {
  /// Total tokens in the cluster's pool.
  double cluster_tokens = 1000.0;
  /// When true, running jobs progressively release tokens they will never
  /// need again (the suffix maximum of their usage skyline) back to the
  /// pool — the adaptive-peak policy of the paper's [9] baseline. Jobs
  /// still gang-admit at their full request. Not supported together with
  /// an arbiter (arbiter grants are held whole until completion).
  bool adaptive_release = false;
  NoiseModel noise;
  uint64_t seed = 0;
};

/// A job waiting in the queue, as seen by an arbiter. `index` refers to
/// the submissions vector passed to ClusterScheduler::Run; `pending` views
/// are always in arrival order (ties by submission order).
struct PendingJob {
  size_t index = 0;
  // own: borrowed views the caller's submissions vector for one Run call
  const Submission* submission = nullptr;
};

/// A job currently holding tokens, as seen by an arbiter.
struct RunningJob {
  size_t index = 0;
  int64_t tenant_id = 0;
  double granted_tokens = 0.0;
};

/// One admission decision: start pending job `index` now, holding `tokens`
/// for its whole runtime. `tokens` must lie in [1, requested_tokens] and
/// the grants of one arbitration must sum to at most the free pool.
struct TokenGrant {
  size_t index = 0;
  double tokens = 0.0;
};

/// Everything an arbiter may condition on at one scheduling event. The
/// referenced vectors are owned by the scheduler and valid only for the
/// duration of the Arbitrate call.
struct ArbitrationContext {
  double now = 0.0;
  double free_tokens = 0.0;
  double cluster_tokens = 0.0;
  const std::vector<PendingJob>& pending;
  const std::vector<RunningJob>& running;
};

/// Decides, at each scheduling event, which queued jobs start now and at
/// what token grant. Implementations (welfare-maximizing, max-min fair,
/// Karma credits, and the FIFO baseline) live in src/arbiter; simcluster
/// only defines the contract so the layer DAG stays acyclic.
///
/// Contract: Arbitrate must be deterministic given (Reset inputs, call
/// sequence); grants must reference distinct pending indices with tokens
/// in [1, requested_tokens] summing to at most free_tokens. Jobs not
/// granted simply stay queued and are offered again at the next event.
class AllocationArbiter {
 public:
  virtual ~AllocationArbiter() = default;

  /// Called once per Run before any event, with the full (validated)
  /// submission trace; stateful policies reset their accounts here.
  virtual void Reset(const SchedulerConfig& config,
                     const std::vector<Submission>& submissions) = 0;

  /// Returns the grants for this scheduling event (may be empty).
  virtual std::vector<TokenGrant> Arbitrate(
      const ArbitrationContext& context) = 0;
};

/// A FIFO gang-admission scheduler over a finite token pool — the cluster-
/// level substrate behind the paper's §1 motivation that smaller token
/// requests "reduce job wait time and improve overall resource
/// availability".
///
/// Default semantics: submissions queue in arrival order; the head of the
/// queue is admitted as soon as its full request is free (strict FIFO — no
/// backfilling, so over-allocation directly translates into head-of-line
/// blocking); admitted jobs run on a private ClusterSimulator at their
/// granted allocation and hold the full request until completion.
///
/// With an arbiter, admission and grant sizing are delegated: at every
/// event (arrival or completion) the arbiter sees the pending queue, the
/// running set, and the free pool, and returns the grants to start now.
class ClusterScheduler {
 public:
  explicit ClusterScheduler(SchedulerConfig config)
      : config_(std::move(config)) {}

  /// Simulates the whole submission trace under FIFO gang admission.
  /// Fails if any request exceeds the pool or any plan is invalid.
  /// Results are in submission order.
  TASQ_NODISCARD Result<std::vector<ScheduledJob>> Run(
      std::vector<Submission> submissions) const;

  /// Simulates the trace with admission delegated to `arbiter` (nullptr
  /// falls back to FIFO gang admission). The arbiter is Reset first and
  /// then consulted at every scheduling event; if the pool is idle, the
  /// trace is exhausted, and the arbiter still grants nothing, the oldest
  /// pending job is force-admitted at its full request so every trace
  /// drains (no-starvation backstop, see DESIGN.md).
  TASQ_NODISCARD Result<std::vector<ScheduledJob>> Run(
      std::vector<Submission> submissions, AllocationArbiter* arbiter) const;

  const SchedulerConfig& config() const { return config_; }

 private:
  SchedulerConfig config_;
};

/// Aggregate queueing statistics for a scheduled trace.
struct TraceSummary {
  double mean_wait_seconds = 0.0;
  double median_wait_seconds = 0.0;
  double p95_wait_seconds = 0.0;
  double mean_runtime_seconds = 0.0;
  /// Makespan of the whole trace (last finish - first arrival).
  double span_seconds = 0.0;
  /// Mean fraction of the pool reserved over the span.
  double mean_reserved_fraction = 0.0;
};

/// Summarizes a trace returned by ClusterScheduler::Run. Reservation
/// accounting uses granted tokens when present (arbiter traces) and falls
/// back to requested tokens for hand-built jobs. Degenerate inputs — an
/// empty trace, a non-positive pool, or a zero-length span (e.g. a single
/// zero-runtime job) — return all-zero summaries rather than dividing by
/// zero.
TraceSummary SummarizeTrace(const std::vector<ScheduledJob>& trace,
                            double cluster_tokens);

}  // namespace tasq

#endif  // TASQ_SIMCLUSTER_CLUSTER_SCHEDULER_H_
