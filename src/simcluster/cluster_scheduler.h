#ifndef TASQ_SIMCLUSTER_CLUSTER_SCHEDULER_H_
#define TASQ_SIMCLUSTER_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "simcluster/cluster_simulator.h"
#include "simcluster/job_plan.h"

namespace tasq {

/// One job submitted to the shared cluster with a guaranteed token request.
struct Submission {
  int64_t job_id = 0;
  double arrival_seconds = 0.0;
  /// Tokens to reserve for the job's whole lifetime (SCOPE's guaranteed
  /// allocation: the job cannot start until the full request is free).
  double requested_tokens = 1.0;
  JobPlan plan;
};

/// Scheduling outcome of one submission.
struct ScheduledJob {
  int64_t job_id = 0;
  double arrival_seconds = 0.0;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  double requested_tokens = 0.0;
  double runtime_seconds = 0.0;

  double wait_seconds() const { return start_seconds - arrival_seconds; }
};

/// Configuration of the shared cluster.
struct SchedulerConfig {
  /// Total tokens in the cluster's pool.
  double cluster_tokens = 1000.0;
  /// When true, running jobs progressively release tokens they will never
  /// need again (the suffix maximum of their usage skyline) back to the
  /// pool — the adaptive-peak policy of the paper's [9] baseline. Jobs
  /// still gang-admit at their full request.
  bool adaptive_release = false;
  NoiseModel noise;
  uint64_t seed = 0;
};

/// A FIFO gang-admission scheduler over a finite token pool — the cluster-
/// level substrate behind the paper's §1 motivation that smaller token
/// requests "reduce job wait time and improve overall resource
/// availability".
///
/// Semantics: submissions queue in arrival order; the head of the queue is
/// admitted as soon as its full request is free (strict FIFO — no
/// backfilling, so over-allocation directly translates into head-of-line
/// blocking); admitted jobs run on a private ClusterSimulator at their
/// granted allocation and hold the full request until completion.
class ClusterScheduler {
 public:
  explicit ClusterScheduler(SchedulerConfig config)
      : config_(std::move(config)) {}

  /// Simulates the whole submission trace. Fails if any request exceeds
  /// the pool or any plan is invalid. Results are in submission order.
  TASQ_NODISCARD Result<std::vector<ScheduledJob>> Run(
      std::vector<Submission> submissions) const;

  const SchedulerConfig& config() const { return config_; }

 private:
  SchedulerConfig config_;
};

/// Aggregate queueing statistics for a scheduled trace.
struct TraceSummary {
  double mean_wait_seconds = 0.0;
  double median_wait_seconds = 0.0;
  double p95_wait_seconds = 0.0;
  double mean_runtime_seconds = 0.0;
  /// Makespan of the whole trace (last finish - first arrival).
  double span_seconds = 0.0;
  /// Mean fraction of the pool reserved over the span.
  double mean_reserved_fraction = 0.0;
};

/// Summarizes a trace returned by ClusterScheduler::Run.
TraceSummary SummarizeTrace(const std::vector<ScheduledJob>& trace,
                            double cluster_tokens);

}  // namespace tasq

#endif  // TASQ_SIMCLUSTER_CLUSTER_SCHEDULER_H_
