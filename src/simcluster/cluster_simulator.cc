#include "simcluster/cluster_simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tasq {
namespace {

// Accumulates busy-token time into 1-second ticks. Full ticks covered by a
// task interval go through a difference array (O(1) per task); the
// fractional edges are added directly, so the final skyline area equals the
// exact busy token-time.
class SkylineRecorder {
 public:
  void Paint(double start, double end) {
    if (end <= start) return;
    EnsureSize(static_cast<size_t>(std::floor(end)) + 2);
    double first_full = std::ceil(start);
    size_t start_tick = static_cast<size_t>(std::floor(start));
    if (first_full >= end) {
      // Interval lies within a single tick.
      partial_[start_tick] += end - start;
      return;
    }
    if (first_full > start) {
      partial_[start_tick] += first_full - start;
    }
    double last_full = std::floor(end);
    if (last_full > first_full) {
      full_diff_[static_cast<size_t>(first_full)] += 1.0;
      full_diff_[static_cast<size_t>(last_full)] -= 1.0;
    }
    if (end > last_full) {
      partial_[static_cast<size_t>(last_full)] += end - last_full;
    }
  }

  Skyline Finish(double makespan) const {
    size_t ticks = static_cast<size_t>(std::ceil(makespan));
    std::vector<double> usage(ticks, 0.0);
    double running = 0.0;
    for (size_t t = 0; t < ticks; ++t) {
      if (t < full_diff_.size()) running += full_diff_[t];
      usage[t] = running + (t < partial_.size() ? partial_[t] : 0.0);
    }
    return Skyline(std::move(usage));
  }

 private:
  void EnsureSize(size_t n) {
    if (full_diff_.size() < n) {
      full_diff_.resize(n, 0.0);
      partial_.resize(n, 0.0);
    }
  }

  std::vector<double> full_diff_;
  std::vector<double> partial_;
};

struct Completion {
  double time;
  int stage;
  bool operator>(const Completion& other) const { return time > other.time; }
};

}  // namespace

Result<RunResult> ClusterSimulator::Run(const JobPlan& plan,
                                        const RunConfig& config) const {
  Status valid = plan.Validate();
  if (!valid.ok()) return valid;
  if (config.tokens < 1.0) {
    return Status::InvalidArgument("token allocation must be at least 1");
  }
  // Tokens are integral units of admission; a fractional request is floored.
  int capacity = static_cast<int>(std::floor(config.tokens));

  size_t n = plan.stages.size();
  std::vector<std::vector<int>> dependents(n);
  std::vector<int> pending_deps(n, 0);
  std::vector<int> tasks_to_start(n);
  std::vector<int> tasks_unfinished(n);
  for (size_t i = 0; i < n; ++i) {
    tasks_to_start[i] = plan.stages[i].num_tasks;
    tasks_unfinished[i] = plan.stages[i].num_tasks;
    pending_deps[i] = static_cast<int>(plan.stages[i].dependencies.size());
    for (int dep : plan.stages[i].dependencies) {
      dependents[dep].push_back(static_cast<int>(i));
    }
  }

  std::deque<int> ready;
  for (size_t i = 0; i < n; ++i) {
    if (pending_deps[i] == 0) ready.push_back(static_cast<int>(i));
  }

  Rng rng(config.seed);
  // Draws a task's effective duration. Each task's noise is an independent
  // function of the run seed, so distinct seeds model distinct flights.
  uint64_t task_counter = 0;
  auto task_duration = [&](int stage) {
    double base = plan.stages[stage].task_duration_seconds;
    if (!config.noise.enabled) return base;
    Rng task_rng = rng.Fork(task_counter++);
    double sigma = config.noise.duration_jitter_sigma;
    double duration = base;
    if (sigma > 0.0) {
      // Log-normal multiplier with mean 1.
      duration *= task_rng.LogNormal(-sigma * sigma / 2.0, sigma);
    }
    if (task_rng.Bernoulli(config.noise.straggler_probability)) {
      duration *= config.noise.straggler_factor;
    }
    if (task_rng.Bernoulli(config.noise.failure_probability)) {
      // The failed attempt holds the token for a fraction of the duration,
      // then the task reruns from scratch.
      duration *= 1.0 + task_rng.Uniform(0.2, 0.8);
    }
    return duration;
  };

  SkylineRecorder recorder;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  double now = 0.0;
  double makespan = 0.0;
  int free_tokens = capacity;
  int running = 0;
  int peak_running = 0;

  double busy_token_seconds = 0.0;

  while (true) {
    // Start as many ready tasks as tokens allow, FIFO across ready stages.
    while (free_tokens > 0 && !ready.empty()) {
      int stage = ready.front();
      double duration = task_duration(stage);
      // Drawn durations stay positive: every noise channel multiplies the
      // positive base duration by a positive factor. A zero/negative draw
      // would let a task "finish before it starts".
      TASQ_DCHECK_GT(duration, 0.0);
      recorder.Paint(now, now + duration);
      busy_token_seconds += duration;
      completions.push(Completion{now + duration, stage});
      --free_tokens;
      ++running;
      peak_running = std::max(peak_running, running);
      if (--tasks_to_start[stage] == 0) ready.pop_front();
    }
    // Token conservation: tasks in flight never exceed the admission
    // capacity, and the free count never goes negative.
    TASQ_CHECK_GE(free_tokens, 0);
    TASQ_CHECK_LE(running, capacity);
    TASQ_CHECK_EQ(free_tokens + running, capacity);
    if (completions.empty()) break;
    Completion done = completions.top();
    completions.pop();
    // Event time is monotone: the earliest pending completion can never
    // precede the clock (it was scheduled at start + positive duration).
    TASQ_CHECK_GE(done.time, now);
    now = done.time;
    makespan = std::max(makespan, now);
    ++free_tokens;
    --running;
    if (--tasks_unfinished[done.stage] == 0) {
      // Stage barrier released: dependents may become ready.
      for (int next : dependents[done.stage]) {
        if (--pending_deps[next] == 0) ready.push_back(next);
      }
    }
  }

  // Termination state: every task returned its token and every stage
  // drained. A leftover count means the DAG deadlocked or double-counted.
  TASQ_CHECK_EQ(running, 0);
  TASQ_CHECK_EQ(free_tokens, capacity);
  for (size_t i = 0; i < n; ++i) {
    TASQ_CHECK_EQ(tasks_unfinished[i], 0);
  }

  RunResult result;
  result.runtime_seconds = makespan;
  result.peak_tokens_used = static_cast<double>(peak_running);
  result.skyline = recorder.Finish(makespan);
  // Area conservation: the recorded skyline accounts for exactly the busy
  // token-time that was painted (SkylineRecorder's contract), up to
  // floating-point accumulation across ticks.
  TASQ_DCHECK_LE(std::fabs(result.skyline.Area() - busy_token_seconds),
                 1e-6 * std::max(1.0, busy_token_seconds));
  if (config.noise.enabled) {
    // Per-run usage-accounting noise: the recorded skyline scales without
    // the run time moving (idle token holding); rare gross outliers can
    // exceed the allocation, as errant production jobs do.
    Rng usage_rng = rng.Fork(0xA11CA7E0ULL);
    double scale = 1.0;
    if (config.noise.usage_scale_sigma > 0.0) {
      scale = usage_rng.LogNormal(0.0, config.noise.usage_scale_sigma);
    }
    bool outlier =
        usage_rng.Bernoulli(config.noise.usage_outlier_probability);
    if (outlier) scale *= usage_rng.Uniform(1.5, 2.5);
    // num: float-eq exactly-1 scale is a pure no-op skip
    if (scale != 1.0) {
      std::vector<double> scaled = result.skyline.values();
      for (double& v : scaled) {
        v *= scale;
        // Ordinary accounting noise cannot report more tokens than the
        // grant; only errant (outlier) runs exceed it.
        if (!outlier) v = std::min(v, static_cast<double>(capacity));
      }
      result.skyline = Skyline(std::move(scaled));
      result.peak_tokens_used = std::max(result.peak_tokens_used * scale,
                                         result.skyline.Peak());
      if (!outlier) {
        result.peak_tokens_used =
            std::min(result.peak_tokens_used, static_cast<double>(capacity));
      }
    }
  }
  return result;
}

}  // namespace tasq
