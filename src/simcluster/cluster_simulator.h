#ifndef TASQ_SIMCLUSTER_CLUSTER_SIMULATOR_H_
#define TASQ_SIMCLUSTER_CLUSTER_SIMULATOR_H_

#include <cstdint>

#include "common/status.h"
#include "simcluster/job_plan.h"
#include "skyline/skyline.h"

namespace tasq {

/// Stochastic run-to-run variation of the simulated cluster. With
/// `enabled == false` every run of a plan at a given token count is
/// identical; with it on, task durations jitter, a small fraction of tasks
/// straggle, and tasks can fail and retry — the anomalies the paper's §5.1
/// flighting filters exist to catch.
struct NoiseModel {
  bool enabled = false;
  /// Sigma of the multiplicative log-normal per-task duration jitter.
  double duration_jitter_sigma = 0.06;
  /// Per-task probability of becoming a straggler.
  double straggler_probability = 0.01;
  /// Duration multiplier applied to straggler tasks.
  double straggler_factor = 2.0;
  /// Per-task probability of failing once; a failed task loses a uniform
  /// [20%, 80%] fraction of its duration before retrying from scratch.
  double failure_probability = 0.002;
  /// Sigma of the per-run multiplicative noise on *recorded token usage*
  /// (containers holding tokens while idle, telemetry accounting). This
  /// perturbs the skyline's area between runs of the same job without
  /// proportionally moving the run time — the phenomenon behind the
  /// paper's Figure-12 area deviations.
  double usage_scale_sigma = 0.10;
  /// Per-run probability of a gross usage-accounting outlier (the skyline
  /// inflated by 1.5-2.5x, possibly exceeding the allocation — the errant
  /// jobs the paper's flighting filter (2) discards).
  double usage_outlier_probability = 0.03;
};

/// Configuration for one simulated run (one "flight") of a job.
struct RunConfig {
  /// Allocated tokens: the scheduler never runs more concurrent tasks.
  /// Must be >= 1.
  double tokens = 1.0;
  NoiseModel noise;
  /// Seed for the noise draws; distinct seeds model distinct flights.
  uint64_t seed = 0;
};

/// Outcome of a simulated run.
struct RunResult {
  /// Token usage per 1-second tick (time-weighted within each tick, so the
  /// skyline area equals the work actually executed).
  Skyline skyline;
  /// Exact (continuous) makespan in seconds.
  double runtime_seconds = 0.0;
  /// Maximum concurrent tasks observed.
  double peak_tokens_used = 0.0;
};

/// Discrete-event simulator of a SCOPE-like cluster executing one job on a
/// fixed token allocation. This is the substitute for the Cosmos production
/// cluster and its job-flighting capability (see DESIGN.md):
///
///  * a work-conserving scheduler starts ready tasks FIFO whenever a token
///    is free, respecting stage barriers;
///  * each task occupies exactly one token for its (possibly noisy)
///    duration;
///  * the recorded skyline is the busy-token count rasterized to 1-second
///    ticks.
///
/// Because tasks neither appear nor disappear with the allocation, the area
/// under the skyline (total task-seconds) is invariant to `tokens` up to
/// noise — exactly the AREPAS assumption — while stage barriers produce the
/// peaks and valleys of real skylines.
class ClusterSimulator {
 public:
  ClusterSimulator() = default;

  /// Runs `plan` under `config`. Fails on an invalid plan or tokens < 1.
  TASQ_NODISCARD Result<RunResult> Run(const JobPlan& plan, const RunConfig& config) const;
};

}  // namespace tasq

#endif  // TASQ_SIMCLUSTER_CLUSTER_SIMULATOR_H_
