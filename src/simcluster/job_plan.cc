#include "simcluster/job_plan.h"

#include <algorithm>

namespace tasq {

double JobPlan::TotalWorkTokenSeconds() const {
  double total = 0.0;
  for (const StageSpec& stage : stages) total += stage.Work();
  return total;
}

int JobPlan::MaxStageTasks() const {
  int widest = 0;
  for (const StageSpec& stage : stages) {
    widest = std::max(widest, stage.num_tasks);
  }
  return widest;
}

double JobPlan::CriticalPathSeconds() const {
  // Stages are topologically ordered, so one forward pass suffices.
  std::vector<double> finish(stages.size(), 0.0);
  double longest = 0.0;
  for (size_t i = 0; i < stages.size(); ++i) {
    double start = 0.0;
    for (int dep : stages[i].dependencies) {
      if (dep >= 0 && static_cast<size_t>(dep) < i) {
        start = std::max(start, finish[dep]);
      }
    }
    finish[i] = start + stages[i].task_duration_seconds;
    longest = std::max(longest, finish[i]);
  }
  return longest;
}

Status JobPlan::Validate() const {
  if (stages.empty()) {
    return Status::InvalidArgument("job plan has no stages");
  }
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageSpec& stage = stages[i];
    if (stage.id != static_cast<int>(i)) {
      return Status::InvalidArgument("stage ids must be dense and in order");
    }
    if (stage.num_tasks <= 0) {
      return Status::InvalidArgument("stage task count must be positive");
    }
    if (stage.task_duration_seconds <= 0.0) {
      return Status::InvalidArgument("stage task duration must be positive");
    }
    for (int dep : stage.dependencies) {
      if (dep < 0 || dep >= stage.id) {
        return Status::InvalidArgument(
            "stage dependencies must reference earlier stages");
      }
    }
  }
  return Status::Ok();
}

}  // namespace tasq
