#ifndef TASQ_SIMCLUSTER_JOB_PLAN_H_
#define TASQ_SIMCLUSTER_JOB_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tasq {

/// One stage of a job's execution plan: `num_tasks` identical tasks, each
/// occupying one token for `task_duration_seconds` (before run-time noise).
/// A stage can start only after all stages in `dependencies` have finished
/// (SCOPE-style stage barriers).
struct StageSpec {
  /// Stage id; ids are dense 0..n-1 within a plan.
  int id = 0;
  /// Ids of stages that must complete before this one starts. Must all be
  /// smaller than `id` (plans are topologically ordered by construction).
  std::vector<int> dependencies;
  int num_tasks = 1;
  double task_duration_seconds = 1.0;

  /// Token-seconds of work in this stage (before noise).
  double Work() const {
    return static_cast<double>(num_tasks) * task_duration_seconds;
  }
};

/// The executable form of a job: a DAG of stages. This is what the cluster
/// simulator runs; the workload generator derives it from an operator DAG so
/// that compile-time features and run-time behaviour stay causally linked.
struct JobPlan {
  std::vector<StageSpec> stages;

  /// Total token-seconds of work across all stages — the area AREPAS
  /// assumes constant.
  double TotalWorkTokenSeconds() const;

  /// Widest stage (task count) — an upper bound on useful parallelism.
  int MaxStageTasks() const;

  /// Sum of task durations along the longest dependency chain: the serial
  /// floor of the job's run time (its Amdahl critical path).
  double CriticalPathSeconds() const;

  /// Checks structural validity: non-empty, dense topologically-ordered ids,
  /// positive task counts and durations, dependencies in range.
  TASQ_NODISCARD Status Validate() const;
};

}  // namespace tasq

#endif  // TASQ_SIMCLUSTER_JOB_PLAN_H_
