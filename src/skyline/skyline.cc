#include "skyline/skyline.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tasq {

Skyline::Skyline(std::vector<double> usage) : usage_(std::move(usage)) {
  for (double& v : usage_) {
    if (v < 0.0) v = 0.0;
  }
}

double Skyline::Area() const {
  double area = 0.0;
  for (double v : usage_) area += v;
  // Usage is clamped non-negative at construction, so a negative or NaN
  // area means a tick was corrupted after the fact.
  TASQ_DCHECK_GE(area, 0.0);
  return area;
}

double Skyline::Peak() const {
  double peak = 0.0;
  for (double v : usage_) peak = std::max(peak, v);
  return peak;
}

double Skyline::MeanUsage() const {
  if (usage_.empty()) return 0.0;
  return Area() / static_cast<double>(usage_.size());
}

Skyline Skyline::TrimmedTrailingZeros() const {
  size_t end = usage_.size();
  // num: float-eq trims only exactly-empty trailing buckets
  while (end > 0 && usage_[end - 1] == 0.0) --end;
  Skyline trimmed(std::vector<double>(usage_.begin(), usage_.begin() + end));
  // Trimming removes exact zeros only, so the area is preserved exactly.
  TASQ_DCHECK_EQ(trimmed.Area(), Area());
  return trimmed;
}

std::vector<SkylineSection> SplitSections(const Skyline& skyline,
                                          double threshold) {
  std::vector<SkylineSection> sections;
  const auto& values = skyline.values();
  if (values.empty()) return sections;
  SkylineSection current{0, 1, values[0] > threshold};
  for (size_t t = 1; t < values.size(); ++t) {
    bool over = values[t] > threshold;
    if (over == current.over_threshold) {
      current.end = t + 1;
    } else {
      sections.push_back(current);
      current = SkylineSection{t, t + 1, over};
    }
  }
  sections.push_back(current);
  // Sections must partition [0, duration): contiguous, in order, non-empty.
  // AREPAS relies on this to copy/flatten each tick exactly once.
  TASQ_DCHECK_EQ(sections.front().start, 0u);
  TASQ_DCHECK_EQ(sections.back().end, values.size());
  for (size_t i = 1; i < sections.size(); ++i) {
    TASQ_DCHECK_EQ(sections[i].start, sections[i - 1].end);
    TASQ_DCHECK_LT(sections[i].start, sections[i].end);
  }
  return sections;
}

UtilizationSummary ClassifyUtilization(const Skyline& skyline,
                                       const UtilizationBands& bands) {
  UtilizationSummary summary;
  double peak = skyline.Peak();
  for (double v : skyline.values()) {
    if (peak <= 0.0 || v < bands.minimum_fraction * peak) {
      summary.seconds_minimum += 1.0;
    } else if (v < bands.low_fraction * peak) {
      summary.seconds_low += 1.0;
    } else {
      summary.seconds_high += 1.0;
    }
  }
  // Every tick lands in exactly one band (the sums are exact: whole
  // seconds counted by 1.0 increments).
  TASQ_DCHECK_EQ(
      summary.seconds_minimum + summary.seconds_low + summary.seconds_high,
      static_cast<double>(skyline.values().size()));
  return summary;
}

std::vector<double> AllocationSeries(const Skyline& skyline,
                                     AllocationPolicy policy,
                                     double default_tokens) {
  const auto& usage = skyline.values();
  std::vector<double> allocation(usage.size());
  switch (policy) {
    case AllocationPolicy::kDefault: {
      double level = std::max(default_tokens, skyline.Peak());
      std::fill(allocation.begin(), allocation.end(), level);
      break;
    }
    case AllocationPolicy::kPeak: {
      double peak = skyline.Peak();
      std::fill(allocation.begin(), allocation.end(), peak);
      break;
    }
    case AllocationPolicy::kAdaptivePeak: {
      // Suffix maxima: at tick t allocate the largest usage still ahead.
      double running = 0.0;
      for (size_t i = usage.size(); i > 0; --i) {
        running = std::max(running, usage[i - 1]);
        allocation[i - 1] = running;
      }
      break;
    }
  }
  // No policy may starve the job: the allocation covers usage at every
  // tick (kDefault/kPeak allocate >= Peak(); kAdaptivePeak is a suffix max).
  for (size_t t = 0; t < usage.size(); ++t) {
    TASQ_DCHECK_GE(allocation[t], usage[t]);
  }
  return allocation;
}

Result<double> OverAllocation(const Skyline& skyline,
                              const std::vector<double>& allocation) {
  const auto& usage = skyline.values();
  if (allocation.size() < usage.size()) {
    return Status::InvalidArgument(
        "allocation series shorter than skyline duration");
  }
  double waste = 0.0;
  for (size_t t = 0; t < usage.size(); ++t) {
    if (allocation[t] + 1e-9 < usage[t]) {
      return Status::InvalidArgument(
          "allocation below usage: the policy would starve the job");
    }
    waste += allocation[t] - usage[t];
  }
  return waste;
}

}  // namespace tasq
