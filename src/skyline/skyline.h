#ifndef TASQ_SKYLINE_SKYLINE_H_
#define TASQ_SKYLINE_SKYLINE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace tasq {

/// A job's resource-consumption *skyline*: the number of tokens in use at
/// each 1-second tick of the job's execution (the paper's Figure 1).
///
/// The skyline is the central data structure of TASQ: the cluster simulator
/// produces one per run, AREPAS transforms one into skylines at alternate
/// token allocations, and allocation policies are evaluated against one.
/// Usage values are doubles so that fractional token accounting (e.g., the
/// tail tick of a stretched AREPAS section) is representable, but cluster
/// runs always produce integral values.
class Skyline {
 public:
  /// Constructs an empty skyline (zero duration).
  Skyline() = default;

  /// Constructs a skyline from per-second usage samples. Negative samples
  /// are clamped to zero.
  explicit Skyline(std::vector<double> usage);

  /// Number of 1-second ticks (the job run time in seconds).
  size_t duration_seconds() const { return usage_.size(); }

  /// Token usage at tick `t`; 0 when out of range.
  double UsageAt(size_t t) const {
    return t < usage_.size() ? usage_[t] : 0.0;
  }

  /// Total token-seconds under the curve — the quantity AREPAS preserves.
  double Area() const;

  /// Maximum instantaneous token usage.
  double Peak() const;

  /// Mean token usage over the job's duration (0 for an empty skyline).
  double MeanUsage() const;

  /// Drops trailing ticks with zero usage (a run's recorded horizon can
  /// extend past completion). Returns the trimmed skyline.
  Skyline TrimmedTrailingZeros() const;

  const std::vector<double>& values() const { return usage_; }

  bool operator==(const Skyline& other) const = default;

 private:
  std::vector<double> usage_;
};

/// A maximal contiguous chunk of a skyline that lies entirely at-or-under or
/// entirely over a threshold allocation (Algorithm 1, lines 1-4).
struct SkylineSection {
  /// First tick of the section (inclusive).
  size_t start = 0;
  /// One past the last tick (exclusive).
  size_t end = 0;
  /// True when every tick in [start, end) has usage > threshold.
  bool over_threshold = false;

  size_t length() const { return end - start; }
};

/// Splits `skyline` into maximal contiguous sections relative to
/// `threshold`, in time order. A tick belongs to an over-threshold section
/// iff its usage strictly exceeds the threshold (usage exactly at the
/// threshold fits under the new allocation and stays unchanged).
/// The concatenation of the returned sections covers the skyline exactly.
std::vector<SkylineSection> SplitSections(const Skyline& skyline,
                                          double threshold);

/// Utilization bands for the Figure-5 decomposition of a skyline. Each tick
/// is classified by its usage relative to the skyline peak.
struct UtilizationBands {
  /// Fraction of peak below which a tick counts as near-minimum ("red").
  double minimum_fraction = 0.2;
  /// Fraction of peak below which a tick counts as low ("pink"); at or
  /// above this a tick is moderate-high ("green").
  double low_fraction = 0.5;
};

/// Seconds spent in each utilization band.
struct UtilizationSummary {
  double seconds_minimum = 0.0;
  double seconds_low = 0.0;
  double seconds_high = 0.0;

  double total() const { return seconds_minimum + seconds_low + seconds_high; }
};

/// Classifies each tick of `skyline` into bands relative to its peak.
/// An all-zero skyline classifies every tick as near-minimum.
UtilizationSummary ClassifyUtilization(const Skyline& skyline,
                                       const UtilizationBands& bands = {});

/// Resource-allocation policies from Figure 1. A policy maps a skyline to a
/// per-tick *allocated* token series (always >= usage so the job is never
/// starved under the modeled policy).
enum class AllocationPolicy {
  /// A fixed user/default token request, independent of the skyline.
  kDefault,
  /// Allocate the skyline peak for the whole duration (AutoToken-style).
  kPeak,
  /// At each tick allocate the maximum usage over the *remaining* lifetime,
  /// i.e., progressively release tokens that will never be needed again.
  kAdaptivePeak,
};

/// Computes the per-tick allocation series for `policy`. `default_tokens` is
/// used only by kDefault; if it is below the skyline peak it is raised to
/// the peak (a real default allocation gates admission, so a job cannot use
/// more than it was granted).
std::vector<double> AllocationSeries(const Skyline& skyline,
                                     AllocationPolicy policy,
                                     double default_tokens = 0.0);

/// Token-seconds allocated but unused under `allocation`:
/// sum_t (allocation[t] - usage[t]). `allocation` must cover the skyline
/// duration and dominate usage at every tick.
TASQ_NODISCARD Result<double> OverAllocation(const Skyline& skyline,
                              const std::vector<double>& allocation);

}  // namespace tasq

#endif  // TASQ_SKYLINE_SKYLINE_H_
