#include "spark/autoexecutor.h"

#include <algorithm>
#include <cmath>

#include "feat/featurizer.h"

namespace tasq {

Result<ExecutorRunResult> RunOnExecutors(const JobPlan& plan, int executors,
                                         const SparkPlatformConfig& platform,
                                         const NoiseModel& noise,
                                         uint64_t seed) {
  if (executors < 1) {
    return Status::InvalidArgument("executor count must be at least 1");
  }
  if (platform.cores_per_executor < 1) {
    return Status::InvalidArgument("cores per executor must be at least 1");
  }
  ClusterSimulator simulator;
  RunConfig config;
  config.tokens =
      static_cast<double>(executors) *
      static_cast<double>(platform.cores_per_executor);
  config.noise = noise;
  config.seed = seed;
  Result<RunResult> run = simulator.Run(plan, config);
  if (!run.ok()) return run.status();
  // Convert the core-level skyline into executor units.
  double cores = static_cast<double>(platform.cores_per_executor);
  std::vector<double> executor_usage = run.value().skyline.values();
  for (double& v : executor_usage) v /= cores;
  ExecutorRunResult result;
  result.executor_skyline = Skyline(std::move(executor_usage));
  result.runtime_seconds = run.value().runtime_seconds;
  result.peak_executors_used = run.value().peak_tokens_used / cores;
  return result;
}

struct AutoExecutor::Impl {
  AutoExecutorOptions options;
  bool trained = false;
  std::unique_ptr<DatasetScalers> scalers;
  std::unique_ptr<NnPccModel> nn;
  Featurizer featurizer;

  int DefaultExecutors(const Job& job) const {
    int cores = options.platform.cores_per_executor;
    int executors = static_cast<int>(
        std::ceil(job.default_tokens / static_cast<double>(cores)));
    return std::clamp(executors, 1, options.platform.max_executors);
  }
};

AutoExecutor::AutoExecutor(AutoExecutorOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
}
AutoExecutor::~AutoExecutor() = default;
AutoExecutor::AutoExecutor(AutoExecutor&&) noexcept = default;
AutoExecutor& AutoExecutor::operator=(AutoExecutor&&) noexcept = default;

bool AutoExecutor::trained() const { return impl_->trained; }
const AutoExecutorOptions& AutoExecutor::options() const {
  return impl_->options;
}

Status AutoExecutor::Train(const std::vector<Job>& jobs) {
  if (jobs.empty()) {
    return Status::InvalidArgument("cannot train on zero jobs");
  }
  // Observe each job once at its default executor count; the dataset
  // builder, AREPAS augmentation, and power-law targets are unit-agnostic,
  // so the whole TASQ training path is reused with executors as the
  // resource axis.
  std::vector<ObservedJob> observed;
  observed.reserve(jobs.size());
  for (const Job& job : jobs) {
    int executors = impl_->DefaultExecutors(job);
    Result<ExecutorRunResult> run = RunOnExecutors(
        job.plan, executors, impl_->options.platform,
        impl_->options.observation_noise,
        impl_->options.seed ^ (static_cast<uint64_t>(job.id) * 6364136223ULL));
    if (!run.ok()) return run.status();
    ObservedJob entry;
    entry.job = job;
    entry.skyline = std::move(run.value().executor_skyline);
    entry.runtime_seconds = run.value().runtime_seconds;
    entry.observed_tokens = static_cast<double>(executors);
    entry.peak_tokens = run.value().peak_executors_used;
    observed.push_back(std::move(entry));
  }
  DatasetBuilder builder(impl_->options.dataset);
  Result<Dataset> built = builder.Build(observed);
  if (!built.ok()) return built.status();
  Dataset dataset = std::move(built.value());
  Result<DatasetScalers> scalers = FitScalers(dataset);
  if (!scalers.ok()) return scalers.status();
  impl_->scalers =
      std::make_unique<DatasetScalers>(std::move(scalers.value()));
  ApplyScalers(*impl_->scalers, dataset);

  PccSupervision supervision;
  supervision.targets = dataset.targets;
  supervision.observed_tokens = dataset.observed_tokens;
  supervision.observed_runtime = dataset.observed_runtime;
  if (impl_->options.nn.loss_form == LossForm::kLF3) {
    return Status::InvalidArgument(
        "AutoExecutor trains only the NN; use LF1 or LF2");
  }
  impl_->nn = std::make_unique<NnPccModel>(dataset.job_feature_dim,
                                           impl_->options.nn);
  Result<double> loss = impl_->nn->Train(dataset.job_features, supervision);
  if (!loss.ok()) return loss.status();
  impl_->trained = true;
  return Status::Ok();
}

Result<PowerLawPcc> AutoExecutor::PredictPcc(const JobGraph& graph) const {
  if (!impl_->trained) {
    return Status::FailedPrecondition("AutoExecutor has not been trained");
  }
  Result<std::vector<double>> features = impl_->featurizer.JobLevel(graph);
  if (!features.ok()) return features.status();
  impl_->scalers->job_scaler.Transform(features.value());
  return impl_->nn->Predict(features.value());
}

Result<int> AutoExecutor::RecommendExecutors(
    const JobGraph& graph, int max_executors,
    double min_improvement_percent) const {
  Result<PowerLawPcc> pcc = PredictPcc(graph);
  if (!pcc.ok()) return pcc.status();
  int cap = std::min(max_executors, impl_->options.platform.max_executors);
  if (cap < 1) {
    return Status::InvalidArgument("executor cap must be at least 1");
  }
  double optimal = pcc.value().OptimalTokens(min_improvement_percent,
                                             static_cast<double>(cap));
  return static_cast<int>(std::lround(std::clamp(
      optimal, 1.0, static_cast<double>(cap))));
}

}  // namespace tasq
