#ifndef TASQ_SPARK_AUTOEXECUTOR_H_
#define TASQ_SPARK_AUTOEXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "nn/nn_model.h"
#include "simcluster/cluster_simulator.h"
#include "tasq/dataset.h"
#include "workload/job_graph.h"

namespace tasq {

/// Spark-platform parameters for the AutoExecutor adaptation (paper §2.3:
/// the companion work applies TASQ's recipe to choosing the number of
/// executors for Spark SQL queries). An executor bundles several task
/// slots; allocation granularity is whole executors.
struct SparkPlatformConfig {
  /// Concurrent task slots per executor.
  int cores_per_executor = 4;
  /// Upper bound on executors a query may request.
  int max_executors = 256;
};

/// Result of one simulated Spark run, with the skyline measured in
/// *executor* units (busy cores / cores per executor).
struct ExecutorRunResult {
  Skyline executor_skyline;
  double runtime_seconds = 0.0;
  double peak_executors_used = 0.0;
};

/// Runs `plan` on `executors` executors of the configured width. The
/// underlying engine is the same discrete-event simulator; only the
/// resource unit changes — exactly the platform-specific swap the paper
/// describes (resource unit, simulator, functional form).
TASQ_NODISCARD Result<ExecutorRunResult> RunOnExecutors(const JobPlan& plan, int executors,
                                         const SparkPlatformConfig& platform,
                                         const NoiseModel& noise = {},
                                         uint64_t seed = 0);

/// Options for AutoExecutor training.
struct AutoExecutorOptions {
  SparkPlatformConfig platform;
  DatasetOptions dataset;
  NnOptions nn;
  NoiseModel observation_noise = {.enabled = true};
  uint64_t seed = 1;
};

/// AutoExecutor: TASQ's recipe re-instantiated for Spark SQL (paper §2.3
/// and the AutoExecutor companion paper): observe each query once at its
/// default executor count, synthesize the executor-PCC with AREPAS on the
/// executor skyline, fit power-law targets, and train an NN that predicts
/// the PCC — in executors — for unseen queries.
class AutoExecutor {
 public:
  explicit AutoExecutor(AutoExecutorOptions options = {});
  ~AutoExecutor();
  AutoExecutor(AutoExecutor&&) noexcept;
  AutoExecutor& operator=(AutoExecutor&&) noexcept;

  /// Trains from a workload of jobs (each job's default executor count is
  /// derived from its default token request and the executor width).
  TASQ_NODISCARD Status Train(const std::vector<Job>& jobs);

  /// Predicts the executor-PCC (runtime = b * executors^a) for an unseen
  /// query. Monotone non-increasing by construction.
  TASQ_NODISCARD Result<PowerLawPcc> PredictPcc(const JobGraph& graph) const;

  /// Recommends the minimum executor count whose marginal improvement
  /// stays above `min_improvement_percent` per executor, capped at
  /// `max_executors` (or the platform cap, whichever is smaller).
  TASQ_NODISCARD Result<int> RecommendExecutors(const JobGraph& graph, int max_executors,
                                 double min_improvement_percent = 1.0) const;

  bool trained() const;
  const AutoExecutorOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tasq

#endif  // TASQ_SPARK_AUTOEXECUTOR_H_
