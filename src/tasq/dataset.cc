#include "tasq/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace tasq {

Result<std::vector<ObservedJob>> ObserveWorkload(const std::vector<Job>& jobs,
                                                 const NoiseModel& noise,
                                                 uint64_t seed) {
  // Per-job runs are independent and seeded per job id, so the observation
  // fans out across threads with bit-identical results to a serial run.
  std::vector<ObservedJob> observed(jobs.size());
  std::vector<Status> errors(jobs.size());
  ParallelFor(jobs.size(), [&](size_t i) {
    const Job& job = jobs[i];
    ClusterSimulator simulator;
    RunConfig config;
    config.tokens = job.default_tokens;
    config.noise = noise;
    config.seed = seed ^ (static_cast<uint64_t>(job.id) * 2654435761ULL);
    Result<RunResult> run = simulator.Run(job.plan, config);
    if (!run.ok()) {
      errors[i] = run.status();
      return;
    }
    ObservedJob& entry = observed[i];
    entry.job = job;
    entry.skyline = std::move(run.value().skyline);
    entry.runtime_seconds = run.value().runtime_seconds;
    entry.observed_tokens = job.default_tokens;
    entry.peak_tokens = run.value().peak_tokens_used;
  });
  for (const Status& status : errors) {
    if (!status.ok()) return status;
  }
  return observed;
}

Result<Dataset> DatasetBuilder::Build(
    const std::vector<ObservedJob>& observed) const {
  if (observed.empty()) {
    return Status::InvalidArgument("cannot build a dataset from zero jobs");
  }
  Featurizer featurizer;
  Arepas arepas(options_.arepas);
  Dataset dataset;
  dataset.job_feature_dim = Featurizer::kJobFeatureDim;
  dataset.op_feature_dim = Featurizer::kOperatorFeatureDim;

  for (const ObservedJob& entry : observed) {
    Result<JobFeatures> features = featurizer.Featurize(entry.job.graph);
    if (!features.ok()) return features.status();

    dataset.job_ids.push_back(entry.job.id);
    dataset.template_ids.push_back(entry.job.template_id);
    dataset.job_features.insert(dataset.job_features.end(),
                                features.value().job_vector.begin(),
                                features.value().job_vector.end());
    GraphExample graph;
    graph.num_nodes = features.value().num_operators;
    graph.node_features = std::move(features.value().op_matrix);
    graph.norm_adjacency = std::move(features.value().norm_adjacency);
    dataset.graphs.push_back(std::move(graph));

    dataset.observed_tokens.push_back(entry.observed_tokens);
    dataset.observed_runtime.push_back(entry.runtime_seconds);
    dataset.peak_tokens.push_back(entry.peak_tokens);

    // ---- Trend target: power law fitted to the AREPAS-synthesized curve.
    double peak = std::max(1.0, entry.peak_tokens);
    std::vector<double> grid;
    for (double fraction : options_.target_fractions) {
      double tokens = std::max(1.0, std::round(fraction * peak));
      if (grid.empty() || tokens > grid.back()) grid.push_back(tokens);
    }
    PowerLawPcc target{0.0, std::max(entry.runtime_seconds, 1.0)};
    Result<std::vector<PccSample>> curve =
        SamplePcc(entry.skyline, grid, options_.arepas);
    if (curve.ok()) {
      Result<PowerLawFit> fit = FitPowerLaw(curve.value());
      // A degenerate or (rare, quantization-induced) increasing fit falls
      // back to the flat curve at the observed run time.
      if (fit.ok() && fit.value().pcc.a <= 0.0 && fit.value().pcc.b > 0.0) {
        target = fit.value().pcc;
      }
    }
    dataset.targets.push_back(target);

    // ---- Augmented point-prediction examples (paper §4.4).
    auto append_point = [&](double tokens, double runtime) {
      size_t offset = (dataset.size() - 1) * dataset.job_feature_dim;
      dataset.point_features.insert(
          dataset.point_features.end(),
          dataset.job_features.begin() + static_cast<long>(offset),
          dataset.job_features.begin() +
              static_cast<long>(offset + dataset.job_feature_dim));
      dataset.point_tokens.push_back(tokens);
      dataset.point_runtimes.push_back(runtime);
    };
    for (double fraction : options_.point_fractions) {
      double tokens = std::max(1.0, std::round(fraction * entry.observed_tokens));
      Result<double> runtime =
          arepas.SimulateRunTimeSeconds(entry.skyline, tokens);
      if (runtime.ok()) append_point(tokens, runtime.value());
    }
    // Over-allocated examples: run time floored at the peak-allocation run
    // time (more tokens than the peak cannot help).
    for (double fraction : options_.over_peak_fractions) {
      double tokens = std::max(1.0, std::round(fraction * peak));
      append_point(tokens,
                   static_cast<double>(entry.skyline.duration_seconds()));
    }
  }
  return dataset;
}

Result<DatasetScalers> FitScalers(const Dataset& dataset) {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("cannot fit scalers on an empty dataset");
  }
  Result<FeatureScaler> job_scaler = FeatureScaler::Fit(
      dataset.job_features, dataset.size(), dataset.job_feature_dim);
  if (!job_scaler.ok()) return job_scaler.status();

  std::vector<double> all_ops;
  for (const GraphExample& graph : dataset.graphs) {
    all_ops.insert(all_ops.end(), graph.node_features.begin(),
                   graph.node_features.end());
  }
  Result<FeatureScaler> op_scaler = FeatureScaler::Fit(
      all_ops, all_ops.size() / dataset.op_feature_dim,
      dataset.op_feature_dim);
  if (!op_scaler.ok()) return op_scaler.status();
  return DatasetScalers{std::move(job_scaler.value()),
                        std::move(op_scaler.value())};
}

void ApplyScalers(const DatasetScalers& scalers, Dataset& dataset) {
  scalers.job_scaler.TransformMatrix(dataset.job_features);
  scalers.job_scaler.TransformMatrix(dataset.point_features);
  for (GraphExample& graph : dataset.graphs) {
    scalers.op_scaler.TransformMatrix(graph.node_features);
  }
}

}  // namespace tasq
