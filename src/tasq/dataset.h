#ifndef TASQ_TASQ_DATASET_H_
#define TASQ_TASQ_DATASET_H_

#include <cstdint>
#include <vector>

#include "arepas/arepas.h"
#include "common/status.h"
#include "feat/featurizer.h"
#include "gnn/gnn_model.h"
#include "pcc/pcc.h"
#include "simcluster/cluster_simulator.h"
#include "workload/job_graph.h"

namespace tasq {

/// One historical observation: a job that ran once at its requested token
/// count (all the telemetry a production repository has per job).
struct ObservedJob {
  Job job;
  /// The single observed resource-consumption skyline.
  Skyline skyline;
  double runtime_seconds = 0.0;
  /// Tokens the job was allocated (its reference token count).
  double observed_tokens = 0.0;
  /// Peak tokens actually used.
  double peak_tokens = 0.0;
};

/// Executes each job once at its default allocation on the simulated
/// cluster, producing the "historical" dataset. `noise` models production
/// variance; `seed` varies the noisy runs per job.
TASQ_NODISCARD Result<std::vector<ObservedJob>> ObserveWorkload(const std::vector<Job>& jobs,
                                                 const NoiseModel& noise,
                                                 uint64_t seed);

/// Options controlling training-set construction.
struct DatasetOptions {
  ArepasOptions arepas;
  /// Fractions of the job's *peak usage* where the AREPAS curve is sampled
  /// to fit the power-law target (trend supervision).
  std::vector<double> target_fractions = {0.2, 0.3, 0.4, 0.5,
                                          0.65, 0.8, 0.9, 1.0};
  /// Fractions of the *observed* token count added as augmented point-
  /// prediction examples for XGBoost (paper §4.4: 60%, 80%, 100%).
  std::vector<double> point_fractions = {0.6, 0.8, 1.0};
  /// Fractions of the *peak* added as over-allocated examples with run
  /// time floored at the peak-allocation run time (paper: 120%, 140%).
  std::vector<double> over_peak_fractions = {1.2, 1.4};
};

/// A model-ready dataset: per-job features (unscaled), graphs, power-law
/// targets, and the AREPAS-augmented point-prediction set.
struct Dataset {
  size_t job_feature_dim = 0;
  size_t op_feature_dim = 0;

  // Per job (size N each).
  std::vector<int64_t> job_ids;
  std::vector<int> template_ids;
  std::vector<double> job_features;  ///< Row-major N x job_feature_dim.
  std::vector<GraphExample> graphs;  ///< Unscaled operator features.
  std::vector<PowerLawPcc> targets;  ///< Fit to each job's AREPAS curve.
  std::vector<double> observed_tokens;
  std::vector<double> observed_runtime;
  std::vector<double> peak_tokens;

  // AREPAS-augmented point-prediction examples (size M >= N).
  std::vector<double> point_features;  ///< Row-major M x job_feature_dim.
  std::vector<double> point_tokens;
  std::vector<double> point_runtimes;

  size_t size() const { return job_ids.size(); }
  size_t point_size() const { return point_tokens.size(); }
};

/// Builds a Dataset from observed jobs: featurizes each job, synthesizes
/// its PCC with AREPAS, fits the two-parameter power-law target, and emits
/// the augmented point-prediction examples. Jobs whose target cannot be
/// fitted (degenerate skylines) fall back to a flat curve at the observed
/// run time.
class DatasetBuilder {
 public:
  explicit DatasetBuilder(DatasetOptions options = {})
      : options_(std::move(options)) {}

  TASQ_NODISCARD Result<Dataset> Build(const std::vector<ObservedJob>& observed) const;

  const DatasetOptions& options() const { return options_; }

 private:
  DatasetOptions options_;
};

/// Standardizes a dataset in place with scalers fitted on (typically) the
/// training set: job-level features and per-node graph features. Returns
/// the fitted scalers so test sets can be transformed consistently.
struct DatasetScalers {
  FeatureScaler job_scaler;
  FeatureScaler op_scaler;
};
TASQ_NODISCARD Result<DatasetScalers> FitScalers(const Dataset& dataset);
void ApplyScalers(const DatasetScalers& scalers, Dataset& dataset);

}  // namespace tasq

#endif  // TASQ_TASQ_DATASET_H_
