#include "tasq/evaluation.h"

#include <cmath>

#include "common/stats.h"
#include "pcc/pcc.h"

namespace tasq {
namespace {

// Standardized copy of test job i's feature row.
std::vector<double> ScaledRow(const Tasq& tasq, const Dataset& test,
                              size_t i) {
  std::vector<double> row(
      test.job_features.begin() + static_cast<long>(i * test.job_feature_dim),
      test.job_features.begin() +
          static_cast<long>((i + 1) * test.job_feature_dim));
  tasq.scalers()->job_scaler.Transform(row);
  return row;
}

GraphExample ScaledGraph(const Tasq& tasq, const Dataset& test, size_t i) {
  GraphExample graph = test.graphs[i];
  tasq.scalers()->op_scaler.TransformMatrix(graph.node_features);
  return graph;
}

}  // namespace

Result<std::vector<double>> PredictRuntimes(const Tasq& tasq, ModelKind kind,
                                            const Dataset& test) {
  if (!tasq.trained()) {
    return Status::FailedPrecondition("pipeline has not been trained");
  }
  std::vector<double> predictions;
  predictions.reserve(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    double tokens = test.observed_tokens[i];
    double prediction = 0.0;
    switch (kind) {
      case ModelKind::kXgboostSs:
      case ModelKind::kXgboostPl: {
        if (tasq.xgb() == nullptr) {
          return Status::FailedPrecondition("XGBoost model was not trained");
        }
        Result<double> runtime =
            tasq.xgb()->PredictRuntime(ScaledRow(tasq, test, i), tokens);
        if (!runtime.ok()) return runtime.status();
        prediction = runtime.value();
        break;
      }
      case ModelKind::kNn: {
        if (tasq.nn() == nullptr) {
          return Status::FailedPrecondition("NN model was not trained");
        }
        Result<PowerLawPcc> pcc = tasq.nn()->Predict(ScaledRow(tasq, test, i));
        if (!pcc.ok()) return pcc.status();
        prediction = pcc.value().EvalRunTime(tokens);
        break;
      }
      case ModelKind::kGnn: {
        if (tasq.gnn() == nullptr) {
          return Status::FailedPrecondition("GNN model was not trained");
        }
        Result<PowerLawPcc> pcc =
            tasq.gnn()->Predict(ScaledGraph(tasq, test, i));
        if (!pcc.ok()) return pcc.status();
        prediction = pcc.value().EvalRunTime(tokens);
        break;
      }
    }
    predictions.push_back(prediction);
  }
  return predictions;
}

Result<ModelEvalMetrics> EvaluateModel(const Tasq& tasq, ModelKind kind,
                                       const Dataset& test) {
  if (!tasq.trained()) {
    return Status::FailedPrecondition("pipeline has not been trained");
  }
  if (test.size() == 0) {
    return Status::InvalidArgument("test dataset is empty");
  }
  ModelEvalMetrics metrics;
  metrics.jobs = test.size();

  // Run-time point accuracy at the observed token count.
  Result<std::vector<double>> runtimes = PredictRuntimes(tasq, kind, test);
  if (!runtimes.ok()) return runtimes.status();
  metrics.median_ae_runtime_percent =
      MedianAbsolutePercentError(runtimes.value(), test.observed_runtime);

  // Pattern and curve-parameter metrics.
  const PccTargetScaling& scaling = *tasq.target_scaling();
  size_t monotone = 0;
  std::vector<double> param_errors;
  for (size_t i = 0; i < test.size(); ++i) {
    if (kind == ModelKind::kXgboostSs) {
      Result<std::vector<PccSample>> curve = tasq.xgb()->PredictSmoothedCurve(
          ScaledRow(tasq, test, i), test.observed_tokens[i]);
      if (!curve.ok()) return curve.status();
      if (IsCurveMonotoneNonIncreasing(curve.value())) ++monotone;
      continue;  // No parametric curve for SS.
    }
    PowerLawPcc predicted;
    switch (kind) {
      case ModelKind::kXgboostPl: {
        Result<PowerLawPcc> pcc = tasq.xgb()->PredictPowerLawPcc(
            ScaledRow(tasq, test, i), test.observed_tokens[i]);
        if (!pcc.ok()) return pcc.status();
        predicted = pcc.value();
        break;
      }
      case ModelKind::kNn: {
        Result<PowerLawPcc> pcc = tasq.nn()->Predict(ScaledRow(tasq, test, i));
        if (!pcc.ok()) return pcc.status();
        predicted = pcc.value();
        break;
      }
      case ModelKind::kGnn: {
        Result<PowerLawPcc> pcc =
            tasq.gnn()->Predict(ScaledGraph(tasq, test, i));
        if (!pcc.ok()) return pcc.status();
        predicted = pcc.value();
        break;
      }
      case ModelKind::kXgboostSs:
        break;  // Handled above.
    }
    if (predicted.IsMonotoneNonIncreasing()) ++monotone;
    auto [p1, p2] = scaling.ToScaled(predicted);
    auto [t1, t2] = scaling.ToScaled(test.targets[i]);
    // The paper's predicted-vs-target parameter error in the shared scaled
    // space; the sign convention folds into t1 = |a|/s1, and a predicted
    // *increasing* curve (XGBoost PL with consistent signs) sits at -|a|.
    double signed_p1 = predicted.IsMonotoneNonIncreasing() ? p1 : -p1;
    param_errors.push_back(
        0.5 * (std::fabs(signed_p1 - t1) + std::fabs(p2 - t2)));
  }
  metrics.pattern_nonincrease_percent =
      100.0 * static_cast<double>(monotone) / static_cast<double>(test.size());
  if (!param_errors.empty()) {
    metrics.mae_curve_params = Mean(param_errors);
  }
  return metrics;
}

}  // namespace tasq
