#ifndef TASQ_TASQ_EVALUATION_H_
#define TASQ_TASQ_EVALUATION_H_

#include <vector>

#include "common/status.h"
#include "tasq/dataset.h"
#include "tasq/tasq.h"

namespace tasq {

/// The paper's three model-quality metrics (§5):
///  * Pattern — percent of jobs whose predicted PCC is monotone
///    non-increasing (within the reference window for XGBoost-SS);
///  * MAE of the scaled curve parameters (NA for XGBoost-SS, reported as a
///    negative value);
///  * Median absolute error, in percent, of the run-time prediction at the
///    observed token count.
struct ModelEvalMetrics {
  double pattern_nonincrease_percent = 0.0;
  double mae_curve_params = -1.0;
  double median_ae_runtime_percent = 0.0;
  /// Number of jobs evaluated.
  size_t jobs = 0;

  bool has_curve_params() const { return mae_curve_params >= 0.0; }
};

/// Evaluates one trained model over an *unscaled* test dataset (fresh from
/// DatasetBuilder::Build on held-out observations). Features are
/// standardized with the pipeline's training scalers; curve-parameter
/// errors are measured in the pipeline's scaled target space, so numbers
/// are comparable across models.
TASQ_NODISCARD Result<ModelEvalMetrics> EvaluateModel(const Tasq& tasq, ModelKind kind,
                                       const Dataset& test);

/// Per-job run-time predictions of `kind` at each job's observed token
/// count (same order as the dataset). Used by workload-level analyses.
TASQ_NODISCARD Result<std::vector<double>> PredictRuntimes(const Tasq& tasq, ModelKind kind,
                                            const Dataset& test);

}  // namespace tasq

#endif  // TASQ_TASQ_EVALUATION_H_
