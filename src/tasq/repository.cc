#include "tasq/repository.h"

#include <fstream>

#include "common/text_io.h"

namespace tasq {
namespace {

void SaveJob(TextArchiveWriter& writer, const Job& job) {
  writer.Scalar("job.id", job.id);
  writer.Scalar("job.template_id", static_cast<int64_t>(job.template_id));
  writer.Scalar("job.recurring", static_cast<int64_t>(job.recurring ? 1 : 0));
  writer.Scalar("job.input_scale", job.input_scale);
  writer.Scalar("job.default_tokens", job.default_tokens);

  writer.Scalar("job.num_stages",
                static_cast<int64_t>(job.plan.stages.size()));
  for (const StageSpec& stage : job.plan.stages) {
    std::vector<double> flat;
    flat.push_back(static_cast<double>(stage.id));
    flat.push_back(static_cast<double>(stage.num_tasks));
    flat.push_back(stage.task_duration_seconds);
    for (int dep : stage.dependencies) flat.push_back(static_cast<double>(dep));
    writer.Vector("job.stage", flat);
  }

  writer.Scalar("job.num_operators",
                static_cast<int64_t>(job.graph.operators.size()));
  for (const OperatorNode& node : job.graph.operators) {
    std::vector<double> flat;
    flat.push_back(static_cast<double>(node.id));
    flat.push_back(static_cast<double>(static_cast<int>(node.op)));
    flat.push_back(static_cast<double>(static_cast<int>(node.partitioning)));
    flat.push_back(static_cast<double>(node.stage));
    const OperatorFeatures& f = node.features;
    flat.push_back(f.output_cardinality);
    flat.push_back(f.leaf_input_cardinality);
    flat.push_back(f.children_input_cardinality);
    flat.push_back(f.average_row_length);
    flat.push_back(f.cost_subtree);
    flat.push_back(f.cost_exclusive);
    flat.push_back(f.cost_total);
    flat.push_back(static_cast<double>(f.num_partitions));
    flat.push_back(static_cast<double>(f.num_partitioning_columns));
    flat.push_back(static_cast<double>(f.num_sort_columns));
    for (int input : node.inputs) flat.push_back(static_cast<double>(input));
    writer.Vector("job.op", flat);
  }
}

constexpr size_t kOperatorHeaderFields = 14;

Job LoadJob(TextArchiveReader& reader) {
  Job job;
  int64_t template_id = 0;
  int64_t recurring = 0;
  reader.Scalar("job.id", job.id);
  reader.Scalar("job.template_id", template_id);
  reader.Scalar("job.recurring", recurring);
  reader.Scalar("job.input_scale", job.input_scale);
  reader.Scalar("job.default_tokens", job.default_tokens);
  job.template_id = static_cast<int>(template_id);
  job.recurring = recurring == 1;

  int64_t num_stages = 0;
  reader.Scalar("job.num_stages", num_stages);
  for (int64_t s = 0; reader.status().ok() && s < num_stages; ++s) {
    std::vector<double> flat;
    reader.Vector("job.stage", flat);
    if (flat.size() < 3) {
      reader.ForceError("malformed stage record");
      return job;
    }
    StageSpec stage;
    stage.id = static_cast<int>(flat[0]);
    stage.num_tasks = static_cast<int>(flat[1]);
    stage.task_duration_seconds = flat[2];
    for (size_t i = 3; i < flat.size(); ++i) {
      stage.dependencies.push_back(static_cast<int>(flat[i]));
    }
    job.plan.stages.push_back(std::move(stage));
  }

  int64_t num_operators = 0;
  reader.Scalar("job.num_operators", num_operators);
  for (int64_t n = 0; reader.status().ok() && n < num_operators; ++n) {
    std::vector<double> flat;
    reader.Vector("job.op", flat);
    if (flat.size() < kOperatorHeaderFields) {
      reader.ForceError("malformed operator record");
      return job;
    }
    OperatorNode node;
    node.id = static_cast<int>(flat[0]);
    int op = static_cast<int>(flat[1]);
    if (op < 0 || op >= static_cast<int>(kPhysicalOperatorCount)) {
      reader.ForceError("operator enum out of range");
      return job;
    }
    node.op = static_cast<PhysicalOperator>(op);
    int partitioning = static_cast<int>(flat[2]);
    if (partitioning < 0 ||
        partitioning > static_cast<int>(kPartitioningMethodCount)) {
      reader.ForceError("partitioning enum out of range");
      return job;
    }
    node.partitioning = static_cast<PartitioningMethod>(partitioning);
    node.stage = static_cast<int>(flat[3]);
    OperatorFeatures& f = node.features;
    f.output_cardinality = flat[4];
    f.leaf_input_cardinality = flat[5];
    f.children_input_cardinality = flat[6];
    f.average_row_length = flat[7];
    f.cost_subtree = flat[8];
    f.cost_exclusive = flat[9];
    f.cost_total = flat[10];
    f.num_partitions = static_cast<int>(flat[11]);
    f.num_partitioning_columns = static_cast<int>(flat[12]);
    f.num_sort_columns = static_cast<int>(flat[13]);
    for (size_t i = kOperatorHeaderFields; i < flat.size(); ++i) {
      node.inputs.push_back(static_cast<int>(flat[i]));
    }
    job.graph.operators.push_back(std::move(node));
  }
  return job;
}

}  // namespace

Status SaveWorkload(std::ostream& out,
                    const std::vector<ObservedJob>& workload) {
  TextArchiveWriter writer(out);
  writer.String("workload.format", "tasq-workload-v1");
  writer.Scalar("workload.count", static_cast<int64_t>(workload.size()));
  for (const ObservedJob& entry : workload) {
    SaveJob(writer, entry.job);
    writer.Vector("obs.skyline", entry.skyline.values());
    writer.Scalar("obs.runtime", entry.runtime_seconds);
    writer.Scalar("obs.tokens", entry.observed_tokens);
    writer.Scalar("obs.peak", entry.peak_tokens);
  }
  if (!out) return Status::Internal("stream write failed");
  return Status::Ok();
}

Status SaveWorkloadToFile(const std::string& path,
                          const std::vector<ObservedJob>& workload) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open '" + path + "'");
  return SaveWorkload(out, workload);
}

Result<std::vector<ObservedJob>> LoadWorkload(std::istream& in) {
  TextArchiveReader reader(in);
  std::string format;
  reader.String("workload.format", format);
  if (reader.status().ok() && format != "tasq-workload-v1") {
    reader.ForceError("unknown workload archive format '" + format + "'");
  }
  int64_t count = 0;
  reader.Scalar("workload.count", count);
  if (!reader.status().ok() || count < 0) return reader.status();
  std::vector<ObservedJob> workload;
  workload.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    ObservedJob entry;
    entry.job = LoadJob(reader);
    std::vector<double> skyline;
    reader.Vector("obs.skyline", skyline);
    entry.skyline = Skyline(std::move(skyline));
    reader.Scalar("obs.runtime", entry.runtime_seconds);
    reader.Scalar("obs.tokens", entry.observed_tokens);
    reader.Scalar("obs.peak", entry.peak_tokens);
    if (!reader.status().ok()) return reader.status();
    Status plan_valid = entry.job.plan.Validate();
    if (!plan_valid.ok()) return plan_valid;
    Status graph_valid = entry.job.graph.Validate();
    if (!graph_valid.ok()) return graph_valid;
    workload.push_back(std::move(entry));
  }
  return workload;
}

Result<std::vector<ObservedJob>> LoadWorkloadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return LoadWorkload(in);
}

}  // namespace tasq
