#ifndef TASQ_TASQ_REPOSITORY_H_
#define TASQ_TASQ_REPOSITORY_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "tasq/dataset.h"

namespace tasq {

/// Persistence for workloads and their observed telemetry — the stand-in
/// for the paper's job repository and data-lake layer (Figure 4: "Cosmos
/// Storage" / "Azure Data Lake Storage"). Jobs are stored with their full
/// compile-time artifact (operator graph + features), executable plan,
/// submission metadata, and the observed run (skyline, run time, tokens),
/// so a training pipeline can be replayed from disk without regenerating
/// the workload.
TASQ_NODISCARD Status SaveWorkload(std::ostream& out,
                    const std::vector<ObservedJob>& workload);
TASQ_NODISCARD Status SaveWorkloadToFile(const std::string& path,
                          const std::vector<ObservedJob>& workload);

/// Loads a workload written by SaveWorkload. Structural invariants (valid
/// plans and graphs) are re-checked on load.
TASQ_NODISCARD Result<std::vector<ObservedJob>> LoadWorkload(std::istream& in);
TASQ_NODISCARD Result<std::vector<ObservedJob>> LoadWorkloadFromFile(
    const std::string& path);

}  // namespace tasq

#endif  // TASQ_TASQ_REPOSITORY_H_
