#include "tasq/tasq.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/text_io.h"

namespace tasq {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kXgboostSs:
      return "XGBoost SS";
    case ModelKind::kXgboostPl:
      return "XGBoost PL";
    case ModelKind::kNn:
      return "NN";
    case ModelKind::kGnn:
      return "GNN";
  }
  return "Unknown";
}

struct Tasq::Impl {
  TasqOptions options;
  bool trained = false;
  std::unique_ptr<DatasetScalers> scalers;
  std::unique_ptr<PccTargetScaling> scaling;
  std::unique_ptr<XgbRuntimeModel> xgb;
  std::unique_ptr<NnPccModel> nn;
  std::unique_ptr<GnnPccModel> gnn;
  Featurizer featurizer;

  // Featurizes and standardizes one unseen job.
  Result<JobFeatures> Featurize(const JobGraph& graph) const {
    Result<JobFeatures> features = featurizer.Featurize(graph);
    if (!features.ok()) return features.status();
    scalers->job_scaler.Transform(features.value().job_vector);
    scalers->op_scaler.TransformMatrix(features.value().op_matrix);
    return features;
  }
};

Tasq::Tasq(TasqOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
}
Tasq::~Tasq() = default;
Tasq::Tasq(Tasq&&) noexcept = default;
Tasq& Tasq::operator=(Tasq&&) noexcept = default;

Status Tasq::Train(const std::vector<ObservedJob>& observed) {
  DatasetBuilder builder(impl_->options.dataset);
  Result<Dataset> built = builder.Build(observed);
  if (!built.ok()) return built.status();
  Dataset dataset = std::move(built.value());

  Result<DatasetScalers> scalers = FitScalers(dataset);
  if (!scalers.ok()) return scalers.status();
  impl_->scalers = std::make_unique<DatasetScalers>(std::move(scalers.value()));
  ApplyScalers(*impl_->scalers, dataset);

  Result<PccTargetScaling> scaling = PccTargetScaling::Fit(dataset.targets);
  if (!scaling.ok()) return scaling.status();
  impl_->scaling = std::make_unique<PccTargetScaling>(scaling.value());

  if (impl_->options.train_xgb) {
    impl_->xgb = std::make_unique<XgbRuntimeModel>(impl_->options.xgb);
    Status trained = impl_->xgb->Train(
        dataset.point_features, dataset.point_size(), dataset.job_feature_dim,
        dataset.point_tokens, dataset.point_runtimes);
    if (!trained.ok()) return trained;
  }

  PccSupervision supervision;
  supervision.targets = dataset.targets;
  supervision.observed_tokens = dataset.observed_tokens;
  supervision.observed_runtime = dataset.observed_runtime;
  bool needs_xgb_preds = (impl_->options.train_nn &&
                          impl_->options.nn.loss_form == LossForm::kLF3) ||
                         (impl_->options.train_gnn &&
                          impl_->options.gnn.loss_form == LossForm::kLF3);
  if (needs_xgb_preds) {
    if (impl_->xgb == nullptr) {
      return Status::FailedPrecondition(
          "LF3 requires the XGBoost model to be trained");
    }
    supervision.xgb_runtime.reserve(dataset.size());
    for (size_t i = 0; i < dataset.size(); ++i) {
      std::vector<double> row(
          dataset.job_features.begin() +
              static_cast<long>(i * dataset.job_feature_dim),
          dataset.job_features.begin() +
              static_cast<long>((i + 1) * dataset.job_feature_dim));
      Result<double> prediction =
          impl_->xgb->PredictRuntime(row, dataset.observed_tokens[i]);
      if (!prediction.ok()) return prediction.status();
      supervision.xgb_runtime.push_back(
          std::max(1e-3, prediction.value()));
    }
  }

  if (impl_->options.train_nn) {
    impl_->nn = std::make_unique<NnPccModel>(dataset.job_feature_dim,
                                             impl_->options.nn);
    Result<double> loss = impl_->nn->Train(dataset.job_features, supervision);
    if (!loss.ok()) return loss.status();
  }
  if (impl_->options.train_gnn) {
    impl_->gnn = std::make_unique<GnnPccModel>(dataset.op_feature_dim,
                                               impl_->options.gnn);
    Result<double> loss = impl_->gnn->Train(dataset.graphs, supervision);
    if (!loss.ok()) return loss.status();
  }
  impl_->trained = true;
  return Status::Ok();
}

Status Tasq::Save(std::ostream& out) const {
  if (!impl_->trained) {
    return Status::FailedPrecondition("cannot save an untrained pipeline");
  }
  TextArchiveWriter writer(out);
  writer.String("tasq.format", "tasq-pipeline-v1");
  impl_->scalers->job_scaler.Serialize(writer, "tasq.job_scaler");
  impl_->scalers->op_scaler.Serialize(writer, "tasq.op_scaler");
  writer.Scalar("tasq.scaling_s1", impl_->scaling->s1());
  writer.Scalar("tasq.scaling_s2", impl_->scaling->s2());
  writer.Scalar("tasq.has_xgb",
                static_cast<int64_t>(impl_->xgb != nullptr ? 1 : 0));
  writer.Scalar("tasq.has_nn",
                static_cast<int64_t>(impl_->nn != nullptr ? 1 : 0));
  writer.Scalar("tasq.has_gnn",
                static_cast<int64_t>(impl_->gnn != nullptr ? 1 : 0));
  if (impl_->xgb != nullptr) impl_->xgb->Serialize(writer);
  if (impl_->nn != nullptr) impl_->nn->Serialize(writer);
  if (impl_->gnn != nullptr) impl_->gnn->Serialize(writer);
  if (!out) return Status::Internal("stream write failed");
  return Status::Ok();
}

Status Tasq::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open '" + path + "'");
  return Save(out);
}

Result<Tasq> Tasq::Load(std::istream& in) {
  TextArchiveReader reader(in);
  std::string format;
  reader.String("tasq.format", format);
  if (reader.status().ok() && format != "tasq-pipeline-v1") {
    reader.ForceError("unknown pipeline archive format '" + format + "'");
  }
  Tasq tasq;
  FeatureScaler job_scaler = FeatureScaler::Deserialize(reader, "tasq.job_scaler");
  FeatureScaler op_scaler = FeatureScaler::Deserialize(reader, "tasq.op_scaler");
  double s1 = 0.0;
  double s2 = 0.0;
  int64_t has_xgb = 0;
  int64_t has_nn = 0;
  int64_t has_gnn = 0;
  reader.Scalar("tasq.scaling_s1", s1);
  reader.Scalar("tasq.scaling_s2", s2);
  reader.Scalar("tasq.has_xgb", has_xgb);
  reader.Scalar("tasq.has_nn", has_nn);
  reader.Scalar("tasq.has_gnn", has_gnn);
  if (!reader.status().ok()) return reader.status();
  if (s1 <= 0.0 || s2 <= 0.0) {
    return Status::InvalidArgument("pipeline scaling must be positive");
  }
  tasq.impl_->scalers = std::make_unique<DatasetScalers>(
      DatasetScalers{std::move(job_scaler), std::move(op_scaler)});
  tasq.impl_->scaling = std::make_unique<PccTargetScaling>(s1, s2);
  if (has_xgb == 1) {
    tasq.impl_->xgb =
        std::make_unique<XgbRuntimeModel>(XgbRuntimeModel::Deserialize(reader));
  }
  if (has_nn == 1) {
    tasq.impl_->nn = std::make_unique<NnPccModel>(NnPccModel::Deserialize(reader));
  }
  if (has_gnn == 1) {
    tasq.impl_->gnn = std::make_unique<GnnPccModel>(GnnPccModel::Deserialize(reader));
  }
  if (!reader.status().ok()) return reader.status();
  tasq.impl_->options.train_xgb = has_xgb == 1;
  tasq.impl_->options.train_nn = has_nn == 1;
  tasq.impl_->options.train_gnn = has_gnn == 1;
  tasq.impl_->trained = true;
  return tasq;
}

Result<Tasq> Tasq::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return Load(in);
}

bool Tasq::trained() const { return impl_->trained; }
const PccTargetScaling* Tasq::target_scaling() const {
  return impl_->scaling.get();
}
const XgbRuntimeModel* Tasq::xgb() const { return impl_->xgb.get(); }
const NnPccModel* Tasq::nn() const { return impl_->nn.get(); }
const GnnPccModel* Tasq::gnn() const { return impl_->gnn.get(); }
const DatasetScalers* Tasq::scalers() const { return impl_->scalers.get(); }

Result<PowerLawPcc> Tasq::PredictPcc(const JobGraph& graph, ModelKind kind,
                                     double reference_tokens) const {
  if (!impl_->trained) {
    return Status::FailedPrecondition("pipeline has not been trained");
  }
  Result<JobFeatures> features = impl_->Featurize(graph);
  if (!features.ok()) return features.status();
  switch (kind) {
    case ModelKind::kXgboostSs:
      return Status::InvalidArgument(
          "XGBoost SS has no parametric PCC; use PredictCurve");
    case ModelKind::kXgboostPl:
      if (impl_->xgb == nullptr) {
        return Status::FailedPrecondition("XGBoost model was not trained");
      }
      return impl_->xgb->PredictPowerLawPcc(features.value().job_vector,
                                            reference_tokens);
    case ModelKind::kNn:
      if (impl_->nn == nullptr) {
        return Status::FailedPrecondition("NN model was not trained");
      }
      return impl_->nn->Predict(features.value().job_vector);
    case ModelKind::kGnn: {
      if (impl_->gnn == nullptr) {
        return Status::FailedPrecondition("GNN model was not trained");
      }
      GraphExample example;
      example.num_nodes = features.value().num_operators;
      example.node_features = std::move(features.value().op_matrix);
      example.norm_adjacency = std::move(features.value().norm_adjacency);
      return impl_->gnn->Predict(example);
    }
  }
  return Status::Internal("unknown model kind");
}

Result<std::vector<PccSample>> Tasq::PredictCurve(
    const JobGraph& graph, ModelKind kind, double reference_tokens,
    const std::vector<double>& token_grid) const {
  if (!impl_->trained) {
    return Status::FailedPrecondition("pipeline has not been trained");
  }
  if (token_grid.empty()) {
    return Status::InvalidArgument("token grid is empty");
  }
  if (kind == ModelKind::kXgboostSs) {
    if (impl_->xgb == nullptr) {
      return Status::FailedPrecondition("XGBoost model was not trained");
    }
    Result<JobFeatures> features = impl_->Featurize(graph);
    if (!features.ok()) return features.status();
    // Smooth over the model's reference window, then evaluate at the grid
    // by fitting the spline directly to the smoothed knots.
    Result<std::vector<PccSample>> smoothed = impl_->xgb->PredictSmoothedCurve(
        features.value().job_vector, reference_tokens);
    if (!smoothed.ok()) return smoothed.status();
    std::vector<double> x;
    std::vector<double> y;
    for (const PccSample& s : smoothed.value()) {
      x.push_back(s.tokens);
      y.push_back(s.runtime_seconds);
    }
    Result<SmoothingSpline> spline = SmoothingSpline::Fit(x, y, 0.0);
    if (!spline.ok()) return spline.status();
    std::vector<PccSample> out;
    out.reserve(token_grid.size());
    for (double tokens : token_grid) {
      out.push_back({tokens, spline.value().Eval(tokens)});
    }
    return out;
  }
  Result<PowerLawPcc> pcc = PredictPcc(graph, kind, reference_tokens);
  if (!pcc.ok()) return pcc.status();
  std::vector<PccSample> out;
  out.reserve(token_grid.size());
  for (double tokens : token_grid) {
    if (tokens <= 0.0) {
      return Status::InvalidArgument("token grid entries must be positive");
    }
    out.push_back({tokens, pcc.value().EvalRunTime(tokens)});
  }
  return out;
}

Result<double> Tasq::PredictRuntime(const JobGraph& graph, ModelKind kind,
                                    double reference_tokens,
                                    double tokens) const {
  Result<std::vector<PccSample>> curve =
      PredictCurve(graph, kind, reference_tokens, {tokens});
  if (!curve.ok()) return curve.status();
  return curve.value()[0].runtime_seconds;
}

Result<TokenRecommendation> Tasq::RecommendTokens(
    const JobGraph& graph, ModelKind kind, double reference_tokens,
    double min_improvement_percent, double max_slowdown_fraction) const {
  if (kind == ModelKind::kXgboostSs) {
    // No parametric curve: run the discrete diminishing-returns walk over
    // the smoothed curve sampled down to 20% of the reference.
    double lo = std::max(1.0, reference_tokens * 0.2);
    std::vector<double> grid;
    for (int i = 0; i < 17; ++i) {
      grid.push_back(lo + (reference_tokens - lo) * i / 16.0);
    }
    Result<std::vector<PccSample>> curve =
        PredictCurve(graph, kind, reference_tokens, grid);
    if (!curve.ok()) return curve.status();
    Result<double> tokens =
        OptimalTokensFromSamples(curve.value(), min_improvement_percent);
    if (!tokens.ok()) return tokens.status();
    double chosen = tokens.value();
    if (max_slowdown_fraction >= 0.0) {
      // Descend the sampled curve (sorted ascending in tokens) from the
      // reference: the smallest allocation that still clears the marginal
      // threshold AND keeps runtime within the user's slowdown bound wins;
      // the first violation stops the walk.
      double allowed = curve.value().back().runtime_seconds *
                       (1.0 + max_slowdown_fraction);
      double best = reference_tokens;
      for (auto it = curve.value().rbegin(); it != curve.value().rend();
           ++it) {
        if (it->runtime_seconds > allowed || it->tokens + 1e-9 < chosen) {
          break;
        }
        best = it->tokens;
      }
      chosen = best;
    }
    TokenRecommendation recommendation;
    recommendation.tokens = std::round(chosen);
    Result<double> at_recommended = PredictRuntime(
        graph, kind, reference_tokens, recommendation.tokens);
    Result<double> at_reference =
        PredictRuntime(graph, kind, reference_tokens, reference_tokens);
    if (!at_recommended.ok()) return at_recommended.status();
    if (!at_reference.ok()) return at_reference.status();
    recommendation.predicted_runtime_seconds = at_recommended.value();
    recommendation.predicted_slowdown =
        at_reference.value() > 0.0
            ? at_recommended.value() / at_reference.value() - 1.0
            : 0.0;
    return recommendation;
  }
  Result<PowerLawPcc> pcc = PredictPcc(graph, kind, reference_tokens);
  if (!pcc.ok()) return pcc.status();
  return RecommendFromPowerLaw(pcc.value(), reference_tokens,
                               min_improvement_percent, max_slowdown_fraction);
}

TokenRecommendation RecommendFromPowerLaw(const PowerLawPcc& pcc,
                                          double reference_tokens,
                                          double min_improvement_percent,
                                          double max_slowdown_fraction) {
  TokenRecommendation recommendation;
  double optimal = pcc.OptimalTokens(min_improvement_percent, reference_tokens);
  if (max_slowdown_fraction >= 0.0) {
    optimal = std::max(optimal, pcc.MinTokensForSlowdown(
                                    reference_tokens, max_slowdown_fraction));
  }
  recommendation.tokens = std::round(optimal);
  recommendation.predicted_runtime_seconds =
      pcc.EvalRunTime(recommendation.tokens);
  double reference_runtime = pcc.EvalRunTime(reference_tokens);
  recommendation.predicted_slowdown =
      reference_runtime > 0.0
          ? recommendation.predicted_runtime_seconds / reference_runtime - 1.0
          : 0.0;
  return recommendation;
}

Result<std::vector<PowerLawPcc>> Tasq::PredictPccBatch(
    const std::vector<const JobGraph*>& graphs, ModelKind kind,
    const std::vector<double>& reference_tokens) const {
  if (!impl_->trained) {
    return Status::FailedPrecondition("pipeline has not been trained");
  }
  if (graphs.size() != reference_tokens.size()) {
    return Status::InvalidArgument(
        "graphs and reference_tokens must align element-wise");
  }
  std::vector<PowerLawPcc> out(graphs.size());
  TasqBatchScratch scratch;
  Status status = PredictPccBatchInto(graphs.data(), graphs.size(), kind,
                                      reference_tokens.data(), scratch,
                                      out.data());
  if (!status.ok()) return status;
  return out;
}

Status Tasq::PredictPccBatchInto(const JobGraph* const* graphs, size_t count,
                                 ModelKind kind,
                                 const double* reference_tokens,
                                 TasqBatchScratch& scratch,
                                 PowerLawPcc* out) const {
  if (!impl_->trained) {
    return Status::FailedPrecondition("pipeline has not been trained");
  }
  if (kind == ModelKind::kXgboostSs) {
    return Status::InvalidArgument(
        "XGBoost SS has no parametric PCC; use PredictCurve");
  }
  if (kind == ModelKind::kNn) {
    if (impl_->nn == nullptr) {
      return Status::FailedPrecondition("NN model was not trained");
    }
    if (count == 0) return Status::Ok();
    constexpr size_t dim = Featurizer::kJobFeatureDim;
    if (impl_->nn->input_dim() != dim) {
      return Status::InvalidArgument("feature matrix size mismatch");
    }
    // One forward pass over the stacked feature rows. Row i of a batched
    // matrix product accumulates in exactly the per-row order, so results
    // are bit-identical to per-graph prediction. Featurization goes
    // through the allocation-free JobLevelInto/TransformRow pair straight
    // into the reused scratch matrix.
    scratch.rows.resize(count * dim);
    for (size_t i = 0; i < count; ++i) {
      if (graphs[i] == nullptr) {
        return Status::InvalidArgument("null graph in batch");
      }
      double* row = scratch.rows.data() + i * dim;
      Status featurized = impl_->featurizer.JobLevelInto(*graphs[i], row);
      if (!featurized.ok()) return featurized;
      impl_->scalers->job_scaler.TransformRow(row, dim);
    }
    return impl_->nn->PredictBatchInto(scratch.rows.data(), count,
                                       scratch.nn, out);
  }
  for (size_t i = 0; i < count; ++i) {
    if (graphs[i] == nullptr) {
      return Status::InvalidArgument("null graph in batch");
    }
    Result<PowerLawPcc> pcc =
        PredictPcc(*graphs[i], kind, reference_tokens[i]);
    if (!pcc.ok()) return pcc.status();
    out[i] = pcc.value();
  }
  return Status::Ok();
}

}  // namespace tasq
