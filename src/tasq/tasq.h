#ifndef TASQ_TASQ_TASQ_H_
#define TASQ_TASQ_TASQ_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "gbdt/xgb_pcc.h"
#include "gnn/gnn_model.h"
#include "nn/nn_model.h"
#include "tasq/dataset.h"

namespace tasq {

/// The model families TASQ trains and serves (paper §4.4).
enum class ModelKind {
  /// XGBoost point predictions smoothed with a cubic spline.
  kXgboostSs,
  /// XGBoost point predictions refit as a power law.
  kXgboostPl,
  /// Feed-forward network predicting the PCC parameters.
  kNn,
  /// Graph network predicting the PCC parameters.
  kGnn,
};

/// Number of ModelKind values; bounds per-kind arrays (serve/server.cc
/// groups batch requests by kind). Keep in sync with the enum above.
inline constexpr size_t kModelKindCount = 4;
static_assert(static_cast<size_t>(ModelKind::kGnn) + 1 == kModelKindCount,
              "kModelKindCount must cover every ModelKind");

/// Short display name ("XGBoost SS", "NN", ...).
const char* ModelKindName(ModelKind kind);

/// End-to-end configuration of the TASQ pipeline.
struct TasqOptions {
  DatasetOptions dataset;
  XgbPccOptions xgb;
  NnOptions nn;
  GnnOptions gnn;
  bool train_xgb = true;
  bool train_nn = true;
  bool train_gnn = true;
};

/// A token recommendation with its predicted performance impact.
struct TokenRecommendation {
  double tokens = 0.0;
  double predicted_runtime_seconds = 0.0;
  /// Predicted slowdown vs the reference allocation
  /// (runtime(tokens)/runtime(reference) - 1).
  double predicted_slowdown = 0.0;
};

/// Reusable buffers for Tasq::PredictPccBatchInto: the standardized
/// feature-row matrix plus the NN's activation scratch. A serving worker
/// keeps one per drain loop; once warm, batch prediction allocates no
/// heap memory at all (features go through Featurizer::JobLevelInto's
/// stack row into `rows`, whose capacity persists across batches).
struct TasqBatchScratch {
  std::vector<double> rows;
  NnPccModel::InferenceScratch nn;
};

/// TASQ: the end-to-end pipeline (paper §2.2). Training ingests observed
/// jobs, augments them with AREPAS, fits power-law targets, and trains the
/// configured models; scoring featurizes an unseen job's compile-time graph
/// and predicts its PCC / optimal token count.
///
/// Thread-safety contract: once trained (or loaded), a Tasq is immutable —
/// every const scoring method (PredictPcc / PredictPccBatch / PredictCurve
/// / PredictRuntime / RecommendTokens, and BuildWhatIfReport on top of
/// them) touches no mutable or lazily-initialized state and is safe to
/// call from any number of threads concurrently on the same instance. The
/// serving layer (serve/server.h) relies on this to share one pipeline
/// across its worker pool. Train / Save / Load and moves are NOT safe to
/// run concurrently with scoring.
class Tasq {
 public:
  explicit Tasq(TasqOptions options = {});
  ~Tasq();
  Tasq(Tasq&&) noexcept;
  Tasq& operator=(Tasq&&) noexcept;

  /// Trains all configured models from observed historical jobs.
  TASQ_NODISCARD Status Train(const std::vector<ObservedJob>& observed);

  /// Predicts the PCC of an unseen job from its compile-time graph.
  /// `reference_tokens` is the submitted/default token count — required for
  /// the XGBoost variants, whose curves are local to a reference window.
  /// XGBoost-SS has no parametric form, so only sampled-curve prediction is
  /// offered for it (see PredictCurve).
  TASQ_NODISCARD Result<PowerLawPcc> PredictPcc(const JobGraph& graph, ModelKind kind,
                                 double reference_tokens) const;

  /// Batch PCC prediction for the parametric model kinds: entry i of the
  /// result corresponds to graphs[i] / reference_tokens[i]. Predictions
  /// are bit-identical to calling PredictPcc per graph; the NN additionally
  /// runs the whole batch through a single forward pass, which is what the
  /// serving layer batches for. Fails for XGBoost-SS (no parametric form)
  /// and on the first graph that fails to featurize.
  TASQ_NODISCARD Result<std::vector<PowerLawPcc>> PredictPccBatch(
      const std::vector<const JobGraph*>& graphs, ModelKind kind,
      const std::vector<double>& reference_tokens) const;

  /// PredictPccBatch into caller storage: out[i] corresponds to
  /// graphs[i] / reference_tokens[i] (each of length `count`).
  /// Bit-identical to PredictPccBatch (which delegates here), but reuses
  /// `scratch` so a serving loop that recycles one scratch performs the
  /// whole featurize-and-predict NN path without heap allocation once
  /// warm — the cold-submit-path budget in BENCH_serving.json rests on
  /// this.
  TASQ_NODISCARD Status PredictPccBatchInto(const JobGraph* const* graphs,
                                            size_t count, ModelKind kind,
                                            const double* reference_tokens,
                                            TasqBatchScratch& scratch,
                                            PowerLawPcc* out) const;

  /// Samples the predicted PCC at the given token counts (works for all
  /// four model kinds, including XGBoost-SS).
  TASQ_NODISCARD Result<std::vector<PccSample>> PredictCurve(
      const JobGraph& graph, ModelKind kind, double reference_tokens,
      const std::vector<double>& token_grid) const;

  /// Point prediction of run time at `tokens`.
  TASQ_NODISCARD Result<double> PredictRuntime(const JobGraph& graph, ModelKind kind,
                                double reference_tokens, double tokens) const;

  /// Recommends the minimum token count whose marginal benefit stays above
  /// `min_improvement_percent` per token (paper §2.1), never exceeding
  /// `reference_tokens`. When `max_slowdown_fraction` is non-negative, the
  /// recommendation additionally honors the user's performance constraint:
  /// the predicted run time never exceeds (1 + max_slowdown_fraction) times
  /// the predicted run time at the reference allocation.
  TASQ_NODISCARD Result<TokenRecommendation> RecommendTokens(
      const JobGraph& graph, ModelKind kind, double reference_tokens,
      double min_improvement_percent = 1.0,
      double max_slowdown_fraction = -1.0) const;

  /// Serializes the whole trained pipeline — feature scalers, target
  /// scaling, and every trained model — as a single text artifact, the
  /// stand-in for the paper's model store (Figure 4). Fails before
  /// training.
  TASQ_NODISCARD Status Save(std::ostream& out) const;
  TASQ_NODISCARD Status SaveToFile(const std::string& path) const;

  /// Reconstructs a pipeline written by Save. The loaded pipeline scores
  /// immediately (PredictPcc / RecommendTokens) without retraining.
  TASQ_NODISCARD static Result<Tasq> Load(std::istream& in);
  TASQ_NODISCARD static Result<Tasq> LoadFromFile(const std::string& path);

  bool trained() const;
  /// The target scaling fitted at training time (shared metric space for
  /// curve-parameter errors). Null before training.
  const PccTargetScaling* target_scaling() const;
  const XgbRuntimeModel* xgb() const;
  const NnPccModel* nn() const;
  const GnnPccModel* gnn() const;
  const DatasetScalers* scalers() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Derives the token recommendation implied by an already-predicted
/// power-law PCC — the pure-math tail of RecommendTokens for parametric
/// models, exposed so callers holding a predicted (or cached) PCC can
/// recompute recommendations without another model inference. Identical to
/// RecommendTokens given the same PCC.
TokenRecommendation RecommendFromPowerLaw(const PowerLawPcc& pcc,
                                          double reference_tokens,
                                          double min_improvement_percent,
                                          double max_slowdown_fraction);

}  // namespace tasq

#endif  // TASQ_TASQ_TASQ_H_
