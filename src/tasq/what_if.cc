#include "tasq/what_if.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "pcc/pcc.h"

namespace tasq {
namespace {

WhatIfPoint MakePoint(double tokens, double runtime, double reference_tokens,
                      double reference_runtime) {
  WhatIfPoint point;
  point.tokens = tokens;
  point.predicted_runtime_seconds = runtime;
  point.predicted_slowdown =
      reference_runtime > 0.0 ? runtime / reference_runtime - 1.0 : 0.0;
  point.token_savings_fraction =
      reference_tokens > 0.0 ? 1.0 - tokens / reference_tokens : 0.0;
  return point;
}

/// The sampling grid every report uses: `points` counts evenly spaced from
/// 20% of the reference (floored at 1 token) up to the reference itself.
std::vector<double> ReportGrid(double reference_tokens, size_t points) {
  double lo = std::max(1.0, reference_tokens * 0.2);
  std::vector<double> grid;
  grid.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    grid.push_back(lo + (reference_tokens - lo) * static_cast<double>(i) /
                            static_cast<double>(points - 1));
  }
  return grid;
}

}  // namespace

Result<WhatIfReport> BuildWhatIfReport(const Tasq& tasq, const JobGraph& graph,
                                       ModelKind model,
                                       double reference_tokens,
                                       size_t grid_points) {
  if (reference_tokens < 1.0) {
    return Status::InvalidArgument("reference tokens must be at least 1");
  }
  grid_points = std::max<size_t>(3, grid_points);

  if (model != ModelKind::kXgboostSs) {
    // Parametric models: one inference, then pure math. This is also the
    // path the serving layer replays from its cache and batches.
    Result<PowerLawPcc> pcc = tasq.PredictPcc(graph, model, reference_tokens);
    if (!pcc.ok()) return pcc.status();
    return BuildWhatIfReportFromPcc(pcc.value(), model, reference_tokens,
                                    grid_points);
  }

  // XGBoost-SS: no parametric form, so the curve and both recommendations
  // each come from the smoothed point-prediction path.
  WhatIfReport report;
  report.model = model;
  report.reference_tokens = reference_tokens;
  std::vector<double> grid = ReportGrid(reference_tokens, grid_points);
  Result<std::vector<PccSample>> curve =
      tasq.PredictCurve(graph, model, reference_tokens, grid);
  if (!curve.ok()) return curve.status();
  double reference_runtime = curve.value().back().runtime_seconds;
  for (const PccSample& sample : curve.value()) {
    report.curve.push_back(MakePoint(sample.tokens, sample.runtime_seconds,
                                     reference_tokens, reference_runtime));
  }
  Result<double> elbow = FindElbowTokens(curve.value());
  if (elbow.ok()) report.elbow_tokens = elbow.value();

  auto fill_recommendation = [&](double slo, WhatIfPoint& out) -> Status {
    Result<TokenRecommendation> recommendation =
        tasq.RecommendTokens(graph, model, reference_tokens, 1.0, slo);
    if (!recommendation.ok()) return recommendation.status();
    out = MakePoint(recommendation.value().tokens,
                    recommendation.value().predicted_runtime_seconds,
                    reference_tokens, reference_runtime);
    // Slowdown comes from the recommendation's own curve evaluation.
    out.predicted_slowdown = recommendation.value().predicted_slowdown;
    return Status::Ok();
  };
  Status aggressive = fill_recommendation(-1.0, report.aggressive);
  if (!aggressive.ok()) return aggressive;
  Status bounded = fill_recommendation(0.10, report.bounded);
  if (!bounded.ok()) return bounded;
  return report;
}

Result<WhatIfReport> BuildWhatIfReportFromPcc(const PowerLawPcc& pcc,
                                              ModelKind model,
                                              double reference_tokens,
                                              size_t grid_points) {
  if (model == ModelKind::kXgboostSs) {
    return Status::InvalidArgument(
        "XGBoost SS has no parametric PCC; use BuildWhatIfReport");
  }
  if (reference_tokens < 1.0) {
    return Status::InvalidArgument("reference tokens must be at least 1");
  }
  grid_points = std::max<size_t>(3, grid_points);
  WhatIfReport report;
  report.model = model;
  report.reference_tokens = reference_tokens;
  report.pcc = pcc;
  report.has_pcc = true;

  std::vector<PccSample> curve;
  curve.reserve(grid_points);
  for (double tokens : ReportGrid(reference_tokens, grid_points)) {
    curve.push_back({tokens, pcc.EvalRunTime(tokens)});
  }
  double reference_runtime = curve.back().runtime_seconds;
  report.curve.reserve(curve.size());
  for (const PccSample& sample : curve) {
    report.curve.push_back(MakePoint(sample.tokens, sample.runtime_seconds,
                                     reference_tokens, reference_runtime));
  }
  Result<double> elbow = FindElbowTokens(curve);
  if (elbow.ok()) report.elbow_tokens = elbow.value();

  auto fill_recommendation = [&](double slo, WhatIfPoint& out) {
    TokenRecommendation recommendation =
        RecommendFromPowerLaw(pcc, reference_tokens, 1.0, slo);
    out = MakePoint(recommendation.tokens,
                    recommendation.predicted_runtime_seconds,
                    reference_tokens, reference_runtime);
    out.predicted_slowdown = recommendation.predicted_slowdown;
  };
  fill_recommendation(-1.0, report.aggressive);
  fill_recommendation(0.10, report.bounded);
  return report;
}

std::string WhatIfReport::ToText() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "What-if report (%s), reference %.0f tokens\n",
                ModelKindName(model), reference_tokens);
  out += line;
  if (has_pcc) {
    std::snprintf(line, sizeof(line),
                  "predicted PCC: runtime = %.1f * tokens^(%.3f)\n", pcc.b,
                  pcc.a);
    out += line;
  }
  out += "  tokens  runtime(s)  slowdown  token savings\n";
  for (const WhatIfPoint& point : curve) {
    std::snprintf(line, sizeof(line), "  %6.0f  %10.0f  %+7.1f%%  %12.0f%%\n",
                  point.tokens, point.predicted_runtime_seconds,
                  100.0 * point.predicted_slowdown,
                  100.0 * point.token_savings_fraction);
    out += line;
  }
  if (elbow_tokens > 0.0) {
    std::snprintf(line, sizeof(line), "elbow: ~%.0f tokens\n", elbow_tokens);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "aggressive (1%%/token): %.0f tokens (%+.1f%% runtime)\n",
                aggressive.tokens, 100.0 * aggressive.predicted_slowdown);
  out += line;
  std::snprintf(line, sizeof(line),
                "bounded (<=10%% SLO):   %.0f tokens (%+.1f%% runtime)\n",
                bounded.tokens, 100.0 * bounded.predicted_slowdown);
  out += line;
  return out;
}

}  // namespace tasq
