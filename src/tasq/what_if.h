#ifndef TASQ_TASQ_WHAT_IF_H_
#define TASQ_TASQ_WHAT_IF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tasq/tasq.h"

namespace tasq {

/// One candidate operating point in a what-if report.
struct WhatIfPoint {
  double tokens = 0.0;
  double predicted_runtime_seconds = 0.0;
  /// Slowdown vs the reference allocation (>= 0 for monotone curves).
  double predicted_slowdown = 0.0;
  /// Token savings vs the reference allocation, in [0, 1).
  double token_savings_fraction = 0.0;
};

/// The user-facing what-if analysis of paper §2.2: instead of silently
/// applying an allocation, TASQ "displays the PCC to the users for them to
/// understand the performance-resource trade-off and to make an informed
/// decision". A report bundles the predicted curve, its elbow, and
/// recommendations at several policy settings.
struct WhatIfReport {
  ModelKind model = ModelKind::kNn;
  double reference_tokens = 0.0;
  /// Predicted PCC parameters (only for parametric models).
  PowerLawPcc pcc;
  bool has_pcc = false;
  /// The predicted curve sampled from 20% of the reference up to it.
  std::vector<WhatIfPoint> curve;
  /// Elbow of the predicted curve, 0 when none is detected.
  double elbow_tokens = 0.0;
  /// Recommendation at the 1%-per-token bar, unbounded.
  WhatIfPoint aggressive;
  /// Recommendation at the 1%-per-token bar with a 10% slowdown SLO.
  WhatIfPoint bounded;

  /// Renders the report as a human-readable text block.
  std::string ToText() const;
};

/// Builds a what-if report for an unseen job from a trained pipeline.
/// `grid_points` controls curve resolution (>= 3). For parametric models
/// the job is featurized and scored exactly once; the curve, elbow, and
/// both recommendations all derive from that single predicted PCC.
TASQ_NODISCARD Result<WhatIfReport> BuildWhatIfReport(const Tasq& tasq, const JobGraph& graph,
                                       ModelKind model,
                                       double reference_tokens,
                                       size_t grid_points = 9);

/// Derives the full report from an already-predicted parametric PCC
/// without touching the pipeline — the pure-math tail of
/// BuildWhatIfReport, exposed for callers that batch or cache model
/// inference (serve/server.h). Byte-identical to BuildWhatIfReport given
/// the PCC it would predict. Fails for XGBoost-SS, which has no
/// parametric form.
TASQ_NODISCARD Result<WhatIfReport> BuildWhatIfReportFromPcc(const PowerLawPcc& pcc,
                                              ModelKind model,
                                              double reference_tokens,
                                              size_t grid_points = 9);

}  // namespace tasq

#endif  // TASQ_TASQ_WHAT_IF_H_
