#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/fmath.h"

namespace tasq {
namespace {

// Returns a log-normal draw with the given median and log-sigma.
double LogNormalMedian(Rng& rng, double median, double log_sigma) {
  return rng.LogNormal(CheckedLog(median), log_sigma);
}

// Multiplicative estimate noise with mean ~1.
double EstimateNoise(Rng& rng, double sigma) {
  if (sigma <= 0.0) return 1.0;
  return rng.LogNormal(-sigma * sigma / 2.0, sigma);
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config) {
  Rng root(config_.seed);
  templates_.reserve(static_cast<size_t>(config_.num_templates));
  for (int t = 0; t < config_.num_templates; ++t) {
    templates_.push_back(MakeTemplate(root.Fork(static_cast<uint64_t>(t))));
  }
}

WorkloadGenerator::TemplateSpec WorkloadGenerator::MakeTemplate(
    Rng rng) const {
  TemplateSpec spec;
  spec.archetype = static_cast<JobArchetype>(
      rng.UniformInt(0, kJobArchetypeCount - 1));
  spec.parallelism_base = std::clamp(
      LogNormalMedian(rng, config_.tokens_median, config_.tokens_log_sigma),
      2.0, static_cast<double>(config_.max_stage_width));
  spec.task_seconds_base = std::clamp(
      LogNormalMedian(rng, config_.task_seconds_median,
                      config_.task_seconds_log_sigma),
      2.0, 300.0);

  int num_stages = 0;
  switch (spec.archetype) {
    case JobArchetype::kPeaky:
      num_stages = static_cast<int>(rng.UniformInt(4, 8));
      break;
    case JobArchetype::kFlat:
      num_stages = static_cast<int>(rng.UniformInt(3, 7));
      break;
    case JobArchetype::kMixed:
      num_stages = static_cast<int>(rng.UniformInt(4, 10));
      break;
    case JobArchetype::kDeepPipeline:
      num_stages = static_cast<int>(rng.UniformInt(8, 14));
      break;
    case JobArchetype::kUnionFan:
      num_stages = static_cast<int>(rng.UniformInt(5, 9));
      break;
  }

  spec.width_scales.resize(static_cast<size_t>(num_stages), 0.0);
  switch (spec.archetype) {
    case JobArchetype::kPeaky: {
      for (double& w : spec.width_scales) w = rng.Uniform(0.04, 0.2);
      int peaks = static_cast<int>(rng.UniformInt(1, 2));
      for (int p = 0; p < peaks; ++p) {
        spec.width_scales[static_cast<size_t>(
            rng.UniformInt(0, num_stages - 1))] = 1.0;
      }
      break;
    }
    case JobArchetype::kFlat:
      for (double& w : spec.width_scales) w = rng.Uniform(0.6, 1.0);
      break;
    case JobArchetype::kMixed:
      for (double& w : spec.width_scales) w = rng.Uniform(0.1, 1.0);
      break;
    case JobArchetype::kDeepPipeline:
      for (double& w : spec.width_scales) w = rng.Uniform(0.15, 0.5);
      break;
    case JobArchetype::kUnionFan: {
      for (double& w : spec.width_scales) w = rng.Uniform(0.3, 0.8);
      // Merge stage is the widest, final write-out narrower.
      spec.width_scales[static_cast<size_t>(num_stages - 2)] = 1.0;
      spec.width_scales[static_cast<size_t>(num_stages - 1)] = 0.3;
      break;
    }
  }
  spec.duration_scales.resize(static_cast<size_t>(num_stages));
  for (double& d : spec.duration_scales) {
    d = rng.LogNormal(0.0, 0.4);
  }

  // Dependencies. Stages are topologically ordered by id.
  spec.deps.assign(static_cast<size_t>(num_stages), {});
  if (spec.archetype == JobArchetype::kUnionFan) {
    int branches = num_stages - 2;
    for (int b = 0; b < branches; ++b) spec.deps[static_cast<size_t>(b)] = {};
    for (int b = 0; b < branches; ++b) {
      spec.deps[static_cast<size_t>(num_stages - 2)].push_back(b);
    }
    spec.deps[static_cast<size_t>(num_stages - 1)] = {num_stages - 2};
  } else {
    for (int i = 1; i < num_stages; ++i) {
      bool new_branch = (spec.archetype == JobArchetype::kPeaky ||
                         spec.archetype == JobArchetype::kMixed) &&
                        i + 1 < num_stages && rng.Bernoulli(0.15);
      if (new_branch) continue;  // A fresh input branch with no deps.
      if (spec.archetype == JobArchetype::kDeepPipeline ||
          rng.Bernoulli(0.75)) {
        spec.deps[static_cast<size_t>(i)].push_back(i - 1);
      } else {
        spec.deps[static_cast<size_t>(i)].push_back(
            static_cast<int>(rng.UniformInt(0, i - 1)));
      }
      if (spec.archetype != JobArchetype::kDeepPipeline && i >= 2 &&
          rng.Bernoulli(0.2)) {
        int extra = static_cast<int>(rng.UniformInt(0, i - 1));
        auto& deps = spec.deps[static_cast<size_t>(i)];
        if (std::find(deps.begin(), deps.end(), extra) == deps.end()) {
          deps.push_back(extra);
        }
      }
    }
  }
  // Route every sink into the last stage so the plan has a single output.
  std::vector<bool> has_dependent(static_cast<size_t>(num_stages), false);
  for (int i = 0; i < num_stages; ++i) {
    for (int dep : spec.deps[static_cast<size_t>(i)]) {
      has_dependent[static_cast<size_t>(dep)] = true;
    }
  }
  auto& last_deps = spec.deps[static_cast<size_t>(num_stages - 1)];
  for (int i = 0; i + 1 < num_stages; ++i) {
    if (!has_dependent[static_cast<size_t>(i)] &&
        std::find(last_deps.begin(), last_deps.end(), i) == last_deps.end()) {
      last_deps.push_back(i);
    }
  }
  std::sort(last_deps.begin(), last_deps.end());
  return spec;
}

std::vector<Job> WorkloadGenerator::Generate(int64_t first_id,
                                             int64_t count) const {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    jobs.push_back(GenerateJob(first_id + i));
  }
  return jobs;
}

Job WorkloadGenerator::GenerateJob(int64_t job_id) const {
  // Per-job stream independent of every other job.
  Rng rng = Rng(config_.seed).Fork(0x10000000ULL + static_cast<uint64_t>(job_id));
  bool recurring = rng.Bernoulli(config_.recurring_fraction) &&
                   !templates_.empty();
  double global = std::max(1e-3, config_.global_input_scale);
  if (recurring) {
    int template_id =
        static_cast<int>(rng.UniformInt(0, config_.num_templates - 1));
    double drift = rng.LogNormal(0.0, config_.recurrence_drift_sigma);
    return InstantiateJob(job_id, templates_[static_cast<size_t>(template_id)],
                          template_id, true, drift * global, rng.Fork(1));
  }
  TemplateSpec adhoc = MakeTemplate(rng.Fork(2));
  return InstantiateJob(job_id, adhoc, -1, false, global, rng.Fork(3));
}

Job WorkloadGenerator::InstantiateJob(int64_t job_id,
                                      const TemplateSpec& spec,
                                      int template_id, bool recurring,
                                      double input_scale, Rng rng) const {
  Job job;
  job.id = job_id;
  job.template_id = template_id;
  job.recurring = recurring;
  job.input_scale = input_scale;

  int num_stages = static_cast<int>(spec.width_scales.size());
  job.plan.stages.reserve(static_cast<size_t>(num_stages));
  int max_width = 1;
  for (int s = 0; s < num_stages; ++s) {
    StageSpec stage;
    stage.id = s;
    stage.dependencies = spec.deps[static_cast<size_t>(s)];
    // Input growth mostly widens stages and mildly lengthens tasks.
    double width = spec.parallelism_base * spec.width_scales[static_cast<size_t>(s)] *
                   CheckedPow(input_scale, 0.7) * rng.Uniform(0.9, 1.1);
    stage.num_tasks = std::clamp(static_cast<int>(std::lround(width)), 1,
                                 config_.max_stage_width);
    double duration = spec.task_seconds_base *
                      spec.duration_scales[static_cast<size_t>(s)] *
                      CheckedPow(input_scale, 0.3) *
                      std::max(1e-3, config_.seconds_per_cost_unit);
    stage.task_duration_seconds = std::clamp(duration, 1.0, 600.0);
    max_width = std::max(max_width, stage.num_tasks);
    job.plan.stages.push_back(std::move(stage));
  }
  job.default_tokens = std::max(
      1.0, std::round(static_cast<double>(max_width) *
                      rng.Uniform(config_.overprovision_lo,
                                  config_.overprovision_hi)));

  // ---- Operator DAG with Table-1 features, derived from the stage plan ---
  double rows_per_token_second = rng.LogNormal(CheckedLog(2.0e4), 0.8);
  double row_length_base = rng.Uniform(30.0, 300.0);

  JobGraph& graph = job.graph;
  std::vector<int> stage_last_op(static_cast<size_t>(num_stages), -1);
  // Per-operator bookkeeping for subtree aggregation.
  std::vector<double> leaf_input;   // Rows read by leaves under the subtree.
  std::vector<double> subtree_cost;

  auto add_op = [&](PhysicalOperator op, int stage,
                    std::vector<int> inputs) -> int {
    OperatorNode node;
    node.id = static_cast<int>(graph.operators.size());
    node.op = op;
    node.stage = stage;
    node.inputs = std::move(inputs);
    graph.operators.push_back(std::move(node));
    leaf_input.push_back(0.0);
    subtree_cost.push_back(0.0);
    return graph.operators.back().id;
  };

  for (int s = 0; s < num_stages; ++s) {
    const StageSpec& stage = job.plan.stages[static_cast<size_t>(s)];
    const auto& deps = stage.dependencies;
    bool is_final = (s == num_stages - 1);
    double stage_work = stage.Work();
    double stage_rows = stage_work * rows_per_token_second;

    std::vector<int> stage_ops;
    if (deps.empty()) {
      // Leaf stage: read from storage.
      PhysicalOperator leaf_op = PhysicalOperator::kExtract;
      double pick = rng.Uniform(0.0, 1.0);
      if (pick < 0.1) {
        leaf_op = PhysicalOperator::kIndexLookup;
      } else if (pick < 0.25) {
        leaf_op = PhysicalOperator::kRangeScan;
      }
      stage_ops.push_back(add_op(leaf_op, s, {}));
    } else if (deps.size() == 1) {
      // Repartition boundary from the single upstream stage.
      PhysicalOperator exchange = rng.Bernoulli(0.7)
                                      ? PhysicalOperator::kExchangePartition
                                      : PhysicalOperator::kExchangeMerge;
      stage_ops.push_back(add_op(
          exchange, s, {stage_last_op[static_cast<size_t>(deps[0])]}));
    } else {
      // Multi-input stage: one exchange per input, then a combining op.
      std::vector<int> exchange_ids;
      for (int dep : deps) {
        PhysicalOperator exchange = rng.Bernoulli(0.15)
                                        ? PhysicalOperator::kExchangeBroadcast
                                        : PhysicalOperator::kExchangePartition;
        exchange_ids.push_back(add_op(
            exchange, s, {stage_last_op[static_cast<size_t>(dep)]}));
      }
      static constexpr PhysicalOperator kCombiners[] = {
          PhysicalOperator::kHashJoin,      PhysicalOperator::kMergeJoin,
          PhysicalOperator::kBroadcastJoin, PhysicalOperator::kUnionAll,
          PhysicalOperator::kUnion,         PhysicalOperator::kSemiJoin,
          PhysicalOperator::kCombineUdo,    PhysicalOperator::kIntersect,
          PhysicalOperator::kExcept};
      PhysicalOperator combiner = kCombiners[rng.UniformInt(0, 8)];
      for (int id : exchange_ids) stage_ops.push_back(id);
      stage_ops.push_back(add_op(combiner, s, exchange_ids));
    }
    // Intermediate single-input operators.
    static constexpr PhysicalOperator kMiddles[] = {
        PhysicalOperator::kFilter,          PhysicalOperator::kProject,
        PhysicalOperator::kComputeScalar,   PhysicalOperator::kHashAggregate,
        PhysicalOperator::kStreamAggregate, PhysicalOperator::kLocalAggregate,
        PhysicalOperator::kSort,            PhysicalOperator::kTopSort,
        PhysicalOperator::kWindowAggregate, PhysicalOperator::kProcessUdo,
        PhysicalOperator::kReduceUdo,       PhysicalOperator::kSample,
        PhysicalOperator::kSplit,           PhysicalOperator::kSpool,
        PhysicalOperator::kAssert,          PhysicalOperator::kSequence};
    int middles = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < middles; ++m) {
      PhysicalOperator op = kMiddles[rng.UniformInt(0, 15)];
      stage_ops.push_back(add_op(op, s, {stage_ops.back()}));
    }
    if (is_final) {
      stage_ops.push_back(
          add_op(PhysicalOperator::kOutput, s, {stage_ops.back()}));
    }
    stage_last_op[static_cast<size_t>(s)] = stage_ops.back();

    // ---- Features for this stage's operators -----------------------------
    double row_length = row_length_base * rng.Uniform(0.7, 1.3);
    // First pass: propagate cardinalities and raw costs through the chain.
    double stage_raw_cost = 0.0;
    std::vector<double> raw_cost(stage_ops.size(), 0.0);
    for (size_t k = 0; k < stage_ops.size(); ++k) {
      OperatorNode& node = graph.operators[static_cast<size_t>(stage_ops[k])];
      const OperatorTraits& traits = GetOperatorTraits(node.op);
      double input_rows = 0.0;
      if (node.inputs.empty()) {
        input_rows = stage_rows;
      } else {
        for (int in : node.inputs) {
          input_rows +=
              graph.operators[static_cast<size_t>(in)].features
                  .output_cardinality;
        }
      }
      double selectivity =
          rng.Uniform(traits.selectivity_lo, traits.selectivity_hi);
      node.features.output_cardinality =
          std::max(1.0, input_rows * selectivity);
      node.features.children_input_cardinality = std::max(1.0, input_rows);
      node.features.average_row_length =
          std::max(4.0, row_length * rng.Uniform(0.85, 1.15));
      node.features.num_partitions = stage.num_tasks;
      if (traits.repartitions) {
        if (node.op == PhysicalOperator::kExchangeBroadcast) {
          node.partitioning = PartitioningMethod::kBroadcast;
        } else if (node.op == PhysicalOperator::kExchangeMerge) {
          node.partitioning = PartitioningMethod::kRange;
          node.features.num_partitioning_columns =
              static_cast<int>(rng.UniformInt(1, 3));
        } else {
          node.partitioning = rng.Bernoulli(0.8)
                                  ? PartitioningMethod::kHash
                                  : PartitioningMethod::kRoundRobin;
          if (node.partitioning == PartitioningMethod::kHash) {
            node.features.num_partitioning_columns =
                static_cast<int>(rng.UniformInt(1, 4));
          }
        }
      }
      if (traits.sorts) {
        node.features.num_sort_columns =
            static_cast<int>(rng.UniformInt(1, 3));
      }
      raw_cost[k] = std::max(
          1e-6, input_rows * traits.cost_factor *
                    (node.features.average_row_length / 100.0));
      stage_raw_cost += raw_cost[k];
      // Leaf-input rows seen by this operator's subtree.
      double leaves = 0.0;
      if (node.inputs.empty()) {
        leaves = input_rows;
      } else {
        for (int in : node.inputs) leaves += leaf_input[static_cast<size_t>(in)];
      }
      leaf_input[static_cast<size_t>(node.id)] = leaves;
      node.features.leaf_input_cardinality = leaves;
    }
    // Second pass: scale exclusive costs so the stage's estimated cost
    // totals its actual work *in the optimizer's cost units* (seconds /
    // seconds_per_cost_unit — the estimates do not see calibration drift),
    // then perturb with estimate noise.
    double estimated_stage_cost =
        stage_work / std::max(1e-3, config_.seconds_per_cost_unit);
    for (size_t k = 0; k < stage_ops.size(); ++k) {
      OperatorNode& node = graph.operators[static_cast<size_t>(stage_ops[k])];
      double share = raw_cost[k] / stage_raw_cost;
      node.features.cost_exclusive =
          estimated_stage_cost * share *
          EstimateNoise(rng, config_.estimate_noise_sigma);
      double subtree = node.features.cost_exclusive;
      for (int in : node.inputs) subtree += subtree_cost[static_cast<size_t>(in)];
      subtree_cost[static_cast<size_t>(node.id)] = subtree;
      node.features.cost_subtree = subtree;
      // Cardinality estimates carry noise too (at least one row survives).
      node.features.output_cardinality = std::max(
          1.0, node.features.output_cardinality *
                   EstimateNoise(rng, config_.estimate_noise_sigma));
      node.features.leaf_input_cardinality = std::max(
          1.0, node.features.leaf_input_cardinality *
                   EstimateNoise(rng, config_.estimate_noise_sigma));
      node.features.children_input_cardinality = std::max(
          1.0, node.features.children_input_cardinality *
                   EstimateNoise(rng, config_.estimate_noise_sigma));
    }
  }
  // Total plan cost: subtree cost of the single sink, stamped on every
  // operator (the optimizer exposes the job-level total everywhere).
  double total_cost = subtree_cost.empty() ? 0.0 : subtree_cost.back();
  for (OperatorNode& node : graph.operators) {
    node.features.cost_total = total_cost;
  }
  return job;
}

}  // namespace tasq
