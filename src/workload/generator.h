#ifndef TASQ_WORKLOAD_GENERATOR_H_
#define TASQ_WORKLOAD_GENERATOR_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workload/job_graph.h"

namespace tasq {

/// Skyline archetypes the generator mixes (paper Figures 5 and 8 contrast
/// "peaky" and "flatter" jobs).
enum class JobArchetype : int {
  /// One or two very wide stages, the rest narrow — deep valleys.
  kPeaky = 0,
  /// Uniformly wide stages — high sustained utilization.
  kFlat,
  /// Widths drawn across the whole range.
  kMixed,
  /// Many narrow stages in a long chain — serial-dominated.
  kDeepPipeline,
  /// Several independent branches unioned into a final stage.
  kUnionFan,
};

inline constexpr int kJobArchetypeCount = 5;

/// Knobs of the synthetic SCOPE-like workload. Defaults reproduce the
/// *shape* of the paper's production workload statistics (right-skewed run
/// times with a median of a few minutes; right-skewed peak tokens with a
/// median of a few tens) at laptop scale.
struct WorkloadConfig {
  uint64_t seed = 7;
  /// Fraction of jobs instantiated from a recurring template.
  double recurring_fraction = 0.6;
  /// Number of distinct recurring templates.
  int num_templates = 40;
  /// Median of the per-template parallelism base (peak-width scale).
  double tokens_median = 40.0;
  /// Log-sigma of the parallelism base (right skew).
  double tokens_log_sigma = 0.9;
  /// Hard cap on any stage width.
  int max_stage_width = 1500;
  /// Median per-task duration in seconds.
  double task_seconds_median = 18.0;
  double task_seconds_log_sigma = 0.5;
  /// Range of the user's over-provisioning factor for the default token
  /// request (Figure 1: requested 125 while using < 80).
  double overprovision_lo = 1.0;
  double overprovision_hi = 2.2;
  /// Log-sigma of input-size drift between recurrences of a template.
  double recurrence_drift_sigma = 0.35;
  /// Systematic multiplier on every job's input scale — models workload
  /// growth over time (paper §1: skylines "change significantly over time
  /// due to changes in workloads, such as changes in the input sizes").
  /// Templates are unaffected, so the same recurring jobs exist at every
  /// drift level.
  double global_input_scale = 1.0;
  /// Seconds of real work per unit of estimated cost. Optimizer cost
  /// estimates are abstract units; when the cluster (hardware, runtime
  /// version) changes, the calibration between cost units and seconds
  /// shifts without the estimates knowing. Raising this makes every job
  /// slower than its (unchanged) cost features suggest — the relationship
  /// drift that invalidates stale models.
  double seconds_per_cost_unit = 1.0;
  /// Log-sigma of the multiplicative noise on optimizer estimates
  /// (cardinalities and costs), so models face realistic mis-estimation.
  double estimate_noise_sigma = 0.25;
};

/// Deterministic generator of synthetic SCOPE-like jobs. Job `i` of a given
/// config is always the same job: the generator forks a child RNG per
/// template and per job id, so adding jobs never perturbs earlier ones.
///
/// Each generated job carries (a) a stage plan the cluster simulator can
/// execute and (b) an operator DAG whose Table-1 features are derived from
/// that plan (cardinalities and costs proportional to stage work, partition
/// counts equal to stage widths, plus estimate noise) — so compile-time
/// features are predictive of run-time behaviour, as on a real platform.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  /// Generates jobs with ids [first_id, first_id + count).
  std::vector<Job> Generate(int64_t first_id, int64_t count) const;

  /// Generates the single job with the given id.
  Job GenerateJob(int64_t job_id) const;

  const WorkloadConfig& config() const { return config_; }

 private:
  struct TemplateSpec {
    JobArchetype archetype = JobArchetype::kMixed;
    double parallelism_base = 40.0;
    double task_seconds_base = 18.0;
    std::vector<double> width_scales;
    std::vector<double> duration_scales;
    std::vector<std::vector<int>> deps;
  };

  TemplateSpec MakeTemplate(Rng rng) const;
  Job InstantiateJob(int64_t job_id, const TemplateSpec& spec,
                     int template_id, bool recurring, double input_scale,
                     Rng rng) const;

  WorkloadConfig config_;
  std::vector<TemplateSpec> templates_;
};

}  // namespace tasq

#endif  // TASQ_WORKLOAD_GENERATOR_H_
