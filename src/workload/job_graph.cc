#include "workload/job_graph.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace tasq {

namespace {

// FNV-1a 64-bit over explicitly serialized fields. Each field is mixed as a
// fixed-width integer, so the hash is a pure function of graph content —
// independent of padding, pointers, or platform struct layout.
constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x00000100000001B3ULL;

void MixU64(uint64_t& h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xFFu;
    h *= kFnvPrime;
  }
}

void MixDouble(uint64_t& h, double v) {
  // Canonicalize the two zero representations and all NaN payloads so
  // numerically equal features always hash equal.
  if (v == 0.0) v = 0.0;  // num: float-eq canonicalizes -0.0 to +0.0
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  MixU64(h, std::bit_cast<uint64_t>(v));
}

}  // namespace

std::vector<std::pair<int, int>> JobGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  for (const OperatorNode& node : operators) {
    for (int input : node.inputs) {
      edges.emplace_back(input, node.id);
    }
  }
  return edges;
}

int JobGraph::NumStages() const {
  int max_stage = -1;
  for (const OperatorNode& node : operators) {
    max_stage = std::max(max_stage, node.stage);
  }
  return max_stage + 1;
}

uint64_t JobGraph::Fingerprint() const {
  uint64_t h = kFnvOffset;
  MixU64(h, operators.size());
  for (const OperatorNode& node : operators) {
    MixU64(h, static_cast<uint64_t>(node.id));
    MixU64(h, static_cast<uint64_t>(node.op));
    MixU64(h, static_cast<uint64_t>(node.partitioning));
    MixU64(h, static_cast<uint64_t>(node.stage));
    MixU64(h, node.inputs.size());
    for (int input : node.inputs) MixU64(h, static_cast<uint64_t>(input));
    const OperatorFeatures& f = node.features;
    MixDouble(h, f.output_cardinality);
    MixDouble(h, f.leaf_input_cardinality);
    MixDouble(h, f.children_input_cardinality);
    MixDouble(h, f.average_row_length);
    MixDouble(h, f.cost_subtree);
    MixDouble(h, f.cost_exclusive);
    MixDouble(h, f.cost_total);
    MixU64(h, static_cast<uint64_t>(f.num_partitions));
    MixU64(h, static_cast<uint64_t>(f.num_partitioning_columns));
    MixU64(h, static_cast<uint64_t>(f.num_sort_columns));
  }
  return h;
}

Status JobGraph::Validate() const {
  if (operators.empty()) {
    return Status::InvalidArgument("job graph has no operators");
  }
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorNode& node = operators[i];
    if (node.id != static_cast<int>(i)) {
      return Status::InvalidArgument("operator ids must be dense and ordered");
    }
    for (int input : node.inputs) {
      if (input < 0 || input >= node.id) {
        return Status::InvalidArgument(
            "operator inputs must reference earlier operators");
      }
    }
    if (node.stage < 0) {
      return Status::InvalidArgument("operator stage must be non-negative");
    }
  }
  return Status::Ok();
}

}  // namespace tasq
