#include "workload/job_graph.h"

#include <algorithm>

namespace tasq {

std::vector<std::pair<int, int>> JobGraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  for (const OperatorNode& node : operators) {
    for (int input : node.inputs) {
      edges.emplace_back(input, node.id);
    }
  }
  return edges;
}

int JobGraph::NumStages() const {
  int max_stage = -1;
  for (const OperatorNode& node : operators) {
    max_stage = std::max(max_stage, node.stage);
  }
  return max_stage + 1;
}

Status JobGraph::Validate() const {
  if (operators.empty()) {
    return Status::InvalidArgument("job graph has no operators");
  }
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorNode& node = operators[i];
    if (node.id != static_cast<int>(i)) {
      return Status::InvalidArgument("operator ids must be dense and ordered");
    }
    for (int input : node.inputs) {
      if (input < 0 || input >= node.id) {
        return Status::InvalidArgument(
            "operator inputs must reference earlier operators");
      }
    }
    if (node.stage < 0) {
      return Status::InvalidArgument("operator stage must be non-negative");
    }
  }
  return Status::Ok();
}

}  // namespace tasq
