#ifndef TASQ_WORKLOAD_JOB_GRAPH_H_
#define TASQ_WORKLOAD_JOB_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/hot.h"
#include "common/status.h"
#include "simcluster/job_plan.h"
#include "workload/operators.h"

namespace tasq {

/// Compile-time features of one operator in a query plan (paper Table 1).
/// Continuous features are optimizer *estimates*; the generator adds
/// estimate noise so models face realistic mis-estimation.
struct OperatorFeatures {
  // Continuous (float) features.
  double output_cardinality = 0.0;
  double leaf_input_cardinality = 0.0;
  double children_input_cardinality = 0.0;
  double average_row_length = 0.0;
  double cost_subtree = 0.0;
  double cost_exclusive = 0.0;
  double cost_total = 0.0;
  // Discrete (integer) features.
  int num_partitions = 0;
  int num_partitioning_columns = 0;
  int num_sort_columns = 0;
};

/// One node of a job's operator DAG.
struct OperatorNode {
  /// Dense id, 0..n-1, topologically ordered (inputs have smaller ids).
  int id = 0;
  PhysicalOperator op = PhysicalOperator::kExtract;
  PartitioningMethod partitioning = PartitioningMethod::kNone;
  /// Ids of operators feeding this one.
  std::vector<int> inputs;
  OperatorFeatures features;
  /// Stage of the derived execution plan this operator executes in.
  int stage = 0;
};

/// The compile-time artifact of a job: a DAG of physical operators with
/// their estimated features. This is what the TASQ models see — run-time
/// telemetry (skylines) never feeds scoring.
struct JobGraph {
  std::vector<OperatorNode> operators;

  /// Directed edges (from, to) derived from operator inputs.
  std::vector<std::pair<int, int>> Edges() const;

  /// Number of distinct stages referenced by the operators.
  int NumStages() const;

  /// Deterministic 64-bit content hash over every operator, edge, and
  /// feature of the graph. Two graphs hash equal iff their structure and
  /// features are identical, so the hash identifies recurring jobs at the
  /// serving layer (src/serve) without comparing whole graphs. The value
  /// depends only on graph content — never on addresses or iteration
  /// order — and is stable across runs, threads, and processes.
  /// TASQ_HOT: runs per request on the serving fast path; walks the
  /// operators in place without allocating (scripts/tasq_hot.py).
  TASQ_HOT uint64_t Fingerprint() const;

  /// Checks ids are dense/ordered and inputs reference earlier operators.
  TASQ_NODISCARD Status Validate() const;
};

/// A complete generated job: the compile-time graph, the executable stage
/// plan it lowers to, and submission metadata.
struct Job {
  int64_t id = 0;
  /// Template this job was instantiated from (-1 for fully ad-hoc jobs).
  int template_id = -1;
  /// True when the job recurs (same template, drifting input size).
  bool recurring = false;
  /// Relative input size multiplier applied to the template instance.
  double input_scale = 1.0;
  /// Tokens the user requested at submission (the often-over-allocated
  /// "Default Allocation" of Figure 1).
  double default_tokens = 1.0;
  JobGraph graph;
  JobPlan plan;
};

}  // namespace tasq

#endif  // TASQ_WORKLOAD_JOB_GRAPH_H_
