#include "workload/operators.h"

namespace tasq {
namespace {

// Indexed by the enum value of PhysicalOperator.
constexpr OperatorTraits kTraits[kPhysicalOperatorCount] = {
    // name, sel_lo, sel_hi, cost, leaf, multi, sorts, repart
    {"Extract", 1.0, 1.0, 1.0, true, false, false, false},
    {"Filter", 0.05, 0.9, 0.3, false, false, false, false},
    {"Project", 1.0, 1.0, 0.2, false, false, false, false},
    {"ComputeScalar", 1.0, 1.0, 0.4, false, false, false, false},
    {"HashJoin", 0.3, 1.5, 2.0, false, true, false, false},
    {"MergeJoin", 0.3, 1.5, 1.2, false, true, true, false},
    {"NestedLoopJoin", 0.1, 2.0, 4.0, false, true, false, false},
    {"BroadcastJoin", 0.3, 1.5, 1.8, false, true, false, false},
    {"SemiJoin", 0.1, 0.8, 1.5, false, true, false, false},
    {"AntiSemiJoin", 0.1, 0.8, 1.5, false, true, false, false},
    {"CrossJoin", 1.5, 4.0, 6.0, false, true, false, false},
    {"HashAggregate", 0.001, 0.3, 1.8, false, false, false, false},
    {"StreamAggregate", 0.001, 0.3, 0.8, false, false, true, false},
    {"LocalAggregate", 0.01, 0.5, 1.0, false, false, false, false},
    {"Sort", 1.0, 1.0, 2.5, false, false, true, false},
    {"TopSort", 0.0001, 0.01, 1.5, false, false, true, false},
    {"WindowAggregate", 1.0, 1.0, 2.2, false, false, true, false},
    {"ExchangePartition", 1.0, 1.0, 0.8, false, false, false, true},
    {"ExchangeMerge", 1.0, 1.0, 0.6, false, false, true, true},
    {"ExchangeBroadcast", 1.0, 1.0, 1.2, false, false, false, true},
    {"Union", 0.6, 1.0, 1.0, false, true, false, false},
    {"UnionAll", 1.0, 1.0, 0.3, false, true, false, false},
    {"Intersect", 0.05, 0.5, 1.4, false, true, false, false},
    {"Except", 0.05, 0.8, 1.4, false, true, false, false},
    {"Spool", 1.0, 1.0, 0.7, false, false, false, false},
    {"Split", 1.0, 1.0, 0.3, false, false, false, false},
    {"Sample", 0.001, 0.1, 0.2, false, false, false, false},
    {"ProcessUdo", 0.2, 2.0, 3.0, false, false, false, false},
    {"ReduceUdo", 0.01, 0.8, 3.0, false, false, true, false},
    {"CombineUdo", 0.2, 1.5, 3.0, false, true, false, false},
    {"IndexLookup", 0.0001, 0.05, 0.8, true, false, false, false},
    {"RangeScan", 0.01, 0.5, 0.9, true, false, false, false},
    {"Output", 1.0, 1.0, 0.8, false, false, false, false},
    {"Assert", 1.0, 1.0, 0.1, false, false, false, false},
    {"Sequence", 1.0, 1.0, 0.1, false, false, false, false},
};

}  // namespace

const OperatorTraits& GetOperatorTraits(PhysicalOperator op) {
  return kTraits[static_cast<size_t>(op)];
}

const char* OperatorName(PhysicalOperator op) {
  return GetOperatorTraits(op).name;
}

const char* PartitioningMethodName(PartitioningMethod method) {
  switch (method) {
    case PartitioningMethod::kNone:
      return "None";
    case PartitioningMethod::kHash:
      return "Hash";
    case PartitioningMethod::kRange:
      return "Range";
    case PartitioningMethod::kRoundRobin:
      return "RoundRobin";
    case PartitioningMethod::kBroadcast:
      return "Broadcast";
  }
  return "Unknown";
}

}  // namespace tasq
